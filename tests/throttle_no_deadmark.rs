//! Regression test: gateway-mode back-pressure (`429`/`503` +
//! `Retry-After`) must be honored as a throttle — retried within the
//! browser's throttle budget — and must NOT dead-mark the fleet
//! member that sent it.
//!
//! The bug: a browser in HTTP-page (gateway) mode that received a
//! `503` with `Retry-After` during a fleet member's overload or
//! cold-start window treated it like proxy death, dead-marking the
//! member and steering the whole crowd away from it just as capacity
//! was coming good. The fix routes `429`/`503 + Retry-After` through
//! the same `throttle_backoff` path the CONNECT flow uses: the hint
//! counts against the per-load throttle-retry budget, the load backs
//! off and refetches, and `web.proxy_dead_marks` stays untouched.

use sc_metrics::{Method, ScenarioConfig, build_scenario};
use sc_obs::{Dispatcher, Level};
use sc_simnet::time::SimDuration;

/// An overloaded two-member gateway fleet: six clients slam proxies
/// sized for one tunnel each, so admission sheds the overflow with
/// `Retry-After` hints. Every shed must surface as a throttle (and
/// mostly recover), never as a dead-mark.
#[test]
fn gateway_throttle_counts_against_budget_but_never_dead_marks() {
    // Counters only accumulate under an installed dispatcher.
    let guard = Dispatcher::new().with_level(Level::Info).install();

    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, 4242);
    cfg.clients = 6;
    cfg.loads = 3;
    cfg.interval = SimDuration::from_secs(20);
    cfg.timeout = SimDuration::from_secs(15);
    cfg.sc_http_page = true;
    cfg.sc_fleet = 2;
    cfg.sc_max_tunnels = Some(1);
    cfg.sc_queue_len = Some(1);
    // Stagger arrivals so the backed-off retries do not re-collide in
    // lockstep forever — some throttled loads must be able to land.
    cfg.ramp_stagger = SimDuration::from_millis(700);
    cfg.extra_runtime = SimDuration::from_secs(30);

    let built = build_scenario(&cfg);
    let outcome = built.finish();

    let counter = |name| sc_obs::with_registry(|r| r.counter(name)).unwrap_or(0);

    // The overload actually happened and the browsers honored the
    // Retry-After hints through the throttle path.
    let throttled = counter("web.throttled");
    assert!(
        throttled > 0,
        "undersized admission must shed with Retry-After and browsers must \
         register throttles (web.throttled = {throttled})"
    );

    // ... and back-pressure was never mistaken for proxy death.
    let dead_marks = counter("web.proxy_dead_marks");
    assert_eq!(
        dead_marks, 0,
        "429/503 + Retry-After must not dead-mark a fleet member"
    );

    // At least one load was throttled and still completed: the hint
    // was retried within budget, not failed outright.
    let throttled_then_ok = outcome
        .loads
        .iter()
        .flatten()
        .filter(|r| r.throttled && !r.failed)
        .count();
    assert!(
        throttled_then_ok > 0,
        "a throttled load must be able to recover within its retry budget"
    );

    // The throttle budget is real: a load record that carries a proxy
    // status from a shed kept its status even when it recovered.
    assert!(
        outcome
            .loads
            .iter()
            .flatten()
            .any(|r| r.throttled && matches!(r.proxy_status, Some(429) | Some(503))),
        "throttled loads must record the shed status they overcame"
    );
    drop(guard);
}
