//! Property tests for the adaptive censor's pure state machine, plus
//! the byte-identical trace pins for adaptive scenarios.
//!
//! [`AdaptiveState`] takes time and randomness as arguments, so its
//! invariants can be pinned against arbitrary interleavings:
//!
//! 1. **monotone suspicion** — `note_flow` can only raise a server's
//!    suspicion score, and the score it returns is always the score
//!    `score()` reports;
//! 2. **no early promotion** — `note_fingerprint` never promotes a
//!    cover fingerprint to a learned signature before
//!    `learn_after_flows` matching flows, promotes exactly at the
//!    threshold, and refreshes (never re-learns) afterwards;
//! 3. **bounded campaigns** — a probing campaign emits at most
//!    `campaign_waves` waves, numbered `1..=waves` in order, a second
//!    `start_campaign` against the same server is a no-op, and the
//!    campaign is eventually exhausted;
//! 4. **determinism** — a full adaptive scenario (classifier, probing
//!    campaigns, detection-driven rotation, stream resume) produces
//!    byte-identical JSONL traces across same-seed runs, and with all
//!    adaptive knobs off the trace carries no adaptive machinery at
//!    all (the pre-adaptive byte-identity pin).

use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;

use proptest::prelude::*;
use sc_gfw::adaptive::{AdaptiveConfig, AdaptiveState, FingerprintOutcome};
use sc_metrics::{Method, ScenarioConfig, build_scenario};
use sc_obs::{Dispatcher, JsonlSink, Level};
use sc_simnet::addr::{Addr, SocketAddr};
use sc_simnet::time::{SimDuration, SimTime};

/// A deterministic `[0, 1)` source standing in for the sim's seeded
/// RNG (an LCG stepped once per draw, like the real driver).
fn draw_fn(seed: u64) -> impl FnMut() -> f64 {
    let mut s = seed;
    move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (s >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn server() -> SocketAddr {
    SocketAddr::new(Addr::new(10, 7, 0, 1), 443)
}

proptest! {
    /// Invariant 1: whatever mix of clients, cadence, and preamble
    /// oddity arrives, a server's suspicion score never decreases, and
    /// `note_flow`'s return value always equals the queryable score.
    #[test]
    fn suspicion_score_is_monotone(
        flows in prop::collection::vec(
            (0u8..6, any::<bool>(), 0u64..40_000_000),
            1..80,
        ),
        fanin_w in 0u32..4,
        cadence_w in 0u32..4,
        preamble_w in 0u32..4,
    ) {
        let cfg = AdaptiveConfig {
            fanin_weight: fanin_w,
            cadence_weight: cadence_w,
            preamble_weight: preamble_w,
            ..AdaptiveConfig::default()
        };
        let mut st = AdaptiveState::default();
        let srv = server();
        let mut now = SimTime::ZERO;
        let mut last = st.score(&cfg, &srv);
        prop_assert_eq!(last, 0, "an unseen server must score 0");
        for (client, odd, dt_us) in flows {
            now = now + SimDuration::from_micros(dt_us);
            let c = SocketAddr::new(Addr::new(192, 168, 0, 1 + client), 40_000);
            let s = st.note_flow(&cfg, srv, c, odd, now);
            prop_assert!(
                s >= last,
                "suspicion dropped from {} to {} on new evidence",
                last,
                s
            );
            prop_assert_eq!(s, st.score(&cfg, &srv), "note_flow must return the live score");
            last = s;
        }
    }

    /// Invariant 2: the classifier never fires below the learning
    /// threshold. Promotion happens exactly on the
    /// `learn_after_flows`-th matching flow, and every later matching
    /// flow refreshes the learned signature instead of re-learning it.
    #[test]
    fn classifier_never_promotes_early(
        learn_flows in 1u32..10,
        extra in 0u32..12,
        path_tag in 0u8..16,
        dt_ms in 1u64..2_000,
    ) {
        let cfg = AdaptiveConfig {
            learn_after_flows: learn_flows,
            // Keep every flow inside the TTL so refresh (not re-learn)
            // is the only legal post-promotion outcome.
            signature_ttl: SimDuration::from_secs(3_600),
            ..AdaptiveConfig::default()
        };
        let mut st = AdaptiveState::default();
        let early = format!(
            "POST /api/sync-{path_tag:02x} HTTP/1.1\r\nHost: cdn.example\r\n\r\n"
        );
        let mut now = SimTime::ZERO;
        let mut promoted_at = None;
        for i in 1..=(learn_flows + extra) {
            now = now + SimDuration::from_millis(dt_ms);
            match st.note_fingerprint(&cfg, early.as_bytes(), now) {
                FingerprintOutcome::None => prop_assert!(
                    i < learn_flows,
                    "flow {} of threshold {} must have promoted already",
                    i,
                    learn_flows
                ),
                FingerprintOutcome::Learned(sig) => {
                    prop_assert!(promoted_at.is_none(), "signature learned twice");
                    prop_assert_eq!(
                        i, learn_flows,
                        "promotion fired at flow {} instead of threshold {}",
                        i, learn_flows
                    );
                    prop_assert!(
                        early.as_bytes().starts_with(&sig),
                        "learned signature must be a prefix of the cover preamble"
                    );
                    promoted_at = Some(i);
                }
                FingerprintOutcome::Refreshed => prop_assert!(
                    promoted_at.is_some_and(|p| i > p),
                    "refresh before promotion at flow {}",
                    i
                ),
            }
        }
        prop_assert_eq!(promoted_at, Some(learn_flows));
        prop_assert_eq!(st.signatures_learned, 1);
        prop_assert_eq!(st.learned_signatures().len(), 1);
        // Non-HTTP-shaped flows never contribute a fingerprint at all.
        prop_assert_eq!(
            st.note_fingerprint(&cfg, b"\x16\x03\x03\x01binary-hello", now),
            FingerprintOutcome::None
        );
    }

    /// Invariant 3: probes per server are hard-bounded by
    /// `campaign_waves`, waves come out numbered `1..=waves` in order,
    /// restarting a campaign is a no-op, and once the waves are spent
    /// the campaign reports exhausted forever.
    #[test]
    fn campaign_waves_are_bounded(
        waves in 1u32..6,
        steps in prop::collection::vec(0u64..20_000_000, 1..80),
        seed in 0u64..1_000,
    ) {
        let cfg = AdaptiveConfig {
            campaign_waves: waves,
            wave_gap: SimDuration::from_secs(2),
            wave_jitter: SimDuration::from_secs(1),
            ..AdaptiveConfig::default()
        };
        let mut st = AdaptiveState::default();
        let srv = server();
        let mut draw = draw_fn(seed);
        let mut now = SimTime::ZERO;

        prop_assert!(st.start_campaign(&cfg, srv, now), "first start must launch");
        prop_assert!(!st.start_campaign(&cfg, srv, now), "restart must be a no-op");
        prop_assert_eq!(st.campaigns_launched, 1);

        let mut fired = Vec::new();
        for dt_us in steps {
            now = now + SimDuration::from_micros(dt_us);
            if let Some(wave) = st.step_campaign(&cfg, &srv, now, &mut draw) {
                fired.push(wave);
            }
        }
        // However time advanced, never more than the configured waves,
        // and the waves that did fire are numbered in order from 1.
        prop_assert!(
            fired.len() as u32 <= waves,
            "{} waves fired, bound is {}",
            fired.len(),
            waves
        );
        let expect: Vec<u32> = (1..=fired.len() as u32).collect();
        prop_assert_eq!(&fired, &expect, "waves must fire as 1..=n in order");

        // Grind far past every possible gap+jitter: the campaign must
        // exhaust, and an exhausted campaign steps no further.
        for _ in 0..(waves + 2) {
            now = now + SimDuration::from_secs(10);
            if let Some(wave) = st.step_campaign(&cfg, &srv, now, &mut draw) {
                fired.push(wave);
            }
        }
        prop_assert_eq!(fired.len() as u32, waves, "campaign must spend exactly its waves");
        prop_assert!(st.campaign_exhausted(&srv));
        prop_assert_eq!(st.step_campaign(&cfg, &srv, now, &mut draw), None);
    }
}

/// An in-memory `Write` target shared with the test after the sink is
/// boxed away.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// An arms-race scenario run (the arms_race_lab shape, shrunk): a
/// reactive censor learning signatures and probing, against
/// detection-driven scheme rotation with stream resume. Classifier
/// state, campaign jitter, rotation, and resume retries are all keyed
/// to the seeded sim, so the trace must be a pure function of the
/// seed — and with `adaptive` off, of the pre-adaptive code path only.
fn adaptive_run(seed: u64, adaptive: bool) -> Vec<u8> {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()));
    let guard = Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(sink))
        .install();
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, seed);
    cfg.clients = 2;
    cfg.loads = 5;
    cfg.interval = SimDuration::from_secs(10);
    cfg.timeout = SimDuration::from_secs(8);
    cfg.extra_runtime = SimDuration::from_secs(20);
    if adaptive {
        cfg.sc_adaptive = true;
        cfg.sc_adaptive_learn_flows = 4;
        cfg.sc_adaptive_rotation = true;
        cfg.sc_adaptive_rotation_threshold = 1;
        cfg.sc_adaptive_rotation_cooldown = SimDuration::from_secs(5);
    }
    let built = build_scenario(&cfg);
    built.finish();
    drop(guard);
    let out = buf.0.borrow().clone();
    out
}

#[test]
fn adaptive_traces_are_byte_identical() {
    let a = adaptive_run(9191, true);
    let b = adaptive_run(9191, true);
    assert!(!a.is_empty(), "trace must not be empty");
    // The adaptive machinery must actually have engaged: the censor
    // learned a signature and probed, and the defense rotated.
    let text = String::from_utf8(a.clone()).unwrap();
    for needed in [
        "\"event\":\"signature_learned\"",
        "\"event\":\"campaign\"",
        "\"event\":\"probe_wave\"",
        "\"event\":\"rotate\"",
    ] {
        assert!(
            text.lines().any(|l| l.contains(needed)),
            "adaptive trace must record a {needed} event"
        );
    }
    assert_eq!(a, b, "same-seed adaptive traces must be byte-identical");

    // And a different seed must actually shift the race.
    let c = adaptive_run(9192, true);
    assert_ne!(a, c, "different seeds must produce different adaptive traces");
}

/// The pre-adaptive pin: with every adaptive knob at its default-off
/// value the scenario replays byte-identically AND its trace carries
/// no adaptive machinery — no classifier events, no campaigns, no
/// detection-driven rotations, no stream resumes. The subsystem is
/// provably inert when disabled.
#[test]
fn knobs_off_traces_carry_no_adaptive_machinery() {
    let a = adaptive_run(9191, false);
    let b = adaptive_run(9191, false);
    assert!(!a.is_empty(), "trace must not be empty");
    assert_eq!(a, b, "same-seed knobs-off traces must be byte-identical");
    let text = String::from_utf8(a).unwrap();
    for banned in ["adaptive", "stream_resume", "probe_wave", "signature_learned"] {
        assert!(
            !text.contains(banned),
            "knobs-off trace must not mention {banned:?}"
        );
    }
}
