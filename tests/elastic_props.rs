//! Property tests for the elastic remote tier's autoscaler, plus the
//! byte-identical trace pin for elastic scenarios.
//!
//! The [`ElasticPool`] is a pure state machine — time, demand, and
//! randomness all arrive as arguments — so its invariants can be
//! pinned against arbitrary interleavings of ticks, stream dispatch,
//! and blacklist churn:
//!
//! 1. **bounds** — after every tick the live (warm + provisioning)
//!    instance count stays inside `[min_instances, max_instances]`,
//!    no matter how demand and churn thrash it;
//! 2. **never strand** — a `Retire` action is only ever emitted for an
//!    instance with zero in-flight streams: scale-in and churn drain,
//!    they do not cut loads off mid-flight;
//! 3. **determinism** — a full elastic scenario (autoscaler ticks,
//!    cold starts from the seeded RNG, a mid-run blacklisting wave
//!    resolved at fire time, churn, cost metering) produces
//!    byte-identical JSONL traces across same-seed runs.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write;
use std::rc::Rc;

use proptest::prelude::*;
use sc_core::{ElasticAction, ElasticConfig, ElasticPool};
use sc_metrics::{Method, ScenarioConfig, build_scenario};
use sc_obs::{Dispatcher, JsonlSink, Level};
use sc_simnet::addr::Addr;
use sc_simnet::faults::{Fault, FaultPlan};
use sc_simnet::time::{SimDuration, SimTime};

/// Fresh addresses for the pool, far more than any op sequence can
/// burn through (so address starvation never masks a bounds check).
fn addr_pool() -> Vec<Addr> {
    (0..64).map(|i| Addr::new(99, 0, 1, 1 + i as u8)).collect()
}

/// A deterministic `[0, 1)` source standing in for the sim's seeded
/// RNG (an LCG stepped once per provision, like the real driver).
fn draw_fn(seed: u64) -> impl FnMut() -> f64 {
    let mut s = seed;
    move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (s >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One scripted perturbation of the pool.
#[derive(Debug, Clone)]
enum Op {
    /// Advance time and run a controller tick with this queue depth.
    Tick { dt_ms: u64, queue_depth: usize },
    /// Dispatch a stream to the k-th warm instance (mod warm count).
    StreamStart { k: usize },
    /// Finish the oldest open stream.
    StreamEnd,
    /// Blacklist the k-th warm instance (breaker opened on it).
    Churn { k: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..4, 0usize..8, 1u64..3_000, 0usize..16).prop_map(
        |(kind, k, dt_ms, queue_depth)| match kind {
            0 => Op::Tick { dt_ms, queue_depth },
            1 => Op::StreamStart { k },
            2 => Op::StreamEnd,
            _ => Op::Churn { k },
        },
    )
}

proptest! {
    /// Invariants 1 + 2 under arbitrary op interleavings: live count
    /// stays in `[min, max]` after every tick, and `Retire` never
    /// fires while the instance still carries in-flight streams.
    #[test]
    fn autoscaler_stays_in_bounds_and_never_strands(
        ops in prop::collection::vec(op_strategy(), 1..60),
        min in 1usize..3,
        extra in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let max = min + 1 + extra;
        let cfg = ElasticConfig {
            min_instances: min,
            max_instances: max,
            idle_timeout: SimDuration::from_secs(5),
            ..ElasticConfig::default()
        };
        let mut pool = ElasticPool::new(cfg, addr_pool());
        pool.seed_warm(min);
        let mut draw = draw_fn(seed);

        // The driver's view of what is in flight where; the pool must
        // never retire an address this map still counts.
        let mut inflight: BTreeMap<Addr, usize> = BTreeMap::new();
        let mut open: Vec<Addr> = Vec::new();
        let mut now = SimTime::ZERO;

        for op in &ops {
            match op {
                Op::Tick { dt_ms, queue_depth } => {
                    now = now + SimDuration::from_millis(*dt_ms);
                    for act in pool.tick(now, *queue_depth, false, &mut draw) {
                        if let ElasticAction::Retire { addr } = act {
                            prop_assert_eq!(
                                inflight.get(&addr).copied().unwrap_or(0),
                                0,
                                "retired {} with streams still in flight",
                                addr
                            );
                        }
                    }
                    let live = pool.live_count();
                    prop_assert!(
                        live >= min && live <= max,
                        "live {} outside [{}, {}] after tick",
                        live,
                        min,
                        max
                    );
                    prop_assert_eq!(
                        pool.starved_provisions, 0,
                        "address pool must be ample for this test"
                    );
                }
                Op::StreamStart { k } => {
                    let warm = pool.warm_addrs();
                    if warm.is_empty() {
                        continue;
                    }
                    let addr = warm[k % warm.len()];
                    prop_assert!(pool.note_stream_start(addr));
                    *inflight.entry(addr).or_insert(0) += 1;
                    open.push(addr);
                }
                Op::StreamEnd => {
                    if let Some(addr) = open.first().copied() {
                        open.remove(0);
                        pool.note_stream_end(addr, now);
                        if let Some(n) = inflight.get_mut(&addr) {
                            *n = n.saturating_sub(1);
                        }
                    }
                }
                Op::Churn { k } => {
                    let warm = pool.warm_addrs();
                    if warm.is_empty() {
                        continue;
                    }
                    pool.churn(warm[k % warm.len()]);
                }
            }
        }

        // Drain everything: with all streams closed and demand gone,
        // repeated ticks settle the pool back to exactly `min` live
        // instances (idle scale-in converges, nothing leaks).
        for addr in open.drain(..) {
            pool.note_stream_end(addr, now);
        }
        for _ in 0..4 {
            now = now + SimDuration::from_secs(10);
            pool.tick(now, 0, false, &mut draw);
        }
        prop_assert_eq!(pool.live_count(), min, "idle pool must settle at min");
    }

    /// The cost meters never run backwards and the total is always the
    /// sum of its parts, whatever the op sequence.
    #[test]
    fn cost_meters_are_monotone_and_additive(
        ops in prop::collection::vec(op_strategy(), 1..40),
        seed in 0u64..1_000,
    ) {
        let cfg = ElasticConfig {
            min_instances: 1,
            max_instances: 4,
            ..ElasticConfig::default()
        };
        let mut pool = ElasticPool::new(cfg, addr_pool());
        pool.seed_warm(1);
        let mut draw = draw_fn(seed);
        let mut now = SimTime::ZERO;
        let mut open: Vec<Addr> = Vec::new();
        let mut last_total = 0u64;

        for op in &ops {
            match op {
                Op::Tick { dt_ms, queue_depth } => {
                    now = now + SimDuration::from_millis(*dt_ms);
                    pool.tick(now, *queue_depth, false, &mut draw);
                }
                Op::StreamStart { k } => {
                    let warm = pool.warm_addrs();
                    if let Some(&addr) = warm.get(k % warm.len().max(1)) {
                        pool.note_stream_start(addr);
                        pool.note_egress(addr, 10_000);
                        open.push(addr);
                    }
                }
                Op::StreamEnd => {
                    if let Some(addr) = open.first().copied() {
                        open.remove(0);
                        pool.note_stream_end(addr, now);
                    }
                }
                Op::Churn { k } => {
                    let warm = pool.warm_addrs();
                    if !warm.is_empty() {
                        pool.churn(warm[k % warm.len()]);
                    }
                }
            }
            let total = pool.total_cost_micro();
            prop_assert!(total >= last_total, "cost meter ran backwards");
            prop_assert_eq!(
                total,
                pool.cost_invocation_micro()
                    + pool.cost_egress_micro()
                    + pool.cost_warm_micro()
            );
            last_total = total;
        }
    }
}

/// An in-memory `Write` target shared with the test after the sink is
/// boxed away.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// An elastic scenario run: a serverless remote tier with a mid-run
/// blacklisting wave whose target is resolved at fire time from the
/// live warm set (the elastic_lab shape, shrunk). Autoscaler ticks,
/// cold starts, churn, and the cost meters are all keyed to the
/// seeded sim, so the trace must be a pure function of the seed.
fn elastic_run(seed: u64) -> Vec<u8> {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()));
    let guard = Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(sink))
        .install();
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, seed);
    cfg.clients = 2;
    cfg.loads = 4;
    cfg.interval = SimDuration::from_secs(10);
    cfg.timeout = SimDuration::from_secs(8);
    cfg.sc_elastic_pool = 8;
    cfg.sc_elastic_min = 1;
    cfg.sc_elastic_max = 4;
    cfg.sc_elastic_idle = SimDuration::from_secs(25);
    cfg.extra_runtime = SimDuration::from_secs(15);
    let mut built = build_scenario(&cfg);
    let gfw = built.gfw.clone().expect("paper config attaches the GFW");
    let elastic = built.sc_elastic.clone().expect("elastic tier requested");
    let plan = FaultPlan::new().at(
        SimTime::from_secs(15),
        Fault::Callback {
            label: "gfw_blacklist_warm",
            apply: Box::new(move |now| {
                let Some(addr) = elastic.warm_addrs().first().copied() else { return };
                let mut st = gfw.borrow_mut();
                if !st.config.ip_blacklist.contains(&(addr, 32)) {
                    st.config.ip_blacklist.push((addr, 32));
                }
                sc_obs::emit(
                    sc_obs::Event::new(
                        now.as_micros(),
                        sc_obs::Level::Info,
                        "gfw",
                        "fault",
                        "blacklist_ip",
                    )
                    .field("addr", addr.to_string()),
                );
            }),
        },
    );
    built.sim.install_fault_plan(plan);
    built.finish();
    drop(guard);
    let out = buf.0.borrow().clone();
    out
}

#[test]
fn elastic_traces_are_byte_identical() {
    let a = elastic_run(7171);
    let b = elastic_run(7171);
    assert!(!a.is_empty(), "trace must not be empty");
    // The elastic machinery must actually have engaged: the wave's
    // churn retired the blacklisted instance and a replacement
    // cold-started at a fresh IP, with the cost meters publishing.
    let text = String::from_utf8(a.clone()).unwrap();
    for needed in [
        "\"event\":\"churn\"",
        "\"event\":\"provision\"",
        "\"event\":\"warm\"",
        "\"event\":\"retire\"",
        "\"event\":\"cost\"",
    ] {
        assert!(
            text.lines().any(|l| l.contains("\"target\":\"elastic\"") && l.contains(needed)),
            "trace must record an elastic {needed} event"
        );
    }
    assert_eq!(a, b, "same-seed elastic traces must be byte-identical");

    // And a different seed must actually shift the run.
    let c = elastic_run(7172);
    assert_ne!(a, c, "different seeds must produce different elastic traces");
}
