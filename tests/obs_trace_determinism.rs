//! Two runs of the same seeded scenario must produce byte-identical
//! JSONL traces: events are keyed to simulation time (never wall clock)
//! and span ids are assigned sequentially, so the trace is a pure
//! function of the seed.

use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;

use sc_metrics::{Method, ScenarioConfig, build_scenario, run_scenario};
use sc_obs::{Dispatcher, JsonlSink, Level, SloSpec, WindowSpec};
use sc_simnet::faults::FaultPlan;
use sc_simnet::time::{SimDuration, SimTime};

/// An in-memory `Write` target shared with the test after the sink is
/// boxed away.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn traced_run(method: Method, seed: u64) -> Vec<u8> {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()));
    let guard = Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(sink))
        .install();
    let mut cfg = ScenarioConfig::paper(method, seed);
    cfg.loads = 2;
    run_scenario(&cfg);
    drop(guard);
    let out = buf.0.borrow().clone();
    out
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let a = traced_run(Method::ScholarCloud, 33);
    let b = traced_run(Method::ScholarCloud, 33);
    assert!(!a.is_empty(), "trace must not be empty");
    assert_eq!(a, b, "same-seed traces must be byte-identical");
}

/// The `sc_obs::prof` wall-clock profiler must be write-only from the
/// simulator's perspective: running the same seeded scenario with the
/// profiler collecting must leave the SC_TRACE bytes untouched. This is
/// the guarantee that lets `scholar-bench` profile the exact code CI
/// verifies.
#[test]
fn profiler_on_and_off_traces_are_byte_identical() {
    use sc_obs::prof::{self, Subsystem};

    let off = traced_run(Method::ScholarCloud, 33);

    prof::reset();
    prof::set_enabled(true);
    let on = traced_run(Method::ScholarCloud, 33);
    prof::set_enabled(false);
    let report = prof::report();

    // The profiler must actually have been collecting during the run…
    assert!(
        report.scopes(Subsystem::EventLoop) > 0,
        "profiler saw no event-loop scopes — hooks not wired?"
    );
    assert!(report.scopes(Subsystem::Tcp) > 0, "profiler saw no TCP scopes");
    assert!(report.scopes(Subsystem::Proxy) > 0, "profiler saw no proxy scopes");
    assert!(report.total_ns() > 0, "profiler banked no wall time");
    // …and the trace must not know.
    assert_eq!(on, off, "profiler-on trace must be byte-identical to profiler-off");
    prof::reset();
}

#[test]
fn different_seed_traces_differ() {
    // Sanity check that the trace actually reflects the run: a different
    // seed shifts timings, so the bytes must differ.
    let a = traced_run(Method::ScholarCloud, 33);
    let b = traced_run(Method::ScholarCloud, 34);
    assert_ne!(a, b);
}

/// A fault-injected run: three remotes, the GFW blacklists two of them
/// mid-run and heals one later. Same seed + same plan must still be a
/// pure function of the inputs — byte-identical traces.
fn faulted_run(seed: u64) -> Vec<u8> {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()));
    let guard = Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(sink))
        .install();
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, seed);
    cfg.clients = 2;
    cfg.loads = 4;
    cfg.interval = SimDuration::from_secs(10);
    cfg.timeout = SimDuration::from_secs(8);
    cfg.sc_remotes = 3;
    let mut built = build_scenario(&cfg);
    let gfw = built.gfw.clone().expect("paper config attaches the GFW");
    let remotes = built.sc_remote_addrs.clone();
    let plan = FaultPlan::new()
        .at(SimTime::from_secs(12), sc_gfw::blacklist_ip(&gfw, remotes[0]))
        .at(SimTime::from_secs(22), sc_gfw::blacklist_ip(&gfw, remotes[1]))
        .at(SimTime::from_secs(40), sc_gfw::unblacklist_ip(&gfw, remotes[0]));
    built.sim.install_fault_plan(plan);
    built.finish();
    drop(guard);
    let out = buf.0.borrow().clone();
    out
}

#[test]
fn fault_injected_traces_are_byte_identical() {
    let a = faulted_run(57);
    let b = faulted_run(57);
    assert!(!a.is_empty(), "trace must not be empty");
    // The fault plane must actually have perturbed the run: blacklist
    // faults in the trace, and the resilience layer reacting to them.
    let text = String::from_utf8(a.clone()).unwrap();
    assert!(
        text.contains("\"event\":\"blacklist_ip\""),
        "trace must record the injected blacklist faults"
    );
    assert!(
        text.contains("\"event\":\"failover\""),
        "trace must record at least one failover reaction"
    );
    assert_eq!(a, b, "same seed + same fault plan must be byte-identical");
}

/// A flash-crowd run: an undersized domestic proxy (2 tunnels, 2-deep
/// queue) hit by a gated client surge released via `Fault::FlashCrowd`.
/// Admission decisions (sheds, queue drains, Retry-After backoffs) are
/// pure functions of the seeded sim, so the trace must stay
/// byte-identical with the overload-control layer fully engaged.
fn flash_crowd_run(seed: u64) -> Vec<u8> {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()));
    let guard = Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(sink))
        .install();
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, seed);
    cfg.clients = 2;
    cfg.loads = 4;
    cfg.interval = SimDuration::from_secs(10);
    cfg.timeout = SimDuration::from_secs(8);
    cfg.sc_max_tunnels = Some(2);
    cfg.sc_queue_len = Some(2);
    cfg.flash_clients = 10;
    cfg.flash_loads = 2;
    cfg.flash_start = SimDuration::from_secs(20);
    cfg.flash_ramp = SimDuration::from_secs(4);
    cfg.extra_runtime = SimDuration::from_secs(20);
    let mut built = build_scenario(&cfg);
    let gate = built.flash_gate.clone().expect("flash clients configured");
    let plan = FaultPlan::new().at(
        SimTime::from_secs(20),
        sc_simnet::faults::Fault::FlashCrowd {
            clients: 10,
            ramp: SimDuration::from_secs(4),
            trigger: Box::new(move |_t| gate.set(true)),
        },
    );
    built.sim.install_fault_plan(plan);
    built.finish();
    drop(guard);
    let out = buf.0.borrow().clone();
    out
}

#[test]
fn flash_crowd_traces_are_byte_identical() {
    let a = flash_crowd_run(77);
    let b = flash_crowd_run(77);
    assert!(!a.is_empty(), "trace must not be empty");
    // The overload-control layer must actually have engaged: the crowd
    // released, requests shed with explicit refusals, and at least one
    // browser honoring Retry-After.
    let text = String::from_utf8(a.clone()).unwrap();
    assert!(
        text.contains("\"event\":\"flash_crowd\""),
        "trace must record the flash-crowd fault"
    );
    assert!(
        text.contains("\"event\":\"shed\"") || text.contains("\"event\":\"throttle\""),
        "trace must record admission shedding under the surge"
    );
    assert!(
        text.contains("\"event\":\"throttled\""),
        "trace must record a browser Retry-After backoff"
    );
    assert_eq!(a, b, "same seed + same flash crowd must be byte-identical");
}

/// A shared-cache run: the cache_lab shape shrunk — clients loading the
/// same plain-HTTP page through the domestic proxy's gateway path, with
/// the origin's max-age expiring between rounds so the cache exercises
/// cold misses, singleflight coalescing, and 304 revalidation. Every
/// cache decision is keyed to simulation time, so the trace must be
/// byte-identical across same-seed runs.
fn cache_lab_run(seed: u64) -> Vec<u8> {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()));
    let guard = Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(sink))
        .install();
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, seed);
    cfg.clients = 4;
    cfg.loads = 2;
    cfg.interval = SimDuration::from_secs(30);
    cfg.timeout = SimDuration::from_secs(25);
    cfg.sc_http_page = true;
    cfg.origin_max_age = Some(20);
    cfg.sc_cache_bytes = Some(256 * 1024);
    run_scenario(&cfg);
    drop(guard);
    let out = buf.0.borrow().clone();
    out
}

#[test]
fn cache_lab_traces_are_byte_identical() {
    let a = cache_lab_run(4242);
    let b = cache_lab_run(4242);
    assert!(!a.is_empty(), "trace must not be empty");
    // The cache must actually have engaged: a cold miss, concurrent
    // requests coalescing onto the in-flight fetch, and a stale round
    // refreshing via 304.
    let text = String::from_utf8(a.clone()).unwrap();
    for needed in ["\"event\":\"miss\"", "\"event\":\"coalesced\"", "\"event\":\"revalidated\""] {
        assert!(
            text.lines().any(|l| l.contains("\"target\":\"cache\"") && l.contains(needed)),
            "trace must record a scholarcloud/cache {needed} event"
        );
    }
    assert_eq!(a, b, "same-seed shared-cache traces must be byte-identical");
}

/// A windows+SLO run: an undersized ScholarCloud VM under a small ramp,
/// tight enough that the PLT SLO fires. Returns the raw trace bytes and
/// the rendered timeline + verdict table.
fn ops_run(seed: u64) -> (Vec<u8>, String) {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()));
    // 2-second windows, a deliberately unachievable PLT target so
    // alerts fire even in this tiny run.
    let guard = Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(sink))
        .with_windows(WindowSpec::new(2_000_000, 512))
        .with_slo(SloSpec::quantile("plt-p95", "web.plt_us", 0.95, 1_000_000))
        .install();
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, seed);
    cfg.clients = 6;
    cfg.loads = 4;
    cfg.interval = sc_simnet::time::SimDuration::from_secs(2);
    cfg.ramp_stagger = sc_simnet::time::SimDuration::from_secs(2);
    cfg.timeout = sc_simnet::time::SimDuration::from_secs(15);
    cfg.server_bandwidth_override = Some(200_000);
    run_scenario(&cfg);
    let rendered = format!(
        "{}{}",
        sc_obs::with_timeseries(|ts| ts.render_timeline("web.plt_us")).unwrap(),
        sc_obs::with_slo_engine(|e| e.verdict_table()).unwrap(),
    );
    drop(guard);
    let out = buf.0.borrow().clone();
    (out, rendered)
}

#[test]
fn windows_and_slo_alerts_are_deterministic() {
    let (trace_a, render_a) = ops_run(91);
    let (trace_b, render_b) = ops_run(91);
    assert_eq!(trace_a, trace_b, "same-seed windowed traces must be byte-identical");
    assert_eq!(render_a, render_b, "rendered timeline/verdicts must be identical");

    // The run must actually have exercised the alert path: at least one
    // fire event in the trace, produced mid-run by the simnet tick hook.
    let text = String::from_utf8(trace_a).unwrap();
    let fires: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"component\":\"slo\"") && l.contains("\"event\":\"fire\""))
        .collect();
    assert!(!fires.is_empty(), "expected at least one SLO fire event in the trace");
    assert!(render_a.contains("plt-p95"), "verdict table must list the SLO:\n{render_a}");
    assert!(
        render_a.contains("FIRING") || render_a.contains("recovered"),
        "verdict table must show the alert state:\n{render_a}"
    );

    // And the offline analyzer must agree with the live engine.
    let events = sc_obs::analyze::parse_trace(&text).unwrap();
    let analysis = sc_obs::analyze::analyze(&events, 2_000_000);
    assert_eq!(
        analysis.slo_alerts.iter().filter(|(_, kind, _, _)| kind == "fire").count(),
        fires.len(),
    );
}
