//! Two runs of the same seeded scenario must produce byte-identical
//! JSONL traces: events are keyed to simulation time (never wall clock)
//! and span ids are assigned sequentially, so the trace is a pure
//! function of the seed.

use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;

use sc_metrics::{Method, ScenarioConfig, run_scenario};
use sc_obs::{Dispatcher, JsonlSink, Level};

/// An in-memory `Write` target shared with the test after the sink is
/// boxed away.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn traced_run(method: Method, seed: u64) -> Vec<u8> {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()));
    let guard = Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(sink))
        .install();
    let mut cfg = ScenarioConfig::paper(method, seed);
    cfg.loads = 2;
    run_scenario(&cfg);
    drop(guard);
    let out = buf.0.borrow().clone();
    out
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let a = traced_run(Method::ScholarCloud, 33);
    let b = traced_run(Method::ScholarCloud, 33);
    assert!(!a.is_empty(), "trace must not be empty");
    assert_eq!(a, b, "same-seed traces must be byte-identical");
}

#[test]
fn different_seed_traces_differ() {
    // Sanity check that the trace actually reflects the run: a different
    // seed shifts timings, so the bytes must differ.
    let a = traced_run(Method::ScholarCloud, 33);
    let b = traced_run(Method::ScholarCloud, 34);
    assert_ne!(a, b);
}
