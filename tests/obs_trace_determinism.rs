//! Two runs of the same seeded scenario must produce byte-identical
//! JSONL traces: events are keyed to simulation time (never wall clock)
//! and span ids are assigned sequentially, so the trace is a pure
//! function of the seed.

use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;

use sc_metrics::{Method, ScenarioConfig, build_scenario, run_scenario};
use sc_obs::{Dispatcher, JsonlSink, Level, SloSpec, WindowSpec};
use sc_simnet::faults::FaultPlan;
use sc_simnet::time::{SimDuration, SimTime};

/// An in-memory `Write` target shared with the test after the sink is
/// boxed away.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn traced_run(method: Method, seed: u64) -> Vec<u8> {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()));
    let guard = Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(sink))
        .install();
    let mut cfg = ScenarioConfig::paper(method, seed);
    cfg.loads = 2;
    run_scenario(&cfg);
    drop(guard);
    let out = buf.0.borrow().clone();
    out
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let a = traced_run(Method::ScholarCloud, 33);
    let b = traced_run(Method::ScholarCloud, 33);
    assert!(!a.is_empty(), "trace must not be empty");
    assert_eq!(a, b, "same-seed traces must be byte-identical");
}

/// The `sc_obs::prof` wall-clock profiler must be write-only from the
/// simulator's perspective: running the same seeded scenario with the
/// profiler collecting must leave the SC_TRACE bytes untouched. This is
/// the guarantee that lets `scholar-bench` profile the exact code CI
/// verifies.
#[test]
fn profiler_on_and_off_traces_are_byte_identical() {
    use sc_obs::prof::{self, Subsystem};

    let off = traced_run(Method::ScholarCloud, 33);

    prof::reset();
    prof::set_enabled(true);
    let on = traced_run(Method::ScholarCloud, 33);
    prof::set_enabled(false);
    let report = prof::report();

    // The profiler must actually have been collecting during the run…
    assert!(
        report.scopes(Subsystem::EventLoop) > 0,
        "profiler saw no event-loop scopes — hooks not wired?"
    );
    assert!(report.scopes(Subsystem::Tcp) > 0, "profiler saw no TCP scopes");
    assert!(report.scopes(Subsystem::Proxy) > 0, "profiler saw no proxy scopes");
    assert!(report.total_ns() > 0, "profiler banked no wall time");
    // …and the trace must not know.
    assert_eq!(on, off, "profiler-on trace must be byte-identical to profiler-off");
    prof::reset();
}

#[test]
fn different_seed_traces_differ() {
    // Sanity check that the trace actually reflects the run: a different
    // seed shifts timings, so the bytes must differ.
    let a = traced_run(Method::ScholarCloud, 33);
    let b = traced_run(Method::ScholarCloud, 34);
    assert_ne!(a, b);
}

/// A fault-injected run: three remotes, the GFW blacklists all of them
/// mid-run (so any load after the fault must fail its first attempt and
/// fail over, whatever the health-scored pick chose) and heals one
/// later. Same seed + same plan must still be a pure function of the
/// inputs — byte-identical traces.
fn faulted_run(seed: u64) -> Vec<u8> {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()));
    let guard = Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(sink))
        .install();
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, seed);
    cfg.clients = 2;
    cfg.loads = 4;
    cfg.interval = SimDuration::from_secs(10);
    cfg.timeout = SimDuration::from_secs(8);
    cfg.sc_remotes = 3;
    let mut built = build_scenario(&cfg);
    let gfw = built.gfw.clone().expect("paper config attaches the GFW");
    let remotes = built.sc_remote_addrs.clone();
    let plan = FaultPlan::new()
        .at(SimTime::from_secs(12), sc_gfw::blacklist_ip(&gfw, remotes[0]))
        .at(SimTime::from_secs(13), sc_gfw::blacklist_ip(&gfw, remotes[1]))
        .at(SimTime::from_secs(14), sc_gfw::blacklist_ip(&gfw, remotes[2]))
        .at(SimTime::from_secs(24), sc_gfw::unblacklist_ip(&gfw, remotes[2]))
        .at(SimTime::from_secs(40), sc_gfw::unblacklist_ip(&gfw, remotes[0]));
    built.sim.install_fault_plan(plan);
    built.finish();
    drop(guard);
    let out = buf.0.borrow().clone();
    out
}

#[test]
fn fault_injected_traces_are_byte_identical() {
    let a = faulted_run(57);
    let b = faulted_run(57);
    assert!(!a.is_empty(), "trace must not be empty");
    // The fault plane must actually have perturbed the run: blacklist
    // faults in the trace, and the resilience layer reacting to them.
    let text = String::from_utf8(a.clone()).unwrap();
    assert!(
        text.contains("\"event\":\"blacklist_ip\""),
        "trace must record the injected blacklist faults"
    );
    assert!(
        text.contains("\"event\":\"failover\""),
        "trace must record at least one failover reaction"
    );
    assert_eq!(a, b, "same seed + same fault plan must be byte-identical");
}

/// A flash-crowd run: an undersized domestic proxy (2 tunnels, 2-deep
/// queue) hit by a gated client surge released via `Fault::FlashCrowd`.
/// Admission decisions (sheds, queue drains, Retry-After backoffs) are
/// pure functions of the seeded sim, so the trace must stay
/// byte-identical with the overload-control layer fully engaged.
fn flash_crowd_run(seed: u64) -> Vec<u8> {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()));
    let guard = Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(sink))
        .install();
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, seed);
    cfg.clients = 2;
    cfg.loads = 4;
    cfg.interval = SimDuration::from_secs(10);
    cfg.timeout = SimDuration::from_secs(8);
    cfg.sc_max_tunnels = Some(2);
    cfg.sc_queue_len = Some(2);
    cfg.flash_clients = 10;
    cfg.flash_loads = 2;
    cfg.flash_start = SimDuration::from_secs(20);
    cfg.flash_ramp = SimDuration::from_secs(4);
    cfg.extra_runtime = SimDuration::from_secs(20);
    let mut built = build_scenario(&cfg);
    let gate = built.flash_gate.clone().expect("flash clients configured");
    let plan = FaultPlan::new().at(
        SimTime::from_secs(20),
        sc_simnet::faults::Fault::FlashCrowd {
            clients: 10,
            ramp: SimDuration::from_secs(4),
            trigger: Box::new(move |_t| gate.set(true)),
        },
    );
    built.sim.install_fault_plan(plan);
    built.finish();
    drop(guard);
    let out = buf.0.borrow().clone();
    out
}

#[test]
fn flash_crowd_traces_are_byte_identical() {
    let a = flash_crowd_run(77);
    let b = flash_crowd_run(77);
    assert!(!a.is_empty(), "trace must not be empty");
    // The overload-control layer must actually have engaged: the crowd
    // released, requests shed with explicit refusals, and at least one
    // browser honoring Retry-After.
    let text = String::from_utf8(a.clone()).unwrap();
    assert!(
        text.contains("\"event\":\"flash_crowd\""),
        "trace must record the flash-crowd fault"
    );
    assert!(
        text.contains("\"event\":\"shed\"") || text.contains("\"event\":\"throttle\""),
        "trace must record admission shedding under the surge"
    );
    assert!(
        text.contains("\"event\":\"throttled\""),
        "trace must record a browser Retry-After backoff"
    );
    assert_eq!(a, b, "same seed + same flash crowd must be byte-identical");
}

/// A fleet-chaos run: the `fleet_chaos` example shrunk — a 3-member
/// domestic fleet with rotated PAC fallback lists and a rendezvous-
/// sharded cache, member 1 crashed mid-run (SYNs dropped silently, so
/// browsers discover it only by connect timeout) and restarted later.
/// Dead-marks, failover retries, re-probe backoff, and the cache-
/// peering hop are all keyed to simulation time, so same seed + same
/// crash must be byte-identical.
fn fleet_chaos_run(seed: u64) -> Vec<u8> {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()));
    let guard = Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(sink))
        .install();
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, seed);
    cfg.clients = 4;
    cfg.loads = 3;
    cfg.interval = SimDuration::from_secs(15);
    cfg.timeout = SimDuration::from_secs(10);
    cfg.sc_fleet = 3;
    cfg.sc_http_page = true;
    cfg.origin_max_age = Some(10);
    cfg.sc_cache_bytes = Some(256 * 1024);
    cfg.extra_runtime = SimDuration::from_secs(30);
    let mut built = build_scenario(&cfg);
    let victim = built.sc_domestic_nodes[1];
    let plan = FaultPlan::new()
        .at(SimTime::from_secs(12), sc_simnet::faults::Fault::NodeCrash(victim))
        .at(SimTime::from_secs(20), sc_simnet::faults::Fault::NodeRestart(victim));
    built.sim.install_fault_plan(plan);
    built.finish();
    drop(guard);
    let out = buf.0.borrow().clone();
    out
}

#[test]
fn fleet_chaos_traces_are_byte_identical() {
    let a = fleet_chaos_run(9393);
    let b = fleet_chaos_run(9393);
    assert!(!a.is_empty(), "trace must not be empty");
    // The fleet machinery must actually have engaged: the crash
    // dead-marked via connect timeout, a browser failed over down its
    // PAC list, the sharded cache peered, and the restarted member was
    // re-probed back in.
    let text = String::from_utf8(a.clone()).unwrap();
    for needed in [
        "\"event\":\"proxy_dead\"",
        "\"event\":\"failover\"",
        "\"event\":\"peer_fetch\"",
        "\"event\":\"proxy_recovered\"",
    ] {
        assert!(
            text.lines().any(|l| l.contains("\"target\":\"fleet\"") && l.contains(needed)),
            "trace must record a fleet {needed} event"
        );
    }
    assert_eq!(a, b, "same seed + same node crash must be byte-identical");
}

/// A shared-cache run: the cache_lab shape shrunk — clients loading the
/// same plain-HTTP page through the domestic proxy's gateway path, with
/// the origin's max-age expiring between rounds so the cache exercises
/// cold misses, singleflight coalescing, and 304 revalidation. Every
/// cache decision is keyed to simulation time, so the trace must be
/// byte-identical across same-seed runs.
fn cache_lab_run(seed: u64) -> Vec<u8> {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()));
    let guard = Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(sink))
        .install();
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, seed);
    cfg.clients = 4;
    cfg.loads = 2;
    cfg.interval = SimDuration::from_secs(30);
    cfg.timeout = SimDuration::from_secs(25);
    cfg.sc_http_page = true;
    cfg.origin_max_age = Some(20);
    cfg.sc_cache_bytes = Some(256 * 1024);
    run_scenario(&cfg);
    drop(guard);
    let out = buf.0.borrow().clone();
    out
}

#[test]
fn cache_lab_traces_are_byte_identical() {
    let a = cache_lab_run(4242);
    let b = cache_lab_run(4242);
    assert!(!a.is_empty(), "trace must not be empty");
    // The cache must actually have engaged: a cold miss, concurrent
    // requests coalescing onto the in-flight fetch, and a stale round
    // refreshing via 304.
    let text = String::from_utf8(a.clone()).unwrap();
    for needed in ["\"event\":\"miss\"", "\"event\":\"coalesced\"", "\"event\":\"revalidated\""] {
        assert!(
            text.lines().any(|l| l.contains("\"target\":\"cache\"") && l.contains(needed)),
            "trace must record a scholarcloud/cache {needed} event"
        );
    }
    assert_eq!(a, b, "same-seed shared-cache traces must be byte-identical");
}

/// A windows+SLO run: an undersized ScholarCloud VM under a small ramp,
/// tight enough that the PLT SLO fires. Returns the raw trace bytes and
/// the rendered timeline + verdict table.
fn ops_run(seed: u64) -> (Vec<u8>, String) {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(Box::new(buf.clone()));
    // 2-second windows, a deliberately unachievable PLT target so
    // alerts fire even in this tiny run.
    let guard = Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(sink))
        .with_windows(WindowSpec::new(2_000_000, 512))
        .with_slo(SloSpec::quantile("plt-p95", "web.plt_us", 0.95, 1_000_000))
        .install();
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, seed);
    cfg.clients = 6;
    cfg.loads = 4;
    cfg.interval = sc_simnet::time::SimDuration::from_secs(2);
    cfg.ramp_stagger = sc_simnet::time::SimDuration::from_secs(2);
    cfg.timeout = sc_simnet::time::SimDuration::from_secs(15);
    cfg.server_bandwidth_override = Some(200_000);
    run_scenario(&cfg);
    let rendered = format!(
        "{}{}",
        sc_obs::with_timeseries(|ts| ts.render_timeline("web.plt_us")).unwrap(),
        sc_obs::with_slo_engine(|e| e.verdict_table()).unwrap(),
    );
    drop(guard);
    let out = buf.0.borrow().clone();
    (out, rendered)
}

#[test]
fn windows_and_slo_alerts_are_deterministic() {
    let (trace_a, render_a) = ops_run(91);
    let (trace_b, render_b) = ops_run(91);
    assert_eq!(trace_a, trace_b, "same-seed windowed traces must be byte-identical");
    assert_eq!(render_a, render_b, "rendered timeline/verdicts must be identical");

    // The run must actually have exercised the alert path: at least one
    // fire event in the trace, produced mid-run by the simnet tick hook.
    let text = String::from_utf8(trace_a).unwrap();
    let fires: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"component\":\"slo\"") && l.contains("\"event\":\"fire\""))
        .collect();
    assert!(!fires.is_empty(), "expected at least one SLO fire event in the trace");
    assert!(render_a.contains("plt-p95"), "verdict table must list the SLO:\n{render_a}");
    assert!(
        render_a.contains("FIRING") || render_a.contains("recovered"),
        "verdict table must show the alert state:\n{render_a}"
    );

    // And the offline analyzer must agree with the live engine.
    let events = sc_obs::analyze::parse_trace(&text).unwrap();
    let analysis = sc_obs::analyze::analyze(&events, 2_000_000);
    assert_eq!(
        analysis.slo_alerts.iter().filter(|(_, kind, _, _)| kind == "fire").count(),
        fires.len(),
    );
}

/// End-to-end check of the causal-tracing tentpole: every page load the
/// ops scenario completes must stitch into a cross-tier tree whose
/// exclusive per-tier attribution partitions the PLT exactly, the fired
/// SLO alert must carry exemplar trace ids that resolve to stitched
/// trees, and the per-request waterfall must render for the slowest
/// request.
#[test]
fn completed_loads_stitch_into_attributed_trees_with_exemplars() {
    let (trace, _render) = ops_run(91);
    let text = String::from_utf8(trace).unwrap();
    let events = sc_obs::analyze::parse_trace(&text).unwrap();
    let analysis = sc_obs::analyze::analyze(&events, 2_000_000);

    // Coverage: ≥95% of completed loads must have stitched across tiers
    // (in practice: all of them — propagation is in-band, not sampled).
    let coverage = analysis
        .attribution_coverage()
        .expect("ops run must complete at least one page load");
    assert!(coverage >= 0.95, "attribution coverage {coverage:.3} below 0.95");

    // Attribution: exclusive per-span and per-tier times partition each
    // completed root window exactly (not merely within 1%).
    for tree in analysis.trees.iter().filter(|t| t.completed()) {
        let excl: u64 = tree.spans.iter().map(|s| s.excl_us).sum();
        let tiers: u64 = tree.tier_us.values().sum();
        assert_eq!(excl, tree.plt_us, "trace {:016x}: exclusive != PLT", tree.trace_id);
        assert_eq!(tiers, tree.plt_us, "trace {:016x}: tier blame != PLT", tree.trace_id);
        assert!(
            tree.tier_us.keys().any(|t| *t != "web"),
            "trace {:016x} never left the web tier",
            tree.trace_id
        );
    }

    // Exemplars: the fired plt-p95 alert must name at least one trace id
    // that resolves to a stitched tree (the drill-down path the alert
    // exists for).
    assert!(!analysis.alert_exemplars.is_empty(), "fired alert carries no exemplars");
    for (_, slo, ids) in &analysis.alert_exemplars {
        assert_eq!(slo, "plt-p95");
        assert!(!ids.is_empty(), "exemplar list must not be empty");
        for id in ids {
            let tree = analysis.tree(*id).expect("exemplar id must resolve to a tree");
            assert!(tree.stitched(), "exemplar {id:016x} did not stitch across tiers");
        }
    }

    // Waterfall: the slowest completed request renders a drill-down.
    let slowest = analysis.slowest(1);
    let worst = slowest.first().expect("at least one completed load");
    let waterfall = sc_obs::analyze::render_waterfall(worst);
    assert!(waterfall.contains("page_load"), "waterfall missing root:\n{waterfall}");
    assert!(waterfall.contains("tier blame:"), "waterfall missing blame:\n{waterfall}");
}
