//! Workspace-level integration tests: the whole stack — simulator, GFW,
//! tunnels, ScholarCloud, web substrate, measurement harness — exercised
//! through the public facade.

use scholarcloud_repro::metrics::{Method, ScenarioConfig, Summary, run_scenario};

/// The paper's central comparison, end to end: every method completes its
/// loads; ScholarCloud and the VPNs see baseline loss; Tor and Shadowsocks
/// are throttled; direct access is blocked.
#[test]
fn headline_comparison_holds() {
    let mut results = Vec::new();
    for method in Method::all_measured() {
        let mut cfg = ScenarioConfig::paper(method, 99);
        cfg.loads = 8;
        let out = run_scenario(&cfg);
        // Tor is "severely censored" (the paper's words): under heavy
        // throttling an occasional load may time out. Everything else
        // must be spotless.
        let tolerated = if method == Method::Tor { 0.26 } else { 0.0 };
        assert!(
            out.failure_rate() <= tolerated,
            "{method:?} failure rate {}: {:?}",
            out.failure_rate(),
            out.loads[0]
        );
        let (_, subs) = out.plts();
        results.push((method, Summary::of_or_empty(&subs).mean, out.plr));
    }
    let get = |m: Method| results.iter().find(|(mm, _, _)| *mm == m).copied().unwrap();
    let (_, sc_plt, sc_plr) = get(Method::ScholarCloud);
    let (_, vpn_plt, vpn_plr) = get(Method::NativeVpn);
    let (_, tor_plt, tor_plr) = get(Method::Tor);
    let (_, ss_plt, ss_plr) = get(Method::Shadowsocks);

    // Figure 5a orderings: SC and VPN fast; SS and Tor slow.
    assert!(sc_plt < ss_plt, "SC {sc_plt} vs SS {ss_plt}");
    assert!(vpn_plt < ss_plt, "VPN {vpn_plt} vs SS {ss_plt}");
    assert!(sc_plt < tor_plt, "SC {sc_plt} vs Tor {tor_plt}");

    // Figure 5c orderings: Tor worst, SS elevated, SC/VPN at baseline.
    assert!(tor_plr > ss_plr, "Tor {tor_plr} vs SS {ss_plr}");
    assert!(ss_plr >= sc_plr, "SS {ss_plr} vs SC {sc_plr}");
    assert!(tor_plr > 5.0 * vpn_plr.max(0.0001), "Tor {tor_plr} vs VPN {vpn_plr}");
}

#[test]
fn direct_access_blocked_but_unblocked_methods_survive() {
    let mut cfg = ScenarioConfig::paper(Method::Direct, 5);
    cfg.loads = 1;
    cfg.timeout = scholarcloud_repro::simnet::time::SimDuration::from_secs(15);
    let out = run_scenario(&cfg);
    assert!(out.failure_rate() > 0.99);
    assert!(out.gfw.dns_poisoned > 0, "DNS poisoning must fire");
}

#[test]
fn tor_first_load_is_much_slower_than_subsequent() {
    let mut cfg = ScenarioConfig::paper(Method::Tor, 11);
    cfg.loads = 4;
    let out = run_scenario(&cfg);
    let (first, subs) = out.plts();
    let first = first[0];
    let subs_mean = Summary::of_or_empty(&subs).mean;
    // The paper: 5.4× (15 s vs 2.8 s). Bootstrap cost varies with the
    // random loss pattern, so require a conservative 1.8×.
    assert!(
        first > 1.8 * subs_mean,
        "Tor first {first} vs subsequent {subs_mean}"
    );
}

#[test]
fn blinding_ablation_exposes_scholarcloud() {
    let (on, off, resets) = scholarcloud_repro::metrics::ablation_blinding(13);
    assert_eq!(on.failure_rate, 0.0, "blinded SC must be clean");
    assert!(
        resets > 0,
        "without blinding the embedded-SNI scan must fire"
    );
    assert!(
        off.failure_rate > 0.0,
        "unblinded loads should be reset by the GFW"
    );
}

#[test]
fn survey_and_ops_reproduce_reported_numbers() {
    let row = scholarcloud_repro::metrics::fig3_survey(150_000, 1);
    assert!((row.bypass_share - 0.26).abs() < 0.02);
    assert!((row.vpn - 0.43).abs() < 0.03);
    let d = scholarcloud_repro::scholarcloud::Deployment::paper();
    assert!((d.daily_cost_usd() - 2.2).abs() < 1e-9);
}

#[test]
fn scalability_shadowsocks_knees_while_scholarcloud_grows_gently() {
    use scholarcloud_repro::metrics::fig7_method;
    let counts = [15usize, 120];
    let ss = fig7_method(Method::Shadowsocks, 31, &counts);
    let sc = fig7_method(Method::ScholarCloud, 31, &counts);
    let ss_growth = ss[1].plt_mean / ss[0].plt_mean.max(0.01);
    let sc_growth = sc[1].plt_mean / sc[0].plt_mean.max(0.01);
    assert!(
        ss_growth > 1.5 * sc_growth,
        "SS growth {ss_growth:.2} should dwarf SC growth {sc_growth:.2} (ss={ss:?} sc={sc:?})"
    );
}
