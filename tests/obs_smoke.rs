//! Observability smoke test: a small seeded ScholarCloud scenario run
//! under a ring-buffer collector must produce the key events from every
//! instrumented layer, and the GFW's embedded-SNI scanner must find
//! nothing (blinding is on).

use sc_metrics::{Method, ScenarioConfig, run_scenario};
use sc_obs::{Dispatcher, Level, RingSink};

#[test]
fn scholarcloud_run_emits_key_events() {
    let ring = RingSink::with_capacity(200_000);
    let events = ring.handle();
    let guard = Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(ring))
        .install();

    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, 21);
    cfg.loads = 3;
    let out = run_scenario(&cfg);
    assert_eq!(out.failure_rate(), 0.0, "{:?}", out.loads);
    assert_eq!(out.gfw.embedded_sni_resets, 0, "blinding must defeat the scanner");

    // The remote proxy authenticated at least one preamble (the tunnel
    // worked), and the scanner never reset a tunnel.
    assert!(
        events.count_named("scholarcloud", "auth_ok") >= 1,
        "no preamble auth events"
    );
    assert!(!events.any(|e| {
        e.component == "gfw"
            && e.name == "drop"
            && e.get_str("rule") == Some("gfw-embedded-sni")
    }));

    // The browser decomposed loads into spans: page_load plus the
    // connect/tunnel/fetch phases (no dns phase here: the PAC route
    // hands resolution to the domestic proxy, the paper's design).
    for phase in ["page_load", "connect", "tunnel", "fetch"] {
        assert!(
            events.any(|e| {
                e.component == "web"
                    && e.name == "span_start"
                    && e.get_str("span_name") == Some(phase)
            }),
            "missing {phase} span"
        );
    }

    // A clean run (no drops, no GFW verdicts) still traces the
    // measurement, browser, and proxy layers.
    let mut components: Vec<&str> = Vec::new();
    for e in events.events() {
        if !components.contains(&e.component) {
            components.push(e.component);
        }
    }
    for c in ["metrics", "web", "scholarcloud"] {
        assert!(components.contains(&c), "missing {c} events: {components:?}");
    }

    // The registry collected the matching counters.
    let registry = guard.registry();
    assert!(registry.counter("scholarcloud.remote_tunnels") >= 1);
    assert!(registry.counter("scholarcloud.domestic_accepts") >= 1);
    assert!(registry.counter("web.loads_ok") >= 3);
    assert!(registry.counter("simnet.packets_delivered") > 0);
    let plt = registry.histogram("web.plt_us").expect("plt histogram");
    assert_eq!(plt.count(), 3);
}

#[test]
fn active_probe_against_remote_proxy_gets_a_decoy() {
    // Shadowsocks draws entropy suspicion and an active probe; the GFW
    // probe events must appear in the collector.
    let ring = RingSink::with_capacity(100_000);
    let events = ring.handle();
    let _guard = Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(ring))
        .install();

    let mut cfg = ScenarioConfig::paper(Method::Shadowsocks, 7);
    cfg.loads = 4;
    let out = run_scenario(&cfg);
    assert!(out.gfw.probes_requested >= 1);
    assert!(events.count_named("gfw", "requested") >= 1, "no probe request events");
    assert!(events.count_named("gfw", "launched") >= 1, "no probe launch events");
    assert!(events.count_named("gfw", "verdict") >= 1, "no probe verdict events");
}

#[test]
fn blocked_direct_run_emits_events_from_four_crates() {
    // Direct access is censored, so the GFW verdicts and the simnet
    // censor drops join the browser and scenario events: four crates in
    // one trace, the acceptance shape for the JSONL sink.
    let ring = RingSink::with_capacity(100_000);
    let events = ring.handle();
    let _guard = Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(ring))
        .install();

    let mut cfg = ScenarioConfig::paper(Method::Direct, 7);
    cfg.loads = 1;
    cfg.timeout = sc_simnet::time::SimDuration::from_secs(20);
    let out = run_scenario(&cfg);
    assert!(out.failure_rate() > 0.99);
    assert!(!out.censor_by_rule.is_empty(), "censor drops must be attributed");

    let mut components: Vec<&str> = Vec::new();
    for e in events.events() {
        if !components.contains(&e.component) {
            components.push(e.component);
        }
    }
    for c in ["metrics", "web", "gfw", "simnet"] {
        assert!(components.contains(&c), "missing {c} events: {components:?}");
    }
    assert!(events.any(|e| {
        e.component == "gfw" && e.name == "drop" && e.get_str("rule").is_some()
    }));
}
