//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a std-only deterministic implementation of the small API surface it
//! uses: the [`Rng`] / [`SeedableRng`] traits and [`rngs::SmallRng`].
//!
//! `SmallRng` here is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream rand's `SmallRng`, but every consumer in
//! this workspace treats the generator as an opaque deterministic source,
//! so only reproducibility (same seed → same stream) matters, and that
//! holds by construction.

#![warn(missing_docs)]

/// Low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

/// Types that can be sampled uniformly from a generator (the subset of
/// rand's `Standard` distribution this workspace uses).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Buffers fillable by [`Rng::fill`].
pub trait Fill {
    /// Fills `self` with random data from `rng`.
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.try_fill(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` by expanding it through SplitMix64, as
    /// upstream rand does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic, non-cryptographic generator
    /// (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 0xbb67ae8584caa73b, 1];
            }
            SmallRng { s }
        }
    }
}

/// Commonly imported items.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::Standard;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_covers_tail() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| f64::sample(&mut r)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
