//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a std-only harness covering the API surface its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] with `sample_size` /
//! `throughput` / `bench_function` / `bench_with_input` / `finish`,
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing uses `std::time::Instant` and reports a simple mean per sample
//! batch — adequate for relative comparisons, with none of upstream's
//! statistics machinery.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        let mut g = self.benchmark_group("default");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares the work per iteration so results can be reported as
    /// throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f`, which must drive a [`Bencher`].
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Times `f` with a borrowed input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Ends the group (upstream finalizes reports here; the stand-in
    /// prints per-benchmark as it goes, so this is a no-op kept for API
    /// compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        if b.samples.is_empty() {
            println!("{}/{}: no samples (Bencher::iter never called)", self.name, id);
            return;
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let secs = mean.as_secs_f64();
                let rate = if secs > 0.0 { n as f64 / secs / (1024.0 * 1024.0) } else { f64::INFINITY };
                println!("{}/{}: mean {:?} ({:.1} MiB/s)", self.name, id, mean, rate);
            }
            Some(Throughput::Elements(n)) => {
                let secs = mean.as_secs_f64();
                let rate = if secs > 0.0 { n as f64 / secs } else { f64::INFINITY };
                println!("{}/{}: mean {:?} ({:.0} elem/s)", self.name, id, mean, rate);
            }
            None => println!("{}/{}: mean {:?}", self.name, id, mean),
        }
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times repeated calls of `routine`, one timed sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

/// A benchmark name, optionally parameterized by an input label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Names a benchmark over a specific input.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    /// Names a benchmark by input only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { function: String::new(), parameter: Some(parameter.to_string()) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (func, Some(p)) => write!(f, "{func}/{p}"),
            (func, None) => write!(f, "{func}"),
        }
    }
}

/// Conversion into [`BenchmarkId`] accepted by the `bench_*` methods.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { function: self.to_string(), parameter: None }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { function: self, parameter: None }
    }
}

/// Units of work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// An opaque value the optimizer must assume is used (best-effort without
/// compiler intrinsics).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        let mut calls = 0;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        assert_eq!(calls, 5);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("scenario", "tor").to_string(), "scenario/tor");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
