//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a std-only implementation of the small API surface it actually uses:
//! [`Bytes`] (cheaply cloneable, sliceable, immutable byte buffer),
//! [`BytesMut`] (growable builder), and the [`BufMut`] write trait.
//!
//! Semantics match the real crate for the covered surface; anything not
//! used by this workspace is intentionally absent.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
///
/// Clones share the same backing allocation; [`Bytes::slice`] produces a
/// zero-copy view into it.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice without copying semantics
    /// mattering (the stub copies; behaviour is identical).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        let arc: Arc<[u8]> = Arc::from(data);
        let len = arc.len();
        Bytes { data: arc, start: 0, end: len }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a zero-copy sub-view of `self` for the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The view as a plain byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let arc: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        let len = arc.len();
        Bytes { data: arc, start: 0, end: len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// The contents as a plain byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.buf), f)
    }
}

/// Write-side trait: append big-endian integers and slices to a buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn builder_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(1);
        m.put_u16(0x0203);
        m.put_u32(0x04050607);
        m.put_u64(0x08090a0b0c0d0e0f);
        m.put_slice(b"xy");
        let frozen = m.freeze();
        assert_eq!(
            &frozen[..],
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, b'x', b'y']
        );
    }

    #[test]
    fn equality_and_hash_are_content_based() {
        use std::collections::HashSet;
        let a = Bytes::from(vec![9, 9]);
        let b = Bytes::copy_from_slice(&[9, 9]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
