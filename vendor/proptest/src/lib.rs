//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a std-only property-testing harness covering the API surface its tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! `any::<T>()`, integer-range strategies, `prop::collection::vec`,
//! string-literal regex strategies, tuple strategies, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test name (fully reproducible, no
//! persistence files) and failing inputs are **not shrunk** — the macro
//! panics with the case number so a failure can be replayed exactly.

#![warn(missing_docs)]

pub mod test_runner {
    //! Deterministic case driver used by the [`proptest!`](crate::proptest)
    //! macro expansion.

    /// Number of random cases each property runs.
    pub const CASES: u32 = 64;

    /// Deterministic random source for value generation (xoshiro256++
    /// seeded from a hash of the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Creates the generator for a named test; the same name always
        /// yields the same case sequence.
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the test name, expanded through SplitMix64.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut s = [0u64; 4];
            for slot in &mut s {
                h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *slot = z ^ (z >> 31);
            }
            if s == [0; 4] {
                s[3] = 1;
            }
            TestRng { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, n)` (`n > 0`), via Lemire-style widening
        /// multiply (slight modulo bias is irrelevant for test-case
        /// generation).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform value in `[lo, hi]` inclusive.
        pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo <= hi);
            let span = hi - lo;
            if span == u64::MAX {
                self.next_u64()
            } else {
                lo + self.below(span + 1)
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no shrinking tree: a strategy simply
    /// produces one value per call.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value from `rng`.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.in_range(self.start as u64, (self.end - 1) as u64) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.in_range(*self.start() as u64, *self.end() as u64) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Shift into unsigned space to avoid overflow at the
                    // extremes, then shift back.
                    let lo = (self.start as i64).wrapping_sub(i64::MIN) as u64;
                    let hi = ((self.end - 1) as i64).wrapping_sub(i64::MIN) as u64;
                    (rng.in_range(lo, hi) as i64).wrapping_add(i64::MIN) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($(ref $name,)+) = *self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
        (A, B, C, D, E, F, G, H, I)
        (A, B, C, D, E, F, G, H, I, J)
        (A, B, C, D, E, F, G, H, I, J, K)
        (A, B, C, D, E, F, G, H, I, J, K, L)
    }
}

pub mod string {
    //! `&'static str` regex-subset strategies.
    //!
    //! Upstream proptest treats a string literal as a regular expression
    //! and generates matching strings. This stand-in supports the subset
    //! the workspace's tests use: literal characters, `\`-escapes,
    //! character classes (`[a-z0-9-]`, with ranges and trailing literal
    //! `-`), groups, and the quantifiers `{n}`, `{m,n}`, `*`, `+`, `?`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Node {
        Literal(char),
        /// Flattened set of candidate characters.
        Class(Vec<char>),
        Group(Vec<(Node, u32, u32)>),
    }

    /// Parses `pattern` into a sequence of (node, min, max) repetitions.
    /// Panics on syntax outside the supported subset, which is a bug in
    /// the *test*, not an input-dependent condition.
    fn parse_seq(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, in_group: bool) -> Vec<(Node, u32, u32)> {
        let mut out = Vec::new();
        while let Some(&c) = chars.peek() {
            let node = match c {
                ')' if in_group => break,
                '(' => {
                    chars.next();
                    let inner = parse_seq(chars, true);
                    assert_eq!(chars.next(), Some(')'), "unclosed group in pattern");
                    Node::Group(inner)
                }
                '[' => {
                    chars.next();
                    Node::Class(parse_class(chars))
                }
                '\\' => {
                    chars.next();
                    let esc = chars.next().expect("dangling escape in pattern");
                    Node::Literal(unescape(esc))
                }
                '.' => {
                    chars.next();
                    // Any printable ASCII character.
                    Node::Class((0x20u8..0x7f).map(|b| b as char).collect())
                }
                _ => {
                    chars.next();
                    Node::Literal(c)
                }
            };
            let (min, max) = parse_quantifier(chars);
            out.push((node, min, max));
        }
        out
    }

    fn unescape(esc: char) -> char {
        match esc {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            other => other,
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = chars.next().expect("unclosed character class");
            match c {
                ']' => break,
                '\\' => {
                    let esc = chars.next().expect("dangling escape in class");
                    let lit = unescape(esc);
                    set.push(lit);
                    prev = Some(lit);
                }
                '-' => {
                    // Range if sandwiched between two chars; else literal.
                    match (prev, chars.peek()) {
                        (Some(lo), Some(&hi)) if hi != ']' => {
                            chars.next();
                            assert!(lo <= hi, "inverted class range");
                            // `lo` itself is already in the set.
                            let mut ch = lo;
                            while ch < hi {
                                ch = (ch as u8 + 1) as char;
                                set.push(ch);
                            }
                            prev = None;
                        }
                        _ => {
                            set.push('-');
                            prev = Some('-');
                        }
                    }
                }
                other => {
                    set.push(other);
                    prev = Some(other);
                }
            }
        }
        assert!(!set.is_empty(), "empty character class");
        set
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (u32, u32) {
        match chars.peek() {
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('{') => {
                chars.next();
                let mut min_s = String::new();
                let mut max_s = String::new();
                let mut saw_comma = false;
                loop {
                    match chars.next().expect("unclosed quantifier") {
                        '}' => break,
                        ',' => saw_comma = true,
                        d if d.is_ascii_digit() => {
                            if saw_comma {
                                max_s.push(d);
                            } else {
                                min_s.push(d);
                            }
                        }
                        other => panic!("bad quantifier char {other:?}"),
                    }
                }
                let min: u32 = min_s.parse().expect("quantifier min");
                let max: u32 = if saw_comma {
                    max_s.parse().expect("quantifier max")
                } else {
                    min
                };
                assert!(min <= max, "inverted quantifier");
                (min, max)
            }
            _ => (1, 1),
        }
    }

    fn gen_seq(seq: &[(Node, u32, u32)], rng: &mut TestRng, out: &mut String) {
        for (node, min, max) in seq {
            let reps = rng.in_range(*min as u64, *max as u64) as u32;
            for _ in 0..reps {
                match node {
                    Node::Literal(c) => out.push(*c),
                    Node::Class(set) => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Node::Group(inner) => gen_seq(inner, rng, out),
                }
            }
        }
    }

    impl Strategy for &'static str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            let mut chars = self.chars().peekable();
            let seq = parse_seq(&mut chars, false);
            let mut out = String::new();
            gen_seq(&seq, rng, &mut out);
            out
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()`: the default strategy for a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_uint!(u8, u16, u32, u64, usize);

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text debuggable.
            (0x20 + rng.below(0x5f) as u8) as char
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number of elements a [`vec`] strategy may generate.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.in_range(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Commonly imported items, mirroring upstream's `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced access to strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// Each `fn name(params) { body }` item becomes a `#[test]`-style function
/// running [`test_runner::CASES`] deterministic cases. Parameters are
/// either `pattern in strategy` or `name: Type` (shorthand for
/// `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __pt_rng =
                $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __pt_case in 0..$crate::test_runner::CASES {
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $crate::__pt_bind!(__pt_rng, $($params)*);
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (deterministic; rerun reproduces it)",
                        __pt_case + 1,
                        $crate::test_runner::CASES,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// Binds one `proptest!` parameter list entry after another.
#[doc(hidden)]
#[macro_export]
macro_rules! __pt_bind {
    ($rng:ident) => {};
    ($rng:ident,) => {};
    ($rng:ident, $p:pat in $s:expr) => {
        let $p = $crate::strategy::Strategy::new_value(&$s, &mut $rng);
    };
    ($rng:ident, $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::strategy::Strategy::new_value(&$s, &mut $rng);
        $crate::__pt_bind!($rng, $($rest)*);
    };
    ($rng:ident, $p:ident : $t:ty) => {
        let $p: $t = $crate::strategy::Strategy::new_value(
            &$crate::arbitrary::any::<$t>(),
            &mut $rng,
        );
    };
    ($rng:ident, $p:ident : $t:ty, $($rest:tt)*) => {
        let $p: $t = $crate::strategy::Strategy::new_value(
            &$crate::arbitrary::any::<$t>(),
            &mut $rng,
        );
        $crate::__pt_bind!($rng, $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its precondition does not hold.
///
/// Upstream rejects and regenerates; this stand-in simply returns from
/// the case body, which is equivalent for the properties in this
/// workspace.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_domains() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let pat = "[a-z][a-z0-9-]{0,10}(\\.[a-z][a-z0-9]{1,8}){1,3}";
        let mut rng = TestRng::for_test("regex_subset");
        for _ in 0..200 {
            let s = pat.new_value(&mut rng);
            let labels: Vec<&str> = s.split('.').collect();
            assert!(labels.len() >= 2 && labels.len() <= 4, "{s}");
            assert!(labels[0].len() <= 11 && !labels[0].is_empty(), "{s}");
            for label in &labels[1..] {
                assert!(label.len() >= 2 && label.len() <= 9, "{s}");
            }
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '.'),
                "{s}"
            );
        }
    }

    #[test]
    fn determinism_per_test_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(any::<u8>(), 0..16);
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        for _ in 0..50 {
            assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
        }
    }

    proptest! {
        #[test]
        fn macro_binds_both_param_forms(xs in prop::collection::vec(any::<u8>(), 3), seed: u64, pair in (0u8..4, 1usize..9)) {
            prop_assert_eq!(xs.len(), 3);
            let _ = seed;
            prop_assume!(pair.1 != 1000); // always true; exercises the macro
            prop_assert!(pair.0 < 4 && pair.1 >= 1 && pair.1 < 9);
        }
    }
}
