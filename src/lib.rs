//! # scholarcloud-repro
//!
//! A full reproduction of *"Accessing Google Scholar under Extreme
//! Internet Censorship: A Legal Avenue"* (Middleware 2017) as a Rust
//! workspace: a deterministic network simulator, a simulated Great
//! Firewall, from-scratch implementations of every studied circumvention
//! middleware (native VPN, OpenVPN, Tor+meek, Shadowsocks), the
//! ScholarCloud split-proxy system itself, and a measurement harness that
//! regenerates every figure in the paper's evaluation.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results. Start with the examples:
//!
//! ```bash
//! cargo run --example quickstart
//! cargo run --release --example paper_figures
//! cargo run --example scholarcloud_ops
//! cargo run --example censorship_lab
//! ```

pub use sc_core as scholarcloud;
pub use sc_crypto as crypto;
pub use sc_dns as dns;
pub use sc_gfw as gfw;
pub use sc_metrics as metrics;
pub use sc_netproto as netproto;
pub use sc_regulation as regulation;
pub use sc_simnet as simnet;
pub use sc_tunnels as tunnels;
pub use sc_web as web;
