//! Property-based tests on the GFW's classifier: it must never panic on
//! arbitrary traffic, and its verdicts must respect structural guarantees.

use bytes::Bytes;
use proptest::prelude::*;
use sc_gfw::{FlowTable, GfwConfig, TrafficClass};
use sc_simnet::addr::{Addr, SocketAddr};
use sc_simnet::packet::{Packet, TcpFlags, TcpSegmentBody};
use sc_simnet::time::SimTime;

fn tcp_packet(dst_port: u16, payload: Vec<u8>) -> Packet {
    Packet::tcp(
        SocketAddr::new(Addr::new(10, 0, 0, 1), 41_000),
        SocketAddr::new(Addr::new(99, 0, 0, 1), dst_port),
        TcpSegmentBody {
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 0,
            payload: Bytes::from(payload),
        },
    )
}

proptest! {
    /// Arbitrary bytes never panic the classifier, and every packet gets
    /// *some* class.
    #[test]
    fn classifier_total(payloads in prop::collection::vec(
                            prop::collection::vec(any::<u8>(), 0..600), 1..6),
                        port in 1u16..65535) {
        let cfg = GfwConfig::china_2017((Addr::new(99, 2, 0, 0), 16));
        let mut table = FlowTable::new();
        for (i, p) in payloads.into_iter().enumerate() {
            let rec = table.observe(&tcp_packet(port, p), SimTime::from_micros(i as u64 * 1000), &cfg);
            prop_assert!(rec.is_some());
        }
    }

    /// A plaintext HTTP request is always classified Http, never Suspect —
    /// the structural guarantee ScholarCloud's cover preamble exploits.
    #[test]
    fn http_prefix_never_suspect(body in prop::collection::vec(any::<u8>(), 0..1500)) {
        let cfg = GfwConfig::default();
        let mut table = FlowTable::new();
        let mut payload = b"POST /upload HTTP/1.1\r\nHost: cdn.example\r\n\r\n".to_vec();
        payload.extend(body);
        let pkt = tcp_packet(8443, payload);
        let rec = table.observe(&pkt, SimTime::ZERO, &cfg).unwrap();
        prop_assert_eq!(rec.class, TrafficClass::Http);
        // More high-entropy traffic on the same flow must not flip it.
        let more = tcp_packet(8443, (0..900u16).map(|i| (i.wrapping_mul(251) >> 3) as u8).collect());
        let rec = table.observe(&more, SimTime::from_micros(1000), &cfg).unwrap();
        prop_assert_eq!(rec.class, TrafficClass::Http);
    }

    /// Suspect classification is sticky until confirmation, and confirming
    /// the server upgrades the class.
    #[test]
    fn confirm_upgrades(seed: u64) {
        use sc_crypto::aes::{Aes, KeySize};
        use sc_crypto::modes::Ctr;
        let cfg = GfwConfig::default();
        let mut table = FlowTable::new();
        let mut data = vec![0u8; 700];
        let key = [(seed % 251) as u8 + 1; 32];
        Ctr::new(Aes::new(KeySize::Aes256, &key).unwrap(), [1; 16]).apply(&mut data);
        let pkt = tcp_packet(8388, data);
        let class = table.observe(&pkt, SimTime::ZERO, &cfg).unwrap().class;
        prop_assert_eq!(class, TrafficClass::Suspect);
        table.confirm_server(SocketAddr::new(Addr::new(99, 0, 0, 1), 8388));
        let key2 = sc_gfw::FlowKey::from_packet(&pkt).unwrap();
        prop_assert_eq!(table.get(&key2).unwrap().class, TrafficClass::ShadowsocksConfirmed);
    }
}
