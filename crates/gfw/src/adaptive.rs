//! The reactive censor: suspicion scoring, fingerprint learning, probing
//! campaigns, and spatiotemporal enforcement inconsistency.
//!
//! The static GFW of [`crate::engine`] applies a fixed rule set. Real
//! censors *react*: they accumulate per-destination evidence from DPI
//! observations, learn a circumvention scheme's wire fingerprint after
//! enough sightings and push it as a blockable signature, fire
//! active-probing campaigns at suspicious endpoints (replaying captured
//! preambles, not just garbage), and enforce inconsistently across
//! regions and time — some paths censor while others drift open.
//!
//! Everything here is driven from the classify path in
//! [`GfwMiddlebox::process`](crate::engine::GfwMiddlebox) and is a
//! strict no-op unless [`GfwConfig::adaptive`](crate::config::GfwConfig)
//! is set: with the knob off there are zero extra RNG draws, zero
//! events, and zero behavioural changes, so pre-adaptive traces stay
//! byte-identical (pinned by `tests/adaptive_props.rs`).
//!
//! Randomness (probe-wave jitter, region drift rolls) arrives as a
//! `draw()` closure fed from the sim's seeded RNG, exactly like
//! `sc-core`'s elastic autoscaler — the module itself is a pure state
//! machine, which is what makes the proptests possible.

use std::collections::{HashMap, HashSet, VecDeque};

use sc_simnet::addr::SocketAddr;
use sc_simnet::time::{SimDuration, SimTime};

use crate::classify::FlowRecord;
use crate::engine::GfwCounters;

/// Tuning for the reactive censor. All thresholds are integers so the
/// suspicion score is exactly reproducible and monotone in evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Flows bearing the same cover fingerprint that must be observed
    /// before the fingerprint is promoted to a blockable signature
    /// (the classifier *never* fires below this).
    pub learn_after_flows: u32,
    /// Maximum bytes of a promoted signature.
    pub signature_len: usize,
    /// Rule churn: a learned signature expires this long after it was
    /// last re-confirmed by a matching flow. A defense that rotates
    /// schemes starves the refresh and eventually un-learns the rule; a
    /// defense that keeps using a learned cover refreshes it forever.
    pub signature_ttl: SimDuration,
    /// Suspicion score at which a probing campaign is launched against
    /// a server.
    pub suspicion_threshold: u32,
    /// Score points per distinct client seen connecting to the same
    /// server (destination fan-in).
    pub fanin_weight: u32,
    /// Score points per machine-like reconnect (a new flow to the same
    /// server within [`cadence_window`](Self::cadence_window)).
    pub cadence_weight: u32,
    /// Score points per flow whose preamble looks odd (printable
    /// HTTP-shaped head fronting a binary body, or a headerless
    /// high-entropy stream).
    pub preamble_weight: u32,
    /// Window for the connection-cadence detector.
    pub cadence_window: SimDuration,
    /// Probe waves per campaign (hard bound on probes per server).
    pub campaign_waves: u32,
    /// Base gap between campaign waves.
    pub wave_gap: SimDuration,
    /// Seeded jitter added to each wave gap (uniform in `[0, jitter)`).
    pub wave_jitter: SimDuration,
    /// Bytes of a suspect flow's captured preamble replayed by campaign
    /// probes (`0` = garbage-only probes).
    pub replay_capture: usize,
    /// Number of enforcement regions (paths through the border). Flows
    /// hash to a region by client address.
    pub regions: u32,
    /// Probability that a region drifts *open* (stops enforcing
    /// adaptive verdicts) when its drift period rolls over.
    pub leniency: f64,
    /// How often each region re-rolls its enforcement state.
    pub drift_period: SimDuration,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            learn_after_flows: 6,
            signature_len: 24,
            signature_ttl: SimDuration::from_secs(45),
            suspicion_threshold: 6,
            fanin_weight: 2,
            cadence_weight: 1,
            preamble_weight: 2,
            cadence_window: SimDuration::from_secs(30),
            campaign_waves: 3,
            wave_gap: SimDuration::from_secs(5),
            wave_jitter: SimDuration::from_secs(2),
            replay_capture: 256,
            regions: 1,
            leniency: 0.0,
            drift_period: SimDuration::from_secs(60),
        }
    }
}

/// Evidence accumulated about one destination server.
#[derive(Debug, Default)]
pub struct ServerEvidence {
    /// Distinct client endpoints seen connecting here.
    pub clients: HashSet<SocketAddr>,
    /// Machine-like reconnects (new flow within the cadence window).
    pub cadence_hits: u32,
    /// Flows whose preamble looked odd.
    pub odd_flows: u32,
    /// When the most recent flow was first noted.
    pub last_flow: Option<SimTime>,
    campaign: Option<Campaign>,
}

#[derive(Debug)]
struct Campaign {
    waves_left: u32,
    next_wave: SimTime,
}

#[derive(Debug)]
struct LearnedSig {
    sig: Vec<u8>,
    expires: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct RegionState {
    enforcing: bool,
    until: SimTime,
}

/// What [`AdaptiveState::note_fingerprint`] concluded about one flow's
/// cover fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FingerprintOutcome {
    /// Nothing fingerprintable about this flow (or below threshold).
    None,
    /// The fingerprint crossed `learn_after_flows`: promote this byte
    /// signature to the blockable set.
    Learned(Vec<u8>),
    /// The fingerprint matches an already-learned signature; its TTL
    /// was refreshed.
    Refreshed,
}

/// The reactive censor's state, owned by
/// [`GfwState`](crate::engine::GfwState) and fed from the classify
/// path. Pure state machine: all methods take time and randomness as
/// arguments.
#[derive(Debug, Default)]
pub struct AdaptiveState {
    servers: HashMap<SocketAddr, ServerEvidence>,
    fingerprints: HashMap<Vec<u8>, u32>,
    learned: Vec<LearnedSig>,
    regions: Vec<RegionState>,
    next_expiry: Option<SimTime>,
    /// Campaigns launched (first wave enqueued).
    pub campaigns_launched: u64,
    /// Signatures promoted to the blockable set.
    pub signatures_learned: u64,
    /// Signatures expired out of the blockable set (rule churn).
    pub signatures_expired: u64,
    /// When the censor first learned a signature (the arms-race
    /// time-to-detection metric; `None` until it happens).
    pub first_detection: Option<SimTime>,
}

/// The cover fingerprint of a flow's early bytes: the request line up
/// to the protocol version (`"POST /api/sync"`), the stable prefix a
/// rule writer would extract. `None` for non-HTTP-shaped flows.
pub fn cover_fingerprint(early: &[u8], max_len: usize) -> Option<Vec<u8>> {
    if !(early.starts_with(b"POST ") || early.starts_with(b"GET ") || early.starts_with(b"PUT ")) {
        return None;
    }
    let line_end = early.iter().position(|&b| b == b'\r')?;
    let line = &early[..line_end];
    let path_end = line.windows(6).position(|w| w == b" HTTP/")?;
    let sig = &line[..path_end];
    if sig.len() < 6 {
        return None;
    }
    Some(sig[..sig.len().min(max_len)].to_vec())
}

/// Whether a flow's captured preamble looks odd to a censor analyst: an
/// HTTP-shaped printable head fronting a binary (high-entropy) body, or
/// a headerless high-entropy stream. Innocent page fetches (printable
/// throughout) and real uploads of text both pass.
pub fn odd_preamble(early: &[u8]) -> bool {
    if early.len() < 64 {
        return false;
    }
    let Some(head_end) = early.windows(4).position(|w| w == b"\r\n\r\n") else {
        // Headerless: the entropy heuristic in classify already covers
        // pure-random streams; treat anything non-HTTP-shaped as odd
        // only when it is high-entropy.
        let stats = sc_crypto::entropy::PayloadStats::analyze(early);
        return stats.looks_like_random();
    };
    let body = &early[head_end + 4..];
    if body.len() < 48 {
        return false;
    }
    let head = &early[..head_end];
    let head_printable = head
        .iter()
        .filter(|&&b| (0x20..0x7f).contains(&b) || b == b'\r' || b == b'\n')
        .count() as f64
        / head.len() as f64;
    let stats = sc_crypto::entropy::PayloadStats::analyze(body);
    head_printable > 0.95 && stats.printable < 0.6
}

/// Whether a flow's captured early bytes are settled enough for
/// [`odd_preamble`] to have an opinion: a complete HTTP head with
/// enough body to judge, a headerless stream long enough for the
/// entropy check, or a full capture window. Evidence accrual waits for
/// this so a cover flow is judged on head *and* body, not just the
/// HTTP-shaped head its first packet carries.
pub fn evidence_ready(early: &[u8]) -> bool {
    if early.len() >= crate::classify::CAPTURE_LIMIT {
        return true;
    }
    match early.windows(4).position(|w| w == b"\r\n\r\n") {
        Some(head_end) => early.len() - head_end - 4 >= 48,
        None => early.len() >= 64,
    }
}

impl AdaptiveState {
    /// The current suspicion score for a server (0 if never seen).
    /// Monotone in evidence: every call to [`note_flow`](Self::note_flow)
    /// can only raise it.
    pub fn score(&self, cfg: &AdaptiveConfig, server: &SocketAddr) -> u32 {
        let Some(ev) = self.servers.get(server) else { return 0 };
        cfg.fanin_weight.saturating_mul(ev.clients.len() as u32)
            .saturating_add(cfg.cadence_weight.saturating_mul(ev.cadence_hits))
            .saturating_add(cfg.preamble_weight.saturating_mul(ev.odd_flows))
    }

    /// Accrues one flow's evidence against its server and returns the
    /// updated suspicion score. `odd` is the preamble-oddity verdict
    /// (see [`odd_preamble`]).
    pub fn note_flow(
        &mut self,
        cfg: &AdaptiveConfig,
        server: SocketAddr,
        client: SocketAddr,
        odd: bool,
        now: SimTime,
    ) -> u32 {
        let ev = self.servers.entry(server).or_default();
        ev.clients.insert(client);
        if let Some(last) = ev.last_flow {
            if now - last <= cfg.cadence_window {
                ev.cadence_hits = ev.cadence_hits.saturating_add(1);
            }
        }
        ev.last_flow = Some(now);
        if odd {
            ev.odd_flows = ev.odd_flows.saturating_add(1);
        }
        self.score(cfg, &server)
    }

    /// Counts one flow against its cover fingerprint. Promotion fires
    /// exactly when the count reaches `learn_after_flows` — never below
    /// (the proptest invariant) — and matching an already-learned
    /// signature refreshes its TTL instead.
    pub fn note_fingerprint(
        &mut self,
        cfg: &AdaptiveConfig,
        early: &[u8],
        now: SimTime,
    ) -> FingerprintOutcome {
        let Some(sig) = cover_fingerprint(early, cfg.signature_len) else {
            return FingerprintOutcome::None;
        };
        if let Some(l) = self.learned.iter_mut().find(|l| l.sig == sig) {
            l.expires = now + cfg.signature_ttl;
            let expires = l.expires;
            self.bump_expiry(expires);
            return FingerprintOutcome::Refreshed;
        }
        let count = self.fingerprints.entry(sig.clone()).or_insert(0);
        *count += 1;
        if *count < cfg.learn_after_flows.max(1) {
            return FingerprintOutcome::None;
        }
        let expires = now + cfg.signature_ttl;
        self.learned.push(LearnedSig { sig: sig.clone(), expires });
        self.bump_expiry(expires);
        self.signatures_learned += 1;
        if self.first_detection.is_none() {
            self.first_detection = Some(now);
        }
        FingerprintOutcome::Learned(sig)
    }

    fn bump_expiry(&mut self, candidate: SimTime) {
        match self.next_expiry {
            Some(t) if t <= candidate => {}
            _ => self.next_expiry = Some(candidate),
        }
    }

    /// Sweeps expired signatures (rule churn) and returns the expired
    /// byte signatures so the caller can retract them from the
    /// blockable set. Cheap unless an expiry is actually due.
    pub fn expire_signatures(&mut self, now: SimTime) -> Vec<Vec<u8>> {
        match self.next_expiry {
            Some(t) if now >= t => {}
            _ => return Vec::new(),
        }
        let mut expired = Vec::new();
        self.learned.retain(|l| {
            if l.expires <= now {
                expired.push(l.sig.clone());
                false
            } else {
                true
            }
        });
        // A re-learn must take another N flows from scratch.
        for sig in &expired {
            self.fingerprints.remove(sig);
        }
        self.signatures_expired += expired.len() as u64;
        self.next_expiry = self.learned.iter().map(|l| l.expires).min();
        expired
    }

    /// Starts a probing campaign against a server if none has run yet.
    /// Returns whether a new campaign began.
    pub fn start_campaign(&mut self, cfg: &AdaptiveConfig, server: SocketAddr, now: SimTime) -> bool {
        let ev = self.servers.entry(server).or_default();
        if ev.campaign.is_some() || cfg.campaign_waves == 0 {
            return false;
        }
        ev.campaign = Some(Campaign { waves_left: cfg.campaign_waves, next_wave: now });
        self.campaigns_launched += 1;
        true
    }

    /// Steps a server's campaign: if a wave is due, consumes it and
    /// returns the 1-based wave number (the caller enqueues the probe).
    /// Total waves per server are hard-bounded by
    /// [`campaign_waves`](AdaptiveConfig::campaign_waves) — the
    /// proptest invariant. `draw` feeds the seeded wave jitter.
    pub fn step_campaign(
        &mut self,
        cfg: &AdaptiveConfig,
        server: &SocketAddr,
        now: SimTime,
        draw: &mut dyn FnMut() -> f64,
    ) -> Option<u32> {
        let ev = self.servers.get_mut(server)?;
        let c = ev.campaign.as_mut()?;
        if c.waves_left == 0 || now < c.next_wave {
            return None;
        }
        c.waves_left -= 1;
        let wave = cfg.campaign_waves - c.waves_left;
        let jitter = (cfg.wave_jitter.as_micros() as f64 * draw()) as u64;
        c.next_wave = now + cfg.wave_gap + SimDuration::from_micros(jitter);
        Some(wave)
    }

    /// Whether this server's campaign has exhausted all its waves.
    pub fn campaign_exhausted(&self, server: &SocketAddr) -> bool {
        self.servers
            .get(server)
            .and_then(|ev| ev.campaign.as_ref())
            .is_some_and(|c| c.waves_left == 0)
    }

    /// Whether enforcement is currently active on the region this
    /// client's path hashes to. Regions re-roll their state every
    /// [`drift_period`](AdaptiveConfig::drift_period): with probability
    /// [`leniency`](AdaptiveConfig::leniency) a region drifts open and
    /// adaptive verdicts on its paths are skipped until the next roll.
    /// Returns `(enforcing, rolled)` — `rolled` is `Some(region)` when
    /// this call re-rolled the region (the caller emits the event).
    pub fn region_enforcing(
        &mut self,
        cfg: &AdaptiveConfig,
        client: SocketAddr,
        now: SimTime,
        draw: &mut dyn FnMut() -> f64,
    ) -> (bool, Option<u32>) {
        let n = cfg.regions.max(1) as usize;
        if self.regions.len() != n {
            self.regions =
                vec![RegionState { enforcing: true, until: SimTime::ZERO }; n];
        }
        let region = (client.addr.as_u32() as usize) % n;
        let st = &mut self.regions[region];
        let mut rolled = None;
        if now >= st.until {
            st.enforcing = cfg.leniency <= 0.0 || draw() >= cfg.leniency;
            st.until = now + cfg.drift_period;
            rolled = Some(region as u32);
        }
        (st.enforcing, rolled)
    }

    /// Evidence snapshot for a server (tests and diagnostics).
    pub fn evidence(&self, server: &SocketAddr) -> Option<&ServerEvidence> {
        self.servers.get(server)
    }

    /// Currently learned (unexpired) signatures.
    pub fn learned_signatures(&self) -> Vec<&[u8]> {
        self.learned.iter().map(|l| l.sig.as_slice()).collect()
    }
}

fn emit_adaptive(now: SimTime, name: &'static str, f: impl FnOnce(sc_obs::Event) -> sc_obs::Event) {
    if sc_obs::is_enabled(sc_obs::Level::Info, "gfw") {
        let ev = sc_obs::Event::new(
            now.as_micros(),
            sc_obs::Level::Info,
            "gfw",
            "adaptive",
            name,
        );
        sc_obs::emit(f(ev));
    }
}

/// The engine's per-packet hook: accrues evidence on the first data
/// observation of each flow, learns/refreshes/expires signatures,
/// and schedules campaign probe waves. Called only when
/// `GfwConfig::adaptive` is set; the split borrows mirror
/// [`GfwState`](crate::engine::GfwState)'s fields.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_flow(
    adaptive: &mut AdaptiveState,
    cfg: &AdaptiveConfig,
    learned_signatures: &mut Vec<Vec<u8>>,
    probe_queue: &mut VecDeque<SocketAddr>,
    replay_preambles: &mut HashMap<SocketAddr, Vec<u8>>,
    counters: &mut GfwCounters,
    rec: &mut FlowRecord,
    now: SimTime,
    draw: &mut dyn FnMut() -> f64,
) {
    // Rule churn first so a dead signature stops matching before new
    // evidence lands.
    for sig in adaptive.expire_signatures(now) {
        learned_signatures.retain(|s| *s != sig);
        sc_obs::counter_add("gfw.adaptive_signatures_expired", 1);
        emit_adaptive(now, "signature_expired", |ev| {
            ev.field("signature", String::from_utf8_lossy(&sig).into_owned())
        });
    }

    // Evidence accrues once per flow, as soon as the capture is settled
    // enough for the preamble heuristic to have an opinion (a tunnel's
    // first packet often carries the HTTP head with only a sliver of
    // body; judging it then would let every cover flow pass as plain
    // HTTP forever).
    if !rec.adaptive_noted && evidence_ready(&rec.early_bytes) {
        rec.adaptive_noted = true;
        let odd = odd_preamble(&rec.early_bytes);
        let score = adaptive.note_flow(cfg, rec.server, rec.client, odd, now);
        if odd {
            match adaptive.note_fingerprint(cfg, &rec.early_bytes, now) {
                FingerprintOutcome::Learned(sig) => {
                    if !learned_signatures.contains(&sig) {
                        learned_signatures.push(sig.clone());
                    }
                    counters.signatures_learned += 1;
                    sc_obs::counter_add("gfw.adaptive_signatures_learned", 1);
                    emit_adaptive(now, "signature_learned", |ev| {
                        ev.field("signature", String::from_utf8_lossy(&sig).into_owned())
                            .field("flows", cfg.learn_after_flows as u64)
                            .field("server", rec.server.to_string())
                    });
                }
                FingerprintOutcome::Refreshed | FingerprintOutcome::None => {}
            }
        }
        if odd && score >= cfg.suspicion_threshold {
            if adaptive.start_campaign(cfg, rec.server, now) {
                counters.campaigns_launched += 1;
                sc_obs::counter_add("gfw.adaptive_campaigns", 1);
                if cfg.replay_capture > 0 {
                    let take = rec.early_bytes.len().min(cfg.replay_capture);
                    replay_preambles.insert(rec.server, rec.early_bytes[..take].to_vec());
                }
                emit_adaptive(now, "campaign", |ev| {
                    ev.field("server", rec.server.to_string()).field("score", score as u64)
                });
            }
        }
    }

    // Campaign waves are time-driven; every packet of a flow to the
    // server gives the scheduler a chance to fire the next one.
    if let Some(wave) = adaptive.step_campaign(cfg, &rec.server, now, draw) {
        probe_queue.push_back(rec.server);
        sc_obs::counter_add("gfw.adaptive_probe_waves", 1);
        emit_adaptive(now, "probe_wave", |ev| {
            ev.field("server", rec.server.to_string()).field("wave", wave as u64)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_simnet::addr::Addr;

    fn sa(last: u8, port: u16) -> SocketAddr {
        SocketAddr::new(Addr::new(10, 0, 0, last), port)
    }

    fn preamble(path: &str) -> Vec<u8> {
        let mut p = format!(
            "POST {path} HTTP/1.1\r\nHost: cdn.example\r\nContent-Type: application/octet-stream\r\n\r\n"
        )
        .into_bytes();
        p.extend((0..120u32).map(|i| (i.wrapping_mul(167) ^ 0xa5) as u8));
        p
    }

    #[test]
    fn fingerprint_is_request_line_prefix() {
        let p = preamble("/api/sync");
        assert_eq!(cover_fingerprint(&p, 24).unwrap(), b"POST /api/sync".to_vec());
        assert_eq!(cover_fingerprint(b"\x16\x03\x03junk", 24), None);
    }

    #[test]
    fn odd_preamble_flags_binary_body_behind_printable_head() {
        assert!(odd_preamble(&preamble("/api/sync")));
        let mut plain = b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n".to_vec();
        plain.extend_from_slice(&[b'a'; 200]);
        assert!(!odd_preamble(&plain));
    }

    #[test]
    fn score_accumulates_all_evidence_kinds() {
        let cfg = AdaptiveConfig::default();
        let mut st = AdaptiveState::default();
        let server = sa(99, 8443);
        let s1 = st.note_flow(&cfg, server, sa(1, 5000), true, SimTime::ZERO);
        assert_eq!(s1, cfg.fanin_weight + cfg.preamble_weight);
        // Second client within the cadence window: fan-in + cadence.
        let s2 = st.note_flow(
            &cfg,
            server,
            sa(2, 5000),
            false,
            SimTime::from_micros(1_000_000),
        );
        assert_eq!(s2, 2 * cfg.fanin_weight + cfg.cadence_weight + cfg.preamble_weight);
        assert!(s2 > s1);
    }

    #[test]
    fn signature_learns_exactly_at_n_and_expires() {
        let cfg = AdaptiveConfig { learn_after_flows: 3, ..AdaptiveConfig::default() };
        let mut st = AdaptiveState::default();
        let p = preamble("/api/sync");
        let t = SimTime::ZERO;
        assert_eq!(st.note_fingerprint(&cfg, &p, t), FingerprintOutcome::None);
        assert_eq!(st.note_fingerprint(&cfg, &p, t), FingerprintOutcome::None);
        let FingerprintOutcome::Learned(sig) = st.note_fingerprint(&cfg, &p, t) else {
            panic!("third flow must learn");
        };
        assert_eq!(sig, b"POST /api/sync".to_vec());
        assert_eq!(st.first_detection, Some(t));
        // Matching again refreshes rather than re-learns.
        assert_eq!(st.note_fingerprint(&cfg, &p, t), FingerprintOutcome::Refreshed);
        // Past the TTL with no refresh the signature churns out…
        let later = t + cfg.signature_ttl + SimDuration::from_secs(1);
        assert_eq!(st.expire_signatures(later), vec![sig]);
        // …and re-learning takes another N flows from scratch.
        assert_eq!(st.note_fingerprint(&cfg, &p, later), FingerprintOutcome::None);
    }

    #[test]
    fn campaign_waves_are_bounded() {
        let cfg = AdaptiveConfig { campaign_waves: 2, ..AdaptiveConfig::default() };
        let mut st = AdaptiveState::default();
        let server = sa(99, 8443);
        assert!(st.start_campaign(&cfg, server, SimTime::ZERO));
        assert!(!st.start_campaign(&cfg, server, SimTime::ZERO), "one campaign per server");
        let mut draw = || 0.5;
        let mut waves = 0;
        for i in 0..1_000u64 {
            if st.step_campaign(&cfg, &server, SimTime::from_micros(i * 10_000_000), &mut draw).is_some()
            {
                waves += 1;
            }
        }
        assert_eq!(waves, 2);
        assert!(st.campaign_exhausted(&server));
    }

    #[test]
    fn regions_drift_open_with_leniency() {
        let cfg = AdaptiveConfig {
            regions: 4,
            leniency: 1.0,
            drift_period: SimDuration::from_secs(10),
            ..AdaptiveConfig::default()
        };
        let mut st = AdaptiveState::default();
        let mut draw = || 0.0; // always below leniency: drift open
        let (enforcing, rolled) = st.region_enforcing(&cfg, sa(1, 5000), SimTime::ZERO, &mut draw);
        assert!(!enforcing);
        assert!(rolled.is_some());
        // Within the period the state is sticky and no re-roll happens.
        let (e2, r2) =
            st.region_enforcing(&cfg, sa(1, 5000), SimTime::from_micros(1), &mut draw);
        assert!(!e2);
        assert!(r2.is_none());
        // leniency 0 always enforces without drawing.
        let cfg0 = AdaptiveConfig { leniency: 0.0, ..cfg };
        let mut st0 = AdaptiveState::default();
        let mut boom = || -> f64 { panic!("leniency 0 must not draw") };
        let (e0, _) = st0.region_enforcing(&cfg0, sa(1, 5000), SimTime::ZERO, &mut boom);
        assert!(e0);
    }
}
