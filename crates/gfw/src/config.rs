//! GFW configuration: blocklists and per-class interference policies.

use sc_simnet::addr::Addr;

use crate::classify::TrafficClass;

/// How the GFW interferes with a classified flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Policy {
    /// Probability that each packet of the flow is silently dropped
    /// (throttling — what the paper measures as elevated PLR).
    pub drop_prob: f64,
    /// Inject a spoofed RST at the moment of classification (connection
    /// reset, the classic keyword-filtering response).
    pub rst: bool,
    /// Drop every packet (hard IP-style block).
    pub block: bool,
}

impl Policy {
    /// No interference.
    pub const ALLOW: Policy = Policy { drop_prob: 0.0, rst: false, block: false };

    /// Hard block.
    pub const BLOCK: Policy = Policy { drop_prob: 0.0, rst: false, block: true };

    /// Reset on detection.
    pub const RESET: Policy = Policy { drop_prob: 0.0, rst: true, block: false };

    /// Throttle with the given per-packet drop probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn throttle(p: f64) -> Policy {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        Policy { drop_prob: p, rst: false, block: false }
    }

    /// Whether this policy does anything at all.
    pub fn interferes(&self) -> bool {
        self.block || self.rst || self.drop_prob > 0.0
    }
}

/// Per-class interference policies, calibrated to the paper's Figure 5c:
/// Tor/meek 4.4% PLR, Shadowsocks 0.77%, VPNs ≈ baseline (0.2%), blinded
/// ScholarCloud ≈ baseline (0.22%).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassPolicies {
    /// Confirmed meek/Tor flows.
    pub meek: Policy,
    /// Confirmed Shadowsocks(-like) proxy flows.
    pub shadowsocks: Policy,
    /// PPTP / L2TP flows (registered VPNs are legal as of 2015, §1 fn. 2).
    pub vpn: Policy,
    /// OpenVPN flows.
    pub openvpn: Policy,
    /// Flows matching a learned byte signature (rule updates).
    pub learned_signature: Policy,
    /// High-entropy flows suspected but not yet confirmed by probing.
    pub suspect: Policy,
}

impl Default for ClassPolicies {
    fn default() -> Self {
        ClassPolicies {
            // Calibration targets (paper Fig. 5c): these GFW-added drop
            // probabilities stack on ~0.2% baseline border loss.
            meek: Policy::throttle(0.085),
            shadowsocks: Policy::throttle(0.011),
            vpn: Policy::ALLOW,
            openvpn: Policy::ALLOW,
            learned_signature: Policy::throttle(0.03),
            suspect: Policy::ALLOW, // interference only after confirmation
        }
    }
}

/// Full GFW configuration.
#[derive(Debug, Clone)]
pub struct GfwConfig {
    /// Blocked destination prefixes (e.g. Google's ranges).
    pub ip_blacklist: Vec<(Addr, u8)>,
    /// Domain suffixes whose DNS queries are poisoned.
    pub dns_blocklist: Vec<String>,
    /// TLS SNI suffixes that trigger connection reset.
    pub sni_blocklist: Vec<String>,
    /// Keywords in plaintext HTTP that trigger connection reset.
    pub http_keywords: Vec<String>,
    /// The bogus address injected into poisoned DNS answers.
    pub poison_addr: Addr,
    /// Per-class interference.
    pub policies: ClassPolicies,
    /// Whether the active prober confirms suspects (can be disabled for
    /// ablations).
    pub active_probing: bool,
    /// Byte signatures learned from rule updates; flows whose early bytes
    /// contain one are treated as proxies.
    pub learned_signatures: Vec<Vec<u8>>,
    /// The reactive censor (suspicion scoring, fingerprint learning,
    /// probing campaigns, regional drift). `None` — the default, and
    /// what [`china_2017`](Self::china_2017) ships — keeps the GFW the
    /// static rule set every pre-adaptive trace was pinned against.
    pub adaptive: Option<crate::adaptive::AdaptiveConfig>,
}

impl Default for GfwConfig {
    fn default() -> Self {
        GfwConfig {
            ip_blacklist: Vec::new(),
            dns_blocklist: Vec::new(),
            sni_blocklist: Vec::new(),
            http_keywords: Vec::new(),
            poison_addr: Addr::new(127, 66, 66, 66),
            policies: ClassPolicies::default(),
            active_probing: true,
            learned_signatures: Vec::new(),
            adaptive: None,
        }
    }
}

impl GfwConfig {
    /// The deployment modeled in the paper: google.com blocked at the IP,
    /// DNS, and SNI layers; Falun-style keyword filtering on plaintext
    /// HTTP; probing enabled.
    pub fn china_2017(google_prefix: (Addr, u8)) -> Self {
        GfwConfig {
            ip_blacklist: vec![google_prefix],
            dns_blocklist: vec!["google.com".into()],
            sni_blocklist: vec!["google.com".into()],
            http_keywords: vec!["falun".into(), "tiananmen-1989".into()],
            ..Default::default()
        }
    }

    /// Whether `addr` is inside a blacklisted prefix.
    pub fn ip_blocked(&self, addr: Addr) -> bool {
        self.ip_blacklist
            .iter()
            .any(|(prefix, len)| addr.in_prefix(*prefix, *len))
    }

    /// Whether a domain matches a suffix list.
    pub fn domain_matches(list: &[String], name: &str) -> bool {
        let name = name.to_ascii_lowercase();
        list.iter()
            .any(|d| name == *d || name.ends_with(&format!(".{d}")))
    }

    /// The policy applied to a traffic class.
    pub fn policy_for(&self, class: TrafficClass) -> Policy {
        match class {
            TrafficClass::Meek => self.policies.meek,
            TrafficClass::ShadowsocksConfirmed => self.policies.shadowsocks,
            TrafficClass::Pptp | TrafficClass::L2tp => self.policies.vpn,
            TrafficClass::OpenVpn => self.policies.openvpn,
            TrafficClass::LearnedSignature => self.policies.learned_signature,
            TrafficClass::Suspect => self.policies.suspect,
            TrafficClass::Unknown | TrafficClass::Http | TrafficClass::Tls => Policy::ALLOW,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_blacklist_prefix_match() {
        let cfg = GfwConfig::china_2017((Addr::new(99, 2, 0, 0), 16));
        assert!(cfg.ip_blocked(Addr::new(99, 2, 7, 7)));
        assert!(!cfg.ip_blocked(Addr::new(99, 3, 0, 1)));
    }

    #[test]
    fn domain_suffix_match() {
        let list = vec!["google.com".to_string()];
        assert!(GfwConfig::domain_matches(&list, "google.com"));
        assert!(GfwConfig::domain_matches(&list, "Scholar.Google.com"));
        assert!(!GfwConfig::domain_matches(&list, "notgoogle.com"));
        assert!(!GfwConfig::domain_matches(&list, "google.com.cn.fake.example"));
    }

    #[test]
    fn default_policies_match_calibration() {
        let p = ClassPolicies::default();
        assert!(p.meek.drop_prob > p.shadowsocks.drop_prob);
        assert!(!p.vpn.interferes());
        assert!(!p.openvpn.interferes());
        assert!(!p.suspect.interferes());
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn bad_throttle_panics() {
        let _ = Policy::throttle(1.0);
    }
}
