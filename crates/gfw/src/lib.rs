//! # sc-gfw
//!
//! A simulated Great Firewall: the censorship substrate the paper's
//! measurements run against. It reproduces the GFW's documented techniques
//! (§1, §5 of the paper):
//!
//! * **IP blocking** — blacklisted prefixes dropped at the border.
//! * **DNS poisoning** — forged answers injected for blocked names
//!   ([`sc_dns::forge_response`]).
//! * **Keyword filtering** — plaintext HTTP containing blocked keywords is
//!   reset (spoofed RSTs to both ends).
//! * **Deep packet inspection** — protocol fingerprints (TLS SNI, OpenVPN
//!   opcodes, PPTP/GRE, L2TP/ESP), a "fully encrypted traffic" entropy
//!   heuristic that catches Shadowsocks, a behavioral long-poll detector
//!   for Tor's meek transport, and updatable byte signatures.
//! * **Active probing** — suspects are probed with garbage; servers that
//!   go silent are confirmed as proxies ([`prober::ActiveProber`]).
//! * **Throttling policies** — per-class packet drop probabilities,
//!   calibrated to the paper's Figure 5c loss rates.
//! * **Reactive censorship** ([`adaptive`]) — per-destination suspicion
//!   scoring, scheme-fingerprint learning with rule churn, probing
//!   campaigns with replayed preambles, confirm-time IP blacklisting,
//!   and per-region/per-time enforcement drift. Off by default: every
//!   pre-adaptive trace stays byte-identical.
//!
//! The data plane is [`engine::GfwMiddlebox`] (attach to the border
//! router); the control plane is [`prober::ActiveProber`] (install as an
//! app on the same node); both share a [`engine::GfwHandle`].

#![warn(missing_docs)]

pub mod adaptive;
pub mod classify;
pub mod config;
pub mod engine;
pub mod faults;
pub mod prober;

pub use adaptive::{AdaptiveConfig, AdaptiveState, FingerprintOutcome};
pub use classify::{FlowKey, FlowRecord, FlowTable, TrafficClass};
pub use config::{ClassPolicies, GfwConfig, Policy};
pub use engine::{GfwCounters, GfwHandle, GfwMiddlebox, GfwState, new_gfw};
pub use faults::{blacklist_ip, unblacklist_ip};
pub use prober::{ActiveProber, ProbeVerdict};

#[cfg(test)]
mod tests {
    use super::*;
    use sc_simnet::prelude::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    const CLIENT: Addr = Addr::new(10, 0, 0, 1);
    const RESOLVER_UP: Addr = Addr::new(99, 0, 0, 53);
    const SERVER: Addr = Addr::new(99, 0, 0, 1);
    const GOOGLE: Addr = Addr::new(99, 2, 0, 1);

    /// client — border(GFW) — {server, google, upstream-dns}
    fn topology(config: GfwConfig) -> (Sim, NodeId, NodeId, GfwHandle) {
        let mut sim = Sim::new(77);
        let client = sim.add_node("client", CLIENT);
        let border = sim.add_node("border", Addr::new(172, 16, 0, 1));
        let server = sim.add_node("server", SERVER);
        let google = sim.add_node("google", GOOGLE);
        let dns = sim.add_node("dns-up", RESOLVER_UP);
        let d10 = LinkConfig::with_delay(SimDuration::from_millis(10));
        let d60 = LinkConfig::with_delay(SimDuration::from_millis(60));
        sim.add_link(client, border, d10);
        sim.add_link(border, server, d60);
        sim.add_link(border, google, d60);
        sim.add_link(border, dns, d60);
        sim.compute_routes();
        let gfw = new_gfw(config);
        sim.set_middlebox(border, Box::new(GfwMiddlebox::new(gfw.clone())));
        sim.install_app(border, Box::new(ActiveProber::new(gfw.clone())));
        (sim, client, server, gfw)
    }

    /// Generic one-connection client driving raw bytes.
    struct RawClient {
        server: SocketAddr,
        to_send: Vec<Vec<u8>>,
        outcome: Rc<RefCell<RawOutcome>>,
        handle: Option<TcpHandle>,
        sent: usize,
    }

    #[derive(Default)]
    struct RawOutcome {
        connected: bool,
        reset: bool,
        connect_failed: bool,
        received: Vec<u8>,
    }

    impl App for RawClient {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.handle = Some(ctx.tcp_connect(self.server));
        }
        fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
            let Some(h) = self.handle else { return };
            match ev {
                AppEvent::Tcp(eh, TcpEvent::Connected) if eh == h => {
                    self.outcome.borrow_mut().connected = true;
                    if let Some(first) = self.to_send.first().cloned() {
                        ctx.tcp_send(h, &first);
                        self.sent = 1;
                        ctx.set_timer(SimDuration::from_millis(100), 1);
                    }
                }
                AppEvent::TimerFired(1) => {
                    if let Some(next) = self.to_send.get(self.sent).cloned() {
                        ctx.tcp_send(h, &next);
                        self.sent += 1;
                        ctx.set_timer(SimDuration::from_millis(100), 1);
                    }
                }
                AppEvent::Tcp(eh, TcpEvent::DataReceived) if eh == h => {
                    let data = ctx.tcp_recv_all(h);
                    self.outcome.borrow_mut().received.extend_from_slice(&data);
                }
                AppEvent::Tcp(eh, TcpEvent::Reset) if eh == h => {
                    self.outcome.borrow_mut().reset = true;
                }
                AppEvent::Tcp(eh, TcpEvent::ConnectFailed) if eh == h => {
                    self.outcome.borrow_mut().connect_failed = true;
                }
                _ => {}
            }
        }
    }

    /// A server with Shadowsocks probe behaviour: reads whatever arrives
    /// and never writes a byte (undecryptable input is silently consumed).
    struct SilentCloser;
    impl App for SilentCloser {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.tcp_listen(8388);
        }
        fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
            if let AppEvent::Tcp(h, TcpEvent::DataReceived) = ev {
                let _ = ctx.tcp_recv_all(h);
            }
        }
    }

    /// A server that answers anything with an HTTP decoy (ScholarCloud's
    /// probe resistance).
    struct HttpDecoy;
    impl App for HttpDecoy {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.tcp_listen(8443);
        }
        fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
            if let AppEvent::Tcp(h, TcpEvent::DataReceived) = ev {
                let _ = ctx.tcp_recv_all(h);
                ctx.tcp_send(h, b"HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n");
                ctx.tcp_close(h);
            }
        }
    }

    fn high_entropy(len: usize, seed: u8) -> Vec<u8> {
        use sc_crypto::aes::{Aes, KeySize};
        use sc_crypto::modes::Ctr;
        let mut data = vec![0u8; len];
        Ctr::new(Aes::new(KeySize::Aes256, &[seed; 32]).unwrap(), [seed; 16]).apply(&mut data);
        data
    }

    #[test]
    fn ip_blacklist_blocks_google_direct() {
        let cfg = GfwConfig::china_2017((Addr::new(99, 2, 0, 0), 16));
        let (mut sim, client, _server, gfw) = topology(cfg);
        let outcome = Rc::new(RefCell::new(RawOutcome::default()));
        sim.install_app(
            client,
            Box::new(RawClient {
                server: SocketAddr::new(GOOGLE, 443),
                to_send: vec![],
                outcome: outcome.clone(),
                handle: None,
                sent: 0,
            }),
        );
        sim.run_for(SimDuration::from_secs(60));
        assert!(outcome.borrow().connect_failed, "SYNs must be black-holed");
        assert!(gfw.borrow().counters.ip_blocked > 0);
    }

    #[test]
    fn dns_queries_for_blocked_names_are_poisoned() {
        use sc_dns::{DnsMessage, ResolveOutcome, StubResolver};
        struct Lookup {
            stub: StubResolver,
            got: Rc<RefCell<Option<ResolveOutcome>>>,
        }
        impl App for Lookup {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                self.stub.bind(ctx);
                self.stub.resolve("scholar.google.com", 0, ctx);
            }
            fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
                if let AppEvent::Udp { socket, payload, .. } = ev {
                    if let Some(r) = self.stub.on_datagram(socket, &payload, ctx.now()) {
                        *self.got.borrow_mut() = Some(r.outcome);
                    }
                }
            }
        }
        let cfg = GfwConfig::china_2017((Addr::new(99, 2, 0, 0), 16));
        let poison = cfg.poison_addr;
        let (mut sim, client, _server, gfw) = topology(cfg);
        // Authoritative server past the border holds the real record.
        let dns_node = sim.node_by_addr(RESOLVER_UP).unwrap();
        let mut zone = sc_dns::Zone::new();
        zone.insert("scholar.google.com", GOOGLE, 300);
        sim.install_app(dns_node, Box::new(sc_dns::AuthoritativeServer::new(zone)));
        let got = Rc::new(RefCell::new(None));
        sim.install_app(
            client,
            Box::new(Lookup { stub: StubResolver::new(RESOLVER_UP), got: got.clone() }),
        );
        sim.run_for(SimDuration::from_secs(5));
        match got.borrow().clone().expect("should get an answer") {
            ResolveOutcome::Resolved(addrs) => {
                assert_eq!(addrs, vec![poison], "answer must be the forged one");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(gfw.borrow().counters.dns_poisoned, 1);
        // The forged message must parse as a normal response.
        let q = DnsMessage::query(1, "scholar.google.com");
        assert!(sc_dns::forge_response(&q.encode(), poison, 60).is_some());
    }

    #[test]
    fn keyword_in_plaintext_http_triggers_reset() {
        let mut cfg = GfwConfig::default();
        cfg.http_keywords = vec!["falun".into()];
        let (mut sim, client, server, gfw) = topology(cfg);
        struct Sink;
        impl App for Sink {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.tcp_listen(80);
            }
            fn on_event(&mut self, _ev: AppEvent, _ctx: &mut Ctx<'_>) {}
        }
        sim.install_app(server, Box::new(Sink));
        let outcome = Rc::new(RefCell::new(RawOutcome::default()));
        sim.install_app(
            client,
            Box::new(RawClient {
                server: SocketAddr::new(SERVER, 80),
                to_send: vec![b"GET /search?q=falun HTTP/1.1\r\nHost: s\r\n\r\n".to_vec()],
                outcome: outcome.clone(),
                handle: None,
                sent: 0,
            }),
        );
        sim.run_for(SimDuration::from_secs(10));
        assert!(outcome.borrow().connected, "handshake is clean");
        assert!(outcome.borrow().reset, "keyword must reset the connection");
        assert_eq!(gfw.borrow().counters.keyword_resets, 1);
    }

    #[test]
    fn innocent_http_passes_keyword_filter() {
        let mut cfg = GfwConfig::default();
        cfg.http_keywords = vec!["falun".into()];
        let (mut sim, client, server, gfw) = topology(cfg);
        struct Responder;
        impl App for Responder {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.tcp_listen(80);
            }
            fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
                if let AppEvent::Tcp(h, TcpEvent::DataReceived) = ev {
                    let _ = ctx.tcp_recv_all(h);
                    ctx.tcp_send(h, b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok");
                }
            }
        }
        sim.install_app(server, Box::new(Responder));
        let outcome = Rc::new(RefCell::new(RawOutcome::default()));
        sim.install_app(
            client,
            Box::new(RawClient {
                server: SocketAddr::new(SERVER, 80),
                to_send: vec![b"GET /weather HTTP/1.1\r\nHost: s\r\n\r\n".to_vec()],
                outcome: outcome.clone(),
                handle: None,
                sent: 0,
            }),
        );
        sim.run_for(SimDuration::from_secs(10));
        assert!(!outcome.borrow().reset);
        assert!(outcome.borrow().received.starts_with(b"HTTP/1.1 200"));
        assert_eq!(gfw.borrow().counters.keyword_resets, 0);
    }

    #[test]
    fn blocked_sni_triggers_reset() {
        let mut cfg = GfwConfig::default();
        cfg.sni_blocklist = vec!["google.com".into()];
        let (mut sim, client, server, gfw) = topology(cfg);
        struct Sink;
        impl App for Sink {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.tcp_listen(443);
            }
            fn on_event(&mut self, _ev: AppEvent, _ctx: &mut Ctx<'_>) {}
        }
        sim.install_app(server, Box::new(Sink));
        let mut tls = sc_netproto::TlsClient::new("scholar.google.com", 9);
        let hello = tls.start_handshake();
        let outcome = Rc::new(RefCell::new(RawOutcome::default()));
        sim.install_app(
            client,
            Box::new(RawClient {
                server: SocketAddr::new(SERVER, 443),
                to_send: vec![hello],
                outcome: outcome.clone(),
                handle: None,
                sent: 0,
            }),
        );
        sim.run_for(SimDuration::from_secs(10));
        assert!(outcome.borrow().reset, "blocked SNI must reset");
        assert_eq!(gfw.borrow().counters.sni_resets, 1);
    }

    #[test]
    fn active_probe_confirms_silent_server_and_throttles() {
        let mut cfg = GfwConfig::default();
        // Exaggerated throttle so the assertion is deterministic in a
        // short run; calibration-accurate rates are exercised in
        // sc-metrics' experiments.
        cfg.policies.shadowsocks = Policy::throttle(0.2);
        let (mut sim, client, server, gfw) = topology(cfg);
        sim.install_app(server, Box::new(SilentCloser));
        // Client sends Shadowsocks-shaped traffic: headerless high entropy.
        let payloads: Vec<Vec<u8>> = (0..200).map(|i| high_entropy(600, i as u8)).collect();
        let outcome = Rc::new(RefCell::new(RawOutcome::default()));
        sim.install_app(
            client,
            Box::new(RawClient {
                server: SocketAddr::new(SERVER, 8388),
                to_send: payloads,
                outcome: outcome.clone(),
                handle: None,
                sent: 0,
            }),
        );
        sim.run_for(SimDuration::from_secs(60));
        let st = gfw.borrow();
        assert_eq!(st.counters.probes_requested, 1);
        assert!(
            st.confirmed.contains(&SocketAddr::new(SERVER, 8388)),
            "silent server must be confirmed"
        );
        assert!(st.counters.throttled > 0, "confirmed flow must be throttled");
    }

    #[test]
    fn http_decoy_server_survives_probe() {
        let cfg = GfwConfig::default();
        let (mut sim, client, server, gfw) = topology(cfg);
        sim.install_app(server, Box::new(HttpDecoy));
        let payloads: Vec<Vec<u8>> = (0..200).map(|i| high_entropy(600, i as u8)).collect();
        let outcome = Rc::new(RefCell::new(RawOutcome::default()));
        sim.install_app(
            client,
            Box::new(RawClient {
                server: SocketAddr::new(SERVER, 8443),
                to_send: payloads,
                outcome: outcome.clone(),
                handle: None,
                sent: 0,
            }),
        );
        sim.run_for(SimDuration::from_secs(60));
        let st = gfw.borrow();
        assert_eq!(st.counters.probes_requested, 1, "suspect should be probed");
        assert!(
            !st.confirmed.contains(&SocketAddr::new(SERVER, 8443)),
            "HTTP decoy must stay unconfirmed"
        );
        assert_eq!(st.counters.throttled, 0, "no policy applies to innocents");
    }

    #[test]
    fn probing_can_be_disabled() {
        let mut cfg = GfwConfig::default();
        cfg.active_probing = false;
        let (mut sim, client, server, gfw) = topology(cfg);
        sim.install_app(server, Box::new(SilentCloser));
        let payloads: Vec<Vec<u8>> = (0..50).map(|i| high_entropy(600, i as u8)).collect();
        let outcome = Rc::new(RefCell::new(RawOutcome::default()));
        sim.install_app(
            client,
            Box::new(RawClient {
                server: SocketAddr::new(SERVER, 8388),
                to_send: payloads,
                outcome,
                handle: None,
                sent: 0,
            }),
        );
        sim.run_for(SimDuration::from_secs(30));
        assert_eq!(gfw.borrow().counters.probes_requested, 0);
        assert!(gfw.borrow().confirmed.is_empty());
    }
}
