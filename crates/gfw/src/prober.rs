//! The GFW's active prober (Ensafi et al., IMC'15: "Examining How the
//! Great Firewall Discovers Hidden Circumvention Servers").
//!
//! When DPI flags a flow as a high-entropy suspect, the prober connects to
//! the suspected server itself and sends garbage. A Shadowsocks-style
//! server betrays itself by silently closing (it reads an IV, fails to
//! decrypt anything sensible, and hangs up without ever writing a byte).
//! An innocent web server — or ScholarCloud's remote proxy, which serves
//! an HTTP decoy to anything that fails its authentication — answers like
//! a web server and is left alone.

use std::collections::HashMap;

use rand::Rng;
use sc_simnet::addr::SocketAddr;
use sc_simnet::api::{App, AppEvent, TcpEvent, TcpHandle};
use sc_simnet::sim::Ctx;
use sc_simnet::time::{SimDuration, SimTime};

use crate::engine::GfwHandle;

/// How often the prober drains its queue.
pub const PROBE_INTERVAL: SimDuration = SimDuration::from_millis(500);
/// How long the prober waits for a server response before concluding
/// "silent" behaviour.
pub const PROBE_TIMEOUT: SimDuration = SimDuration::from_secs(3);
/// Bytes of garbage sent per probe.
pub const PROBE_LEN: usize = 48;

const TIMER_DRAIN: u64 = 0;
const TIMER_CHECK_BASE: u64 = 1_000;

/// What a completed probe concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeVerdict {
    /// Server replied like a web server: innocent.
    Innocent,
    /// Server closed or timed out without a byte: circumvention proxy.
    Confirmed,
    /// Could not even connect (port filtered).
    Unreachable,
}

#[derive(Debug)]
struct Probe {
    server: SocketAddr,
    started: SimTime,
    got_data: bool,
    check_token: u64,
    done: bool,
    /// Captured preamble to replay instead of garbage (adaptive
    /// campaigns — a replayed valid preamble smokes out a remote with
    /// no replay protection, which authenticates it and then hangs).
    replay: Option<Vec<u8>>,
}

/// The active prober app. Install on the GFW's border node with the same
/// [`GfwHandle`] as the middlebox.
pub struct ActiveProber {
    state: GfwHandle,
    probes: HashMap<TcpHandle, Probe>,
    next_check: u64,
    /// Verdict log (server, verdict) for diagnostics and tests.
    pub verdicts: Vec<(SocketAddr, ProbeVerdict)>,
}

impl ActiveProber {
    /// Creates the prober over shared GFW state.
    pub fn new(state: GfwHandle) -> Self {
        ActiveProber {
            state,
            probes: HashMap::new(),
            next_check: TIMER_CHECK_BASE,
            verdicts: Vec::new(),
        }
    }

    fn conclude(&mut self, h: TcpHandle, verdict: ProbeVerdict, now_us: u64) {
        let Some(probe) = self.probes.get_mut(&h) else { return };
        if probe.done {
            return;
        }
        probe.done = true;
        let server = probe.server;
        self.verdicts.push((server, verdict));
        if verdict == ProbeVerdict::Confirmed {
            let mut st = self.state.borrow_mut();
            st.confirmed.insert(server);
            st.flows.confirm_server(server);
            st.counters.servers_confirmed += 1;
            sc_obs::counter_add("gfw.servers_confirmed", 1);
            // An adaptive deployment escalates: endpoints that answer
            // like proxies are blacklisted at the IP layer outright.
            if st.config.adaptive.is_some()
                && !st.config.ip_blacklist.contains(&(server.addr, 32))
            {
                st.config.ip_blacklist.push((server.addr, 32));
                sc_obs::counter_add("gfw.adaptive_blacklisted", 1);
                if sc_obs::is_enabled(sc_obs::Level::Info, "gfw") {
                    sc_obs::emit(
                        sc_obs::Event::new(
                            now_us,
                            sc_obs::Level::Info,
                            "gfw",
                            "adaptive",
                            "blacklisted",
                        )
                        .field("server", server.to_string()),
                    );
                }
            }
        }
        if sc_obs::is_enabled(sc_obs::Level::Info, "gfw") {
            sc_obs::emit(
                sc_obs::Event::new(now_us, sc_obs::Level::Info, "gfw", "probe", "verdict")
                    .field("server", server.to_string())
                    .field(
                        "verdict",
                        match verdict {
                            ProbeVerdict::Innocent => "innocent",
                            ProbeVerdict::Confirmed => "confirmed",
                            ProbeVerdict::Unreachable => "unreachable",
                        },
                    ),
            );
        }
    }
}

impl App for ActiveProber {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(PROBE_INTERVAL, TIMER_DRAIN);
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        match ev {
            AppEvent::TimerFired(TIMER_DRAIN) => {
                loop {
                    let target = self.state.borrow_mut().probe_queue.pop_front();
                    let Some(server) = target else { break };
                    let replay = self
                        .state
                        .borrow()
                        .replay_preambles
                        .get(&server)
                        .filter(|p| !p.is_empty())
                        .cloned();
                    let h = ctx.tcp_connect(server);
                    sc_obs::counter_add("gfw.probes_launched", 1);
                    if sc_obs::is_enabled(sc_obs::Level::Info, "gfw") {
                        let mut ev = sc_obs::Event::new(
                            ctx.now().as_micros(),
                            sc_obs::Level::Info,
                            "gfw",
                            "probe",
                            "launched",
                        )
                        .field("server", server.to_string());
                        if replay.is_some() {
                            ev = ev.field("replay", 1u64);
                        }
                        sc_obs::emit(ev);
                    }
                    let check_token = self.next_check;
                    self.next_check += 1;
                    self.probes.insert(
                        h,
                        Probe {
                            server,
                            started: ctx.now(),
                            got_data: false,
                            check_token,
                            done: false,
                            replay,
                        },
                    );
                }
                ctx.set_timer(PROBE_INTERVAL, TIMER_DRAIN);
            }
            AppEvent::TimerFired(token) if token >= TIMER_CHECK_BASE => {
                // Timeout check for one outstanding probe.
                let handle = self
                    .probes
                    .iter()
                    .find(|(_, p)| p.check_token == token && !p.done)
                    .map(|(h, _)| *h);
                if let Some(h) = handle {
                    let timed_out = {
                        let p = &self.probes[&h];
                        !p.got_data && ctx.now() - p.started >= PROBE_TIMEOUT
                    };
                    if timed_out {
                        // Silent server: fingerprint of an authenticated
                        // proxy dropping garbage.
                        self.conclude(h, ProbeVerdict::Confirmed, ctx.now().as_micros());
                        ctx.tcp_abort(h);
                    }
                }
            }
            AppEvent::Tcp(h, tcp_ev) => {
                let Some(probe) = self.probes.get_mut(&h) else { return };
                match tcp_ev {
                    TcpEvent::Connected => {
                        if let Some(replay) = probe.replay.clone() {
                            // Replay a captured preamble: a remote
                            // without replay protection authenticates
                            // it, then hangs awaiting a stream it can
                            // never decode — the silent signature.
                            ctx.tcp_send(h, &replay);
                        } else {
                            // Send garbage that decrypts to nothing
                            // under any real cipher.
                            let mut garbage = vec![0u8; PROBE_LEN];
                            ctx.rng().fill(&mut garbage[..]);
                            ctx.tcp_send(h, &garbage);
                        }
                        let token = probe.check_token;
                        ctx.set_timer(PROBE_TIMEOUT, token);
                    }
                    TcpEvent::DataReceived => {
                        probe.got_data = true;
                        let data = ctx.tcp_recv_all(h);
                        let verdict = if data.starts_with(b"HTTP/") {
                            ProbeVerdict::Innocent
                        } else {
                            // Replied with non-HTTP bytes to garbage: odd,
                            // but not the silent-proxy signature.
                            ProbeVerdict::Innocent
                        };
                        self.conclude(h, verdict, ctx.now().as_micros());
                        ctx.tcp_close(h);
                    }
                    TcpEvent::PeerClosed | TcpEvent::Reset => {
                        let got_data = probe.got_data;
                        if !got_data {
                            // Closed without a byte in response to garbage.
                            self.conclude(h, ProbeVerdict::Confirmed, ctx.now().as_micros());
                        }
                    }
                    TcpEvent::ConnectFailed => {
                        self.conclude(h, ProbeVerdict::Unreachable, ctx.now().as_micros());
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}
