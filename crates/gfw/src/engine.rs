//! The GFW middlebox: applies blocklists, poisons DNS, injects RSTs,
//! requests active probes, and throttles classified flows.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

use bytes::Bytes;
use rand::Rng;
use sc_dns::forge_response;
use sc_simnet::addr::SocketAddr;
use sc_simnet::middlebox::{MbCtx, Middlebox, Verdict};
use sc_simnet::packet::{L4, Packet, TcpFlags, TcpSegmentBody};

use crate::classify::{FlowTable, TrafficClass};
use crate::config::GfwConfig;

/// Counters describing everything the GFW did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GfwCounters {
    /// Connections reset because a blocked SNI was found embedded in an
    /// HTTP body (tunnelled TLS without blinding).
    pub embedded_sni_resets: u64,
    /// Packets dropped by the IP blacklist.
    pub ip_blocked: u64,
    /// DNS queries poisoned.
    pub dns_poisoned: u64,
    /// Connections reset for keyword hits.
    pub keyword_resets: u64,
    /// Connections reset for SNI hits.
    pub sni_resets: u64,
    /// Packets dropped by throttling policies.
    pub throttled: u64,
    /// Probes requested.
    pub probes_requested: u64,
    /// Servers confirmed as proxies.
    pub servers_confirmed: u64,
    /// Scheme fingerprints the adaptive censor promoted to signatures.
    pub signatures_learned: u64,
    /// Probing campaigns the adaptive censor launched.
    pub campaigns_launched: u64,
}

/// Shared GFW state: the middlebox (data plane) and the active prober
/// (an app on the same border node) both hold this handle.
#[derive(Debug)]
pub struct GfwState {
    /// Configuration (blocklists, policies). May be updated mid-run to
    /// model GFW rule pushes.
    pub config: GfwConfig,
    /// The DPI flow table.
    pub flows: FlowTable,
    /// Servers awaiting an active probe.
    pub probe_queue: VecDeque<SocketAddr>,
    /// Servers already probed (never re-probed).
    pub probed: HashSet<SocketAddr>,
    /// Servers confirmed as circumvention proxies.
    pub confirmed: HashSet<SocketAddr>,
    /// The reactive censor's evidence (idle unless
    /// [`GfwConfig::adaptive`] is set).
    pub adaptive: crate::adaptive::AdaptiveState,
    /// Captured preambles campaign probes replay instead of garbage,
    /// keyed by target server (populated only by adaptive campaigns).
    pub replay_preambles: HashMap<SocketAddr, Vec<u8>>,
    /// Activity counters.
    pub counters: GfwCounters,
}

/// Shared handle to GFW state.
pub type GfwHandle = Rc<RefCell<GfwState>>;

/// Creates the shared state handle for a GFW deployment.
pub fn new_gfw(config: GfwConfig) -> GfwHandle {
    Rc::new(RefCell::new(GfwState {
        config,
        flows: FlowTable::new(),
        probe_queue: VecDeque::new(),
        probed: HashSet::new(),
        confirmed: HashSet::new(),
        adaptive: crate::adaptive::AdaptiveState::default(),
        replay_preambles: HashMap::new(),
        counters: GfwCounters::default(),
    }))
}

/// The packet-inspecting middlebox. Attach to the border router with
/// [`sc_simnet::sim::Sim::set_middlebox`].
pub struct GfwMiddlebox {
    state: GfwHandle,
}

impl GfwMiddlebox {
    /// Creates the middlebox over shared state.
    pub fn new(state: GfwHandle) -> Self {
        GfwMiddlebox { state }
    }

    fn spoof_rst(pkt: &Packet) -> Option<(Packet, Packet)> {
        let (src, dst) = (pkt.src_socket()?, pkt.dst_socket()?);
        let (seq, ack) = match &pkt.l4 {
            L4::Tcp(t) => (t.seq, t.ack),
            _ => return None,
        };
        let body = |seq: u64, ack: u64| TcpSegmentBody {
            seq,
            ack,
            flags: TcpFlags::RST,
            window: 0,
            payload: Bytes::new(),
        };
        // One RST toward each endpoint, spoofed as from the other.
        let to_dst = Packet::tcp(src, dst, body(seq, ack));
        let to_src = Packet::tcp(dst, src, body(ack, seq));
        Some((to_src, to_dst))
    }
}


/// Records one GFW verdict in the observability layer: a counter plus,
/// when tracing is enabled, an event carrying the rule label (and how
/// many spoofed RSTs were injected alongside the drop).
fn trace_drop(now: sc_simnet::time::SimTime, rule: &'static str, pkt: &Packet, rsts: u32) {
    sc_obs::counter_add("gfw.drops", 1);
    sc_obs::ts_bump(now.as_micros(), "gfw.drops", 1);
    if rsts > 0 {
        sc_obs::counter_add("gfw.rst_injected", rsts as u64);
    }
    if sc_obs::is_enabled(sc_obs::Level::Info, "gfw") {
        let mut ev = sc_obs::Event::new(
            now.as_micros(),
            sc_obs::Level::Info,
            "gfw",
            "verdict",
            "drop",
        )
        .field("rule", rule)
        .field("src", pkt.src.to_string())
        .field("dst", pkt.dst.to_string());
        if rsts > 0 {
            ev = ev.field("rsts", rsts);
        }
        sc_obs::emit(ev);
    }
}

impl Middlebox for GfwMiddlebox {
    fn name(&self) -> &str {
        "gfw"
    }

    fn process(&mut self, pkt: &Packet, ctx: &mut MbCtx<'_>) -> Verdict {
        let mut st = self.state.borrow_mut();

        // --- IP blacklist (cheapest check, applied to both directions) ---
        if st.config.ip_blocked(pkt.dst) || st.config.ip_blocked(pkt.src) {
            st.counters.ip_blocked += 1;
            trace_drop(ctx.now, "gfw-ip-block", pkt, 0);
            return Verdict::Drop("gfw-ip-block");
        }

        // --- DNS poisoning ---
        if let L4::Udp(u) = &pkt.l4 {
            if u.dst_port == sc_dns::DNS_PORT {
                if let Ok(query) = sc_dns::DnsMessage::decode(&u.payload) {
                    if !query.is_response
                        && GfwConfig::domain_matches(&st.config.dns_blocklist, &query.qname)
                    {
                        let poison = st.config.poison_addr;
                        if let Some(forged) = forge_response(&u.payload, poison, 600) {
                            // Spoofed answer "from" the queried server.
                            let reply = Packet::udp(
                                SocketAddr::new(pkt.dst, u.dst_port),
                                SocketAddr::new(pkt.src, u.src_port),
                                forged,
                            );
                            ctx.inject(reply);
                        }
                        st.counters.dns_poisoned += 1;
                        trace_drop(ctx.now, "gfw-dns-poison", pkt, 0);
                        return Verdict::Drop("gfw-dns-poison");
                    }
                }
            }
        }

        // --- Flow classification ---
        let now = ctx.now;
        let st = &mut *st;
        let Some(rec) = st.flows.observe(pkt, now, &st.config) else {
            // No ports (GRE/ESP): tunnel data channels, covered by the VPN
            // policy directly.
            let class = match pkt.l4.protocol() {
                sc_simnet::packet::proto::GRE => TrafficClass::Pptp,
                sc_simnet::packet::proto::ESP => TrafficClass::L2tp,
                _ => TrafficClass::Unknown,
            };
            let policy = st.config.policy_for(class);
            if policy.block {
                trace_drop(ctx.now, "gfw-block", pkt, 0);
                return Verdict::Drop("gfw-block");
            }
            if policy.drop_prob > 0.0 && ctx.rng.gen::<f64>() < policy.drop_prob {
                st.counters.throttled += 1;
                trace_drop(ctx.now, "gfw-throttle", pkt, 0);
                return Verdict::Drop("gfw-throttle");
            }
            sc_obs::counter_add("gfw.forwarded", 1);
            return Verdict::Forward;
        };

        // Upgrade suspects whose server was since confirmed.
        if rec.class == TrafficClass::Suspect && st.confirmed.contains(&rec.server) {
            rec.class = TrafficClass::ShadowsocksConfirmed;
        }

        // --- Adaptive censor: evidence accrual, fingerprint learning,
        // campaign scheduling. Strict no-op (no draws, no events) when
        // the knob is off, keeping pre-adaptive traces byte-identical.
        if st.config.adaptive.is_some() {
            let crate::config::GfwConfig { adaptive, learned_signatures, .. } =
                &mut st.config;
            let acfg = adaptive.as_ref().expect("checked above");
            let mut draw = || ctx.rng.gen::<f64>();
            crate::adaptive::process_flow(
                &mut st.adaptive,
                acfg,
                learned_signatures,
                &mut st.probe_queue,
                &mut st.replay_preambles,
                &mut st.counters,
                rec,
                now,
                &mut draw,
            );
        }

        // --- Keyword filtering on plaintext HTTP ---
        if rec.class == TrafficClass::Http && !st.config.http_keywords.is_empty() {
            let haystack = rec.early_bytes.to_ascii_lowercase();
            let hit = st
                .config
                .http_keywords
                .iter()
                .any(|k| !k.is_empty() && haystack.windows(k.len()).any(|w| w == k.as_bytes()));
            if hit {
                if let Some((a, b)) = Self::spoof_rst(pkt) {
                    ctx.inject(a);
                    ctx.inject(b);
                }
                st.counters.keyword_resets += 1;
                trace_drop(ctx.now, "gfw-keyword", pkt, 2);
                return Verdict::Drop("gfw-keyword");
            }
        }

        // --- embedded-TLS scan inside HTTP bodies ---
        // The GFW inspects HTTP payloads (the keyword filter above is one
        // face of that); the same scanner spots a TLS ClientHello carried
        // inside an upload body — i.e. a naive HTTP-covered tunnel whose
        // payload is NOT blinded — and resets it when the SNI is blocked.
        if rec.class == TrafficClass::Http && !st.config.sni_blocklist.is_empty() {
            let bytes = &rec.early_bytes;
            let mut embedded_hit = false;
            for off in 0..bytes.len().saturating_sub(42) {
                if bytes[off] == 22 && bytes[off + 1] == 3 && bytes[off + 2] == 3 {
                    if let Some(sni) = sc_netproto::sniff_sni(&bytes[off..]) {
                        if GfwConfig::domain_matches(&st.config.sni_blocklist, &sni) {
                            embedded_hit = true;
                            break;
                        }
                    }
                }
            }
            if embedded_hit {
                if let Some((a, b)) = Self::spoof_rst(pkt) {
                    ctx.inject(a);
                    ctx.inject(b);
                }
                st.counters.embedded_sni_resets += 1;
                trace_drop(ctx.now, "gfw-embedded-sni", pkt, 2);
                return Verdict::Drop("gfw-embedded-sni");
            }
        }

        // --- SNI filtering on TLS ---
        if matches!(rec.class, TrafficClass::Tls | TrafficClass::Meek) {
            if let Some(sni) = sc_netproto::sniff_sni(&rec.early_bytes) {
                if GfwConfig::domain_matches(&st.config.sni_blocklist, &sni) {
                    if let Some((a, b)) = Self::spoof_rst(pkt) {
                        ctx.inject(a);
                        ctx.inject(b);
                    }
                    st.counters.sni_resets += 1;
                    trace_drop(ctx.now, "gfw-sni", pkt, 2);
                    return Verdict::Drop("gfw-sni");
                }
            }
        }

        // --- Active probing of suspects ---
        if rec.class == TrafficClass::Suspect
            && st.config.active_probing
            && !rec.probe_requested
            && !st.probed.contains(&rec.server)
        {
            rec.probe_requested = true;
            st.probed.insert(rec.server);
            st.probe_queue.push_back(rec.server);
            st.counters.probes_requested += 1;
            sc_obs::counter_add("gfw.probes_requested", 1);
            if sc_obs::is_enabled(sc_obs::Level::Info, "gfw") {
                sc_obs::emit(
                    sc_obs::Event::new(
                        now.as_micros(),
                        sc_obs::Level::Info,
                        "gfw",
                        "probe",
                        "requested",
                    )
                    .field("server", rec.server.to_string()),
                );
            }
        }

        // --- Per-class policy (throttling) ---
        let policy = st.config.policy_for(rec.class);
        // Spatiotemporal inconsistency: an adaptive deployment enforces
        // learned signatures on some paths while others drift open for a
        // drift period at a time (Ensafi et al.). Static rules (IP, DNS,
        // SNI, keywords) are unaffected.
        if policy.interferes() && rec.class == TrafficClass::LearnedSignature {
            if let Some(acfg) = &st.config.adaptive {
                let mut draw = || ctx.rng.gen::<f64>();
                let (enforcing, rolled) = st.adaptive.region_enforcing(
                    acfg,
                    rec.client,
                    now,
                    &mut draw,
                );
                if let Some(region) = rolled {
                    sc_obs::counter_add("gfw.adaptive_region_rolls", 1);
                    if sc_obs::is_enabled(sc_obs::Level::Info, "gfw") {
                        sc_obs::emit(
                            sc_obs::Event::new(
                                now.as_micros(),
                                sc_obs::Level::Info,
                                "gfw",
                                "adaptive",
                                "region_drift",
                            )
                            .field("region", region as u64)
                            .field("enforcing", if enforcing { 1u64 } else { 0 }),
                        );
                    }
                }
                if !enforcing {
                    sc_obs::counter_add("gfw.forwarded", 1);
                    return Verdict::Forward;
                }
            }
        }
        if policy.block {
            trace_drop(ctx.now, "gfw-block", pkt, 0);
            return Verdict::Drop("gfw-block");
        }
        if policy.rst {
            if let Some((a, b)) = Self::spoof_rst(pkt) {
                ctx.inject(a);
                ctx.inject(b);
            }
            trace_drop(ctx.now, "gfw-rst", pkt, 2);
            return Verdict::Drop("gfw-rst");
        }
        if policy.drop_prob > 0.0 && ctx.rng.gen::<f64>() < policy.drop_prob {
            st.counters.throttled += 1;
            trace_drop(ctx.now, "gfw-throttle", pkt, 0);
            return Verdict::Drop("gfw-throttle");
        }
        sc_obs::counter_add("gfw.forwarded", 1);
        Verdict::Forward
    }
}
