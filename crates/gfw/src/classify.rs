//! Flow classification: the DPI half of the GFW.
//!
//! A flow record accumulates the first payload bytes and per-packet timing
//! of each transit TCP/UDP flow; classifiers run protocol fingerprints over
//! that evidence. Classification is sticky — once a flow is identified it
//! keeps its class (real DPI boxes cache verdicts in a flow table).

use sc_crypto::entropy::PayloadStats;
use sc_netproto::tls::sniff_sni;
use sc_simnet::addr::SocketAddr;
use sc_simnet::packet::{L4, Packet, proto};
use sc_simnet::time::SimTime;

use crate::config::GfwConfig;

/// Well-known ports the fingerprints key on.
pub mod ports {
    /// PPTP control channel.
    pub const PPTP: u16 = 1723;
    /// L2TP.
    pub const L2TP: u16 = 1701;
    /// OpenVPN.
    pub const OPENVPN: u16 = 1194;
    /// HTTP.
    pub const HTTP: u16 = 80;
    /// HTTPS.
    pub const HTTPS: u16 = 443;
}

/// What the GFW believes a flow is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Not yet classified.
    Unknown,
    /// Plaintext HTTP.
    Http,
    /// TLS with an innocuous SNI.
    Tls,
    /// PPTP (control or GRE data).
    Pptp,
    /// L2TP/IPsec.
    L2tp,
    /// OpenVPN framing.
    OpenVpn,
    /// Tor's meek transport (behavioral fingerprint).
    Meek,
    /// High-entropy headerless stream, awaiting probe confirmation.
    Suspect,
    /// Probe-confirmed Shadowsocks-style proxy.
    ShadowsocksConfirmed,
    /// Early bytes matched a learned signature (rule update).
    LearnedSignature,
}

/// A bidirectional flow key (endpoints sorted so both directions map to
/// the same record).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Lexicographically smaller endpoint.
    pub a: SocketAddr,
    /// Lexicographically larger endpoint.
    pub b: SocketAddr,
    /// IP protocol number.
    pub protocol: u8,
}

impl FlowKey {
    /// Builds the normalized key for a packet, if it has ports.
    pub fn from_packet(pkt: &Packet) -> Option<FlowKey> {
        let src = pkt.src_socket()?;
        let dst = pkt.dst_socket()?;
        let (a, b) = if src <= dst { (src, dst) } else { (dst, src) };
        Some(FlowKey { a, b, protocol: pkt.l4.protocol() })
    }
}

/// Maximum bytes of early payload retained per flow for fingerprinting.
pub const CAPTURE_LIMIT: usize = 2048;
/// Packets of timing history kept for the behavioral (meek) detector.
const TIMING_WINDOW: usize = 12;

/// Evidence accumulated about one flow.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// Current classification.
    pub class: TrafficClass,
    /// First payload bytes in the client→server direction.
    pub early_bytes: Vec<u8>,
    /// The "server" endpoint (destination of the first packet seen).
    pub server: SocketAddr,
    /// The "client" endpoint.
    pub client: SocketAddr,
    /// Arrival times of recent client→server data packets.
    pub timings: Vec<SimTime>,
    /// Sizes of recent client→server data packets.
    pub sizes: Vec<usize>,
    /// Total packets seen.
    pub packets: u64,
    /// Whether a probe has been requested for this flow.
    pub probe_requested: bool,
    /// Whether the adaptive censor has already counted this flow's
    /// evidence (set on the first captured payload; never read when the
    /// adaptive subsystem is off).
    pub adaptive_noted: bool,
}

impl FlowRecord {
    fn new(client: SocketAddr, server: SocketAddr) -> Self {
        FlowRecord {
            class: TrafficClass::Unknown,
            early_bytes: Vec::new(),
            server,
            client,
            timings: Vec::new(),
            sizes: Vec::new(),
            packets: 0,
            probe_requested: false,
            adaptive_noted: false,
        }
    }

    /// Feeds one packet's evidence; runs fingerprints while unclassified.
    pub fn observe(&mut self, pkt: &Packet, now: SimTime, config: &GfwConfig) {
        self.packets += 1;
        let payload = pkt.l4.payload();
        let from_client = pkt
            .src_socket()
            .is_some_and(|s| s == self.client);
        if from_client && !payload.is_empty() {
            if self.early_bytes.len() < CAPTURE_LIMIT {
                let take = (CAPTURE_LIMIT - self.early_bytes.len()).min(payload.len());
                self.early_bytes.extend_from_slice(&payload[..take]);
            }
            if self.timings.len() < TIMING_WINDOW {
                self.timings.push(now);
                self.sizes.push(payload.len());
            } else {
                self.timings.rotate_left(1);
                self.sizes.rotate_left(1);
                *self.timings.last_mut().expect("window nonempty") = now;
                *self.sizes.last_mut().expect("window nonempty") = payload.len();
            }
        }
        if matches!(self.class, TrafficClass::Unknown | TrafficClass::Tls | TrafficClass::Suspect) {
            self.reclassify(pkt, config);
        }
    }

    fn reclassify(&mut self, pkt: &Packet, config: &GfwConfig) {
        // Port/protocol fingerprints first (cheapest).
        match &pkt.l4 {
            L4::Raw { protocol, .. } => {
                match *protocol {
                    proto::GRE => self.class = TrafficClass::Pptp,
                    proto::ESP => self.class = TrafficClass::L2tp,
                    _ => {}
                }
                return;
            }
            L4::Udp(u) => {
                if u.dst_port == ports::L2TP || u.src_port == ports::L2TP {
                    self.class = TrafficClass::L2tp;
                    return;
                }
                if (u.dst_port == ports::OPENVPN || u.src_port == ports::OPENVPN)
                    && is_openvpn_frame(&u.payload)
                {
                    self.class = TrafficClass::OpenVpn;
                    return;
                }
            }
            L4::Tcp(t) => {
                if t.dst_port == ports::PPTP || t.src_port == ports::PPTP {
                    self.class = TrafficClass::Pptp;
                    return;
                }
            }
        }

        if self.early_bytes.is_empty() {
            return;
        }

        // Learned byte signatures (GFW rule updates).
        for sig in &config.learned_signatures {
            if !sig.is_empty()
                && self
                    .early_bytes
                    .windows(sig.len())
                    .any(|w| w == sig.as_slice())
            {
                self.class = TrafficClass::LearnedSignature;
                return;
            }
        }

        // TLS: SNI visible in the ClientHello.
        if sniff_sni(&self.early_bytes).is_some() {
            // Meek rides inside TLS; the behavioral check below may still
            // upgrade the class, so mark Tls rather than returning final.
            self.class = TrafficClass::Tls;
            if self.is_meek_poll_pattern() {
                self.class = TrafficClass::Meek;
            }
            return;
        }

        // Plaintext HTTP.
        if self.early_bytes.starts_with(b"GET ")
            || self.early_bytes.starts_with(b"POST ")
            || self.early_bytes.starts_with(b"CONNECT ")
            || self.early_bytes.starts_with(b"HEAD ")
        {
            self.class = TrafficClass::Http;
            return;
        }

        // "Fully encrypted traffic" heuristic: high entropy, few printable
        // bytes, no recognizable header — the fingerprint that catches
        // Shadowsocks (and would catch naive custom tunnels).
        if self.early_bytes.len() >= 64 {
            let stats = PayloadStats::analyze(&self.early_bytes);
            if stats.looks_like_random() {
                self.class = TrafficClass::Suspect;
            }
        }
    }

    /// Behavioral meek detector: a TLS flow whose client sends a sustained
    /// run of small, regularly spaced requests (the transport's HTTP
    /// long-poll loop) — unlike bursty human browsing.
    fn is_meek_poll_pattern(&self) -> bool {
        if self.timings.len() < 8 {
            return false;
        }
        let gaps: Vec<u64> = self
            .timings
            .windows(2)
            .map(|w| (w[1] - w[0]).as_micros())
            .collect();
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        if mean < 20_000.0 {
            return false; // sub-20 ms gaps: bulk transfer, not polling
        }
        let var = gaps
            .iter()
            .map(|&g| (g as f64 - mean) * (g as f64 - mean))
            .sum::<f64>()
            / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        let small = self.sizes.iter().filter(|&&s| s < 600).count();
        cv < 0.35 && small * 10 >= self.sizes.len() * 8
    }
}

/// The flow table: bounded map from flow key to record.
#[derive(Debug, Default)]
pub struct FlowTable {
    flows: std::collections::HashMap<FlowKey, FlowRecord>,
}

/// Cap on tracked flows; oldest-by-insertion beyond this are evicted
/// wholesale (real DPI hardware has the same pressure).
pub const FLOW_TABLE_CAP: usize = 100_000;

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Observes a packet, creating the flow record if new, and returns a
    /// mutable reference to the record.
    pub fn observe(
        &mut self,
        pkt: &Packet,
        now: SimTime,
        config: &GfwConfig,
    ) -> Option<&mut FlowRecord> {
        let key = FlowKey::from_packet(pkt)?;
        if self.flows.len() >= FLOW_TABLE_CAP && !self.flows.contains_key(&key) {
            self.flows.clear(); // blunt eviction under pressure
        }
        let rec = self.flows.entry(key).or_insert_with(|| {
            FlowRecord::new(
                pkt.src_socket().expect("keyed flows have ports"),
                pkt.dst_socket().expect("keyed flows have ports"),
            )
        });
        rec.observe(pkt, now, config);
        Some(rec)
    }

    /// Looks up a flow by key.
    pub fn get(&self, key: &FlowKey) -> Option<&FlowRecord> {
        self.flows.get(key)
    }

    /// Marks every flow whose server endpoint matches as confirmed proxy.
    pub fn confirm_server(&mut self, server: SocketAddr) {
        for rec in self.flows.values_mut() {
            if rec.server == server && rec.class == TrafficClass::Suspect {
                rec.class = TrafficClass::ShadowsocksConfirmed;
            }
        }
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}

/// OpenVPN data-channel framing check: our implementation (like the real
/// one) starts each datagram with an opcode/key-id byte from a small set.
fn is_openvpn_frame(payload: &[u8]) -> bool {
    match payload.first() {
        // P_CONTROL_HARD_RESET_CLIENT_V2 (0x38), server (0x40), P_DATA_V1
        // (0x30), P_ACK_V1 (0x28) — shifted opcodes as on the real wire.
        Some(0x38) | Some(0x40) | Some(0x30) | Some(0x28) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use sc_simnet::addr::Addr;
    use sc_simnet::packet::TcpSegmentBody;

    fn tcp_packet(src_port: u16, dst_port: u16, payload: &[u8]) -> Packet {
        Packet::tcp(
            SocketAddr::new(Addr::new(10, 0, 0, 1), src_port),
            SocketAddr::new(Addr::new(99, 0, 0, 1), dst_port),
            TcpSegmentBody {
                seq: 0,
                ack: 0,
                flags: sc_simnet::packet::TcpFlags::ACK,
                window: 0,
                payload: Bytes::copy_from_slice(payload),
            },
        )
    }

    #[test]
    fn flow_key_is_direction_independent() {
        let fwd = tcp_packet(5000, 443, b"x");
        let mut rev = fwd.clone();
        std::mem::swap(&mut rev.src, &mut rev.dst);
        if let L4::Tcp(t) = &mut rev.l4 {
            std::mem::swap(&mut t.src_port, &mut t.dst_port);
        }
        assert_eq!(FlowKey::from_packet(&fwd), FlowKey::from_packet(&rev));
    }

    #[test]
    fn classifies_http() {
        let cfg = GfwConfig::default();
        let mut table = FlowTable::new();
        let pkt = tcp_packet(5000, 80, b"GET /scholar HTTP/1.1\r\nHost: x\r\n\r\n");
        let rec = table.observe(&pkt, SimTime::ZERO, &cfg).unwrap();
        assert_eq!(rec.class, TrafficClass::Http);
    }

    #[test]
    fn classifies_pptp_and_gre() {
        let cfg = GfwConfig::default();
        let mut table = FlowTable::new();
        let rec_class = {
            let pkt = tcp_packet(5000, ports::PPTP, b"\x00\x9c\x00\x01");
            table.observe(&pkt, SimTime::ZERO, &cfg).unwrap().class
        };
        assert_eq!(rec_class, TrafficClass::Pptp);
        // GRE has no ports, so no flow key — handled at engine level.
        let gre = Packet::raw(Addr::new(10, 0, 0, 1), Addr::new(99, 0, 0, 1), proto::GRE, Bytes::new());
        assert!(FlowKey::from_packet(&gre).is_none());
    }

    #[test]
    fn classifies_tls_by_client_hello() {
        let cfg = GfwConfig::default();
        let mut table = FlowTable::new();
        let mut client = sc_netproto::tls::TlsClient::new("www.bing.com", 7);
        let hello = client.start_handshake();
        let pkt = tcp_packet(5000, 443, &hello);
        let rec = table.observe(&pkt, SimTime::ZERO, &cfg).unwrap();
        assert_eq!(rec.class, TrafficClass::Tls);
    }

    #[test]
    fn high_entropy_headerless_stream_is_suspect() {
        let cfg = GfwConfig::default();
        let mut table = FlowTable::new();
        // Simulate Shadowsocks first bytes: IV + AES-CFB ciphertext.
        use sc_crypto::aes::{Aes, KeySize};
        use sc_crypto::modes::Cfb;
        let mut cfb = Cfb::new(Aes::new(KeySize::Aes256, &[9; 32]).unwrap(), [1; 16]);
        let mut data = vec![0u8; 600];
        cfb.encrypt(&mut data);
        let pkt = tcp_packet(5000, 8388, &data);
        let rec = table.observe(&pkt, SimTime::ZERO, &cfg).unwrap();
        assert_eq!(rec.class, TrafficClass::Suspect);
    }

    #[test]
    fn http_like_cover_traffic_is_not_suspect() {
        let cfg = GfwConfig::default();
        let mut table = FlowTable::new();
        // ScholarCloud-style cover: printable HTTP header + binary body.
        let mut payload = b"POST /api/sync HTTP/1.1\r\nHost: cdn.example\r\nContent-Type: application/octet-stream\r\nContent-Length: 400\r\n\r\n".to_vec();
        payload.extend(std::iter::repeat(0xA7u8).take(100));
        let pkt = tcp_packet(5000, 8443, &payload);
        let rec = table.observe(&pkt, SimTime::ZERO, &cfg).unwrap();
        assert_eq!(rec.class, TrafficClass::Http);
    }

    #[test]
    fn learned_signature_overrides() {
        let mut cfg = GfwConfig::default();
        cfg.learned_signatures.push(b"POST /api/sync".to_vec());
        let mut table = FlowTable::new();
        let pkt = tcp_packet(5000, 8443, b"POST /api/sync HTTP/1.1\r\n\r\n");
        let rec = table.observe(&pkt, SimTime::ZERO, &cfg).unwrap();
        assert_eq!(rec.class, TrafficClass::LearnedSignature);
    }

    #[test]
    fn meek_poll_pattern_detected() {
        let cfg = GfwConfig::default();
        let mut table = FlowTable::new();
        let mut client = sc_netproto::tls::TlsClient::new("ajax.aliyun-front.example", 7);
        let hello = client.start_handshake();
        // ClientHello then 10 small uniform polls 100 ms apart.
        let mut class = TrafficClass::Unknown;
        let pkt = tcp_packet(5000, 443, &hello);
        table.observe(&pkt, SimTime::ZERO, &cfg);
        for i in 1..=10u64 {
            let poll = tcp_packet(5000, 443, &vec![0x17u8; 300]);
            let t = SimTime::from_micros(i * 100_000);
            class = table.observe(&poll, t, &cfg).unwrap().class;
        }
        assert_eq!(class, TrafficClass::Meek);
    }

    #[test]
    fn bulk_tls_is_not_meek() {
        let cfg = GfwConfig::default();
        let mut table = FlowTable::new();
        let mut client = sc_netproto::tls::TlsClient::new("cdn.example", 7);
        let hello = client.start_handshake();
        table.observe(&tcp_packet(5000, 443, &hello), SimTime::ZERO, &cfg);
        // Large segments, sub-millisecond apart: a download, not polling.
        let mut class = TrafficClass::Unknown;
        for i in 1..=10u64 {
            let seg = tcp_packet(5000, 443, &vec![0x17u8; 1400]);
            class = table
                .observe(&seg, SimTime::from_micros(i * 500), &cfg)
                .unwrap()
                .class;
        }
        assert_eq!(class, TrafficClass::Tls);
    }

    #[test]
    fn confirm_server_upgrades_suspects() {
        let cfg = GfwConfig::default();
        let mut table = FlowTable::new();
        let mut data = vec![0u8; 600];
        use sc_crypto::aes::{Aes, KeySize};
        use sc_crypto::modes::Ctr;
        Ctr::new(Aes::new(KeySize::Aes256, &[3; 32]).unwrap(), [0; 16]).apply(&mut data);
        let pkt = tcp_packet(5000, 8388, &data);
        table.observe(&pkt, SimTime::ZERO, &cfg);
        let server = SocketAddr::new(Addr::new(99, 0, 0, 1), 8388);
        table.confirm_server(server);
        let key = FlowKey::from_packet(&pkt).unwrap();
        assert_eq!(table.get(&key).unwrap().class, TrafficClass::ShadowsocksConfirmed);
    }
}
