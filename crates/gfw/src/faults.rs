//! GFW actions as injectable faults: blacklist (and un-blacklist)
//! verdicts scheduled on a [`FaultPlan`](sc_simnet::faults::FaultPlan).
//!
//! The paper's availability story hinges on the censor blacklisting
//! remote proxy IPs one by one (§4.2) while the service fails over.
//! These helpers wrap a blacklist mutation of the shared [`GfwHandle`]
//! in a [`Fault::Callback`], so "the GFW blackholes 99.0.0.41 at
//! t = 40 s" is one line of a fault plan — applied deterministically in
//! the simulation event loop and visible in the trace as a
//! `gfw/fault/…` event.

use sc_simnet::addr::Addr;
use sc_simnet::faults::Fault;

use crate::engine::GfwHandle;

/// A fault that adds `addr/32` to the GFW IP blacklist at its scheduled
/// time. Matching traffic is dropped at the border in both directions
/// (the engine checks source and destination addresses).
pub fn blacklist_ip(gfw: &GfwHandle, addr: Addr) -> Fault {
    let gfw = gfw.clone();
    Fault::Callback {
        label: "gfw_blacklist_ip",
        apply: Box::new(move |now| {
            let mut st = gfw.borrow_mut();
            if !st.config.ip_blacklist.contains(&(addr, 32)) {
                st.config.ip_blacklist.push((addr, 32));
            }
            sc_obs::counter_add("gfw.blacklist_updates", 1);
            sc_obs::emit(
                sc_obs::Event::new(
                    now.as_micros(),
                    sc_obs::Level::Info,
                    "gfw",
                    "fault",
                    "blacklist_ip",
                )
                .field("addr", addr.to_string()),
            );
        }),
    }
}

/// A fault that removes every blacklist entry covering exactly `addr/32`
/// (the inverse of [`blacklist_ip`]; broader prefixes are untouched).
pub fn unblacklist_ip(gfw: &GfwHandle, addr: Addr) -> Fault {
    let gfw = gfw.clone();
    Fault::Callback {
        label: "gfw_unblacklist_ip",
        apply: Box::new(move |now| {
            let mut st = gfw.borrow_mut();
            st.config.ip_blacklist.retain(|&(a, len)| !(a == addr && len == 32));
            sc_obs::counter_add("gfw.blacklist_updates", 1);
            sc_obs::emit(
                sc_obs::Event::new(
                    now.as_micros(),
                    sc_obs::Level::Info,
                    "gfw",
                    "fault",
                    "unblacklist_ip",
                )
                .field("addr", addr.to_string()),
            );
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GfwConfig;
    use crate::engine::new_gfw;
    use sc_simnet::time::SimTime;

    #[test]
    fn blacklist_fault_mutates_shared_state() {
        let gfw = new_gfw(GfwConfig::default());
        let target = Addr::new(99, 0, 0, 41);
        let mut add = blacklist_ip(&gfw, target);
        let mut remove = unblacklist_ip(&gfw, target);
        assert!(!gfw.borrow().config.ip_blocked(target));
        if let Fault::Callback { apply, .. } = &mut add {
            apply(SimTime::ZERO);
            apply(SimTime::ZERO); // idempotent: no duplicate entries
        }
        assert!(gfw.borrow().config.ip_blocked(target));
        assert_eq!(gfw.borrow().config.ip_blacklist.len(), 1);
        if let Fault::Callback { apply, .. } = &mut remove {
            apply(SimTime::ZERO);
        }
        assert!(!gfw.borrow().config.ip_blocked(target));
    }
}
