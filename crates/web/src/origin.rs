//! Origin servers: the Google Scholar model (Figure 4's session
//! structure) and a generic static site for baselines.
//!
//! The Scholar server:
//! * on port 80 answers every request with an HTTPS redirect (TCP-2);
//! * on port 443 speaks the simulated TLS and serves the page and its
//!   subresources (TCP-3);
//! * the separate `accounts.google.com` host serves the first-visit
//!   account-recording request (TCP-4).

use std::collections::HashMap;

use sc_netproto::http::{HttpMessage, HttpParser, HttpRequest, HttpResponse};
use sc_netproto::tls::TlsServer;
use sc_simnet::api::{App, AppEvent, TcpEvent, TcpHandle};
use sc_simnet::sim::Ctx;

use crate::page::PageSpec;

/// Server processing capacity model: requests are answered after a
/// service delay of `base + queued * per_request`, modelling the paper's
/// single-core VM saturating under concurrent clients (Figure 7).
#[derive(Debug, Clone, Copy)]
pub struct Capacity {
    /// Fixed per-request service time in microseconds.
    pub service_us: u64,
    /// Whether to model queueing at all.
    pub enabled: bool,
}

impl Default for Capacity {
    fn default() -> Self {
        // A 2.3 GHz single-core VM serving ~3000 simple requests/s.
        Capacity { service_us: 330, enabled: true }
    }
}

struct Session {
    tls: Option<TlsServer>,
    http: HttpParser,
}

/// An HTTPS (and redirecting HTTP) origin serving a [`PageSpec`].
pub struct OriginServer {
    host: String,
    page: PageSpec,
    entropy: u64,
    capacity: Capacity,
    /// `max-age` (seconds) advertised on every cacheable response. Long
    /// by default so the paper scenarios' in-run cache behavior is
    /// unchanged; cache experiments shorten it to exercise
    /// revalidation.
    max_age: u64,
    /// Serve the page directly on port 80 instead of redirecting to
    /// HTTPS — the configuration the domestic proxy's shared cache sees
    /// (only absolute-form plain HTTP exposes HTTP semantics to it).
    serve_http: bool,
    sessions: HashMap<TcpHandle, Session>,
    /// Pending responses waiting out the service delay: token → (conn,
    /// wire bytes, origin span closed when the response leaves).
    pending: HashMap<u64, (TcpHandle, Vec<u8>, sc_obs::SpanId)>,
    next_token: u64,
    /// Time at which the single service core frees up (µs).
    busy_until_us: u64,
    /// Requests served (diagnostics).
    pub requests: u64,
    /// Conditional requests answered with a cheap 304 (diagnostics).
    pub not_modified: u64,
}

impl OriginServer {
    /// Creates an origin for `host` serving `page`.
    pub fn new(host: &str, page: PageSpec, entropy: u64) -> Self {
        OriginServer {
            host: host.to_string(),
            page,
            entropy,
            capacity: Capacity::default(),
            max_age: 86_400,
            serve_http: false,
            sessions: HashMap::new(),
            pending: HashMap::new(),
            next_token: 1,
            busy_until_us: 0,
            requests: 0,
            not_modified: 0,
        }
    }

    /// Overrides the capacity model.
    pub fn with_capacity(mut self, capacity: Capacity) -> Self {
        self.capacity = capacity;
        self
    }

    /// Overrides the advertised `max-age` (seconds).
    pub fn with_max_age(mut self, secs: u64) -> Self {
        self.max_age = secs;
        self
    }

    /// Serves the page on port 80 instead of redirecting to HTTPS.
    pub fn with_http_serving(mut self) -> Self {
        self.serve_http = true;
        self
    }

    /// Deterministic validator for the representation at `path`: a hash
    /// of the page entropy, the host, the path, and the body length, so
    /// the same seeded run always produces the same ETag and a content
    /// change (different entropy or length) changes it.
    pub fn etag_for(&self, path: &str, body_len: usize) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&self.entropy.to_le_bytes());
        eat(self.host.as_bytes());
        eat(path.as_bytes());
        eat(&(body_len as u64).to_le_bytes());
        format!("\"{h:016x}\"")
    }

    /// Deterministic `Last-Modified` stamp derived from the page entropy
    /// (the sim has no wall clock; the value only needs to be stable).
    fn last_modified(&self) -> String {
        format!(
            "Wed, 01 Mar 2017 {:02}:{:02}:{:02} GMT",
            self.entropy % 24,
            (self.entropy / 24) % 60,
            (self.entropy / 1440) % 60
        )
    }

    fn with_validators(&self, resp: HttpResponse, etag: &str) -> HttpResponse {
        resp.header("ETag", etag)
            .header("Last-Modified", &self.last_modified())
            .header("Cache-Control", &format!("public, max-age={}", self.max_age))
    }

    fn response_for(&mut self, req: &HttpRequest) -> HttpResponse {
        if req.method == "HEAD" {
            return HttpResponse::new(204, Vec::new());
        }
        let body = if req.target == "/" || req.target.starts_with("/scholar") {
            Some((self.page.render_html(), "text/html"))
        } else if let Some(res) = self.page.resources.iter().find(|r| r.path == req.target) {
            Some((vec![b'x'; res.len], "application/octet-stream"))
        } else {
            None
        };
        let Some((body, content_type)) = body else {
            return HttpResponse::new(404, Vec::new());
        };
        let etag = self.etag_for(&req.target, body.len());
        // A matching validator gets the cheap 304-style exchange: no
        // body, and a quarter of the service time (no rendering).
        if req.header_value("If-None-Match") == Some(etag.as_str()) {
            self.not_modified += 1;
            return self.with_validators(HttpResponse::new(304, Vec::new()), &etag);
        }
        self.with_validators(
            HttpResponse::new(200, body).header("Content-Type", content_type),
            &etag,
        )
    }

    /// Queues `wire` for transmission after the modelled service delay.
    fn respond(&mut self, h: TcpHandle, wire: Vec<u8>, span: sc_obs::SpanId, ctx: &mut Ctx<'_>) {
        let cost = self.capacity.service_us;
        self.respond_with_cost(h, wire, cost, span, ctx);
    }

    /// Like [`respond`](Self::respond) but with an explicit service cost
    /// (a 304 skips body rendering, so it is cheaper than a full page).
    /// The origin span stays open until the response is actually sent, so
    /// its duration covers queueing for the service core too.
    fn respond_with_cost(
        &mut self,
        h: TcpHandle,
        wire: Vec<u8>,
        cost_us: u64,
        span: sc_obs::SpanId,
        ctx: &mut Ctx<'_>,
    ) {
        self.requests += 1;
        if !self.capacity.enabled {
            ctx.tcp_send(h, &wire);
            sc_obs::span_end(ctx.now().as_micros(), span, Vec::new());
            return;
        }
        let now_us = ctx.now().as_micros();
        let start = self.busy_until_us.max(now_us);
        let done = start + cost_us;
        self.busy_until_us = done;
        let delay = sc_simnet::time::SimDuration::from_micros(done - now_us);
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, (h, wire, span));
        ctx.set_timer(delay, token);
    }
}

impl App for OriginServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(80);
        ctx.tcp_listen(443);
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        match ev {
            AppEvent::TimerFired(token) => {
                if let Some((h, wire, span)) = self.pending.remove(&token) {
                    ctx.tcp_send(h, &wire);
                    sc_obs::span_end(ctx.now().as_micros(), span, Vec::new());
                }
            }
            AppEvent::Tcp(h, TcpEvent::Accepted { .. }) => {
                let port = ctx.tcp_local(h).map(|l| l.port).unwrap_or(443);
                let tls = (port == 443).then(|| TlsServer::new(self.entropy ^ h.0 as u64));
                self.sessions.insert(h, Session { tls, http: HttpParser::new() });
            }
            AppEvent::Tcp(h, TcpEvent::DataReceived) => {
                let data = ctx.tcp_recv_all(h);
                let Some(session) = self.sessions.get_mut(&h) else { return };
                let mut requests = Vec::new();
                match session.tls.as_mut() {
                    Some(tls) => {
                        let Ok(out) = tls.on_bytes(&data) else {
                            ctx.tcp_abort(h);
                            self.sessions.remove(&h);
                            return;
                        };
                        if !out.wire.is_empty() {
                            ctx.tcp_send(h, &out.wire);
                        }
                        if !out.plaintext.is_empty() {
                            if let Ok(msgs) = session.http.push(&out.plaintext) {
                                for m in msgs {
                                    if let HttpMessage::Request(r) = m {
                                        requests.push(r);
                                    }
                                }
                            }
                        }
                    }
                    None => {
                        if let Ok(msgs) = session.http.push(&data) {
                            for m in msgs {
                                if let HttpMessage::Request(r) = m {
                                    requests.push(r);
                                }
                            }
                        }
                    }
                }
                for req in requests {
                    let is_tls = session_is_tls(&self.sessions, h);
                    // Requests arriving with trace context get an origin
                    // span parented into the originating load's tree: it
                    // covers the modelled service (and core-queueing)
                    // time, the deepest tier of the waterfall.
                    let tctx = req
                        .header_value(sc_obs::TRACE_HEADER)
                        .and_then(sc_obs::TraceCtx::parse)
                        .unwrap_or(sc_obs::TraceCtx::NONE);
                    let span = sc_obs::span_start_ctx(
                        ctx.now().as_micros(),
                        sc_obs::Level::Debug,
                        "web",
                        "origin",
                        "origin",
                        tctx,
                        vec![("path", req.target.clone().into())],
                    );
                    if !is_tls && !self.serve_http {
                        // Port 80: HTTPS redirect (Figure 4's TCP-2).
                        let resp = HttpResponse::new(301, Vec::new())
                            .header("Location", &format!("https://{}{}", self.host, req.target));
                        self.respond(h, resp.encode(), span, ctx);
                        continue;
                    }
                    let resp = self.response_for(&req);
                    let cost = if resp.status == 304 {
                        // No body rendered: a quarter of the service time.
                        (self.capacity.service_us / 4).max(1)
                    } else {
                        self.capacity.service_us
                    };
                    let wire = if is_tls {
                        let session = self.sessions.get_mut(&h).expect("session exists");
                        let tls = session.tls.as_mut().expect("tls session");
                        tls.send(&resp.encode())
                    } else {
                        resp.encode()
                    };
                    self.respond_with_cost(h, wire, cost, span, ctx);
                }
            }
            AppEvent::Tcp(h, TcpEvent::PeerClosed | TcpEvent::Reset) => {
                self.sessions.remove(&h);
            }
            _ => {}
        }
    }
}

fn session_is_tls(sessions: &HashMap<TcpHandle, Session>, h: TcpHandle) -> bool {
    sessions.get(&h).is_some_and(|s| s.tls.is_some())
}

/// A plain-HTTP static site (baseline measurements, decoys).
pub struct StaticSite {
    page: PageSpec,
    parsers: HashMap<TcpHandle, HttpParser>,
}

impl StaticSite {
    /// Creates a site serving `page` over plain HTTP on port 80.
    pub fn new(page: PageSpec) -> Self {
        StaticSite { page, parsers: HashMap::new() }
    }
}

impl App for StaticSite {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(80);
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        let AppEvent::Tcp(h, tcp_ev) = ev else { return };
        match tcp_ev {
            TcpEvent::Accepted { .. } => {
                self.parsers.insert(h, HttpParser::new());
            }
            TcpEvent::DataReceived => {
                let data = ctx.tcp_recv_all(h);
                let Some(parser) = self.parsers.get_mut(&h) else { return };
                let Ok(msgs) = parser.push(&data) else {
                    ctx.tcp_abort(h);
                    return;
                };
                for m in msgs {
                    if let HttpMessage::Request(req) = m {
                        let resp = if req.target == "/" {
                            HttpResponse::new(200, self.page.render_html())
                        } else if let Some(r) =
                            self.page.resources.iter().find(|r| r.path == req.target)
                        {
                            HttpResponse::new(200, vec![b'y'; r.len])
                        } else if req.method == "HEAD" {
                            HttpResponse::new(204, Vec::new())
                        } else {
                            HttpResponse::new(404, Vec::new())
                        };
                        ctx.tcp_send(h, &resp.encode());
                    }
                }
            }
            TcpEvent::PeerClosed | TcpEvent::Reset => {
                self.parsers.remove(&h);
            }
            _ => {}
        }
    }
}
