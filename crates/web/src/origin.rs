//! Origin servers: the Google Scholar model (Figure 4's session
//! structure) and a generic static site for baselines.
//!
//! The Scholar server:
//! * on port 80 answers every request with an HTTPS redirect (TCP-2);
//! * on port 443 speaks the simulated TLS and serves the page and its
//!   subresources (TCP-3);
//! * the separate `accounts.google.com` host serves the first-visit
//!   account-recording request (TCP-4).

use std::collections::HashMap;

use sc_netproto::http::{HttpMessage, HttpParser, HttpRequest, HttpResponse};
use sc_netproto::tls::TlsServer;
use sc_simnet::api::{App, AppEvent, TcpEvent, TcpHandle};
use sc_simnet::sim::Ctx;

use crate::page::PageSpec;

/// Server processing capacity model: requests are answered after a
/// service delay of `base + queued * per_request`, modelling the paper's
/// single-core VM saturating under concurrent clients (Figure 7).
#[derive(Debug, Clone, Copy)]
pub struct Capacity {
    /// Fixed per-request service time in microseconds.
    pub service_us: u64,
    /// Whether to model queueing at all.
    pub enabled: bool,
}

impl Default for Capacity {
    fn default() -> Self {
        // A 2.3 GHz single-core VM serving ~3000 simple requests/s.
        Capacity { service_us: 330, enabled: true }
    }
}

struct Session {
    tls: Option<TlsServer>,
    http: HttpParser,
}

/// An HTTPS (and redirecting HTTP) origin serving a [`PageSpec`].
pub struct OriginServer {
    host: String,
    page: PageSpec,
    entropy: u64,
    capacity: Capacity,
    sessions: HashMap<TcpHandle, Session>,
    /// Pending responses waiting out the service delay: token → (conn,
    /// wire bytes, via TLS).
    pending: HashMap<u64, (TcpHandle, Vec<u8>)>,
    next_token: u64,
    /// Time at which the single service core frees up (µs).
    busy_until_us: u64,
    /// Requests served (diagnostics).
    pub requests: u64,
}

impl OriginServer {
    /// Creates an origin for `host` serving `page`.
    pub fn new(host: &str, page: PageSpec, entropy: u64) -> Self {
        OriginServer {
            host: host.to_string(),
            page,
            entropy,
            capacity: Capacity::default(),
            sessions: HashMap::new(),
            pending: HashMap::new(),
            next_token: 1,
            busy_until_us: 0,
            requests: 0,
        }
    }

    /// Overrides the capacity model.
    pub fn with_capacity(mut self, capacity: Capacity) -> Self {
        self.capacity = capacity;
        self
    }

    fn response_for(&self, req: &HttpRequest) -> HttpResponse {
        if req.method == "HEAD" {
            return HttpResponse::new(204, Vec::new());
        }
        if req.target == "/" || req.target.starts_with("/scholar") {
            return HttpResponse::new(200, self.page.render_html())
                .header("Content-Type", "text/html");
        }
        if let Some(res) = self.page.resources.iter().find(|r| r.path == req.target) {
            return HttpResponse::new(200, vec![b'x'; res.len])
                .header("Content-Type", "application/octet-stream");
        }
        HttpResponse::new(404, Vec::new())
    }

    /// Queues `wire` for transmission after the modelled service delay.
    fn respond(&mut self, h: TcpHandle, wire: Vec<u8>, ctx: &mut Ctx<'_>) {
        self.requests += 1;
        if !self.capacity.enabled {
            ctx.tcp_send(h, &wire);
            return;
        }
        let now_us = ctx.now().as_micros();
        let start = self.busy_until_us.max(now_us);
        let done = start + self.capacity.service_us;
        self.busy_until_us = done;
        let delay = sc_simnet::time::SimDuration::from_micros(done - now_us);
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, (h, wire));
        ctx.set_timer(delay, token);
    }
}

impl App for OriginServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(80);
        ctx.tcp_listen(443);
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        match ev {
            AppEvent::TimerFired(token) => {
                if let Some((h, wire)) = self.pending.remove(&token) {
                    ctx.tcp_send(h, &wire);
                }
            }
            AppEvent::Tcp(h, TcpEvent::Accepted { .. }) => {
                let port = ctx.tcp_local(h).map(|l| l.port).unwrap_or(443);
                let tls = (port == 443).then(|| TlsServer::new(self.entropy ^ h.0 as u64));
                self.sessions.insert(h, Session { tls, http: HttpParser::new() });
            }
            AppEvent::Tcp(h, TcpEvent::DataReceived) => {
                let data = ctx.tcp_recv_all(h);
                let Some(session) = self.sessions.get_mut(&h) else { return };
                let mut requests = Vec::new();
                match session.tls.as_mut() {
                    Some(tls) => {
                        let Ok(out) = tls.on_bytes(&data) else {
                            ctx.tcp_abort(h);
                            self.sessions.remove(&h);
                            return;
                        };
                        if !out.wire.is_empty() {
                            ctx.tcp_send(h, &out.wire);
                        }
                        if !out.plaintext.is_empty() {
                            if let Ok(msgs) = session.http.push(&out.plaintext) {
                                for m in msgs {
                                    if let HttpMessage::Request(r) = m {
                                        requests.push(r);
                                    }
                                }
                            }
                        }
                    }
                    None => {
                        if let Ok(msgs) = session.http.push(&data) {
                            for m in msgs {
                                if let HttpMessage::Request(r) = m {
                                    requests.push(r);
                                }
                            }
                        }
                    }
                }
                for req in requests {
                    let is_tls = session_is_tls(&self.sessions, h);
                    if !is_tls {
                        // Port 80: HTTPS redirect (Figure 4's TCP-2).
                        let resp = HttpResponse::new(301, Vec::new())
                            .header("Location", &format!("https://{}{}", self.host, req.target));
                        self.respond(h, resp.encode(), ctx);
                        continue;
                    }
                    let resp = self.response_for(&req);
                    let wire = {
                        let session = self.sessions.get_mut(&h).expect("session exists");
                        let tls = session.tls.as_mut().expect("tls session");
                        tls.send(&resp.encode())
                    };
                    self.respond(h, wire, ctx);
                }
            }
            AppEvent::Tcp(h, TcpEvent::PeerClosed | TcpEvent::Reset) => {
                self.sessions.remove(&h);
            }
            _ => {}
        }
    }
}

fn session_is_tls(sessions: &HashMap<TcpHandle, Session>, h: TcpHandle) -> bool {
    sessions.get(&h).is_some_and(|s| s.tls.is_some())
}

/// A plain-HTTP static site (baseline measurements, decoys).
pub struct StaticSite {
    page: PageSpec,
    parsers: HashMap<TcpHandle, HttpParser>,
}

impl StaticSite {
    /// Creates a site serving `page` over plain HTTP on port 80.
    pub fn new(page: PageSpec) -> Self {
        StaticSite { page, parsers: HashMap::new() }
    }
}

impl App for StaticSite {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(80);
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        let AppEvent::Tcp(h, tcp_ev) = ev else { return };
        match tcp_ev {
            TcpEvent::Accepted { .. } => {
                self.parsers.insert(h, HttpParser::new());
            }
            TcpEvent::DataReceived => {
                let data = ctx.tcp_recv_all(h);
                let Some(parser) = self.parsers.get_mut(&h) else { return };
                let Ok(msgs) = parser.push(&data) else {
                    ctx.tcp_abort(h);
                    return;
                };
                for m in msgs {
                    if let HttpMessage::Request(req) = m {
                        let resp = if req.target == "/" {
                            HttpResponse::new(200, self.page.render_html())
                        } else if let Some(r) =
                            self.page.resources.iter().find(|r| r.path == req.target)
                        {
                            HttpResponse::new(200, vec![b'y'; r.len])
                        } else if req.method == "HEAD" {
                            HttpResponse::new(204, Vec::new())
                        } else {
                            HttpResponse::new(404, Vec::new())
                        };
                        ctx.tcp_send(h, &resp.encode());
                    }
                }
            }
            TcpEvent::PeerClosed | TcpEvent::Reset => {
                self.parsers.remove(&h);
            }
            _ => {}
        }
    }
}
