//! The page model: what a Google Scholar page load consists of.
//!
//! A page is an HTML document plus subresources. The HTML body carries a
//! plain-text manifest the browser model parses; the Figure-4 structure is
//! reproduced by an extra "account recording" resource on a separate host
//! that is fetched only on a first visit (TCP-4 in the paper).

/// One subresource referenced by a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// Host serving the resource.
    pub host: String,
    /// Path on that host.
    pub path: String,
    /// Body size in bytes.
    pub len: usize,
    /// Fetched only on first visits (the account-recording connection).
    pub first_visit_only: bool,
}

/// A page: HTML plus subresources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageSpec {
    /// Size of the HTML document body (manifest lines + padding).
    pub html_len: usize,
    /// Subresources.
    pub resources: Vec<Resource>,
}

impl PageSpec {
    /// The Google Scholar home page model. Sized so that one full direct
    /// access moves ≈19 KB — the paper's Figure 6a baseline.
    pub fn google_scholar() -> Self {
        PageSpec {
            html_len: 6_000,
            resources: vec![
                Resource {
                    host: "scholar.google.com".into(),
                    path: "/css/scholar.css".into(),
                    len: 3_000,
                    first_visit_only: false,
                },
                Resource {
                    host: "scholar.google.com".into(),
                    path: "/js/scholar.js".into(),
                    len: 5_000,
                    first_visit_only: false,
                },
                Resource {
                    host: "scholar.google.com".into(),
                    path: "/img/scholar-logo.png".into(),
                    len: 3_500,
                    first_visit_only: false,
                },
                Resource {
                    host: "accounts.google.com".into(),
                    path: "/recordlogin".into(),
                    len: 400,
                    first_visit_only: true,
                },
            ],
        }
    }

    /// A host that serves a handful of standalone endpoints (the
    /// account-recording host): each endpoint is exposed as a resource so
    /// [`OriginServer`](crate::origin::OriginServer) will serve it.
    pub fn endpoints(host: &str, paths: &[(&str, usize)]) -> Self {
        PageSpec {
            html_len: 200,
            resources: paths
                .iter()
                .map(|(path, len)| Resource {
                    host: host.into(),
                    path: (*path).into(),
                    len: *len,
                    first_visit_only: false,
                })
                .collect(),
        }
    }

    /// A small unblocked page (the Amazon-like domestic/US baseline).
    pub fn simple(host: &str, html_len: usize) -> Self {
        PageSpec {
            html_len,
            resources: vec![Resource {
                host: host.into(),
                path: "/style.css".into(),
                len: 2_000,
                first_visit_only: false,
            }],
        }
    }

    /// Renders the HTML body: manifest lines followed by padding.
    pub fn render_html(&self) -> Vec<u8> {
        let mut body = String::from("<!doctype html><!-- scholar page -->\n");
        for r in &self.resources {
            body.push_str(&format!(
                "RES {} {} {} {}\n",
                r.host,
                r.path,
                r.len,
                if r.first_visit_only { "first" } else { "always" }
            ));
        }
        let mut bytes = body.into_bytes();
        while bytes.len() < self.html_len {
            bytes.extend_from_slice(b"<p>scholarly padding content for realistic sizing</p>\n");
        }
        bytes.truncate(self.html_len);
        bytes
    }

    /// Parses the manifest back out of an HTML body.
    pub fn parse_manifest(html: &[u8]) -> Vec<Resource> {
        let text = String::from_utf8_lossy(html);
        text.lines()
            .filter_map(|line| {
                let mut parts = line.strip_prefix("RES ")?.split(' ');
                let host = parts.next()?.to_string();
                let path = parts.next()?.to_string();
                let len: usize = parts.next()?.parse().ok()?;
                let first = parts.next()? == "first";
                Some(Resource { host, path, len, first_visit_only: first })
            })
            .collect()
    }

    /// Total bytes fetched on a first visit (HTML + all resources).
    pub fn first_visit_bytes(&self) -> usize {
        self.html_len + self.resources.iter().map(|r| r.len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrip() {
        let page = PageSpec::google_scholar();
        let html = page.render_html();
        assert_eq!(html.len(), page.html_len);
        let parsed = PageSpec::parse_manifest(&html);
        assert_eq!(parsed, page.resources);
    }

    #[test]
    fn scholar_page_is_about_19_kb() {
        // The paper's direct-access baseline traffic is ~19 KB.
        let total = PageSpec::google_scholar().first_visit_bytes();
        assert!((17_000..=20_000).contains(&total), "total {total}");
    }

    #[test]
    fn account_resource_is_first_visit_only() {
        let page = PageSpec::google_scholar();
        let firsts: Vec<_> = page.resources.iter().filter(|r| r.first_visit_only).collect();
        assert_eq!(firsts.len(), 1);
        assert_eq!(firsts[0].host, "accounts.google.com");
    }

    #[test]
    fn manifest_ignores_padding() {
        let page = PageSpec::simple("example.com", 4_000);
        let html = page.render_html();
        let parsed = PageSpec::parse_manifest(&html);
        assert_eq!(parsed.len(), 1);
    }
}
