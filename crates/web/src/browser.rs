//! The browser model: loads pages over any access method (direct, SOCKS
//! proxy, HTTP proxy, PAC policy), with a DNS cache and a content cache —
//! the two caches whose cold state makes first-time page loads slower
//! (§4.3), plus the first-visit account-recording connection (TCP-4).
//!
//! Page load time is measured exactly as in the paper's methodology: from
//! navigation start until every referenced resource has arrived; a page
//! is loaded once a minute so consecutive accesses do not overlap.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use sc_dns::stub::{ResolveOutcome, StubResolver};
use sc_netproto::http::{HttpMessage, HttpParser, HttpRequest, HttpResponse};
use sc_netproto::pac::PacFile;
use sc_netproto::tls::TlsClient;
use sc_simnet::addr::{Addr, SocketAddr};
use sc_simnet::api::{App, AppEvent, TcpEvent, TcpHandle};
use sc_simnet::sim::Ctx;
use sc_simnet::time::{SimDuration, SimTime};

/// How the browser reaches the network.
#[derive(Debug, Clone)]
pub enum ProxyPolicy {
    /// Connect directly (also used under transparent VPN tunnels).
    Direct,
    /// All traffic through a local SOCKS5 proxy (Shadowsocks, Tor).
    Socks(SocketAddr),
    /// Route per PAC file (ScholarCloud).
    Pac(PacFile),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    Direct,
    Socks(SocketAddr),
    HttpProxy(SocketAddr),
}

/// Poll interval while waiting for a tunnel to come up.
const WAIT_POLL: SimDuration = SimDuration::from_millis(50);
const TIMER_NEXT_LOAD: u64 = 1;
const TIMER_WAIT: u64 = 2;
const TIMER_DNS_RETRY: u64 = 3;
/// Staggered-start (load-ramp) delay before the browser begins.
const TIMER_RAMP: u64 = 4;
/// Backoff after the proxy throttled us (`429`/`503` + `Retry-After`).
const TIMER_THROTTLE: u64 = 5;
/// Proxy-connect deadline tokens start here (load deadlines use
/// `1_000 + seq`, so the two spaces never collide).
const TIMER_CONNECT_BASE: u64 = 1_000_000;
/// First re-probe delay after a PAC proxy is marked dead; doubles per
/// consecutive failure up to [`PROXY_DEAD_CAP`]. Mirrors the fleet
/// tier's own peer dead-marking so client and server views converge.
const PROXY_DEAD_BASE: SimDuration = SimDuration::from_millis(500);
/// Upper bound on the dead-proxy re-probe backoff.
const PROXY_DEAD_CAP: SimDuration = SimDuration::from_secs(8);
/// PAC failover retries per load: each dead-marks one proxy and
/// replays the page through the next candidate, so a whole small fleet
/// can be walked within one load's deadline.
const MAX_FAILOVER_RETRIES: u32 = 4;
/// Stub resolver retransmission interval.
const DNS_RETRY: SimDuration = SimDuration::from_secs(1);
/// Freshness lifetime assumed for responses that carry no `max-age`
/// (heuristic caching, like real browsers do for validator-only
/// responses).
const DEFAULT_CONTENT_TTL: SimDuration = SimDuration::from_secs(300);

/// Readiness gate the browser waits on before its first load (Tor's
/// bootstrap, a VPN handshake). `None` means start immediately.
pub type ReadyGate = Option<sc_ready::ReadyProbe>;

/// Minimal readiness probe, kept separate so sc-web does not depend on
/// sc-tunnels: any `Fn() -> bool` shared handle.
pub mod sc_ready {
    use std::rc::Rc;

    /// A cloneable readiness probe.
    #[derive(Clone)]
    pub struct ReadyProbe(Rc<dyn Fn() -> bool>);

    impl ReadyProbe {
        /// Wraps a readiness check.
        pub fn new(f: impl Fn() -> bool + 'static) -> Self {
            ReadyProbe(Rc::new(f))
        }

        /// Whether the gate is open.
        pub fn is_ready(&self) -> bool {
            (self.0)()
        }
    }

    impl core::fmt::Debug for ReadyProbe {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.debug_struct("ReadyProbe").finish_non_exhaustive()
        }
    }
}

/// Browser configuration.
#[derive(Debug, Clone)]
pub struct BrowserConfig {
    /// DNS resolver used for direct routes.
    pub resolver: Addr,
    /// Access method.
    pub policy: ProxyPolicy,
    /// Host of the page to load.
    pub page_host: String,
    /// 443 for HTTPS pages, 80 for plain HTTP.
    pub page_port: u16,
    /// Gap between consecutive page loads (the paper used 60 s).
    pub interval: SimDuration,
    /// Number of loads to perform.
    pub loads: usize,
    /// Deterministic entropy for TLS.
    pub entropy: u64,
    /// Per-load timeout after which the load is recorded as failed.
    pub timeout: SimDuration,
    /// Delay before the browser starts at all (load-ramp scenarios where
    /// clients come online staggered). The PLT clock starts *after* the
    /// delay, so a ramped client's first load is not charged for it.
    pub start_delay: SimDuration,
    /// Whether a `429`/`503` proxy answer carrying `Retry-After` makes
    /// the browser back off and retry the page within the same load
    /// (well-behaved client under overload control) instead of failing
    /// immediately.
    pub honor_retry_after: bool,
    /// Retry-After retries per load before giving up. The backoff is
    /// deterministic: `Retry-After × 2^attempt`, no jitter.
    pub max_throttle_retries: u32,
    /// Connect deadline for a PAC proxy candidate when the policy has a
    /// fallback list (≥ 2 proxies): a crashed proxy drops SYNs
    /// silently, so without this the browser would wait out the whole
    /// load deadline instead of failing over down the PAC list.
    pub proxy_connect_timeout: SimDuration,
}

impl BrowserConfig {
    /// A typical scholar-measurement config: HTTPS page, one load per
    /// minute.
    pub fn scholar(resolver: Addr, policy: ProxyPolicy) -> Self {
        BrowserConfig {
            resolver,
            policy,
            page_host: "scholar.google.com".into(),
            page_port: 443,
            interval: SimDuration::from_secs(60),
            loads: 10,
            entropy: 7,
            timeout: SimDuration::from_secs(55),
            start_delay: SimDuration::ZERO,
            honor_retry_after: true,
            max_throttle_retries: 3,
            proxy_connect_timeout: SimDuration::from_secs(1),
        }
    }
}

/// Result of one page load.
#[derive(Debug, Clone)]
pub struct PageLoadResult {
    /// Load index (0 = first).
    pub index: usize,
    /// Navigation start.
    pub started: SimTime,
    /// Page load time, if the load completed.
    pub plt: Option<SimDuration>,
    /// Whether caches were cold.
    pub first_time: bool,
    /// Application-level round-trip time sampled after the load.
    pub rtt: Option<SimDuration>,
    /// The load failed (reset, refused, or timed out).
    pub failed: bool,
    /// TCP connections opened for this load.
    pub connections: usize,
    /// Non-200 status an HTTP proxy answered CONNECT with, when that is
    /// what failed the load (`403` off-whitelist, `429` throttled,
    /// `502` upstream tunnel exhausted, `503` every upstream dark or
    /// shed) — the user-visible difference between "refused" and
    /// "temporarily degraded". Kept on successful loads too when a
    /// throttle was overcome along the way.
    pub proxy_status: Option<u16>,
    /// The proxy throttled this load (`429`, or `503` with
    /// `Retry-After`) at least once — distinct from a hard failure: a
    /// throttled load may still have succeeded after backing off.
    pub throttled: bool,
    /// Resources served from the browser's own cache after a cheap
    /// conditional revalidation (`304 Not Modified`) during this load.
    pub revalidated: usize,
}

/// A cached representation in the browser's content cache: the body plus
/// the freshness/validator metadata HTTP caching runs on. While the entry
/// is fresh the browser does not refetch at all; once stale it refetches
/// conditionally (`If-None-Match`), and a `304` renews the entry without
/// transferring the body again.
#[derive(Debug, Clone)]
struct CachedContent {
    etag: Option<String>,
    expires_at: SimTime,
    body: Vec<u8>,
}

/// Shared log the harness reads results from.
pub type LoadLog = Rc<RefCell<Vec<PageLoadResult>>>;

/// Creates an empty load log.
pub fn new_load_log() -> LoadLog {
    Rc::new(RefCell::new(Vec::new()))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnPhase {
    Connecting,
    SocksGreetSent,
    SocksConnectSent,
    ProxyConnectSent,
    TlsHandshake,
    Ready,
}

struct Conn {
    host: String,
    port: u16,
    phase: ConnPhase,
    connect_span: sc_obs::SpanId,
    tunnel_span: sc_obs::SpanId,
    fetch_span: sc_obs::SpanId,
    route: Route,
    tls: Option<TlsClient>,
    http: HttpParser,
    proxy_http: HttpParser,
    queue: VecDeque<String>,
    current: Option<String>,
    rtt_probe_sent: Option<SimTime>,
}

struct ActiveLoad {
    index: usize,
    started: SimTime,
    span: sc_obs::SpanId,
    /// Deterministic end-to-end trace id minted for this load; carried
    /// on every request this load issues (`Sc-Trace`) so downstream
    /// tiers can parent their spans into this load's tree.
    trace: sc_obs::TraceId,
    pending: usize,
    first_time: bool,
    connections: usize,
    deadline_token: u64,
    proxy_status: Option<u16>,
    /// Retry-After retries taken so far in this load.
    throttle_retries: u32,
    /// PAC failover retries taken so far in this load (each one
    /// dead-marked a proxy and replayed the page via the next).
    failover_retries: u32,
    /// The load was throttled at least once.
    throttled: bool,
    /// 304-revalidated resources in this load.
    revalidated: usize,
}

/// Per-PAC-proxy liveness as seen by this browser: proxies are marked
/// dead on connect failure/timeout and re-probed after a deterministic
/// exponential backoff (the re-probe is simply the next routed
/// connect).
#[derive(Debug, Clone, Copy, Default)]
struct ProxyHealth {
    dead_until: SimTime,
    fail_level: u32,
}

/// The browser app.
pub struct Browser {
    config: BrowserConfig,
    gate: ReadyGate,
    stub: StubResolver,
    conns: HashMap<TcpHandle, Conn>,
    /// host:port → open connection (reused within a load).
    by_host: HashMap<(String, u16), TcpHandle>,
    pending_dns: HashMap<u64, (String, u16, String)>,
    dns_spans: HashMap<u64, sc_obs::SpanId>,
    next_dns_token: u64,
    content_cache: HashMap<(String, String), CachedContent>,
    load: Option<ActiveLoad>,
    loads_done: usize,
    visited: bool,
    /// When the browser itself started (load 0's PLT clock includes any
    /// tunnel bootstrap the gate made it wait for, like the paper's Tor
    /// first-time measurements).
    browser_started: SimTime,
    log: LoadLog,
    deadline_seq: u64,
    rtt_conn: Option<TcpHandle>,
    /// An armed [`TIMER_THROTTLE`] belongs to the load with this
    /// deadline token (stale firings for finished loads are ignored).
    throttle_wait_for: Option<u64>,
    /// Dead-mark state per PAC proxy (parallel to the PAC's ordered
    /// fallback list; empty outside PAC policies).
    proxy_dead: Vec<ProxyHealth>,
    /// Armed proxy-connect deadlines: token → the conn it guards.
    connect_deadlines: HashMap<u64, TcpHandle>,
    connect_seq: u64,
}

impl Browser {
    /// Creates a browser writing results into `log`; if `gate` is given,
    /// the first load waits for it.
    pub fn new(config: BrowserConfig, gate: ReadyGate, log: LoadLog) -> Self {
        let stub = StubResolver::new(config.resolver);
        let proxy_dead = match &config.policy {
            ProxyPolicy::Pac(pac) => vec![ProxyHealth::default(); pac.proxies.len()],
            _ => Vec::new(),
        };
        Browser {
            config,
            gate,
            stub,
            conns: HashMap::new(),
            by_host: HashMap::new(),
            pending_dns: HashMap::new(),
            dns_spans: HashMap::new(),
            next_dns_token: 1,
            content_cache: HashMap::new(),
            load: None,
            loads_done: 0,
            visited: false,
            browser_started: SimTime::ZERO,
            log,
            deadline_seq: 0,
            rtt_conn: None,
            throttle_wait_for: None,
            proxy_dead,
            connect_deadlines: HashMap::new(),
            connect_seq: 0,
        }
    }

    /// Trace context of the in-flight load: its trace id, parented on
    /// the page-load root span. Empty when no load is active.
    fn load_ctx(&self) -> sc_obs::TraceCtx {
        match self.load.as_ref() {
            Some(l) => sc_obs::TraceCtx::new(l.trace, l.span),
            None => sc_obs::TraceCtx::NONE,
        }
    }

    fn route_for(&self, host: &str, now: SimTime) -> Route {
        match &self.config.policy {
            ProxyPolicy::Direct => Route::Direct,
            ProxyPolicy::Socks(p) => Route::Socks(*p),
            ProxyPolicy::Pac(pac) => {
                let candidates = pac.candidates(host);
                if candidates.is_empty() {
                    return Route::Direct;
                }
                // Browser-style PAC walking: the first candidate not
                // currently dead-marked, in list order. When every
                // proxy is dead-marked the one whose re-probe comes
                // soonest is tried anyway (lowest index tie-break) —
                // DIRECT is no fallback for a censored host, so the
                // browser must keep probing *something*.
                let pick = candidates
                    .iter()
                    .enumerate()
                    .find(|&(i, _)| self.proxy_dead[i].dead_until <= now)
                    .map(|(i, _)| i)
                    .unwrap_or_else(|| {
                        (0..candidates.len())
                            .min_by_key(|&i| (self.proxy_dead[i].dead_until, i))
                            .unwrap_or(0)
                    });
                Route::HttpProxy(candidates[pick])
            }
        }
    }

    fn begin_load(&mut self, ctx: &mut Ctx<'_>) {
        let index = self.loads_done;
        self.deadline_seq += 1;
        let deadline_token = 1_000 + self.deadline_seq;
        // The very first load's clock starts at browser launch, so tunnel
        // bootstrap (waited out via the gate) counts into first-time PLT.
        let started = if index == 0 { self.browser_started } else { ctx.now() };
        sc_obs::counter_add("web.loads_started", 1);
        // The trace id is minted whether or not a sink is attached —
        // it is a pure hash, and propagating it unconditionally keeps
        // traced and untraced packet schedules identical.
        let trace = sc_obs::TraceId::mint(self.config.entropy, index as u64);
        let span = sc_obs::span_start_ctx(
            started.as_micros(),
            sc_obs::Level::Info,
            "web",
            "load",
            "page_load",
            sc_obs::TraceCtx::new(trace, sc_obs::SpanId::NONE),
            vec![
                ("index", (index as u64).into()),
                ("first_time", (!self.visited).into()),
            ],
        );
        self.load = Some(ActiveLoad {
            index,
            started,
            span,
            trace,
            pending: 1, // the HTML itself
            first_time: !self.visited,
            connections: 0,
            deadline_token,
            proxy_status: None,
            throttle_retries: 0,
            failover_retries: 0,
            throttled: false,
            revalidated: 0,
        });
        ctx.set_timer(self.config.timeout, deadline_token);
        let host = self.config.page_host.clone();
        let port = self.config.page_port;
        self.fetch(&host, port, "/", ctx);
    }

    /// Requests `path` from `host:port`, opening or reusing a connection.
    fn fetch(&mut self, host: &str, port: u16, path: &str, ctx: &mut Ctx<'_>) {
        if let Some(&h) = self.by_host.get(&(host.to_string(), port)) {
            if let Some(conn) = self.conns.get_mut(&h) {
                conn.queue.push_back(path.to_string());
                self.pump_conn(h, ctx);
                return;
            }
        }
        let route = self.route_for(host, ctx.now());
        match route {
            Route::Direct => {
                // Resolve first (the DNS stub returns synchronously on a
                // cache hit — the warm-cache fast path).
                let token = self.next_dns_token;
                self.next_dns_token += 1;
                self.pending_dns
                    .insert(token, (host.to_string(), port, path.to_string()));
                let dns_span = sc_obs::span_start_ctx(
                    ctx.now().as_micros(),
                    sc_obs::Level::Debug,
                    "web",
                    "load",
                    "dns",
                    self.load_ctx(),
                    vec![("host", host.to_string().into())],
                );
                if !dns_span.is_none() {
                    self.dns_spans.insert(token, dns_span);
                }
                if let Some(res) = self.stub.resolve(host, token, ctx) {
                    self.on_resolved(res.token, res.outcome, ctx);
                } else {
                    ctx.set_timer(DNS_RETRY, TIMER_DNS_RETRY);
                }
            }
            Route::Socks(p) | Route::HttpProxy(p) => {
                let h = ctx.tcp_connect(p);
                self.register_conn(h, host, port, route, path, ctx);
            }
        }
    }

    fn on_resolved(&mut self, token: u64, outcome: ResolveOutcome, ctx: &mut Ctx<'_>) {
        let Some((host, port, path)) = self.pending_dns.remove(&token) else { return };
        if let Some(sp) = self.dns_spans.remove(&token) {
            let ok = matches!(&outcome, ResolveOutcome::Resolved(a) if !a.is_empty());
            sc_obs::span_end(ctx.now().as_micros(), sp, vec![("ok", ok.into())]);
        }
        match outcome {
            ResolveOutcome::Resolved(addrs) if !addrs.is_empty() => {
                let h = ctx.tcp_connect(SocketAddr::new(addrs[0], port));
                self.register_conn(h, &host, port, Route::Direct, &path, ctx);
            }
            _ => self.fail_load(ctx),
        }
    }

    fn register_conn(
        &mut self,
        h: TcpHandle,
        host: &str,
        port: u16,
        route: Route,
        path: &str,
        ctx: &mut Ctx<'_>,
    ) {
        sc_obs::counter_add("web.connections_opened", 1);
        let connect_span = sc_obs::span_start_ctx(
            ctx.now().as_micros(),
            sc_obs::Level::Debug,
            "web",
            "load",
            "connect",
            self.load_ctx(),
            vec![("host", host.to_string().into())],
        );
        let mut queue = VecDeque::new();
        queue.push_back(path.to_string());
        self.conns.insert(
            h,
            Conn {
                host: host.to_string(),
                port,
                phase: ConnPhase::Connecting,
                connect_span,
                tunnel_span: sc_obs::SpanId::NONE,
                fetch_span: sc_obs::SpanId::NONE,
                route,
                tls: None,
                http: HttpParser::new(),
                proxy_http: HttpParser::new(),
                queue,
                current: None,
                rtt_probe_sent: None,
            },
        );
        self.by_host.insert((host.to_string(), port), h);
        if let Some(load) = self.load.as_mut() {
            load.connections += 1;
        }
        // Fleet PAC policies guard every proxy connect with a deadline:
        // a crashed proxy drops SYNs silently, and failover must not
        // wait for the load deadline. Single-proxy policies keep the
        // pre-fleet behaviour (and the pre-fleet event schedule).
        if matches!(route, Route::HttpProxy(_)) && self.pac_fleet_size() >= 2 {
            self.connect_seq += 1;
            let token = TIMER_CONNECT_BASE + self.connect_seq;
            self.connect_deadlines.insert(token, h);
            ctx.set_timer(self.config.proxy_connect_timeout, token);
        }
    }

    /// Number of proxies in the PAC fallback list (0 outside PAC).
    fn pac_fleet_size(&self) -> usize {
        match &self.config.policy {
            ProxyPolicy::Pac(pac) => pac.proxies.len(),
            _ => 0,
        }
    }

    /// Index of `addr` in the PAC fallback list.
    fn pac_proxy_index(&self, addr: SocketAddr) -> Option<usize> {
        match &self.config.policy {
            ProxyPolicy::Pac(pac) => pac.proxies.iter().position(|&p| p == addr),
            _ => None,
        }
    }

    fn emit_fleet(
        &self,
        level: sc_obs::Level,
        name: &'static str,
        fields: &[(&'static str, String)],
        ctx: &Ctx<'_>,
    ) {
        if sc_obs::is_enabled(level, "web") {
            let mut ev =
                sc_obs::Event::new(ctx.now().as_micros(), level, "web", "fleet", name);
            for (k, v) in fields {
                ev = ev.field(k, v.clone());
            }
            sc_obs::emit(ev);
        }
    }

    /// A connect to a PAC proxy succeeded: count it for fleet
    /// availability and clear any dead-mark (rejoin after recovery).
    fn mark_proxy_up(&mut self, addr: SocketAddr, ctx: &mut Ctx<'_>) {
        if self.pac_fleet_size() < 2 {
            return;
        }
        sc_obs::counter_add("web.proxy_connect_ok", 1);
        self.emit_fleet(
            sc_obs::Level::Debug,
            "connect_ok",
            &[("proxy", addr.to_string())],
            ctx,
        );
        let Some(idx) = self.pac_proxy_index(addr) else { return };
        if self.proxy_dead[idx].fail_level > 0 {
            self.proxy_dead[idx] = ProxyHealth::default();
            sc_obs::counter_add("web.proxy_recoveries", 1);
            sc_obs::ts_bump(ctx.now().as_micros(), "web.proxy_recoveries", 1);
            self.emit_fleet(
                sc_obs::Level::Info,
                "proxy_recovered",
                &[("proxy", addr.to_string())],
                ctx,
            );
        }
    }

    /// Dead-marks `addr` after a failed connect: exponential re-probe
    /// backoff, mirroring the fleet tier's own peer dead-marking.
    fn mark_proxy_dead(&mut self, addr: SocketAddr, reason: &str, ctx: &mut Ctx<'_>) {
        sc_obs::counter_add("web.proxy_connect_fail", 1);
        self.emit_fleet(
            sc_obs::Level::Debug,
            "connect_fail",
            &[("proxy", addr.to_string()), ("reason", reason.to_string())],
            ctx,
        );
        let Some(idx) = self.pac_proxy_index(addr) else { return };
        let level = self.proxy_dead[idx].fail_level;
        self.proxy_dead[idx].fail_level = level.saturating_add(1);
        let backoff = PROXY_DEAD_BASE
            .saturating_mul(1u64 << level.min(4))
            .clamp(PROXY_DEAD_BASE, PROXY_DEAD_CAP);
        self.proxy_dead[idx].dead_until = ctx.now() + backoff;
        sc_obs::counter_add("web.proxy_dead_marks", 1);
        sc_obs::ts_bump(ctx.now().as_micros(), "web.proxy_dead_marks", 1);
        self.emit_fleet(
            sc_obs::Level::Warn,
            "proxy_dead",
            &[
                ("proxy", addr.to_string()),
                ("reason", reason.to_string()),
                ("backoff_us", backoff.as_micros().to_string()),
            ],
            ctx,
        );
    }

    /// A proxy-route connect died (refused, reset, or timed out while
    /// still connecting). Under a fleet PAC policy the proxy is
    /// dead-marked and the load replayed through the next candidate;
    /// otherwise (or once retries are exhausted) the load fails.
    fn proxy_conn_failed(&mut self, h: TcpHandle, reason: &'static str, ctx: &mut Ctx<'_>) {
        let addr = match self.conns.get(&h) {
            Some(c) if c.phase == ConnPhase::Connecting => match c.route {
                Route::HttpProxy(p) => Some(p),
                _ => None,
            },
            _ => None,
        };
        let (Some(addr), true) = (addr, self.pac_fleet_size() >= 2) else {
            self.fail_load(ctx);
            return;
        };
        if let Some(conn) = self.conns.remove(&h) {
            sc_obs::span_end(
                ctx.now().as_micros(),
                conn.connect_span,
                vec![("ok", false.into()), ("reason", reason.into())],
            );
            self.by_host.remove(&(conn.host, conn.port));
        }
        self.mark_proxy_dead(addr, reason, ctx);
        if !self.proxy_failover_retry(addr, ctx) {
            self.fail_load(ctx);
        }
    }

    /// Replays the in-flight load from scratch through the (new) best
    /// PAC candidate. Bounded per load; the load's deadline timer keeps
    /// running throughout.
    fn proxy_failover_retry(&mut self, from: SocketAddr, ctx: &mut Ctx<'_>) -> bool {
        let Some(load) = self.load.as_mut() else { return false };
        if load.failover_retries >= MAX_FAILOVER_RETRIES {
            return false;
        }
        let attempt = load.failover_retries;
        load.failover_retries += 1;
        load.pending = 1; // the replayed HTML
        sc_obs::counter_add("web.failovers", 1);
        sc_obs::ts_bump(ctx.now().as_micros(), "web.failovers", 1);
        self.emit_fleet(
            sc_obs::Level::Info,
            "failover",
            &[("from", from.to_string()), ("attempt", attempt.to_string())],
            ctx,
        );
        self.teardown_conns(ctx);
        let host = self.config.page_host.clone();
        let port = self.config.page_port;
        self.fetch(&host, port, "/", ctx);
        true
    }

    /// The load deadline fired with work still outstanding: dead-mark
    /// every PAC proxy holding a stalled connection so the *next* load
    /// routes around it immediately. A proxy that crashes mid-tunnel
    /// dies silently (no RST in the simulator), so this is the only
    /// signal the browser gets for an already-established connection.
    fn deadline_dead_marks(&mut self, ctx: &mut Ctx<'_>) {
        if self.pac_fleet_size() < 2 {
            return;
        }
        let mut stalled: Vec<SocketAddr> = self
            .conns
            .values()
            .filter(|c| c.phase != ConnPhase::Ready || c.current.is_some())
            .filter_map(|c| match c.route {
                Route::HttpProxy(p) => Some(p),
                _ => None,
            })
            .collect();
        stalled.sort();
        stalled.dedup();
        for p in stalled {
            self.mark_proxy_dead(p, "load_deadline", ctx);
        }
    }

    /// Called when a connection's tunnel/TLS is ready or a response
    /// completed: sends the next queued request.
    fn pump_conn(&mut self, h: TcpHandle, ctx: &mut Ctx<'_>) {
        let lctx = self.load_ctx();
        let Some(conn) = self.conns.get_mut(&h) else { return };
        if conn.phase != ConnPhase::Ready || conn.current.is_some() {
            return;
        }
        let Some(path) = conn.queue.pop_front() else { return };
        conn.fetch_span = if path == "\u{0}rtt" {
            sc_obs::SpanId::NONE
        } else {
            sc_obs::span_start_ctx(
                ctx.now().as_micros(),
                sc_obs::Level::Debug,
                "web",
                "load",
                "fetch",
                lctx,
                vec![("path", path.clone().into())],
            )
        };
        let req = if path == "\u{0}rtt" {
            conn.rtt_probe_sent = Some(ctx.now());
            HttpRequest {
                method: "HEAD".into(),
                target: "/".into(),
                headers: vec![
                    ("Host".into(), conn.host.clone()),
                    (sc_obs::TRACE_HEADER.into(), lctx.header_value()),
                ],
                body: Vec::new(),
            }
        } else {
            let req = if matches!(conn.route, Route::HttpProxy(_)) && conn.port == 80 {
                // Absolute-form through an HTTP proxy.
                HttpRequest::get(&conn.host, &format!("http://{}{}", conn.host, path))
            } else {
                HttpRequest::get(&conn.host, &path)
            };
            // Every request carries the trace context, parented on its
            // fetch span, so the proxy tier and origin can stitch their
            // spans into this load's tree.
            let req = req.header(
                sc_obs::TRACE_HEADER,
                &lctx.with_parent(conn.fetch_span).header_value(),
            );
            // A stale cached copy with a validator turns the refetch into
            // a conditional request: the origin (or the proxy's shared
            // cache) may answer with a cheap bodyless 304.
            let stale_etag = self
                .content_cache
                .get(&(conn.host.clone(), path.clone()))
                .filter(|e| e.expires_at <= ctx.now())
                .and_then(|e| e.etag.clone());
            match stale_etag {
                Some(etag) => req.header("If-None-Match", &etag),
                None => req,
            }
        };
        conn.current = Some(path);
        let wire = match conn.tls.as_mut() {
            Some(tls) => tls.send(&req.encode()),
            None => req.encode(),
        };
        ctx.tcp_send(h, &wire);
    }

    fn begin_app_layer(&mut self, h: TcpHandle, ctx: &mut Ctx<'_>) {
        let Some(conn) = self.conns.get_mut(&h) else { return };
        if conn.port == 443 {
            let mut tls = TlsClient::new(&conn.host, self.config.entropy ^ h.0 as u64);
            let hello = tls.start_handshake();
            conn.tls = Some(tls);
            conn.phase = ConnPhase::TlsHandshake;
            ctx.tcp_send(h, &hello);
        } else {
            conn.phase = ConnPhase::Ready;
            let sp = std::mem::replace(&mut conn.tunnel_span, sc_obs::SpanId::NONE);
            sc_obs::span_end(ctx.now().as_micros(), sp, Vec::new());
            self.pump_conn(h, ctx);
        }
    }

    fn on_response(&mut self, h: TcpHandle, resp: HttpResponse, ctx: &mut Ctx<'_>) {
        let status = resp.status;
        let (host, path, probe_start) = {
            let Some(conn) = self.conns.get_mut(&h) else { return };
            let path = conn.current.take().unwrap_or_default();
            let sp = std::mem::replace(&mut conn.fetch_span, sc_obs::SpanId::NONE);
            sc_obs::span_end(ctx.now().as_micros(), sp, vec![("status", u64::from(status).into())]);
            (conn.host.clone(), path, conn.rtt_probe_sent.take())
        };
        // RTT probe response?
        if path == "\u{0}rtt" {
            if let Some(sent) = probe_start {
                let rtt = ctx.now() - sent;
                self.finish_load(Some(rtt), ctx);
            }
            return;
        }
        if status >= 400 {
            // A gateway-mode `429`/`503` carrying `Retry-After` is
            // backpressure — an overload shed or an elastic cold-start
            // window — not proxy death: honor the hint and retry within
            // the throttle budget, exactly like the CONNECT path. The
            // proxy is deliberately NOT dead-marked here; dead-marking
            // a member that is warming capacity would route the whole
            // crowd away from it just as it comes good.
            if matches!(status, 429 | 503) {
                let retry_after = resp
                    .header_value("Retry-After")
                    .and_then(|v| v.trim().parse::<u64>().ok());
                if let Some(load) = self.load.as_mut() {
                    load.proxy_status = Some(status);
                    if status == 429 || retry_after.is_some() {
                        load.throttled = true;
                    }
                }
                if let Some(secs) = retry_after {
                    if self.throttle_backoff(secs, ctx) {
                        return;
                    }
                }
            }
            self.fail_load(ctx);
            return;
        }
        let Some(load) = self.load.as_mut() else { return };
        load.pending -= 1;
        let now = ctx.now();
        let ttl = resp
            .max_age_secs()
            .map(SimDuration::from_secs)
            .unwrap_or(DEFAULT_CONTENT_TTL);
        let key = (host.clone(), path.clone());
        let body = if status == 304 {
            // Our stale copy is still good: renew it and serve from cache
            // without the body having crossed the wire again.
            load.revalidated += 1;
            sc_obs::counter_add("web.revalidated", 1);
            match self.content_cache.get_mut(&key) {
                Some(entry) => {
                    entry.expires_at = now + ttl;
                    if let Some(etag) = resp.header_value("ETag") {
                        entry.etag = Some(etag.to_string());
                    }
                    entry.body.clone()
                }
                None => Vec::new(),
            }
        } else {
            self.content_cache.insert(
                key,
                CachedContent {
                    etag: resp.header_value("ETag").map(str::to_string),
                    expires_at: now + ttl,
                    body: resp.body.clone(),
                },
            );
            resp.body
        };
        // The HTML: schedule subresource fetches.
        if path == "/" && host == self.config.page_host {
            let resources = crate::page::PageSpec::parse_manifest(&body);
            let first_time = self.load.as_ref().is_some_and(|l| l.first_time);
            let mut to_fetch = Vec::new();
            for r in resources {
                if r.first_visit_only && !first_time {
                    continue;
                }
                // A fresh cached copy needs no fetch at all; stale or
                // absent entries are (re)fetched — stale ones turn into
                // conditional requests in `pump_conn`.
                let fresh = self
                    .content_cache
                    .get(&(r.host.clone(), r.path.clone()))
                    .is_some_and(|e| e.expires_at > now);
                if fresh {
                    continue;
                }
                to_fetch.push(r);
            }
            if let Some(load) = self.load.as_mut() {
                load.pending += to_fetch.len();
            }
            for r in to_fetch {
                self.fetch(&r.host.clone(), self.config.page_port_for(&r.host), &r.path, ctx);
            }
        }
        let done = self.load.as_ref().is_some_and(|l| l.pending == 0);
        if done {
            // Page complete: sample RTT with a HEAD on the main connection.
            let key = (self.config.page_host.clone(), self.config.page_port);
            if let Some(&main) = self.by_host.get(&key) {
                if self.conns.get(&main).is_some_and(|c| c.phase == ConnPhase::Ready) {
                    self.rtt_conn = Some(main);
                    if let Some(conn) = self.conns.get_mut(&main) {
                        conn.queue.push_back("\u{0}rtt".to_string());
                    }
                    self.pump_conn(main, ctx);
                    return;
                }
            }
            self.finish_load(None, ctx);
        } else {
            self.pump_conn(h, ctx);
        }
    }

    fn finish_load(&mut self, rtt: Option<SimDuration>, ctx: &mut Ctx<'_>) {
        let Some(load) = self.load.take() else { return };
        let now = ctx.now();
        sc_obs::counter_add("web.loads_ok", 1);
        sc_obs::observe("web.plt_us", (now - load.started).as_micros());
        sc_obs::ts_bump(now.as_micros(), "web.loads_ok", 1);
        // PLT samples carry the load's trace id as an exemplar, so a
        // fired latency alert can point at the worst offending traces.
        sc_obs::ts_record_ex(
            now.as_micros(),
            "web.plt_us",
            (now - load.started).as_micros(),
            load.trace,
        );
        if let Some(rtt) = rtt {
            sc_obs::observe("web.rtt_us", rtt.as_micros());
            sc_obs::ts_record(now.as_micros(), "web.rtt_us", rtt.as_micros());
        }
        sc_obs::span_end(
            now.as_micros(),
            load.span,
            vec![
                ("ok", true.into()),
                ("connections", (load.connections as u64).into()),
            ],
        );
        self.log.borrow_mut().push(PageLoadResult {
            index: load.index,
            started: load.started,
            plt: Some(now - load.started),
            first_time: load.first_time,
            rtt,
            failed: false,
            connections: load.connections,
            // A load that overcame a throttle en route keeps the status
            // that stalled it, so the harness can count brownouts that
            // ultimately succeeded.
            proxy_status: if load.throttled { load.proxy_status } else { None },
            throttled: load.throttled,
            revalidated: load.revalidated,
        });
        self.visited = true;
        self.loads_done += 1;
        self.throttle_wait_for = None;
        self.teardown_conns(ctx);
        self.schedule_next(load.started, ctx);
    }

    fn fail_load(&mut self, ctx: &mut Ctx<'_>) {
        let Some(load) = self.load.take() else { return };
        sc_obs::counter_add("web.loads_failed", 1);
        sc_obs::ts_bump_ex(ctx.now().as_micros(), "web.loads_failed", 1, load.trace);
        sc_obs::span_end(
            ctx.now().as_micros(),
            load.span,
            vec![
                ("ok", false.into()),
                ("connections", (load.connections as u64).into()),
            ],
        );
        self.log.borrow_mut().push(PageLoadResult {
            index: load.index,
            started: load.started,
            plt: None,
            first_time: load.first_time,
            rtt: None,
            failed: true,
            connections: load.connections,
            proxy_status: load.proxy_status,
            throttled: load.throttled,
            revalidated: load.revalidated,
        });
        self.visited = true;
        self.loads_done += 1;
        self.throttle_wait_for = None;
        self.teardown_conns(ctx);
        self.schedule_next(load.started, ctx);
    }

    /// Honors a proxy `Retry-After` on a `429`/`503`: tears down every
    /// connection, waits `retry_after × 2^attempt` (deterministic —
    /// backoff shape is part of the trace, so no jitter), and re-fetches
    /// the page. Returns `false` when retries are disabled or exhausted,
    /// in which case the caller fails the load instead. The load's
    /// deadline timer keeps running throughout, so a throttle wait can
    /// never extend a load past its budget.
    fn throttle_backoff(&mut self, retry_after_secs: u64, ctx: &mut Ctx<'_>) -> bool {
        let Some(load) = self.load.as_mut() else { return false };
        if !self.config.honor_retry_after
            || load.throttle_retries >= self.config.max_throttle_retries
        {
            return false;
        }
        let attempt = load.throttle_retries;
        load.throttle_retries += 1;
        load.throttled = true;
        let delay = SimDuration::from_secs(retry_after_secs.max(1))
            .saturating_mul(1u64 << attempt.min(16));
        // Back off with nothing in flight: the proxy told us to go away,
        // so holding sockets open would just occupy its accept queue.
        let token = load.deadline_token;
        load.pending = 1; // the retried HTML
        sc_obs::counter_add("web.throttled", 1);
        sc_obs::ts_bump(ctx.now().as_micros(), "web.throttled", 1);
        if sc_obs::is_enabled(sc_obs::Level::Info, "web") {
            sc_obs::emit(
                sc_obs::Event::new(
                    ctx.now().as_micros(),
                    sc_obs::Level::Info,
                    "web",
                    "browser",
                    "throttled",
                )
                .field("attempt", u64::from(attempt))
                .field("delay_us", delay.as_micros()),
            );
        }
        self.teardown_conns(ctx);
        self.throttle_wait_for = Some(token);
        ctx.set_timer(delay, TIMER_THROTTLE);
        true
    }

    fn teardown_conns(&mut self, ctx: &mut Ctx<'_>) {
        // Close in handle order: HashMap iteration order varies between
        // same-seed runs, and close order shapes packet ordering (and
        // with it the loss RNG draw sequence), which would break trace
        // byte-determinism.
        let mut handles: Vec<TcpHandle> = self.conns.keys().copied().collect();
        handles.sort_by_key(|h| h.0);
        for h in handles {
            ctx.tcp_close(h);
        }
        self.conns.clear();
        self.by_host.clear();
        self.pending_dns.clear();
        self.rtt_conn = None;
    }

    fn schedule_next(&mut self, last_start: SimTime, ctx: &mut Ctx<'_>) {
        if self.loads_done >= self.config.loads {
            return;
        }
        let next_at = last_start + self.config.interval;
        let delay = next_at.saturating_since(ctx.now()).clamp(
            SimDuration::from_millis(1),
            self.config.interval,
        );
        ctx.set_timer(delay, TIMER_NEXT_LOAD);
    }
}

impl BrowserConfig {
    fn page_port_for(&self, host: &str) -> u16 {
        // Subresources use the page's scheme; the account host is HTTPS.
        if host == self.page_host {
            self.page_port
        } else {
            443
        }
    }
}

impl App for Browser {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.browser_started = ctx.now();
        self.stub.bind(ctx);
        if self.config.start_delay > SimDuration::ZERO {
            ctx.set_timer(self.config.start_delay, TIMER_RAMP);
            return;
        }
        match &self.gate {
            Some(gate) if !gate.is_ready() => ctx.set_timer(WAIT_POLL, TIMER_WAIT),
            _ => self.begin_load(ctx),
        }
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        match ev {
            AppEvent::TimerFired(TIMER_RAMP) => {
                // Ramp delay elapsed: restart the PLT clock so the
                // stagger does not count into first-time PLT, then go
                // through the normal readiness gate.
                self.browser_started = ctx.now();
                match &self.gate {
                    Some(gate) if !gate.is_ready() => ctx.set_timer(WAIT_POLL, TIMER_WAIT),
                    _ => self.begin_load(ctx),
                }
            }
            AppEvent::TimerFired(TIMER_WAIT) => {
                match &self.gate {
                    Some(gate) if !gate.is_ready() => ctx.set_timer(WAIT_POLL, TIMER_WAIT),
                    _ => self.begin_load(ctx),
                }
            }
            AppEvent::TimerFired(TIMER_DNS_RETRY) => {
                if self.stub.has_pending() && self.load.is_some() {
                    self.stub.retry_pending(ctx);
                    ctx.set_timer(DNS_RETRY, TIMER_DNS_RETRY);
                }
            }
            AppEvent::TimerFired(TIMER_NEXT_LOAD) => {
                if self.load.is_none() && self.loads_done < self.config.loads {
                    self.begin_load(ctx);
                }
            }
            AppEvent::TimerFired(TIMER_THROTTLE) => {
                // Only act if the wait belongs to the load still in
                // flight (deadline tokens are unique per load, so a
                // stale timer from an already-finished load no-ops).
                let current = self.load.as_ref().map(|l| l.deadline_token);
                if current.is_some() && current == self.throttle_wait_for {
                    self.throttle_wait_for = None;
                    let host = self.config.page_host.clone();
                    let port = self.config.page_port;
                    self.fetch(&host, port, "/", ctx);
                }
            }
            AppEvent::TimerFired(token) if token >= TIMER_CONNECT_BASE => {
                // Proxy-connect deadline: a crashed proxy drops SYNs
                // silently, so this is where a dead proxy is detected.
                // Stale firings (conn already past Connecting, or gone)
                // no-op.
                if let Some(h) = self.connect_deadlines.remove(&token) {
                    let connecting = self
                        .conns
                        .get(&h)
                        .is_some_and(|c| c.phase == ConnPhase::Connecting);
                    if connecting {
                        ctx.tcp_abort(h);
                        sc_obs::counter_add("web.proxy_connect_timeouts", 1);
                        self.proxy_conn_failed(h, "connect_timeout", ctx);
                    }
                }
            }
            AppEvent::TimerFired(token) if token > 1_000 => {
                // Load deadline.
                if self.load.as_ref().is_some_and(|l| l.deadline_token == token) {
                    self.deadline_dead_marks(ctx);
                    self.fail_load(ctx);
                }
            }
            AppEvent::Udp { socket, payload, .. } => {
                if let Some(res) = self.stub.on_datagram(socket, &payload, ctx.now()) {
                    self.on_resolved(res.token, res.outcome, ctx);
                }
            }
            AppEvent::Tcp(h, tcp_ev) => {
                if !self.conns.contains_key(&h) {
                    return;
                }
                match tcp_ev {
                    TcpEvent::Connected => {
                        if let Some(Route::HttpProxy(p)) = self.conns.get(&h).map(|c| c.route) {
                            self.mark_proxy_up(p, ctx);
                        }
                        let lctx = self.load_ctx();
                        let conn = self.conns.get_mut(&h).expect("checked");
                        let sp = std::mem::replace(&mut conn.connect_span, sc_obs::SpanId::NONE);
                        sc_obs::span_end(ctx.now().as_micros(), sp, Vec::new());
                        let via = match conn.route {
                            Route::Direct => "direct",
                            Route::Socks(_) => "socks",
                            Route::HttpProxy(_) => "http_proxy",
                        };
                        conn.tunnel_span = sc_obs::span_start_ctx(
                            ctx.now().as_micros(),
                            sc_obs::Level::Debug,
                            "web",
                            "load",
                            "tunnel",
                            lctx,
                            vec![("via", via.into())],
                        );
                        match conn.route {
                            Route::Direct => self.begin_app_layer(h, ctx),
                            Route::Socks(_) => {
                                conn.phase = ConnPhase::SocksGreetSent;
                                ctx.tcp_send(h, &[5, 1, 0]);
                            }
                            Route::HttpProxy(_) => {
                                if conn.port == 80 {
                                    // Absolute-form proxying, no CONNECT.
                                    conn.phase = ConnPhase::Ready;
                                    let sp = std::mem::replace(
                                        &mut conn.tunnel_span,
                                        sc_obs::SpanId::NONE,
                                    );
                                    sc_obs::span_end(ctx.now().as_micros(), sp, Vec::new());
                                    self.pump_conn(h, ctx);
                                } else {
                                    conn.phase = ConnPhase::ProxyConnectSent;
                                    let req = format!(
                                        "CONNECT {}:{} HTTP/1.1\r\nHost: {}\r\n{}: {}\r\n\r\n",
                                        conn.host,
                                        conn.port,
                                        conn.host,
                                        sc_obs::TRACE_HEADER,
                                        lctx.with_parent(conn.tunnel_span).header_value(),
                                    );
                                    ctx.tcp_send(h, req.as_bytes());
                                }
                            }
                        }
                    }
                    TcpEvent::DataReceived => {
                        let data = ctx.tcp_recv_all(h);
                        self.on_bytes(h, &data, ctx);
                    }
                    TcpEvent::ConnectFailed | TcpEvent::Reset => {
                        let connecting = self
                            .conns
                            .get(&h)
                            .is_some_and(|c| c.phase == ConnPhase::Connecting);
                        if connecting {
                            let reason = if matches!(tcp_ev, TcpEvent::ConnectFailed) {
                                "connect_refused"
                            } else {
                                "connect_reset"
                            };
                            self.proxy_conn_failed(h, reason, ctx);
                        } else {
                            self.fail_load(ctx);
                        }
                    }
                    TcpEvent::PeerClosed => {
                        // Server closed (keep-alive expiry): drop the conn;
                        // outstanding work fails the load.
                        let had_work = self
                            .conns
                            .get(&h)
                            .is_some_and(|c| c.current.is_some() || !c.queue.is_empty());
                        if let Some(conn) = self.conns.remove(&h) {
                            self.by_host.remove(&(conn.host, conn.port));
                        }
                        if had_work {
                            self.fail_load(ctx);
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}

impl Browser {
    fn on_bytes(&mut self, h: TcpHandle, data: &[u8], ctx: &mut Ctx<'_>) {
        let Some(conn) = self.conns.get_mut(&h) else { return };
        let mut stream_bytes: Vec<u8> = Vec::new();
        match conn.phase {
            ConnPhase::SocksGreetSent => {
                if data.starts_with(&[5, 0]) {
                    conn.phase = ConnPhase::SocksConnectSent;
                    let mut req = vec![5, 1, 0, 3, conn.host.len() as u8];
                    req.extend_from_slice(conn.host.as_bytes());
                    req.extend_from_slice(&conn.port.to_be_bytes());
                    ctx.tcp_send(h, &req);
                } else {
                    self.fail_load(ctx);
                }
                return;
            }
            ConnPhase::SocksConnectSent => {
                if data.len() >= 10 && data[0] == 5 && data[1] == 0 {
                    stream_bytes.extend_from_slice(&data[10..]);
                    self.begin_app_layer(h, ctx);
                    if stream_bytes.is_empty() {
                        return;
                    }
                } else {
                    self.fail_load(ctx);
                    return;
                }
            }
            ConnPhase::ProxyConnectSent => {
                let Ok(msgs) = conn.proxy_http.push(data) else {
                    self.fail_load(ctx);
                    return;
                };
                let mut ok = false;
                for m in msgs {
                    if let HttpMessage::Response(r) = m {
                        if r.status == 200 {
                            ok = true;
                        } else {
                            // The proxy refused or degraded: keep the
                            // status so the harness can tell a 403
                            // (policy) from a 429 (throttled) from a
                            // 502/503 (upstream dark or shed).
                            let retry_after = r
                                .header_value("Retry-After")
                                .and_then(|v| v.trim().parse::<u64>().ok());
                            if let Some(load) = self.load.as_mut() {
                                load.proxy_status = Some(r.status);
                                if r.status == 429 || retry_after.is_some() {
                                    load.throttled = true;
                                }
                            }
                            sc_obs::counter_add("web.proxy_errors", 1);
                            sc_obs::ts_bump(ctx.now().as_micros(), "web.proxy_errors", 1);
                            if sc_obs::is_enabled(sc_obs::Level::Warn, "web") {
                                sc_obs::emit(
                                    sc_obs::Event::new(
                                        ctx.now().as_micros(),
                                        sc_obs::Level::Warn,
                                        "web",
                                        "browser",
                                        "proxy_error",
                                    )
                                    .field("status", u64::from(r.status)),
                                );
                            }
                            if matches!(r.status, 429 | 503) && retry_after.is_some() {
                                if let Some(secs) = retry_after {
                                    if self.throttle_backoff(secs, ctx) {
                                        return;
                                    }
                                }
                            }
                            self.fail_load(ctx);
                            return;
                        }
                    }
                }
                if ok {
                    self.begin_app_layer(h, ctx);
                }
                return;
            }
            _ => stream_bytes.extend_from_slice(data),
        }

        // TLS / plain processing.
        let Some(conn) = self.conns.get_mut(&h) else { return };
        let plaintext = match conn.tls.as_mut() {
            Some(tls) => {
                let Ok(out) = tls.on_bytes(&stream_bytes) else {
                    self.fail_load(ctx);
                    return;
                };
                if !out.wire.is_empty() {
                    ctx.tcp_send(h, &out.wire);
                }
                if out.handshake_complete {
                    conn.phase = ConnPhase::Ready;
                    let sp = std::mem::replace(&mut conn.tunnel_span, sc_obs::SpanId::NONE);
                    sc_obs::span_end(ctx.now().as_micros(), sp, Vec::new());
                    self.pump_conn(h, ctx);
                }
                let Some(conn) = self.conns.get_mut(&h) else { return };
                let _ = conn;
                out.plaintext
            }
            None => stream_bytes,
        };
        if plaintext.is_empty() {
            return;
        }
        let Some(conn) = self.conns.get_mut(&h) else { return };
        let Ok(msgs) = conn.http.push(&plaintext) else {
            self.fail_load(ctx);
            return;
        };
        for m in msgs {
            if let HttpMessage::Response(resp) = m {
                self.on_response(h, resp, ctx);
            }
        }
    }
}
