//! # sc-web
//!
//! The web substrate of the reproduction: a [`page`] model sized to the
//! paper's ~19 KB Google Scholar access, [`origin`] servers reproducing
//! Figure 4's session structure (HTTPS redirect on port 80, TLS on 443, a
//! separate first-visit account-recording host, and a single-core service
//! capacity model for the scalability experiment), and a [`browser`] that
//! loads pages over any access method and measures page load time.

#![warn(missing_docs)]

pub mod browser;
pub mod origin;
pub mod page;

pub use browser::{
    Browser, BrowserConfig, LoadLog, PageLoadResult, ProxyPolicy, new_load_log,
    sc_ready::ReadyProbe,
};
pub use origin::{Capacity, OriginServer, StaticSite};
pub use page::{PageSpec, Resource};

#[cfg(test)]
mod tests {
    use super::*;
    use sc_dns::{AuthoritativeServer, RecursiveResolver, Zone};
    use sc_simnet::prelude::*;

    const CLIENT: Addr = Addr::new(10, 0, 0, 1);
    const RESOLVER: Addr = Addr::new(10, 0, 0, 53);
    const AUTH: Addr = Addr::new(99, 0, 0, 53);
    const SCHOLAR: Addr = Addr::new(99, 2, 0, 1);
    const ACCOUNTS: Addr = Addr::new(99, 2, 0, 2);

    fn topology() -> (Sim, NodeId) {
        let mut sim = Sim::new(3);
        let client = sim.add_node("client", CLIENT);
        let cernet = sim.add_node("cernet", Addr::new(10, 0, 0, 254));
        let resolver = sim.add_node("resolver", RESOLVER);
        let border = sim.add_node("border", Addr::new(172, 16, 0, 1));
        let us = sim.add_node("us", Addr::new(99, 0, 0, 254));
        let auth = sim.add_node("auth-dns", AUTH);
        let scholar = sim.add_node("scholar", SCHOLAR);
        let accounts = sim.add_node("accounts", ACCOUNTS);
        let lan = LinkConfig::with_delay(SimDuration::from_millis(2));
        sim.add_link(client, cernet, lan);
        sim.add_link(resolver, cernet, lan);
        sim.add_link(cernet, border, LinkConfig::with_delay(SimDuration::from_millis(5)));
        sim.add_link(border, us, LinkConfig::with_delay(SimDuration::from_millis(60)));
        sim.add_link(us, auth, lan);
        sim.add_link(us, scholar, lan);
        sim.add_link(us, accounts, lan);
        sim.compute_routes();

        let mut zone = Zone::new();
        zone.insert("scholar.google.com", SCHOLAR, 300);
        zone.insert("accounts.google.com", ACCOUNTS, 300);
        let auth_node = sim.node_by_addr(AUTH).unwrap();
        sim.install_app(auth_node, Box::new(AuthoritativeServer::new(zone)));
        let resolver_node = sim.node_by_addr(RESOLVER).unwrap();
        sim.install_app(resolver_node, Box::new(RecursiveResolver::new(AUTH)));

        let scholar_node = sim.node_by_addr(SCHOLAR).unwrap();
        sim.install_app(
            scholar_node,
            Box::new(OriginServer::new(
                "scholar.google.com",
                PageSpec::google_scholar(),
                11,
            )),
        );
        let accounts_node = sim.node_by_addr(ACCOUNTS).unwrap();
        sim.install_app(
            accounts_node,
            Box::new(OriginServer::new(
                "accounts.google.com",
                PageSpec::endpoints("accounts.google.com", &[("/recordlogin", 400)]),
                12,
            )),
        );
        (sim, client)
    }

    #[test]
    fn direct_page_loads_first_and_subsequent() {
        let (mut sim, client) = topology();
        let log = new_load_log();
        let mut cfg = BrowserConfig::scholar(RESOLVER, ProxyPolicy::Direct);
        cfg.loads = 3;
        cfg.interval = SimDuration::from_secs(60);
        sim.install_app(client, Box::new(Browser::new(cfg, None, log.clone())));
        sim.run_for(SimDuration::from_secs(200));
        let log = log.borrow();
        assert_eq!(log.len(), 3, "should complete 3 loads: {log:?}");
        assert!(log.iter().all(|r| !r.failed), "loads failed: {log:?}");
        let first = log[0].plt.unwrap();
        let second = log[1].plt.unwrap();
        assert!(log[0].first_time && !log[1].first_time);
        // Cold DNS + account connection make the first load slower.
        assert!(
            first > second,
            "first-time PLT {first} should exceed subsequent {second}"
        );
        // RTT probe should be close to the 2*(2+5+60+2)=138 ms path RTT.
        let rtt = log[1].rtt.expect("rtt sampled");
        assert!(
            (120..200).contains(&rtt.as_millis()),
            "unexpected rtt {rtt}"
        );
        // First load opens more connections (accounts host).
        assert!(log[0].connections > log[1].connections);
    }

    #[test]
    fn load_times_out_when_server_is_black_holed() {
        let (mut sim, client) = topology();
        struct Hole;
        impl Middlebox for Hole {
            fn process(&mut self, pkt: &Packet, _ctx: &mut MbCtx<'_>) -> Verdict {
                if pkt.dst == SCHOLAR || pkt.src == SCHOLAR {
                    Verdict::Drop("hole")
                } else {
                    Verdict::Forward
                }
            }
        }
        let border = sim.node_by_addr(Addr::new(172, 16, 0, 1)).unwrap();
        sim.set_middlebox(border, Box::new(Hole));
        let log = new_load_log();
        let mut cfg = BrowserConfig::scholar(RESOLVER, ProxyPolicy::Direct);
        cfg.loads = 1;
        cfg.timeout = SimDuration::from_secs(20);
        sim.install_app(client, Box::new(Browser::new(cfg, None, log.clone())));
        sim.run_for(SimDuration::from_secs(60));
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        assert!(log[0].failed, "black-holed load must fail: {log:?}");
    }

    #[test]
    fn ready_gate_delays_first_load() {
        use std::cell::Cell;
        use std::rc::Rc;
        let (mut sim, client) = topology();
        let ready = Rc::new(Cell::new(false));
        let probe = {
            let ready = ready.clone();
            ReadyProbe::new(move || ready.get())
        };
        let log = new_load_log();
        let mut cfg = BrowserConfig::scholar(RESOLVER, ProxyPolicy::Direct);
        cfg.loads = 1;
        sim.install_app(client, Box::new(Browser::new(cfg, Some(probe), log.clone())));
        sim.run_for(SimDuration::from_secs(5));
        assert!(log.borrow().is_empty(), "must wait for the gate");
        ready.set(true);
        sim.run_for(SimDuration::from_secs(30));
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        assert!(!log[0].failed);
        // The first load's clock starts at browser launch, so the gated
        // wait (≥5 s) is part of the measured first-time PLT — exactly how
        // the paper attributes Tor's bootstrap to its first load.
        assert!(log[0].started == SimTime::ZERO);
        assert!(log[0].plt.unwrap() >= SimDuration::from_secs(5));
    }

    #[test]
    fn repeated_loads_hold_interval_cadence() {
        let (mut sim, client) = topology();
        let log = new_load_log();
        let mut cfg = BrowserConfig::scholar(RESOLVER, ProxyPolicy::Direct);
        cfg.loads = 4;
        cfg.interval = SimDuration::from_secs(30);
        sim.install_app(client, Box::new(Browser::new(cfg, None, log.clone())));
        sim.run_for(SimDuration::from_secs(150));
        let log = log.borrow();
        assert_eq!(log.len(), 4);
        for pair in log.windows(2) {
            let gap = pair[1].started - pair[0].started;
            let ms = gap.as_millis() as i64;
            assert!((29_500..31_500).contains(&ms), "cadence drifted: {gap}");
        }
    }
}
