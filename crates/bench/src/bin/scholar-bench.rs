//! `scholar-bench`: the fixed-suite performance harness behind the
//! committed `BENCH_*.json` trajectory.
//!
//! ```text
//! scholar-bench [--label NAME] [--iterations N] [--out FILE]
//!               [--baseline FILE] [--max-regress PCT] [--quiet]
//! ```
//!
//! Runs a fixed suite of seeded scenarios — `quickstart`, `chaos`,
//! `flash_crowd`, `cache_crowd`, `fleet_crash`, `elastic_churn`,
//! `arms_race`, and a
//! scaled-up `stress_24c` client ramp — with the `sc_obs::prof`
//! wall-clock
//! profiler and the counting
//! global allocator enabled, and records per scenario: wall time,
//! events/sec, sim-seconds per wall-second, timer and queue-depth
//! counters, allocation totals, and per-subsystem wall-time
//! attribution. Each scenario runs `--iterations` times (default 5) and
//! the best (lowest wall time) iteration is recorded, which rejects
//! scheduler noise without averaging away real slowdowns.
//!
//! Modes:
//! * measure (default): run the suite, print the performance table,
//!   write `BENCH_<label>.json` when `--out` is given.
//! * compare (`--baseline old.json`): additionally parse the baseline
//!   and fail when `events_per_sec` or `sim_per_wall` regressed more
//!   than `--max-regress` percent (default 15) on any scenario — the
//!   "no slower than seed" CI gate.
//!
//! Exit codes (disjoint from `scholar-obs`'s trace-gate codes on
//! purpose, so `scripts/check.sh` failures are attributable at a
//! glance):
//! * `0` — suite measured (and, in compare mode, no regression);
//! * `1` — usage / IO error;
//! * `2` — baseline unreadable, unparseable, or wrong schema — or the
//!   fresh measurement failed its own sanity bounds;
//! * `5` — regression beyond `--max-regress` detected.

use std::process::ExitCode;
use std::time::Instant;

use sc_bench::trajectory::{compare, BenchReport, ScenarioBench};
use sc_metrics::{build_scenario, run_scenario, Method, ScenarioConfig};
use sc_obs::prof;
use sc_simnet::faults::{Fault, FaultPlan};
use sc_simnet::time::{SimDuration, SimTime};

/// Every run of the harness counts allocations; this is the opt-in
/// `sc_obs::prof` documents (ordinary builds stay on `System`).
#[global_allocator]
static ALLOC: prof::CountingAlloc = prof::CountingAlloc;

/// A scenario outcome reduced to what the harness needs.
struct RunCounters {
    sim_s: f64,
    events: u64,
    timers_fired: u64,
    queue_depth_hwm: u64,
}

fn counters(o: sc_metrics::ScenarioOutcome) -> RunCounters {
    RunCounters {
        sim_s: o.sim_end.as_secs_f64(),
        events: o.events_processed,
        timers_fired: o.timers_fired,
        queue_depth_hwm: o.queue_depth_hwm,
    }
}

// The suite. Shapes and seeds deliberately mirror the determinism
// tests (`tests/obs_trace_determinism.rs`) and the example labs, so the
// numbers measure the code paths CI already pins for correctness.

fn quickstart() -> RunCounters {
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, 33);
    cfg.loads = 2;
    counters(run_scenario(&cfg))
}

fn chaos() -> RunCounters {
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, 57);
    cfg.clients = 2;
    cfg.loads = 4;
    cfg.interval = SimDuration::from_secs(10);
    cfg.timeout = SimDuration::from_secs(8);
    cfg.sc_remotes = 3;
    let mut built = build_scenario(&cfg);
    let gfw = built.gfw.clone().expect("paper config attaches the GFW");
    let remotes = built.sc_remote_addrs.clone();
    let plan = FaultPlan::new()
        .at(SimTime::from_secs(12), sc_gfw::blacklist_ip(&gfw, remotes[0]))
        .at(SimTime::from_secs(22), sc_gfw::blacklist_ip(&gfw, remotes[1]))
        .at(SimTime::from_secs(40), sc_gfw::unblacklist_ip(&gfw, remotes[0]));
    built.sim.install_fault_plan(plan);
    counters(built.finish())
}

fn flash_crowd() -> RunCounters {
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, 77);
    cfg.clients = 2;
    cfg.loads = 4;
    cfg.interval = SimDuration::from_secs(10);
    cfg.timeout = SimDuration::from_secs(8);
    cfg.sc_max_tunnels = Some(2);
    cfg.sc_queue_len = Some(2);
    cfg.flash_clients = 10;
    cfg.flash_loads = 2;
    cfg.flash_start = SimDuration::from_secs(20);
    cfg.flash_ramp = SimDuration::from_secs(4);
    cfg.extra_runtime = SimDuration::from_secs(20);
    let mut built = build_scenario(&cfg);
    let gate = built.flash_gate.clone().expect("flash clients configured");
    let plan = FaultPlan::new().at(
        SimTime::from_secs(20),
        Fault::FlashCrowd {
            clients: 10,
            ramp: SimDuration::from_secs(4),
            trigger: Box::new(move |_t| gate.set(true)),
        },
    );
    built.sim.install_fault_plan(plan);
    counters(built.finish())
}

fn cache_crowd() -> RunCounters {
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, 4242);
    cfg.clients = 4;
    cfg.loads = 2;
    cfg.interval = SimDuration::from_secs(30);
    cfg.timeout = SimDuration::from_secs(25);
    cfg.sc_http_page = true;
    cfg.origin_max_age = Some(20);
    cfg.sc_cache_bytes = Some(256 * 1024);
    counters(run_scenario(&cfg))
}

/// The fleet-chaos shape from `tests/obs_trace_determinism.rs`: a
/// 3-member domestic fleet with rotated PAC lists and a rendezvous-
/// sharded cache, member 1 crashed and restarted mid-run — measures
/// the failover + cache-peering code paths under fault churn.
fn fleet_crash() -> RunCounters {
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, 9393);
    cfg.clients = 4;
    cfg.loads = 3;
    cfg.interval = SimDuration::from_secs(15);
    cfg.timeout = SimDuration::from_secs(10);
    cfg.sc_fleet = 3;
    cfg.sc_http_page = true;
    cfg.origin_max_age = Some(10);
    cfg.sc_cache_bytes = Some(256 * 1024);
    cfg.extra_runtime = SimDuration::from_secs(30);
    let mut built = build_scenario(&cfg);
    let victim = built.sc_domestic_nodes[1];
    let plan = FaultPlan::new()
        .at(SimTime::from_secs(12), Fault::NodeCrash(victim))
        .at(SimTime::from_secs(20), Fault::NodeRestart(victim));
    built.sim.install_fault_plan(plan);
    counters(built.finish())
}

/// The elastic-churn shape from `tests/elastic_props.rs`: a serverless
/// remote tier under a mid-run GFW blacklisting wave resolved at fire
/// time against the live warm set — measures the autoscaler tick,
/// cold-start provisioning, churn-drain, and cost-metering code paths.
fn elastic_churn() -> RunCounters {
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, 7171);
    cfg.clients = 2;
    cfg.loads = 4;
    cfg.interval = SimDuration::from_secs(10);
    cfg.timeout = SimDuration::from_secs(8);
    cfg.sc_elastic_pool = 8;
    cfg.sc_elastic_min = 1;
    cfg.sc_elastic_max = 4;
    cfg.sc_elastic_idle = SimDuration::from_secs(25);
    cfg.extra_runtime = SimDuration::from_secs(15);
    let mut built = build_scenario(&cfg);
    let gfw = built.gfw.clone().expect("paper config attaches the GFW");
    let elastic = built.sc_elastic.clone().expect("elastic tier requested");
    let plan = FaultPlan::new().at(
        SimTime::from_secs(15),
        Fault::Callback {
            label: "gfw_blacklist_warm",
            apply: Box::new(move |_now| {
                let Some(addr) = elastic.warm_addrs().first().copied() else { return };
                let mut st = gfw.borrow_mut();
                if !st.config.ip_blacklist.contains(&(addr, 32)) {
                    st.config.ip_blacklist.push((addr, 32));
                }
            }),
        },
    );
    built.sim.install_fault_plan(plan);
    counters(built.finish())
}

/// The adaptive-censor arms race: a reactive GFW (flow classifier,
/// learned signatures, active-probing campaigns) against
/// detection-driven scheme rotation with stream resume — the
/// per-packet classifier hook and the rotation/replay machinery are
/// the code paths this scenario prices.
fn arms_race() -> RunCounters {
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, 4242);
    cfg.clients = 2;
    cfg.loads = 5;
    cfg.interval = SimDuration::from_secs(10);
    cfg.timeout = SimDuration::from_secs(8);
    cfg.extra_runtime = SimDuration::from_secs(20);
    cfg.sc_adaptive = true;
    cfg.sc_adaptive_learn_flows = 4;
    cfg.sc_adaptive_rotation = true;
    cfg.sc_adaptive_rotation_threshold = 1;
    cfg.sc_adaptive_rotation_cooldown = SimDuration::from_secs(5);
    counters(run_scenario(&cfg))
}

/// The scaled-up stress point: 24 staggered clients — an order of
/// magnitude above the labs — on short intervals, the shape ROADMAP
/// item 1's speedups must win on.
fn stress_24c() -> RunCounters {
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, 2024);
    cfg.clients = 24;
    cfg.loads = 3;
    cfg.interval = SimDuration::from_secs(10);
    cfg.timeout = SimDuration::from_secs(8);
    cfg.ramp_stagger = SimDuration::from_secs(1);
    counters(run_scenario(&cfg))
}

const SUITE: [(&str, fn() -> RunCounters); 8] = [
    ("quickstart", quickstart),
    ("chaos", chaos),
    ("flash_crowd", flash_crowd),
    ("cache_crowd", cache_crowd),
    ("fleet_crash", fleet_crash),
    ("elastic_churn", elastic_churn),
    ("arms_race", arms_race),
    ("stress_24c", stress_24c),
];

/// Measures one scenario: best-of-`iterations` wall time, with the
/// profiler and allocation counters rebased per iteration.
fn measure(name: &str, run: fn() -> RunCounters, iterations: u32) -> ScenarioBench {
    let mut best: Option<ScenarioBench> = None;
    for _ in 0..iterations {
        prof::reset();
        prof::set_enabled(true);
        prof::reset_alloc_peak();
        let alloc_before = prof::alloc_stats();
        let start = Instant::now();
        let c = run();
        let wall = start.elapsed();
        prof::set_enabled(false);
        let report = prof::report();
        let alloc_after = prof::alloc_stats();

        let wall_s = wall.as_secs_f64().max(1e-9);
        let cand = ScenarioBench {
            name: name.to_string(),
            wall_ms: wall_s * 1e3,
            sim_s: c.sim_s,
            sim_per_wall: c.sim_s / wall_s,
            events: c.events,
            events_per_sec: c.events as f64 / wall_s,
            timers_fired: c.timers_fired,
            queue_depth_hwm: c.queue_depth_hwm,
            alloc_bytes: alloc_after.allocated_bytes - alloc_before.allocated_bytes,
            peak_alloc_bytes: alloc_after.peak_bytes,
            subsystems: report.rows().map(|(s, ns, _)| (s.name().to_string(), ns)).collect(),
        };
        if best.as_ref().is_none_or(|b| cand.wall_ms < b.wall_ms) {
            best = Some(cand);
        }
    }
    best.expect("iterations >= 1")
}

fn main() -> ExitCode {
    const USAGE: &str = "usage: scholar-bench [--label NAME] [--iterations N] [--out FILE] \
                         [--baseline FILE] [--max-regress PCT] [--quiet]";
    let mut args = std::env::args().skip(1);
    let mut label = "local".to_string();
    let mut iterations: u32 = 5;
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut max_regress: f64 = 15.0;
    let mut quiet = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--label" => match args.next() {
                Some(v) => label = v,
                None => {
                    eprintln!("scholar-bench: --label expects a name");
                    return ExitCode::from(1);
                }
            },
            "--iterations" => {
                let Some(v) = args.next().and_then(|v| v.parse::<u32>().ok()).filter(|v| *v > 0)
                else {
                    eprintln!("scholar-bench: --iterations expects a positive integer");
                    return ExitCode::from(1);
                };
                iterations = v;
            }
            "--out" => match args.next() {
                Some(v) => out_path = Some(v),
                None => {
                    eprintln!("scholar-bench: --out expects a path");
                    return ExitCode::from(1);
                }
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(v),
                None => {
                    eprintln!("scholar-bench: --baseline expects a path");
                    return ExitCode::from(1);
                }
            },
            "--max-regress" => {
                let Some(v) =
                    args.next().and_then(|v| v.parse::<f64>().ok()).filter(|v| *v >= 0.0)
                else {
                    eprintln!("scholar-bench: --max-regress expects a non-negative percentage");
                    return ExitCode::from(1);
                };
                max_regress = v;
            }
            "--quiet" => quiet = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => {
                eprintln!("scholar-bench: unexpected argument {arg:?}\n{USAGE}");
                return ExitCode::from(1);
            }
        }
    }

    // Parse the baseline *before* spending minutes measuring.
    let baseline = match &baseline_path {
        None => None,
        Some(p) => {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("scholar-bench: cannot read baseline {p}: {e}");
                    return ExitCode::from(1);
                }
            };
            match BenchReport::parse(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("scholar-bench: bad baseline {p}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let mut report = BenchReport { label, iterations, scenarios: Vec::new() };
    for (name, run) in SUITE {
        if !quiet {
            eprintln!("scholar-bench: {name} ({iterations} iterations)…");
        }
        report.scenarios.push(measure(name, run, iterations));
    }

    // The measurement must be sound regardless of mode — this is the
    // deterministic part of the CI smoke gate (no timing assertions).
    let violations = report.sanity_violations();
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("scholar-bench: sanity violation — {v}");
        }
        return ExitCode::from(2);
    }

    if !quiet {
        let rows: Vec<sc_metrics::report::PerfRow> = report
            .scenarios
            .iter()
            .map(|s| sc_metrics::report::PerfRow {
                name: s.name.clone(),
                wall_ms: s.wall_ms,
                events: s.events,
                events_per_sec: s.events_per_sec,
                sim_per_wall: s.sim_per_wall,
                queue_depth_hwm: s.queue_depth_hwm,
                peak_alloc_bytes: s.peak_alloc_bytes,
                subsystems: s.subsystems.clone(),
            })
            .collect();
        print!("{}", sc_metrics::report::render_perf(&rows));
    }

    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("scholar-bench: cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        if !quiet {
            eprintln!("scholar-bench: wrote {path}");
        }
    }

    if let Some(base) = baseline {
        let regressions = compare(&base, &report, max_regress);
        if regressions.is_empty() {
            if !quiet {
                eprintln!(
                    "scholar-bench: no regression beyond {max_regress}% vs baseline \"{}\"",
                    base.label
                );
            }
        } else {
            for r in &regressions {
                eprintln!("scholar-bench: REGRESSION — {r}");
            }
            return ExitCode::from(5);
        }
    }
    ExitCode::SUCCESS
}
