//! # sc-bench
//!
//! Criterion benchmark targets for the reproduction. Each paper figure has
//! a bench that regenerates its data (`cargo bench -p sc-bench`); the
//! measured quantity is harness wall-time, and each bench *prints* the
//! figure's rows once per run so `bench_output.txt` doubles as the
//! experiment record.
//!
//! Targets: `fig3_survey`, `fig5_performance`, `fig6_overhead`,
//! `fig7_scalability`, `ablations`, `micro_substrates`.
//!
//! The crate also ships the `scholar-bench` binary — the fixed-suite
//! performance harness behind the committed `BENCH_*.json` trajectory —
//! and [`trajectory`], the schema/compare module it is built on.

pub mod trajectory;
