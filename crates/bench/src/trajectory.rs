//! The `BENCH_*.json` trajectory: schema, writer, parser, and the
//! regression comparator behind `scholar-bench --baseline`.
//!
//! The ROADMAP's simnet speed overhaul needs a *trajectory* — a
//! sequence of committed performance snapshots — so every hot-path PR
//! can prove "no slower than seed" mechanically. This module owns the
//! file format. The schema string is versioned
//! ([`SCHEMA`] = `"scholar-bench/v1"`); any future field change bumps
//! it, and [`BenchReport::parse`] rejects files whose schema it does
//! not understand, so a stale baseline fails loudly (exit code 2 in the
//! binary) instead of gating on garbage.
//!
//! JSON is written by hand with a fixed key order (the repo is
//! std-only; see `sc_obs::write_event_json` for the precedent) and read
//! back with [`sc_obs::analyze::parse_json`]. Floats use Rust's
//! shortest-round-trip `Display`, so serialize → parse is lossless —
//! `tests` pins the round trip.

use std::fmt::Write as _;

use sc_obs::analyze::{parse_json, Json};

/// Current schema identifier, first line of every BENCH file.
pub const SCHEMA: &str = "scholar-bench/v1";

/// One scenario's measured numbers (the best — lowest wall time — of
/// the harness's iterations).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBench {
    /// Scenario name (`quickstart`, `chaos`, …).
    pub name: String,
    /// Wall-clock time of the run (milliseconds).
    pub wall_ms: f64,
    /// Simulated seconds the scenario covered.
    pub sim_s: f64,
    /// Simulated seconds per wall second (higher is faster).
    pub sim_per_wall: f64,
    /// Events the simulator loop dispatched.
    pub events: u64,
    /// Events per wall second (higher is faster).
    pub events_per_sec: f64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Event-queue depth high-water mark.
    pub queue_depth_hwm: u64,
    /// Bytes allocated during the run (0 unless the harness installed
    /// [`sc_obs::prof::CountingAlloc`]).
    pub alloc_bytes: u64,
    /// Live-bytes high-water mark during the run (same caveat).
    pub peak_alloc_bytes: u64,
    /// Per-subsystem exclusive wall nanoseconds, in
    /// [`sc_obs::prof::Subsystem`] report order.
    pub subsystems: Vec<(String, u64)>,
}

/// A full BENCH_*.json file: a labelled suite of scenario measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Trajectory label (`seed`, a PR name, …).
    pub label: String,
    /// Iterations each scenario ran (best-of is recorded).
    pub iterations: u32,
    /// Per-scenario measurements, suite order.
    pub scenarios: Vec<ScenarioBench>,
}

/// Formats an `f64` as a JSON number (shortest round-trip; non-finite
/// values, which never arise from timings, map to `0`).
fn jf(v: f64) -> String {
    if v.is_finite() { format!("{v}") } else { "0".to_string() }
}

/// Minimal JSON string escaping for labels/names (our names are ASCII
/// identifiers, but garbage in must not produce an unparseable file).
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl BenchReport {
    /// Serializes to the canonical pretty-printed JSON (fixed key
    /// order, deterministic for a given report).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(out, "  \"label\": {},", jstr(&self.label));
        let _ = writeln!(out, "  \"iterations\": {},", self.iterations);
        out.push_str("  \"scenarios\": [");
        for (i, s) in self.scenarios.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let _ = writeln!(out, "      \"name\": {},", jstr(&s.name));
            let _ = writeln!(out, "      \"wall_ms\": {},", jf(s.wall_ms));
            let _ = writeln!(out, "      \"sim_s\": {},", jf(s.sim_s));
            let _ = writeln!(out, "      \"sim_per_wall\": {},", jf(s.sim_per_wall));
            let _ = writeln!(out, "      \"events\": {},", s.events);
            let _ = writeln!(out, "      \"events_per_sec\": {},", jf(s.events_per_sec));
            let _ = writeln!(out, "      \"timers_fired\": {},", s.timers_fired);
            let _ = writeln!(out, "      \"queue_depth_hwm\": {},", s.queue_depth_hwm);
            let _ = writeln!(out, "      \"alloc_bytes\": {},", s.alloc_bytes);
            let _ = writeln!(out, "      \"peak_alloc_bytes\": {},", s.peak_alloc_bytes);
            out.push_str("      \"subsystems\": {");
            for (j, (name, ns)) in s.subsystems.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", jstr(name), ns);
            }
            out.push_str("}\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a BENCH_*.json file, rejecting unknown schemas and shape
    /// violations with a descriptive error.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let v = parse_json(text)?;
        let schema = v.get("schema").and_then(Json::as_str).ok_or("missing \"schema\"")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?} (expected {SCHEMA:?})"));
        }
        let label = v.get("label").and_then(Json::as_str).ok_or("missing \"label\"")?.to_string();
        let iterations =
            v.get("iterations").and_then(Json::as_u64).ok_or("missing \"iterations\"")? as u32;
        let raw = v.get("scenarios").and_then(Json::as_arr).ok_or("missing \"scenarios\"")?;
        let mut scenarios = Vec::with_capacity(raw.len());
        for (i, s) in raw.iter().enumerate() {
            let ctx = |key: &str| format!("scenario {i}: missing or mistyped {key:?}");
            let f = |key: &str| s.get(key).and_then(Json::as_f64).ok_or_else(|| ctx(key));
            let u = |key: &str| s.get(key).and_then(Json::as_u64).ok_or_else(|| ctx(key));
            let subsystems = match s.get("subsystems") {
                Some(Json::Obj(pairs)) => pairs
                    .iter()
                    .map(|(k, v)| {
                        v.as_u64()
                            .map(|ns| (k.clone(), ns))
                            .ok_or_else(|| format!("scenario {i}: subsystem {k:?} not a u64"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err(ctx("subsystems")),
            };
            scenarios.push(ScenarioBench {
                name: s
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ctx("name"))?
                    .to_string(),
                wall_ms: f("wall_ms")?,
                sim_s: f("sim_s")?,
                sim_per_wall: f("sim_per_wall")?,
                events: u("events")?,
                events_per_sec: f("events_per_sec")?,
                timers_fired: u("timers_fired")?,
                queue_depth_hwm: u("queue_depth_hwm")?,
                alloc_bytes: u("alloc_bytes")?,
                peak_alloc_bytes: u("peak_alloc_bytes")?,
                subsystems,
            });
        }
        Ok(BenchReport { label, iterations, scenarios })
    }

    /// Basic sanity bounds a freshly measured report must satisfy (the
    /// CI smoke gate: schema and shape, **no timing assertions**).
    /// Returns the violations, empty when sound.
    pub fn sanity_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.scenarios.is_empty() {
            out.push("no scenarios measured".to_string());
        }
        for s in &self.scenarios {
            let mut complain = |what: &str| out.push(format!("{}: {what}", s.name));
            if s.events == 0 {
                complain("zero events processed");
            }
            if !(s.wall_ms.is_finite() && s.wall_ms > 0.0) {
                complain("non-positive wall time");
            }
            if !(s.sim_s.is_finite() && s.sim_s > 0.0) {
                complain("non-positive simulated time");
            }
            if !(s.events_per_sec.is_finite() && s.events_per_sec > 0.0) {
                complain("non-positive events/sec");
            }
            if !(s.sim_per_wall.is_finite() && s.sim_per_wall > 0.0) {
                complain("non-positive sim/wall ratio");
            }
            if s.queue_depth_hwm == 0 {
                complain("zero queue-depth high-water mark");
            }
            if s.subsystems.iter().all(|(_, ns)| *ns == 0) {
                complain("no subsystem attribution recorded");
            }
        }
        out
    }
}

/// One detected regression from [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Scenario name.
    pub scenario: String,
    /// The regressed metric (`events_per_sec`, `sim_per_wall`, or
    /// `missing` when the scenario vanished from the current suite).
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Percent regression relative to baseline (positive = slower).
    pub regress_pct: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.metric == "missing" {
            write!(f, "{}: scenario missing from current run", self.scenario)
        } else {
            write!(
                f,
                "{}: {} {:.0} → {:.0} ({:+.1}%)",
                self.scenario, self.metric, self.baseline, self.current, -self.regress_pct
            )
        }
    }
}

/// Compares `current` against `baseline` and returns every throughput
/// metric that regressed by more than `max_regress_pct` percent.
///
/// Gated metrics are `events_per_sec` and `sim_per_wall` (higher is
/// better); allocation numbers are informational only — they vary with
/// allocator versions and are gated by eye, not CI. A scenario present
/// in the baseline but absent from `current` is itself a regression
/// (coverage must never silently shrink). Extra scenarios in `current`
/// are fine — that is how the suite grows.
pub fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    max_regress_pct: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for b in &baseline.scenarios {
        let Some(c) = current.scenarios.iter().find(|c| c.name == b.name) else {
            out.push(Regression {
                scenario: b.name.clone(),
                metric: "missing",
                baseline: 0.0,
                current: 0.0,
                regress_pct: 100.0,
            });
            continue;
        };
        for (metric, base, cur) in [
            ("events_per_sec", b.events_per_sec, c.events_per_sec),
            ("sim_per_wall", b.sim_per_wall, c.sim_per_wall),
        ] {
            if base <= 0.0 {
                continue;
            }
            let regress_pct = (base - cur) / base * 100.0;
            if regress_pct > max_regress_pct {
                out.push(Regression {
                    scenario: b.name.clone(),
                    metric,
                    baseline: base,
                    current: cur,
                    regress_pct,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            label: "seed".to_string(),
            iterations: 3,
            scenarios: vec![
                ScenarioBench {
                    name: "quickstart".to_string(),
                    wall_ms: 12.75,
                    sim_s: 120.0,
                    sim_per_wall: 9411.76,
                    events: 43210,
                    events_per_sec: 3389019.6,
                    timers_fired: 512,
                    queue_depth_hwm: 33,
                    alloc_bytes: 9_000_000,
                    peak_alloc_bytes: 1_500_000,
                    subsystems: vec![
                        ("event_loop".to_string(), 7_000_000),
                        ("tcp".to_string(), 3_000_000),
                        ("gfw_classify".to_string(), 500_000),
                        ("proxy".to_string(), 1_200_000),
                        ("cache".to_string(), 0),
                    ],
                },
                ScenarioBench {
                    name: "chaos".to_string(),
                    wall_ms: 40.5,
                    sim_s: 260.0,
                    sim_per_wall: 6419.75,
                    events: 98765,
                    events_per_sec: 2438641.9,
                    timers_fired: 2048,
                    queue_depth_hwm: 57,
                    alloc_bytes: 22_000_000,
                    peak_alloc_bytes: 2_100_000,
                    subsystems: vec![("event_loop".to_string(), 30_000_000)],
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let report = sample();
        let text = report.to_json();
        let parsed = BenchReport::parse(&text).expect("own output must parse");
        assert_eq!(parsed, report);
        // And the canonical serialization is a fixed point.
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn parse_rejects_wrong_schema_and_shapes() {
        assert!(BenchReport::parse("not json at all").is_err());
        assert!(BenchReport::parse("{\"schema\": \"scholar-bench/v999\"}")
            .unwrap_err()
            .contains("unsupported schema"));
        // A scenario missing a required key names the key.
        let text = sample().to_json().replace("\"events_per_sec\": 3389019.6,\n", "");
        assert!(BenchReport::parse(&text).unwrap_err().contains("events_per_sec"));
        // Hostile label round-trips through escaping.
        let mut r = sample();
        r.label = "we\"ird\\label\n".to_string();
        assert_eq!(BenchReport::parse(&r.to_json()).unwrap().label, r.label);
    }

    #[test]
    fn sanity_violations_catch_empty_and_zeroed_runs() {
        let ok = sample();
        assert!(ok.sanity_violations().is_empty());
        let empty = BenchReport { label: "x".into(), iterations: 1, scenarios: vec![] };
        assert_eq!(empty.sanity_violations(), vec!["no scenarios measured".to_string()]);
        let mut broken = sample();
        broken.scenarios[0].events = 0;
        broken.scenarios[0].subsystems.iter_mut().for_each(|(_, ns)| *ns = 0);
        let v = broken.sanity_violations();
        assert!(v.iter().any(|m| m.contains("zero events")));
        assert!(v.iter().any(|m| m.contains("no subsystem attribution")));
    }

    #[test]
    fn compare_flags_synthetic_regression_and_missing_scenarios() {
        let base = sample();
        // Unchanged tree: identical numbers pass any threshold.
        assert!(compare(&base, &base, 0.0).is_empty());

        // Synthetic 30% slowdown on one scenario.
        let mut slow = base.clone();
        slow.scenarios[0].events_per_sec *= 0.70;
        slow.scenarios[0].sim_per_wall *= 0.70;
        let regs = compare(&base, &slow, 15.0);
        assert_eq!(regs.len(), 2, "{regs:?}");
        assert!(regs.iter().all(|r| r.scenario == "quickstart"));
        assert!(regs.iter().any(|r| r.metric == "events_per_sec"));
        assert!((regs[0].regress_pct - 30.0).abs() < 1e-6);
        // A generous threshold tolerates it.
        assert!(compare(&base, &slow, 35.0).is_empty());

        // Small jitter below the threshold passes.
        let mut jitter = base.clone();
        jitter.scenarios[1].events_per_sec *= 0.95;
        assert!(compare(&base, &jitter, 15.0).is_empty());

        // A speedup is never a regression.
        let mut fast = base.clone();
        fast.scenarios[0].events_per_sec *= 2.0;
        assert!(compare(&base, &fast, 15.0).is_empty());

        // Dropping a baseline scenario is a regression; adding one is not.
        let mut shrunk = base.clone();
        shrunk.scenarios.remove(1);
        let regs = compare(&base, &shrunk, 15.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "missing");
        assert_eq!(regs[0].scenario, "chaos");
        let mut grown = base.clone();
        grown.scenarios.push(ScenarioBench { name: "new".into(), ..base.scenarios[0].clone() });
        assert!(compare(&base, &grown, 15.0).is_empty());
    }
}
