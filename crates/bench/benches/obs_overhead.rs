//! Observability-overhead benchmark: how much does instrumenting the
//! simulation cost, per sink configuration?
//!
//! The same small ScholarCloud scenario is run with:
//! * no dispatcher installed (the free functions' thread-local-read
//!   fast path),
//! * a dispatcher installed but **no sink attached** (metrics/registry
//!   still collect; `enabled()` early-outs before any event is built,
//!   so emission must cost nothing — ROADMAP item 1's zero-cost claim),
//! * a `RingSink` at `Debug` (in-memory event cloning),
//! * a `JsonlSink` writing to `io::sink()` at `Debug` (serialization
//!   without disk),
//! * windows + SLO evaluation on top of the ring sink (the full
//!   operator configuration driven by the simnet tick hook).
//!
//! Numbers are recorded in EXPERIMENTS.md.

use criterion::{Criterion, criterion_group, criterion_main};
use sc_metrics::scenario::default_slos;
use sc_metrics::{Method, ScenarioConfig, run_scenario};
use sc_obs::{Dispatcher, JsonlSink, Level, RingSink, WindowSpec};
use sc_simnet::time::SimDuration;

fn small_cfg(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, seed);
    cfg.loads = 3;
    cfg.interval = SimDuration::from_secs(5);
    cfg.timeout = SimDuration::from_secs(15);
    cfg
}

fn obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(10);

    g.bench_function("scenario_no_dispatcher", |b| {
        b.iter(|| run_scenario(&small_cfg(7)))
    });

    g.bench_function("scenario_dispatcher_no_sink", |b| {
        b.iter(|| {
            let guard = Dispatcher::new().with_level(Level::Debug).install();
            let out = run_scenario(&small_cfg(7));
            drop(guard);
            out
        })
    });

    g.bench_function("scenario_ring_sink_debug", |b| {
        b.iter(|| {
            let guard = Dispatcher::new()
                .with_level(Level::Debug)
                .with_sink(Box::new(RingSink::with_capacity(64 * 1024)))
                .install();
            let out = run_scenario(&small_cfg(7));
            drop(guard);
            out
        })
    });

    g.bench_function("scenario_jsonl_sink_debug", |b| {
        b.iter(|| {
            let guard = Dispatcher::new()
                .with_level(Level::Debug)
                .with_sink(Box::new(JsonlSink::new(Box::new(std::io::sink()))))
                .install();
            let out = run_scenario(&small_cfg(7));
            drop(guard);
            out
        })
    });

    g.bench_function("scenario_windows_slos_ring", |b| {
        b.iter(|| {
            let guard = Dispatcher::new()
                .with_level(Level::Debug)
                .with_sink(Box::new(RingSink::with_capacity(64 * 1024)))
                .with_windows(WindowSpec::seconds(10))
                .with_slos(default_slos())
                .install();
            let out = run_scenario(&small_cfg(7));
            drop(guard);
            out
        })
    });

    g.finish();
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
