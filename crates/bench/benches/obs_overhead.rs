//! Observability-overhead benchmark: how much does instrumenting the
//! simulation cost, per sink configuration?
//!
//! The same small ScholarCloud scenario is run with:
//! * no dispatcher installed (the free functions' thread-local-read
//!   fast path),
//! * a dispatcher installed but **no sink attached** (metrics/registry
//!   still collect; `enabled()` early-outs before any event is built,
//!   so emission must cost nothing — ROADMAP item 1's zero-cost claim),
//! * a `RingSink` at `Debug` (in-memory event cloning),
//! * a `JsonlSink` writing to `io::sink()` at `Debug` (serialization
//!   without disk),
//! * windows + SLO evaluation on top of the ring sink (the full
//!   operator configuration driven by the simnet tick hook).
//!
//! Two trace-stitching micro-benchmarks ride along:
//! * `trace_ctx_mint_and_roundtrip` — the per-request cost of causal
//!   propagation itself: mint a `TraceId`, render the `Sc-Trace` header,
//!   parse it back, derive a child context. This is the *only* work
//!   traced requests pay when no sink is attached (the scenario-level
//!   propagation cost is already inside `scenario_no_dispatcher`, since
//!   ids travel in-band unconditionally).
//! * `stitch_and_attribute_200_trees` — offline analyzer throughput:
//!   reconstruct 200 six-span request trees from a parsed event stream
//!   and run the exclusive-time sweep over each (what `scholar-obs`
//!   does per captured trace).
//!
//! Numbers are recorded in EXPERIMENTS.md.

use criterion::{Criterion, criterion_group, criterion_main};
use sc_metrics::scenario::default_slos;
use sc_metrics::{Method, ScenarioConfig, run_scenario};
use sc_obs::analyze::{analyze, parse_trace, TraceEvent};
use sc_obs::{Dispatcher, JsonlSink, Level, RingSink, TraceCtx, TraceId, WindowSpec};
use sc_simnet::time::SimDuration;

fn small_cfg(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, seed);
    cfg.loads = 3;
    cfg.interval = SimDuration::from_secs(5);
    cfg.timeout = SimDuration::from_secs(15);
    cfg
}

fn obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(10);

    g.bench_function("scenario_no_dispatcher", |b| {
        b.iter(|| run_scenario(&small_cfg(7)))
    });

    g.bench_function("scenario_dispatcher_no_sink", |b| {
        b.iter(|| {
            let guard = Dispatcher::new().with_level(Level::Debug).install();
            let out = run_scenario(&small_cfg(7));
            drop(guard);
            out
        })
    });

    g.bench_function("scenario_ring_sink_debug", |b| {
        b.iter(|| {
            let guard = Dispatcher::new()
                .with_level(Level::Debug)
                .with_sink(Box::new(RingSink::with_capacity(64 * 1024)))
                .install();
            let out = run_scenario(&small_cfg(7));
            drop(guard);
            out
        })
    });

    g.bench_function("scenario_jsonl_sink_debug", |b| {
        b.iter(|| {
            let guard = Dispatcher::new()
                .with_level(Level::Debug)
                .with_sink(Box::new(JsonlSink::new(Box::new(std::io::sink()))))
                .install();
            let out = run_scenario(&small_cfg(7));
            drop(guard);
            out
        })
    });

    g.bench_function("scenario_windows_slos_ring", |b| {
        b.iter(|| {
            let guard = Dispatcher::new()
                .with_level(Level::Debug)
                .with_sink(Box::new(RingSink::with_capacity(64 * 1024)))
                .with_windows(WindowSpec::seconds(10))
                .with_slos(default_slos())
                .install();
            let out = run_scenario(&small_cfg(7));
            drop(guard);
            out
        })
    });

    g.finish();
}

/// Builds a parsed event stream of `trees` six-span request trees —
/// the canonical browser → admission → establish → attempt → relay
/// chain — spaced 1 ms apart, mimicking a captured ops trace.
fn synthetic_forest(trees: u64) -> Vec<TraceEvent> {
    let mut text = String::new();
    for i in 0..trees {
        let t0 = i * 1_000;
        let trace = TraceId::mint(i, 0x5eed).0;
        let spans: &[(&str, &str, u64, u64, u64)] = &[
            ("web", "page_load", t0, t0 + 900, 0),
            ("web", "tunnel", t0 + 10, t0 + 800, 1),
            ("scholarcloud", "admission", t0 + 20, t0 + 20, 2),
            ("scholarcloud", "establish", t0 + 20, t0 + 400, 2),
            ("scholarcloud", "attempt", t0 + 30, t0 + 400, 4),
            ("scholarcloud", "relay", t0 + 250, t0 + 380, 5),
        ];
        for (j, (component, name, start, end, parent_off)) in spans.iter().enumerate() {
            let id = i * 6 + j as u64 + 1;
            let parent = if j == 0 {
                String::new()
            } else {
                format!(",\"parent\":{}", i * 6 + parent_off + 1)
            };
            text.push_str(&format!(
                "{{\"t_us\":{start},\"level\":\"debug\",\"component\":\"{component}\",\
                 \"target\":\"t\",\"event\":\"span_start\",\"span\":{id},\"fields\":{{\
                 \"span_name\":\"{name}\",\"trace_id\":{trace}{parent}}}}}\n"
            ));
            text.push_str(&format!(
                "{{\"t_us\":{end},\"level\":\"info\",\"component\":\"{component}\",\
                 \"target\":\"t\",\"event\":\"span_end\",\"span\":{id},\"fields\":{{\
                 \"span_name\":\"{name}\",\"ok\":true}}}}\n"
            ));
        }
    }
    parse_trace(&text).expect("synthetic trace parses")
}

fn trace_stitching(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_stitching");

    // Per-request propagation cost: everything a traced request adds on
    // the hot path when no sink is attached.
    g.bench_function("trace_ctx_mint_and_roundtrip", |b| {
        let mut entropy = 0u64;
        b.iter(|| {
            entropy = entropy.wrapping_add(1);
            let ctx =
                TraceCtx { trace: TraceId::mint(entropy, 0xc0ffee), parent: sc_obs::SpanId(0) };
            let header = ctx.header_value();
            let parsed = TraceCtx::parse(&header).expect("roundtrip");
            criterion::black_box(parsed.with_parent(sc_obs::SpanId(entropy)))
        })
    });

    // Offline analyzer throughput: trees stitched + attributed per pass.
    let events = synthetic_forest(200);
    g.bench_function("stitch_and_attribute_200_trees", |b| {
        b.iter(|| {
            let analysis = analyze(&events, 1_000_000);
            assert_eq!(analysis.trees.len(), 200);
            criterion::black_box(analysis.tier_totals.len())
        })
    });

    g.finish();
}

criterion_group!(benches, obs_overhead, trace_stitching);
criterion_main!(benches);
