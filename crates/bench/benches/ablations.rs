//! The DESIGN.md ablations: blinding on/off, scheme agility after a GFW
//! rule update, and the Shadowsocks keep-alive sweep.

use criterion::{Criterion, criterion_group, criterion_main};
use sc_metrics::{ablation_agility, ablation_blinding, ablation_ss_keepalive};

fn bench(c: &mut Criterion) {
    let (on, off, resets) = ablation_blinding(2017);
    println!("Ablation — blinding:");
    println!(
        "  ON : fail {:.1}%  PLR {:.3}%   |   OFF: fail {:.1}%  PLR {:.3}%  (embedded-SNI resets {resets})",
        on.failure_rate * 100.0,
        on.plr * 100.0,
        off.failure_rate * 100.0,
        off.plr * 100.0,
    );
    let (before, after) = ablation_agility(2017);
    println!("Ablation — agility: degradation before rotation {before:.2}, after {after:.2}");
    for (w, plt) in ablation_ss_keepalive(2017, &[1, 10, 120]) {
        println!("Ablation — SS keepalive {w:>3} s → mean subsequent PLT {plt:.2} s");
    }

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("blinding_on_off", |b| b.iter(|| ablation_blinding(7)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
