//! Micro-benchmarks of the substrates: crypto throughput, blinding codecs,
//! TCP bulk transfer in the simulator, GFW flow classification, and the
//! PAC evaluator.

use bytes::Bytes;
use criterion::{Criterion, Throughput, criterion_group, criterion_main};
use sc_crypto::aes::{Aes, KeySize};
use sc_crypto::blinding::BlindingScheme;
use sc_crypto::modes::Cfb;
use sc_crypto::sha256::sha256;
use sc_gfw::{FlowTable, GfwConfig};
use sc_netproto::pac::PacFile;
use sc_simnet::addr::{Addr, SocketAddr};
use sc_simnet::packet::{Packet, TcpFlags, TcpSegmentBody};
use sc_simnet::time::SimTime;

fn crypto_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let data = vec![0xa5u8; 16 * 1024];
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("aes256_cfb_encrypt_16k", |b| {
        let aes = Aes::new(KeySize::Aes256, &[7; 32]).unwrap();
        b.iter(|| {
            let mut cfb = Cfb::new(aes.clone(), [1; 16]);
            let mut buf = data.clone();
            cfb.encrypt(&mut buf);
            buf
        })
    });
    g.bench_function("sha256_16k", |b| b.iter(|| sha256(&data)));
    for scheme in BlindingScheme::rotation() {
        g.bench_function(format!("blind_{scheme:?}_16k"), |b| {
            let codec = scheme.instantiate(b"key");
            b.iter(|| {
                let mut buf = data.clone();
                codec.encode(&mut buf, 0);
                buf
            })
        });
    }
    g.finish();
}

fn gfw_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("gfw");
    let cfg = GfwConfig::china_2017((Addr::new(99, 2, 0, 0), 16));
    let mk_packet = |port: u16, payload: &[u8]| {
        Packet::tcp(
            SocketAddr::new(Addr::new(10, 0, 0, 1), 40_000),
            SocketAddr::new(Addr::new(99, 0, 0, 1), port),
            TcpSegmentBody {
                seq: 0,
                ack: 0,
                flags: TcpFlags::ACK,
                window: 0,
                payload: Bytes::copy_from_slice(payload),
            },
        )
    };
    let http = mk_packet(80, b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n");
    let mut tls_client = sc_netproto::TlsClient::new("cdn.example", 7);
    let tls = mk_packet(443, &tls_client.start_handshake());
    g.bench_function("classify_http_packet", |b| {
        b.iter(|| {
            let mut table = FlowTable::new();
            table.observe(&http, SimTime::ZERO, &cfg);
        })
    });
    g.bench_function("classify_tls_packet", |b| {
        b.iter(|| {
            let mut table = FlowTable::new();
            table.observe(&tls, SimTime::ZERO, &cfg);
        })
    });
    g.finish();
}

fn pac_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("pac");
    let pac = PacFile::new(
        ["scholar.google.com", "www.google.com"],
        SocketAddr::new(Addr::new(10, 1, 0, 1), 8080),
    );
    g.bench_function("decide", |b| b.iter(|| pac.decide("scholar.google.com")));
    let js = pac.to_javascript();
    g.bench_function("parse", |b| b.iter(|| PacFile::parse(&js).unwrap()));
    g.finish();
}

fn tcp_transfer_bench(c: &mut Criterion) {
    use sc_simnet::prelude::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct EchoServer;
    impl App for EchoServer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.tcp_listen(80);
        }
        fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
            if let AppEvent::Tcp(h, TcpEvent::DataReceived) = ev {
                let data = ctx.tcp_recv_all(h);
                ctx.tcp_send(h, &data);
            }
        }
    }
    struct Sender {
        got: Rc<RefCell<usize>>,
        h: Option<TcpHandle>,
    }
    impl App for Sender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.h = Some(ctx.tcp_connect(SocketAddr::new(Addr::new(99, 0, 0, 1), 80)));
        }
        fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
            match ev {
                AppEvent::Tcp(h, TcpEvent::Connected) => {
                    ctx.tcp_send(h, &vec![7u8; 200_000]);
                }
                AppEvent::Tcp(h, TcpEvent::DataReceived) => {
                    *self.got.borrow_mut() += ctx.tcp_recv_all(h).len();
                }
                _ => {}
            }
        }
    }

    let mut g = c.benchmark_group("simnet");
    g.sample_size(20);
    g.bench_function("tcp_echo_200k_with_loss", |b| {
        b.iter(|| {
            let mut sim = Sim::new(7);
            let a = sim.add_node("a", Addr::new(10, 0, 0, 1));
            let s = sim.add_node("s", Addr::new(99, 0, 0, 1));
            sim.add_link(
                a,
                s,
                LinkConfig::with_delay(SimDuration::from_millis(20)).loss(0.002),
            );
            sim.compute_routes();
            sim.install_app(s, Box::new(EchoServer));
            let got = Rc::new(RefCell::new(0));
            sim.install_app(a, Box::new(Sender { got: got.clone(), h: None }));
            sim.run_for(SimDuration::from_secs(60));
            assert_eq!(*got.borrow(), 200_000);
        })
    });
    g.finish();
}

criterion_group!(benches, crypto_benches, gfw_benches, pac_benches, tcp_transfer_bench);
criterion_main!(benches);
