//! Figure 7: mean PLT vs concurrent clients for the four controllable
//! methods (the paper excludes Tor — no control over its bridges).

use criterion::{Criterion, criterion_group, criterion_main};
use sc_metrics::report::render_fig7;
use sc_metrics::{FIG7_CLIENTS, Method, fig7_method};

fn bench(c: &mut Criterion) {
    let methods = [
        Method::NativeVpn,
        Method::OpenVpn,
        Method::Shadowsocks,
        Method::ScholarCloud,
    ];
    let curves: Vec<_> = methods
        .into_iter()
        .map(|m| (m, fig7_method(m, 2017, &FIG7_CLIENTS)))
        .collect();
    println!("{}", render_fig7(&curves));

    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("scholarcloud_60_clients", |b| {
        b.iter(|| fig7_method(Method::ScholarCloud, 7, &[60]))
    });
    g.bench_function("shadowsocks_60_clients", |b| {
        b.iter(|| fig7_method(Method::Shadowsocks, 7, &[60]))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
