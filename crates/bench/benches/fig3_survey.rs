//! Figure 3: the access-method survey sampling + tabulation pipeline.

use criterion::{Criterion, criterion_group, criterion_main};
use sc_metrics::fig3_survey;
use sc_metrics::report::render_fig3;

fn bench(c: &mut Criterion) {
    // Print the figure once for the record.
    println!("{}", render_fig3(&fig3_survey(371, 2017)));
    println!("{}", render_fig3(&fig3_survey(100_000, 2017)));
    let mut g = c.benchmark_group("fig3");
    g.bench_function("survey_371", |b| b.iter(|| fig3_survey(371, 7)));
    g.bench_function("survey_100k", |b| b.iter(|| fig3_survey(100_000, 7)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
