//! sc-cache micro-benchmarks: the operations on the domestic proxy's
//! hot path. A fresh hit must be cheap enough to be free next to the
//! simulated network (microseconds vs a ~200 ms trans-Pacific fetch),
//! and the singleflight bookkeeping must stay flat as waiters pile on.

use criterion::{BenchmarkId, Criterion, black_box, criterion_group, criterion_main};
use sc_cache::{CacheConfig, CacheKey, CachedResponse, ContentCache, Lookup, Role, Singleflight};
use sc_simnet::time::{SimDuration, SimTime};

fn key(i: usize) -> CacheKey {
    ("scholar.google.com".to_string(), format!("/citations?page={i}"))
}

fn response(body_len: usize) -> CachedResponse {
    CachedResponse {
        status: 200,
        content_type: "text/html".to_string(),
        etag: "\"deadbeefdeadbeef\"".to_string(),
        max_age: Some(300),
        body: vec![0x42; body_len],
    }
}

/// A cache pre-filled with `n` entries of `body_len` bytes each.
fn filled(n: usize, body_len: usize, capacity: usize) -> ContentCache {
    let mut cache = ContentCache::new(CacheConfig {
        capacity_bytes: capacity,
        default_ttl: SimDuration::from_secs(600),
        host_ttl: Vec::new(),
    });
    for i in 0..n {
        cache.insert(key(i), response(body_len), SimDuration::from_secs(600), SimTime::ZERO);
    }
    cache
}

fn bench(c: &mut Criterion) {
    let now = SimTime::from_secs(1);

    let mut g = c.benchmark_group("cache");

    // The hit path: lookup of a fresh entry (touches the LRU index) plus
    // the body clone the proxy hands to `serve_from_cache` — the whole
    // per-request cost when the cache absorbs a page hit.
    for body_len in [1024usize, 16 * 1024] {
        let mut cache = filled(64, body_len, 16 * 1024 * 1024);
        let k = key(17);
        g.bench_with_input(BenchmarkId::new("hit", body_len), &body_len, |b, _| {
            b.iter(|| match cache.lookup(black_box(&k), now) {
                Lookup::Fresh(resp) => black_box(resp.body.clone()).len(),
                _ => unreachable!("entry is fresh"),
            })
        });
    }

    // The miss path under budget pressure: every insert evicts the LRU
    // victim, so this prices the full store + evict churn.
    g.bench_function("insert_evict", |b| {
        let mut cache = filled(8, 16 * 1024, 9 * 16 * 1024);
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            cache.insert(key(i % 1024), response(16 * 1024), SimDuration::from_secs(600), now)
        })
    });

    // Singleflight: one leader plus N waiters attaching to the in-flight
    // fetch, then the completion fan-out — the coalescing cost of a
    // same-page crowd, per flight.
    for waiters in [1usize, 7, 63] {
        g.bench_with_input(
            BenchmarkId::new("singleflight", waiters),
            &waiters,
            |b, &waiters| {
                let mut sf: Singleflight<usize> = Singleflight::new();
                let k = key(0);
                b.iter(|| {
                    assert!(matches!(sf.begin(&k, 0), Role::Leader));
                    for w in 1..=waiters {
                        assert!(matches!(sf.begin(&k, w), Role::Waiter));
                    }
                    let flight = sf.complete(&k).expect("flight open");
                    black_box(flight.waiters.len())
                })
            },
        );
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
