//! Figures 6a–6c: client-side traffic / CPU / memory overhead.

use criterion::{Criterion, criterion_group, criterion_main};
use sc_metrics::report::render_fig6;
use sc_metrics::{Method, fig6_all, fig6_method};

fn bench(c: &mut Criterion) {
    let rows = fig6_all(2017);
    println!("{}", render_fig6(&rows));

    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("overhead_scholarcloud", |b| {
        b.iter(|| fig6_method(Method::ScholarCloud, 7))
    });
    g.bench_function("overhead_native_vpn", |b| {
        b.iter(|| fig6_method(Method::NativeVpn, 7))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
