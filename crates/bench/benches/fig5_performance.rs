//! Figures 5a–5c: PLT / RTT / PLR per access method.

use criterion::{BenchmarkId, Criterion, criterion_group, criterion_main};
use sc_metrics::report::render_fig5;
use sc_metrics::{Method, fig5_all, fig5_method};

fn bench(c: &mut Criterion) {
    // Regenerate and print the full figure once.
    let rows = fig5_all(2017, 10);
    println!("{}", render_fig5(&rows));

    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    for method in Method::all_measured() {
        g.bench_with_input(
            BenchmarkId::new("scenario", method.name()),
            &method,
            |b, &m| b.iter(|| fig5_method(m, 7, 3)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
