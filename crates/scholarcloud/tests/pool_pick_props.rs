//! Property tests for `RemotePool::pick` determinism.
//!
//! The pool's failover order must be a pure function of the recorded
//! health history — never of sub-millisecond timing noise. PR 7's
//! chaos scenario had to blacklist the whole pool at once to dodge the
//! old behavior, where two equally healthy remotes whose RTT EWMAs
//! differed by a few microseconds of propagation jitter would swap
//! ranks between runs. The ranking now quantizes the EWMA to whole
//! milliseconds and tie-breaks on the remote index, which these
//! properties pin.

use proptest::prelude::*;
use sc_core::RemotePool;
use sc_simnet::addr::{Addr, SocketAddr};
use sc_simnet::time::{SimDuration, SimTime};

fn addrs(n: usize) -> Vec<SocketAddr> {
    (0..n).map(|i| SocketAddr::new(Addr::new(99, 0, 0, 40 + i as u8), 8443)).collect()
}

/// A health history: per-remote lists of observed RTTs (µs) and
/// failure counts, applied in a fixed interleaved order.
fn history(n: usize) -> impl Strategy<Value = Vec<(Vec<u64>, u32)>> {
    prop::collection::vec(
        (prop::collection::vec(1_000u64..200_000, 0..6), 0u32..2),
        n..=n,
    )
}

fn build_pool(hist: &[(Vec<u64>, u32)]) -> RemotePool {
    let mut pool = RemotePool::new(addrs(hist.len()), 100, SimDuration::from_secs(5));
    for (i, (rtts, fails)) in hist.iter().enumerate() {
        for &rtt in rtts {
            pool.record_success(i, SimDuration::from_micros(rtt));
        }
        for _ in 0..*fails {
            pool.record_failure(i, SimTime::from_secs(1));
        }
    }
    pool
}

proptest! {
    /// The same health history always yields the same pick — pick is a
    /// pure function of recorded state, not of construction order or
    /// any hidden clock.
    #[test]
    fn identical_histories_give_identical_picks(hist in history(4)) {
        let mut a = build_pool(&hist);
        let mut b = build_pool(&hist);
        let now = SimTime::from_secs(2);
        prop_assert_eq!(a.pick(now, None), b.pick(now, None));
        for exclude in 0..hist.len() {
            let mut a = build_pool(&hist);
            let mut b = build_pool(&hist);
            prop_assert_eq!(a.pick(now, Some(exclude)), b.pick(now, Some(exclude)));
        }
    }

    /// Sub-millisecond RTT perturbations never change the pick: two
    /// pools whose every EWMA observation differs by < 1 ms of jitter
    /// but lands in the same millisecond bucket agree on the winner.
    /// (This is the timing sensitivity that forced PR 7's all-at-once
    /// blacklist workaround.)
    #[test]
    fn sub_millisecond_jitter_does_not_flip_the_pick(
        base_ms in prop::collection::vec(1u64..50, 4),
        jitter_us in prop::collection::vec(0u64..1000, 4),
    ) {
        let now = SimTime::from_secs(1);
        let clean = {
            let mut pool = RemotePool::new(addrs(4), 100, SimDuration::from_secs(5));
            for (i, &ms) in base_ms.iter().enumerate() {
                pool.record_success(i, SimDuration::from_millis(ms));
            }
            pool.pick(now, None)
        };
        let jittered = {
            let mut pool = RemotePool::new(addrs(4), 100, SimDuration::from_secs(5));
            for (i, &ms) in base_ms.iter().enumerate() {
                // Same millisecond bucket, different microseconds.
                pool.record_success(i, SimDuration::from_micros(ms * 1000 + jitter_us[i]));
            }
            pool.pick(now, None)
        };
        prop_assert_eq!(clean, jittered);
    }

    /// At fully equal health (fresh pool, or identical histories per
    /// remote), the lowest index wins — the explicit tie-break.
    #[test]
    fn equal_health_ties_break_on_lowest_index(n in 1usize..6, rtt_ms in 1u64..100) {
        let mut fresh = RemotePool::new(addrs(n), 100, SimDuration::from_secs(5));
        prop_assert_eq!(fresh.pick(SimTime::ZERO, None), Some(0));

        let mut seasoned = RemotePool::new(addrs(n), 100, SimDuration::from_secs(5));
        for i in 0..n {
            seasoned.record_success(i, SimDuration::from_millis(rtt_ms));
        }
        prop_assert_eq!(seasoned.pick(SimTime::ZERO, None), Some(0));
        if n > 1 {
            prop_assert_eq!(
                seasoned.pick(SimTime::ZERO, Some(0)),
                Some(1),
                "excluding the winner moves to the next index"
            );
        }
    }

    /// Smooth weighted round-robin at equal weights is exact round-
    /// robin: over `rounds` full cycles every remote is picked exactly
    /// `rounds` times, and the very first cycle runs 0, 1, …, n-1 (the
    /// index tie-break keeps the order stable, not just the counts).
    #[test]
    fn equal_weights_round_robin_exactly(
        n in 2usize..6,
        rtt_ms in 1u64..100,
        rounds in 1usize..5,
    ) {
        let mut pool = RemotePool::new(addrs(n), 100, SimDuration::from_secs(5));
        for i in 0..n {
            pool.record_success(i, SimDuration::from_millis(rtt_ms));
        }
        let now = SimTime::from_secs(1);
        let mut counts = vec![0usize; n];
        for round in 0..rounds {
            for expect in 0..n {
                let got = pool.pick(now, None);
                if round == 0 {
                    prop_assert_eq!(
                        got,
                        Some(expect),
                        "first cycle must run in index order"
                    );
                }
                counts[got.expect("candidates exist")] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            prop_assert_eq!(
                c, rounds,
                "remote {} picked {} times over {} full cycles",
                i, c, rounds
            );
        }
    }

    /// Weighted dispatch is monotone in RTT: over any window of picks,
    /// a remote with a strictly smaller millisecond RTT bucket is never
    /// dispatched to less often than a slower peer.
    #[test]
    fn faster_remote_never_receives_less_traffic(
        fast_ms in 1u64..40,
        extra_ms in 1u64..200,
        picks in 4usize..40,
    ) {
        let slow_ms = fast_ms + extra_ms;
        let mut pool = RemotePool::new(addrs(2), 100, SimDuration::from_secs(5));
        // Index order is adversarial here: the slower remote sits at
        // index 0, so any index bias would favor it.
        pool.record_success(0, SimDuration::from_millis(slow_ms));
        pool.record_success(1, SimDuration::from_millis(fast_ms));
        let now = SimTime::from_secs(1);
        let mut counts = [0usize; 2];
        for _ in 0..picks {
            counts[pool.pick(now, None).expect("candidates exist")] += 1;
        }
        prop_assert!(
            counts[1] >= counts[0],
            "fast remote ({fast_ms} ms) got {} picks, slow ({slow_ms} ms) got {}",
            counts[1],
            counts[0]
        );
        prop_assert_eq!(counts[0] + counts[1], picks);
    }
}
