//! Property tests for the overload-control layer: whatever interleaving
//! of arrivals, releases, and queue drains the simulator produces, the
//! admission controller must (a) be a pure function of its inputs —
//! identical op streams yield identical decision sequences, the
//! property the byte-identical-trace guarantee leans on — and (b) never
//! exceed its declared bounds: active tunnels stay ≤ `max_tunnels` and
//! the pending queue stays ≤ `queue_len` no matter what arrives.

use proptest::prelude::*;
use sc_core::{AdmissionConfig, AdmissionController, Decision, Dequeued};
use sc_simnet::addr::Addr;
use sc_simnet::time::{SimDuration, SimTime};

/// A deliberately tight config so short random op streams actually hit
/// the queue, the deadline check, and the per-client limits.
fn tight_config() -> AdmissionConfig {
    let mut cfg = AdmissionConfig::default();
    cfg.max_tunnels = 3;
    cfg.queue_len = 4;
    cfg.deadline_budget = SimDuration::from_secs(2);
    cfg.per_client_rate = 2.0;
    cfg.per_client_burst = 4.0;
    cfg.max_streams_per_client = 5;
    cfg
}

/// One step of the op stream: advance time, then arrive / release /
/// drain. `kind` 0–1 is an arrival (twice the weight), 2 a release of
/// the oldest outstanding admitted request, 3 a queue drain.
type Op = (u16, u8, u8); // (dt_ms, client_id, kind)

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u16..800, 0u8..4, 0u8..4), 1..160)
}

/// Replays `ops` against a fresh controller, returning the full
/// decision log plus the high-water marks of the two bounded resources.
fn replay(ops: &[Op]) -> (Vec<String>, usize, usize) {
    let mut ctl: AdmissionController<u64> = AdmissionController::new(tight_config());
    let mut log = Vec::new();
    let mut now = SimTime::ZERO;
    let mut next_token = 0u64;
    // Outstanding admitted requests, oldest first, so releases are
    // always legal (the controller debug-asserts on spurious releases).
    let mut live: Vec<(u64, Addr)> = Vec::new();
    // Which client each queued token belongs to, so a later dequeue can
    // be released against the right client — mirroring the proxy, which
    // keeps the browser→peer mapping for the same reason.
    let mut queued: std::collections::BTreeMap<u64, Addr> = std::collections::BTreeMap::new();
    let mut max_active = 0;
    let mut max_queue = 0;

    for &(dt_ms, client_id, kind) in ops {
        now = now + SimDuration::from_millis(u64::from(dt_ms));
        let client = Addr::new(10, 0, 0, client_id + 1);
        match kind {
            0 | 1 => {
                let token = next_token;
                next_token += 1;
                let d = ctl.on_request(token, client, now);
                match d {
                    Decision::Admit => live.push((token, client)),
                    Decision::Enqueue => {
                        queued.insert(token, client);
                    }
                    _ => {}
                }
                log.push(format!("req {token} {}", d.name()));
            }
            2 => {
                if !live.is_empty() {
                    let (token, client) = live.remove(0);
                    // Vary the establishment sample with the op stream so
                    // the EWMA (and with it the deadline check) moves.
                    let est = SimDuration::from_millis(50 + u64::from(dt_ms));
                    ctl.release(client, now, Some(est));
                    log.push(format!("rel {token}"));
                }
            }
            _ => {
                for dq in ctl.drain(now) {
                    match dq {
                        Dequeued::Admit { token, waited } => {
                            let client = queued.remove(&token).expect("dequeued was queued");
                            log.push(format!("deq {token} waited={}", waited.as_micros()));
                            live.push((token, client));
                        }
                        Dequeued::Shed { token } => {
                            queued.remove(&token);
                            log.push(format!("shed {token}"));
                        }
                    }
                }
            }
        }
        max_active = max_active.max(ctl.active());
        max_queue = max_queue.max(ctl.queue_depth());
    }
    (log, max_active, max_queue)
}

proptest! {
    /// Identical op streams produce identical decision sequences —
    /// admission is deterministic under arbitrary interleaved arrivals.
    #[test]
    fn decisions_are_deterministic(ops in ops()) {
        let (a, _, _) = replay(&ops);
        let (b, _, _) = replay(&ops);
        prop_assert_eq!(a, b);
    }

    /// The bounded resources honor their declared caps at every step of
    /// every interleaving.
    #[test]
    fn bounds_hold_under_any_interleaving(ops in ops()) {
        let cfg = tight_config();
        let (_, max_active, max_queue) = replay(&ops);
        prop_assert!(
            max_active <= cfg.max_tunnels,
            "active tunnels peaked at {} above the cap {}", max_active, cfg.max_tunnels
        );
        prop_assert!(
            max_queue <= cfg.queue_len,
            "pending queue peaked at {} above the cap {}", max_queue, cfg.queue_len
        );
    }
}
