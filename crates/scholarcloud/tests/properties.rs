//! Property-based tests on ScholarCloud's wire protocol.

use proptest::prelude::*;
use sc_core::frame::{Hello, StreamCodec, StreamHeader, could_be_preamble};
use sc_crypto::blinding::BlindingScheme;
use sc_netproto::socks::TargetAddr;

fn scheme_strategy() -> impl Strategy<Value = BlindingScheme> {
    (0u8..4).prop_map(|i| BlindingScheme::from_wire_id(i).unwrap())
}

proptest! {
    /// Hello encode/parse is the identity for any scheme/nonce/host.
    #[test]
    fn hello_roundtrip(scheme in scheme_strategy(), nonce: u64,
                       secret in prop::collection::vec(any::<u8>(), 1..64),
                       host in "[a-z]{1,10}\\.[a-z]{2,6}") {
        let hello = Hello { scheme, nonce, generation: 0 };
        let wire = hello.encode(&secret, &host);
        let (parsed, used) = Hello::parse(&secret, 0, &wire).unwrap().unwrap();
        prop_assert_eq!(parsed, hello);
        prop_assert_eq!(used, wire.len());
        prop_assert!(could_be_preamble(&wire[..wire.len().min(6)]));
    }

    /// A preamble never authenticates under a different secret.
    #[test]
    fn hello_secret_binding(scheme in scheme_strategy(), nonce: u64,
                            s1 in prop::collection::vec(any::<u8>(), 1..32),
                            s2 in prop::collection::vec(any::<u8>(), 1..32)) {
        prop_assume!(s1 != s2);
        let wire = Hello { scheme, nonce, generation: 0 }.encode(&s1, "h.example");
        prop_assert!(Hello::parse(&s2, 0, &wire).is_err());
    }

    /// Stream headers round-trip for all targets.
    #[test]
    fn stream_header_roundtrip(is_tls: bool, port: u16, trace: u64, parent: u64,
                               domain in "[a-z]{1,20}\\.[a-z]{2,8}") {
        let header = StreamHeader { is_tls, trace, parent, target: TargetAddr::Domain(domain, port) };
        let wire = header.encode();
        let (parsed, used) = StreamHeader::decode(&wire).unwrap();
        prop_assert_eq!(parsed, header);
        prop_assert_eq!(used, wire.len());
    }

    /// The stream codec is lossless for any scheme, any chunking, with or
    /// without the extra encryption layer.
    #[test]
    fn codec_roundtrip(scheme in scheme_strategy(), nonce: u64, encrypt: bool,
                       secret in prop::collection::vec(any::<u8>(), 1..48),
                       data in prop::collection::vec(any::<u8>(), 0..2000),
                       chunk in 1usize..257) {
        let hello = Hello { scheme, nonce, generation: 0 };
        let mut tx = StreamCodec::new(&secret, &hello, encrypt, 0);
        let mut rx = StreamCodec::new(&secret, &hello, encrypt, 0);
        let mut wire = data.clone();
        for piece in wire.chunks_mut(chunk) {
            tx.encode(piece);
        }
        for piece in wire.chunks_mut(chunk) {
            rx.decode(piece);
        }
        prop_assert_eq!(wire, data);
    }

    /// Garbage (not starting with POST /) is immediately identified as
    /// non-preamble, so probes get the decoy without delay.
    #[test]
    fn garbage_rejected_fast(garbage in prop::collection::vec(any::<u8>(), 6..64)) {
        prop_assume!(!garbage.starts_with(b"POST /"));
        prop_assert!(!could_be_preamble(&garbage));
    }
}
