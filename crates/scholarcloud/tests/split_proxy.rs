//! End-to-end tests of the ScholarCloud split proxy: whitelisted fetches,
//! refusal of off-whitelist targets, probe decoys, and scheme rotation.

use std::cell::RefCell;
use std::rc::Rc;

use sc_core::{DomesticProxy, RemoteProxy, ScConfig};
use sc_simnet::prelude::*;
use sc_tunnels::names::NameMap;

const CLIENT: Addr = Addr::new(10, 0, 0, 1);
const DOMESTIC: Addr = Addr::new(10, 1, 0, 1);
const REMOTE: Addr = Addr::new(99, 0, 0, 40);
const WEB: Addr = Addr::new(99, 2, 0, 1);

fn topology(seed: u64) -> (Sim, NodeId) {
    let mut sim = Sim::new(seed);
    let client = sim.add_node("client", CLIENT);
    let cernet = sim.add_node("cernet", Addr::new(10, 0, 0, 254));
    let domestic = sim.add_node("domestic-proxy", DOMESTIC);
    let border = sim.add_node("border", Addr::new(172, 16, 0, 1));
    let us = sim.add_node("us", Addr::new(99, 0, 0, 254));
    let remote = sim.add_node("remote-proxy", REMOTE);
    let web = sim.add_node("web", WEB);
    let lan = LinkConfig::with_delay(SimDuration::from_millis(2));
    sim.add_link(client, cernet, lan);
    sim.add_link(domestic, cernet, lan);
    sim.add_link(cernet, border, LinkConfig::with_delay(SimDuration::from_millis(5)));
    sim.add_link(border, us, LinkConfig::with_delay(SimDuration::from_millis(60)));
    sim.add_link(us, remote, lan);
    sim.add_link(us, web, lan);
    sim.compute_routes();
    (sim, client)
}

fn config() -> ScConfig {
    let mut cfg = ScConfig::new(DOMESTIC, REMOTE);
    cfg.whitelist = vec!["scholar.google.com".into()];
    cfg
}

fn names() -> NameMap {
    NameMap::new([("scholar.google.com", WEB)])
}

struct WebServer;
impl App for WebServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(80);
        ctx.tcp_listen(443);
    }
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        if let AppEvent::Tcp(h, TcpEvent::DataReceived) = ev {
            let data = ctx.tcp_recv_all(h);
            if data.windows(4).any(|w| w == b"\r\n\r\n") {
                ctx.tcp_send(h, b"HTTP/1.1 200 OK\r\nContent-Length: 7\r\n\r\nscholar");
            }
        }
    }
}

#[derive(Default)]
struct FetchLog {
    response: Vec<u8>,
    connect_ok: bool,
    refused: bool,
    failed: bool,
    /// Status code of the proxy's CONNECT answer (200, 403, 502, 503…).
    status: Option<u16>,
    /// When the CONNECT answer arrived.
    answered_at: Option<SimTime>,
}

/// Speaks HTTP-proxy to the domestic proxy: CONNECT, then a request inside
/// the tunnel (standing in for TLS bytes; the proxies treat port-443
/// payloads as opaque either way). `start_delay` postpones the CONNECT —
/// the resilience tests use it to arrive after probes have already judged
/// the remote pool.
struct ProxyFetcher {
    proxy: SocketAddr,
    target: String,
    port: u16,
    start_delay: SimDuration,
    log: Rc<RefCell<FetchLog>>,
    conn: Option<TcpHandle>,
}

impl App for ProxyFetcher {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.start_delay == SimDuration::ZERO {
            self.conn = Some(ctx.tcp_connect(self.proxy));
        } else {
            ctx.set_timer(self.start_delay, 0);
        }
    }
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        if let AppEvent::TimerFired(_) = ev {
            if self.conn.is_none() {
                self.conn = Some(ctx.tcp_connect(self.proxy));
            }
            return;
        }
        let Some(h) = self.conn else { return };
        match ev {
            AppEvent::Tcp(eh, TcpEvent::Connected) if eh == h => {
                let req = format!(
                    "CONNECT {}:{} HTTP/1.1\r\nHost: {}\r\n\r\n",
                    self.target, self.port, self.target
                );
                ctx.tcp_send(h, req.as_bytes());
            }
            AppEvent::Tcp(eh, TcpEvent::DataReceived) if eh == h => {
                let data = ctx.tcp_recv_all(h);
                let mut log = self.log.borrow_mut();
                if !log.connect_ok {
                    let text = String::from_utf8_lossy(&data);
                    log.status = text
                        .strip_prefix("HTTP/1.1 ")
                        .and_then(|r| r.get(..3))
                        .and_then(|c| c.parse().ok());
                    log.answered_at = Some(ctx.now());
                    if text.starts_with("HTTP/1.1 200") {
                        log.connect_ok = true;
                        drop(log);
                        ctx.tcp_send(h, b"GET /scholar HTTP/1.1\r\nHost: scholar.google.com\r\n\r\n");
                    } else {
                        log.refused = true;
                    }
                } else {
                    log.response.extend_from_slice(&data);
                }
            }
            AppEvent::Tcp(eh, TcpEvent::ConnectFailed | TcpEvent::Reset) if eh == h => {
                self.log.borrow_mut().failed = true;
            }
            _ => {}
        }
    }
}

fn install_scholarcloud(sim: &mut Sim, cfg: &ScConfig) {
    let dnode = sim.node_by_addr(DOMESTIC).unwrap();
    sim.install_app(dnode, Box::new(DomesticProxy::new(cfg.clone())));
    let rnode = sim.node_by_addr(REMOTE).unwrap();
    sim.install_app(rnode, Box::new(RemoteProxy::new(cfg.clone(), names())));
    let wnode = sim.node_by_addr(WEB).unwrap();
    sim.install_app(wnode, Box::new(WebServer));
}

#[test]
fn whitelisted_fetch_succeeds_through_split_proxy() {
    let (mut sim, client) = topology(7);
    let cfg = config();
    install_scholarcloud(&mut sim, &cfg);
    let log = Rc::new(RefCell::new(FetchLog::default()));
    sim.install_app(
        client,
        Box::new(ProxyFetcher {
            proxy: cfg.domestic,
            target: "scholar.google.com".into(),
            port: 443,
            start_delay: SimDuration::ZERO,
            log: log.clone(),
            conn: None,
        }),
    );
    sim.run_for(SimDuration::from_secs(20));
    let log = log.borrow();
    assert!(log.connect_ok, "CONNECT should be accepted");
    let text = String::from_utf8_lossy(&log.response);
    assert!(text.contains("200 OK") && text.ends_with("scholar"), "got {text:?}");
}

#[test]
fn off_whitelist_connect_is_refused() {
    let (mut sim, client) = topology(8);
    let cfg = config();
    install_scholarcloud(&mut sim, &cfg);
    let log = Rc::new(RefCell::new(FetchLog::default()));
    sim.install_app(
        client,
        Box::new(ProxyFetcher {
            proxy: cfg.domestic,
            target: "facebook.example".into(),
            port: 443,
            start_delay: SimDuration::ZERO,
            log: log.clone(),
            conn: None,
        }),
    );
    sim.run_for(SimDuration::from_secs(10));
    assert!(log.borrow().refused, "non-whitelisted domain must get 403");
    assert!(!log.borrow().connect_ok);
    assert_eq!(log.borrow().status, Some(403), "refusal must be a 403, not a generic error");
}

#[test]
fn dead_remote_surfaces_502_after_retries() {
    const REMOTE2: Addr = Addr::new(99, 0, 0, 41);
    let (mut sim, client) = topology(21);
    // Two remote VMs, neither running the proxy: every connect attempt
    // dies, and with two candidates the retry budget (3 attempts) runs
    // out before either breaker (threshold 2) can fence its remote. The
    // browser must see a 502 — a distinguishable upstream failure, not a
    // hang or a 403. (A *single* dead remote trips its breaker first and
    // surfaces 503 instead — covered below.)
    let us = sim.node_by_addr(Addr::new(99, 0, 0, 254)).unwrap();
    let remote2 = sim.add_node("remote-proxy-2", REMOTE2);
    sim.add_link(us, remote2, LinkConfig::with_delay(SimDuration::from_millis(2)));
    sim.compute_routes();
    let mut cfg = ScConfig::new(DOMESTIC, REMOTE).with_remotes(&[REMOTE, REMOTE2]);
    cfg.whitelist = vec!["scholar.google.com".into()];
    let dnode = sim.node_by_addr(DOMESTIC).unwrap();
    sim.install_app(dnode, Box::new(DomesticProxy::new(cfg.clone())));
    let log = Rc::new(RefCell::new(FetchLog::default()));
    sim.install_app(
        client,
        Box::new(ProxyFetcher {
            proxy: cfg.domestic,
            target: "scholar.google.com".into(),
            port: 443,
            start_delay: SimDuration::ZERO,
            log: log.clone(),
            conn: None,
        }),
    );
    sim.run_for(SimDuration::from_secs(15));
    let log = log.borrow();
    assert!(!log.connect_ok);
    assert_eq!(log.status, Some(502), "exhausted retries must surface as 502");
}

#[test]
fn all_dark_pool_fails_fast_with_503() {
    let (mut sim, client) = topology(22);
    let cfg = config();
    let dnode = sim.node_by_addr(DOMESTIC).unwrap();
    sim.install_app(dnode, Box::new(DomesticProxy::new(cfg.clone())));
    // Give the health probes time to fail twice and open the breaker for
    // the (dead) remote, then CONNECT: with no pickable upstream the
    // request is parked briefly and answered 503 — graceful degradation
    // instead of burning the retry budget per request.
    let start_delay = SimDuration::from_secs(6);
    let log = Rc::new(RefCell::new(FetchLog::default()));
    sim.install_app(
        client,
        Box::new(ProxyFetcher {
            proxy: cfg.domestic,
            target: "scholar.google.com".into(),
            port: 443,
            start_delay,
            log: log.clone(),
            conn: None,
        }),
    );
    sim.run_for(SimDuration::from_secs(15));
    let log = log.borrow();
    assert!(!log.connect_ok);
    assert_eq!(log.status, Some(503), "all-dark pool must answer 503");
    let answered = log.answered_at.expect("CONNECT must be answered");
    let waited = answered - (SimTime::ZERO + start_delay);
    assert!(
        waited < SimDuration::from_secs(4),
        "503 must fail fast (queue_fail_after + slack), waited {waited}"
    );
}

#[test]
fn dead_primary_fails_over_to_live_backup() {
    const REMOTE2: Addr = Addr::new(99, 0, 0, 41);
    let (mut sim, client) = topology(23);
    // Second remote VM next to the (dead) primary; only it runs the proxy.
    let us = sim.node_by_addr(Addr::new(99, 0, 0, 254)).unwrap();
    let remote2 = sim.add_node("remote-proxy-2", REMOTE2);
    sim.add_link(us, remote2, LinkConfig::with_delay(SimDuration::from_millis(2)));
    sim.compute_routes();
    let mut cfg = ScConfig::new(DOMESTIC, REMOTE).with_remotes(&[REMOTE, REMOTE2]);
    cfg.whitelist = vec!["scholar.google.com".into()];
    let dnode = sim.node_by_addr(DOMESTIC).unwrap();
    sim.install_app(dnode, Box::new(DomesticProxy::new(cfg.clone())));
    sim.install_app(remote2, Box::new(RemoteProxy::new(cfg.clone(), names())));
    let wnode = sim.node_by_addr(WEB).unwrap();
    sim.install_app(wnode, Box::new(WebServer));
    let log = Rc::new(RefCell::new(FetchLog::default()));
    sim.install_app(
        client,
        Box::new(ProxyFetcher {
            proxy: cfg.domestic,
            target: "scholar.google.com".into(),
            port: 443,
            start_delay: SimDuration::ZERO,
            log: log.clone(),
            conn: None,
        }),
    );
    sim.run_for(SimDuration::from_secs(20));
    let log = log.borrow();
    assert!(log.connect_ok, "failover to the live backup must succeed the CONNECT");
    let text = String::from_utf8_lossy(&log.response);
    assert!(text.ends_with("scholar"), "fetch through the backup remote, got {text:?}");
}

#[test]
fn plain_http_absolute_form_is_tunneled() {
    struct PlainFetcher {
        proxy: SocketAddr,
        log: Rc<RefCell<FetchLog>>,
        conn: Option<TcpHandle>,
    }
    impl App for PlainFetcher {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.conn = Some(ctx.tcp_connect(self.proxy));
        }
        fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
            let Some(h) = self.conn else { return };
            match ev {
                AppEvent::Tcp(eh, TcpEvent::Connected) if eh == h => {
                    ctx.tcp_send(
                        h,
                        b"GET http://scholar.google.com/citations HTTP/1.1\r\nHost: scholar.google.com\r\n\r\n",
                    );
                }
                AppEvent::Tcp(eh, TcpEvent::DataReceived) if eh == h => {
                    let data = ctx.tcp_recv_all(h);
                    self.log.borrow_mut().response.extend_from_slice(&data);
                }
                _ => {}
            }
        }
    }
    let (mut sim, client) = topology(9);
    let cfg = config();
    install_scholarcloud(&mut sim, &cfg);
    let log = Rc::new(RefCell::new(FetchLog::default()));
    sim.install_app(
        client,
        Box::new(PlainFetcher { proxy: cfg.domestic, log: log.clone(), conn: None }),
    );
    sim.run_for(SimDuration::from_secs(20));
    let text = String::from_utf8_lossy(&log.borrow().response).to_string();
    assert!(text.contains("200 OK"), "got {text:?}");
}

#[test]
fn garbage_gets_the_decoy() {
    struct Garbage {
        remote: SocketAddr,
        got: Rc<RefCell<Vec<u8>>>,
        conn: Option<TcpHandle>,
    }
    impl App for Garbage {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.conn = Some(ctx.tcp_connect(self.remote));
        }
        fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
            let Some(h) = self.conn else { return };
            match ev {
                AppEvent::Tcp(eh, TcpEvent::Connected) if eh == h => {
                    ctx.tcp_send(h, &[0xde; 48]);
                }
                AppEvent::Tcp(eh, TcpEvent::DataReceived) if eh == h => {
                    let data = ctx.tcp_recv_all(h);
                    self.got.borrow_mut().extend_from_slice(&data);
                }
                _ => {}
            }
        }
    }
    let (mut sim, client) = topology(10);
    let cfg = config();
    install_scholarcloud(&mut sim, &cfg);
    let got = Rc::new(RefCell::new(Vec::new()));
    sim.install_app(
        client,
        Box::new(Garbage { remote: cfg.remote, got: got.clone(), conn: None }),
    );
    sim.run_for(SimDuration::from_secs(10));
    let got = got.borrow();
    assert!(
        got.starts_with(b"HTTP/1.1 400"),
        "prober must see a web server, got {:?}",
        String::from_utf8_lossy(&got)
    );
}

#[test]
fn scheme_rotation_keeps_service_working() {
    let (mut sim, client) = topology(11);
    let cfg = config();
    install_scholarcloud(&mut sim, &cfg);
    // First fetch on the initial scheme.
    let log1 = Rc::new(RefCell::new(FetchLog::default()));
    sim.install_app(
        client,
        Box::new(ProxyFetcher {
            proxy: cfg.domestic,
            target: "scholar.google.com".into(),
            port: 443,
            start_delay: SimDuration::ZERO,
            log: log1.clone(),
            conn: None,
        }),
    );
    sim.run_for(SimDuration::from_secs(10));
    assert!(log1.borrow().connect_ok);
    // Rotate and fetch again: both proxies share the SchemeHandle, so no
    // redeploy is needed — the paper's agility property.
    let new_scheme = cfg.scheme.rotate();
    assert_ne!(new_scheme, sc_crypto::BlindingScheme::ByteMap);
    let log2 = Rc::new(RefCell::new(FetchLog::default()));
    sim.install_app(
        client,
        Box::new(ProxyFetcher {
            proxy: cfg.domestic,
            target: "scholar.google.com".into(),
            port: 443,
            start_delay: SimDuration::ZERO,
            log: log2.clone(),
            conn: None,
        }),
    );
    sim.run_for(SimDuration::from_secs(10));
    let text = String::from_utf8_lossy(&log2.borrow().response).to_string();
    assert!(text.ends_with("scholar"), "after rotation: {text:?}");
}
