//! Property tests for the retry backoff policy: whatever parameters an
//! operator configures, the schedule must (a) grow monotonically until
//! it saturates at the cap, (b) keep every jittered delay inside the
//! declared band, and (c) be a pure function of its inputs — the same
//! jitter draws always reproduce the same schedule, which is what makes
//! fault-injected simulation runs byte-identical.

use proptest::prelude::*;
use sc_core::BackoffPolicy;
use sc_simnet::time::SimDuration;

/// A uniform draw in `[0, 1)`, built from an integer range (the
/// vendored proptest has integer strategies only).
fn unit_draw() -> impl Strategy<Value = f64> {
    (0u64..1_000_000).prop_map(|x| x as f64 / 1e6)
}

/// An arbitrary-but-sane policy: base 1 ms–2 s, cap ≥ base up to 60 s,
/// multiplier 1–8, jitter half-width 0–100%.
fn policy() -> impl Strategy<Value = BackoffPolicy> {
    (1_000u64..2_000_001, 0u64..58_000_001, 1u32..9, 0u32..101).prop_map(
        |(base_us, extra_us, multiplier, jitter_pct)| BackoffPolicy {
            base: SimDuration::from_micros(base_us),
            cap: SimDuration::from_micros(base_us + extra_us),
            multiplier,
            jitter_frac: f64::from(jitter_pct) / 100.0,
        },
    )
}

proptest! {
    /// Raw delays never shrink as attempts increase, and never exceed
    /// the cap.
    #[test]
    fn raw_delay_is_monotone_up_to_the_cap(p in policy(), attempts in 1u32..24) {
        let mut prev = SimDuration::ZERO;
        for attempt in 0..attempts {
            let d = p.raw_delay(attempt);
            prop_assert!(d >= prev, "attempt {}: {} < previous {}", attempt, d, prev);
            prop_assert!(d <= p.cap, "attempt {}: {} above cap {}", attempt, d, p.cap);
            prev = d;
        }
    }

    /// Once the raw schedule hits the cap it stays there: every later
    /// attempt returns exactly the cap.
    #[test]
    fn raw_delay_saturates_at_the_cap(p in policy()) {
        // With multiplier ≥ 2 the growth is geometric, so 40 doublings
        // of ≥ 1 ms vastly exceed any 60 s cap; multiplier 1 means the
        // base IS the fixed point (clamped to the cap).
        let settled = p.raw_delay(40);
        for attempt in 40..48 {
            prop_assert_eq!(p.raw_delay(attempt), settled);
        }
        if p.multiplier >= 2 {
            prop_assert_eq!(settled, p.cap);
        }
    }

    /// Jittered delays stay inside `[raw·(1−j), raw·(1+j)]` for any
    /// uniform draw in `[0, 1)`.
    #[test]
    fn jitter_stays_inside_the_declared_band(
        p in policy(),
        attempt in 0u32..16,
        draw in unit_draw(),
    ) {
        let raw = p.raw_delay(attempt).as_secs_f64();
        let d = p.delay(attempt, draw).as_secs_f64();
        let lo = raw * (1.0 - p.jitter_frac);
        let hi = raw * (1.0 + p.jitter_frac);
        // from_secs_f64 quantizes to whole microseconds; allow 1 µs.
        prop_assert!(d >= lo - 1e-6, "delay {} below band floor {}", d, lo);
        prop_assert!(d <= hi + 1e-6, "delay {} above band ceiling {}", d, hi);
    }

    /// The schedule is a pure function: identical draw sequences yield
    /// identical delays, microsecond for microsecond. (This is the
    /// property the trace-determinism integration test leans on.)
    #[test]
    fn identical_draws_give_identical_schedules(
        p in policy(),
        draws in prop::collection::vec(unit_draw(), 1..16),
    ) {
        let schedule = |draws: &[f64]| -> Vec<SimDuration> {
            draws
                .iter()
                .enumerate()
                .map(|(attempt, &d)| p.delay(attempt as u32, d))
                .collect()
        };
        prop_assert_eq!(schedule(&draws), schedule(&draws));
    }
}
