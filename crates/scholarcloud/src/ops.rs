//! The operational/economic model of the deployed service (§1 and §3 of
//! the paper): two rented VMs, ~2.2 USD/day, 2000 registered users with
//! ~700 online daily, plus the ICP registration the service operates under.

/// Operating parameters of a ScholarCloud deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct Deployment {
    /// Number of rented VMs (domestic + remote).
    pub vms: u32,
    /// Daily cost per VM in USD.
    pub vm_daily_usd: f64,
    /// Registered users.
    pub registered_users: u64,
    /// Users online on a typical day.
    pub daily_active_users: u64,
    /// ICP registration number, once legalized.
    pub icp_registration: Option<String>,
}

impl Deployment {
    /// The deployment reported in the paper (launched Jan. 2016).
    pub fn paper() -> Self {
        Deployment {
            vms: 2,
            vm_daily_usd: 1.1,
            registered_users: 2000,
            daily_active_users: 700,
            icp_registration: Some("ICP Reg. #15063437".into()),
        }
    }

    /// Total daily operating cost in USD.
    pub fn daily_cost_usd(&self) -> f64 {
        self.vms as f64 * self.vm_daily_usd
    }

    /// Daily cost per active user in USD.
    ///
    /// # Panics
    ///
    /// Panics if there are no active users.
    pub fn cost_per_active_user_usd(&self) -> f64 {
        assert!(self.daily_active_users > 0, "no active users");
        self.daily_cost_usd() / self.daily_active_users as f64
    }

    /// Projected cost for `days` of operation.
    pub fn cost_for_days_usd(&self, days: u64) -> f64 {
        self.daily_cost_usd() * days as f64
    }

    /// Whether the service is legalized (registered with the TCA).
    pub fn is_legalized(&self) -> bool {
        self.icp_registration.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let d = Deployment::paper();
        assert!((d.daily_cost_usd() - 2.2).abs() < 1e-9);
        assert!(d.is_legalized());
        // ~0.31 US cents per active user per day.
        let per_user = d.cost_per_active_user_usd();
        assert!(per_user < 0.01, "cost per user should be well under a cent: {per_user}");
        assert!((d.cost_for_days_usd(365) - 803.0).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "no active users")]
    fn zero_users_panics() {
        let mut d = Deployment::paper();
        d.daily_active_users = 0;
        let _ = d.cost_per_active_user_usd();
    }
}
