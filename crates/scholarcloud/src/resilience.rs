//! Resilience primitives for the domestic proxy: deterministic
//! exponential backoff, per-remote circuit breakers, and a health-scored
//! pool of remote proxies.
//!
//! The paper keeps ScholarCloud usable while the GFW blacklists remote
//! VMs one by one (§4.2): the client side must *notice* a dead remote
//! quickly (timeouts + passive failure counting + active probes), stop
//! hammering it (circuit breaker), and move traffic to a sibling
//! (failover). Everything here is pure state-machine logic — no clocks,
//! no RNG — so the proxy stays deterministic: time comes in as
//! [`SimTime`] arguments and jitter comes in as an externally drawn
//! uniform sample, both from the simulation's seeded sources.
//!
//! # Breaker state machine
//!
//! ```text
//!            failures ≥ threshold
//!   Closed ─────────────────────────▶ Open ◀──────────────┐
//!     ▲                                │                  │
//!     │                                │ cooldown elapsed │ trial fails
//!     │ trial (or probe)               ▼                  │ (or probe fails:
//!     │ succeeds                    HalfOpen ─────────────┘  cooldown restarts)
//!     └────────────────────────────────┘  (one trial in flight)
//! ```

use sc_simnet::addr::SocketAddr;
use sc_simnet::time::{SimDuration, SimTime};

/// Deterministic exponential backoff with bounded jitter.
///
/// The raw sequence is `base · multiplier^attempt`, saturating at
/// `cap`. Jitter is applied from an *externally supplied* uniform draw
/// in `[0, 1)` (the caller owns the RNG), scaling the raw delay by a
/// factor in `[1 − jitter_frac, 1 + jitter_frac)` — so identical seeds
/// yield identical schedules.
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    /// Delay before the first retry (attempt 0).
    pub base: SimDuration,
    /// Upper bound on the raw (un-jittered) delay.
    pub cap: SimDuration,
    /// Geometric growth factor per attempt.
    pub multiplier: u32,
    /// Half-width of the jitter band as a fraction of the raw delay
    /// (`0.25` → ±25%). Must be in `[0, 1]`.
    pub jitter_frac: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: SimDuration::from_millis(100),
            cap: SimDuration::from_secs(2),
            multiplier: 2,
            jitter_frac: 0.25,
        }
    }
}

impl BackoffPolicy {
    /// The un-jittered delay for `attempt` (0-based), saturating at the
    /// cap.
    pub fn raw_delay(&self, attempt: u32) -> SimDuration {
        let factor = u64::from(self.multiplier.max(1)).saturating_pow(attempt.min(32));
        let raw = self.base.saturating_mul(factor);
        raw.clamp(SimDuration::ZERO, self.cap)
    }

    /// The jittered delay for `attempt`, with `jitter_draw` a uniform
    /// sample in `[0, 1)` supplied by the caller's (seeded) RNG.
    pub fn delay(&self, attempt: u32, jitter_draw: f64) -> SimDuration {
        let raw = self.raw_delay(attempt).as_secs_f64();
        let factor = 1.0 + self.jitter_frac * (2.0 * jitter_draw - 1.0);
        SimDuration::from_secs_f64(raw * factor.max(0.0))
    }
}

/// Circuit-breaker states (see the module docs for the transitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are refused until the cooldown elapses.
    Open,
    /// Probation: exactly one trial request is allowed through.
    HalfOpen,
}

impl BreakerState {
    /// Lower-case name for traces and dashboards.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// A state transition, returned so the caller can emit it as an
/// observability event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTransition {
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

/// A per-remote circuit breaker: `threshold` consecutive failures open
/// it; after `cooldown` it half-opens and admits one trial.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    threshold: u32,
    cooldown: SimDuration,
    opened_at: SimTime,
    trial_inflight: bool,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(threshold: u32, cooldown: SimDuration) -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            threshold: threshold.max(1),
            cooldown,
            opened_at: SimTime::ZERO,
            trial_inflight: false,
        }
    }

    /// Current state (without side effects — an elapsed cooldown shows
    /// as `Open` until [`allow`](Self::allow) actually admits a trial).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether [`allow`](Self::allow) would admit a request at `now`,
    /// without consuming the half-open trial slot.
    pub fn would_allow(&self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => now.saturating_since(self.opened_at) >= self.cooldown,
            BreakerState::HalfOpen => !self.trial_inflight,
        }
    }

    /// Admits or refuses a request at `now`. An elapsed cooldown moves
    /// `Open → HalfOpen` and the admitted request becomes the trial.
    pub fn allow(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now.saturating_since(self.opened_at) >= self.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.trial_inflight = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.trial_inflight {
                    false
                } else {
                    self.trial_inflight = true;
                    true
                }
            }
        }
    }

    /// Records a success (trial, regular request, or active probe): the
    /// breaker closes from any state.
    pub fn record_success(&mut self) -> Option<BreakerTransition> {
        self.consecutive_failures = 0;
        self.trial_inflight = false;
        let from = self.state;
        if from != BreakerState::Closed {
            self.state = BreakerState::Closed;
            return Some(BreakerTransition { from, to: BreakerState::Closed });
        }
        None
    }

    /// Records a failure at `now`. Opens the breaker once the threshold
    /// is hit; a failure while open (e.g. a failing probe) restarts the
    /// cooldown, so a dark remote stays fenced off until something
    /// actually succeeds against it.
    pub fn record_failure(&mut self, now: SimTime) -> Option<BreakerTransition> {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        self.trial_inflight = false;
        let from = self.state;
        let opens = match from {
            BreakerState::Closed => self.consecutive_failures >= self.threshold,
            BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.opened_at = now;
                false
            }
        };
        if opens {
            self.state = BreakerState::Open;
            self.opened_at = now;
            return Some(BreakerTransition { from, to: BreakerState::Open });
        }
        None
    }
}

/// Passive health record for one remote.
#[derive(Debug, Clone, Default)]
pub struct RemoteHealth {
    /// EWMA of observed connect RTTs (α = 0.3).
    pub rtt_ewma: Option<SimDuration>,
    /// Failures since the last success.
    pub consecutive_failures: u32,
    /// Lifetime failures (diagnostics).
    pub total_failures: u64,
    /// Lifetime successes (diagnostics).
    pub total_successes: u64,
}

impl RemoteHealth {
    fn record_rtt(&mut self, rtt: SimDuration) {
        self.rtt_ewma = Some(match self.rtt_ewma {
            None => rtt,
            Some(prev) => SimDuration::from_micros(
                (7 * prev.as_micros() + 3 * rtt.as_micros()) / 10,
            ),
        });
    }
}

/// One remote proxy in the pool.
#[derive(Debug, Clone)]
pub struct RemoteEntry {
    /// Where the remote listens.
    pub addr: SocketAddr,
    /// Passive health.
    pub health: RemoteHealth,
    /// Per-remote circuit breaker.
    pub breaker: CircuitBreaker,
    /// Retired entries (drained elastic instances) keep their index —
    /// in-flight bookkeeping stays valid — but never receive new picks,
    /// probes, or availability votes.
    pub retired: bool,
    /// Smooth-weighted-round-robin accumulator (see [`RemotePool::pick`]).
    swrr_current: i64,
}

/// A pool of remote proxies with deterministic weighted dispatch.
///
/// Selection is two-tier: candidates (breaker admits, not retired) are
/// first narrowed to the healthiest group (fewest consecutive
/// failures), then smooth weighted round-robin spreads load across that
/// group in proportion to RTT-derived weights — a fast remote carries
/// more streams than a slow sibling instead of *all* of them, like
/// shadowsocks-rust's multi-server balancer. Weights derive from the
/// millisecond-quantized RTT EWMA, so sub-millisecond jitter never
/// flips a pick, and SWRR's accumulator tie-breaks on the lowest
/// index — same-seed runs dispatch and fail over identically.
///
/// Membership is dynamic: the elastic tier appends fresh instances with
/// [`add_remote`](Self::add_remote) and retires drained ones with
/// [`retire`](Self::retire); indices are stable for the pool's lifetime.
#[derive(Debug, Clone)]
pub struct RemotePool {
    entries: Vec<RemoteEntry>,
    threshold: u32,
    cooldown: SimDuration,
}

fn fresh_entry(addr: SocketAddr, threshold: u32, cooldown: SimDuration) -> RemoteEntry {
    RemoteEntry {
        addr,
        health: RemoteHealth::default(),
        breaker: CircuitBreaker::new(threshold, cooldown),
        retired: false,
        swrr_current: 0,
    }
}

impl RemotePool {
    /// Builds a pool with one closed breaker per remote.
    pub fn new(addrs: Vec<SocketAddr>, threshold: u32, cooldown: SimDuration) -> Self {
        let entries = addrs
            .into_iter()
            .map(|addr| fresh_entry(addr, threshold, cooldown))
            .collect();
        RemotePool { entries, threshold, cooldown }
    }

    /// Number of remotes ever admitted to the pool (retired included —
    /// indices are stable, so this is also the index upper bound).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool has no remotes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of non-retired remotes.
    pub fn active_len(&self) -> usize {
        self.entries.iter().filter(|e| !e.retired).count()
    }

    /// Read access to a remote.
    pub fn entry(&self, idx: usize) -> &RemoteEntry {
        &self.entries[idx]
    }

    /// Appends a fresh remote (clean health, closed breaker) and returns
    /// its stable index. The elastic tier calls this when an instance
    /// turns warm; the SWRR accumulator starts at zero, so a newcomer
    /// competes fairly from its first pick.
    pub fn add_remote(&mut self, addr: SocketAddr) -> usize {
        let idx = self.entries.len();
        self.entries.push(fresh_entry(addr, self.threshold, self.cooldown));
        idx
    }

    /// Retires a remote: it keeps its index (in-flight streams finish
    /// their bookkeeping) but receives no further picks or probes.
    pub fn retire(&mut self, idx: usize) {
        self.entries[idx].retired = true;
    }

    /// The index of the non-retired remote at `addr`, if any.
    pub fn index_of(&self, addr: SocketAddr) -> Option<usize> {
        self.entries.iter().position(|e| !e.retired && e.addr == addr)
    }

    /// Whether any non-retired remote would currently admit a request.
    pub fn any_available(&self, now: SimTime) -> bool {
        self.entries
            .iter()
            .any(|e| !e.retired && e.breaker.would_allow(now))
    }

    /// A remote's dispatch weight: derived from the millisecond-
    /// quantized RTT EWMA (sub-millisecond propagation jitter must never
    /// flip a pick — see the pool proptests), inversely proportional to
    /// latency, floored at 1. An unproven remote weighs as 0 ms: it
    /// gets traffic immediately and earns a real weight from its first
    /// measured RTT.
    fn weight(h: &RemoteHealth) -> i64 {
        let ms = h.rtt_ewma.map_or(0, |d| d.as_micros() / 1000) as i64;
        1 + 1000 / (1 + ms)
    }

    /// Picks a remote at `now`, consuming its half-open trial slot if
    /// applicable. `exclude` deprioritizes the remote a failed attempt
    /// just used (it is still chosen if it is the only candidate).
    ///
    /// Two-tier weighted dispatch: among admissible remotes with the
    /// fewest consecutive failures, smooth weighted round-robin (each
    /// candidate's accumulator grows by its weight; the largest
    /// accumulator wins and pays back the group's total) spreads
    /// streams in proportion to RTT weight. At fully equal health the
    /// first pick is the lowest index and subsequent picks rotate —
    /// deterministic, history-pure, and never timing-sensitive.
    pub fn pick(&mut self, now: SimTime, exclude: Option<usize>) -> Option<usize> {
        let mut candidates: Vec<usize> = (0..self.entries.len())
            .filter(|&i| !self.entries[i].retired && self.entries[i].breaker.would_allow(now))
            .collect();
        if let Some(e) = exclude {
            if candidates.len() > 1 {
                candidates.retain(|&i| i != e);
            }
        }
        if candidates.is_empty() {
            return None;
        }
        // Tier 1: only the healthiest group (fewest consecutive
        // failures) receives traffic — failures outrank RTT.
        let min_failures = candidates
            .iter()
            .map(|&i| self.entries[i].health.consecutive_failures)
            .min()
            .expect("non-empty");
        candidates.retain(|&i| self.entries[i].health.consecutive_failures == min_failures);
        // Tier 2: SWRR within the group. Accumulators persist across
        // picks (that is what makes the rotation smooth), but only
        // group members advance — a breaker-fenced remote neither gains
        // nor loses standing while dark.
        let mut total = 0i64;
        for &i in &candidates {
            let w = Self::weight(&self.entries[i].health);
            self.entries[i].swrr_current += w;
            total += w;
        }
        let best = candidates
            .into_iter()
            .max_by_key(|&i| (self.entries[i].swrr_current, std::cmp::Reverse(i)))
            .expect("non-empty");
        self.entries[best].swrr_current -= total;
        let admitted = self.entries[best].breaker.allow(now);
        debug_assert!(admitted);
        Some(best)
    }

    /// Records a successful connect (or probe) with its observed RTT.
    pub fn record_success(
        &mut self,
        idx: usize,
        rtt: SimDuration,
    ) -> Option<BreakerTransition> {
        let e = &mut self.entries[idx];
        e.health.consecutive_failures = 0;
        e.health.total_successes += 1;
        e.health.record_rtt(rtt);
        e.breaker.record_success()
    }

    /// Closes a remote's breaker and clears its failure streak without
    /// recording a synthetic success or RTT sample: used when the
    /// caller learns the failures were not the remote's fault (the
    /// censor was killing the *scheme*, and the scheme just rotated).
    pub fn forgive(&mut self, idx: usize) -> Option<BreakerTransition> {
        let e = &mut self.entries[idx];
        e.health.consecutive_failures = 0;
        e.breaker.record_success()
    }

    /// Records a failed connect (or probe).
    pub fn record_failure(&mut self, idx: usize, now: SimTime) -> Option<BreakerTransition> {
        let e = &mut self.entries[idx];
        e.health.consecutive_failures = e.health.consecutive_failures.saturating_add(1);
        e.health.total_failures += 1;
        e.breaker.record_failure(now)
    }

    /// Number of non-retired breakers currently not closed (dashboard
    /// gauge).
    pub fn breakers_not_closed(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| !e.retired && e.breaker.state() != BreakerState::Closed)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_simnet::addr::Addr;

    fn sec(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn backoff_grows_to_cap() {
        let p = BackoffPolicy::default();
        assert_eq!(p.raw_delay(0), SimDuration::from_millis(100));
        assert_eq!(p.raw_delay(1), SimDuration::from_millis(200));
        assert_eq!(p.raw_delay(4), SimDuration::from_millis(1600));
        assert_eq!(p.raw_delay(5), SimDuration::from_secs(2));
        assert_eq!(p.raw_delay(60), SimDuration::from_secs(2), "saturates at the cap");
    }

    #[test]
    fn jitter_stays_in_band() {
        let p = BackoffPolicy::default();
        let raw = p.raw_delay(2).as_secs_f64();
        for draw in [0.0, 0.1, 0.5, 0.9, 0.999] {
            let d = p.delay(2, draw).as_secs_f64();
            assert!(d >= raw * 0.75 - 1e-9 && d < raw * 1.25 + 1e-9, "draw {draw} gave {d}");
        }
    }

    #[test]
    fn breaker_opens_half_opens_and_closes() {
        let mut b = CircuitBreaker::new(2, SimDuration::from_secs(5));
        assert!(b.allow(sec(0)));
        assert!(b.record_failure(sec(0)).is_none(), "below threshold");
        let t = b.record_failure(sec(1)).expect("threshold hit");
        assert_eq!(t.to, BreakerState::Open);
        assert!(!b.allow(sec(3)), "cooldown not elapsed");
        assert!(b.allow(sec(6)), "half-open trial admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(sec(6)), "only one trial in flight");
        let t = b.record_success().expect("trial closes the breaker");
        assert_eq!((t.from, t.to), (BreakerState::HalfOpen, BreakerState::Closed));
        assert!(b.allow(sec(6)));
    }

    #[test]
    fn failed_trial_reopens_and_open_failures_restart_cooldown() {
        let mut b = CircuitBreaker::new(1, SimDuration::from_secs(4));
        b.record_failure(sec(0));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(sec(4)));
        let t = b.record_failure(sec(4)).expect("failed trial reopens");
        assert_eq!((t.from, t.to), (BreakerState::HalfOpen, BreakerState::Open));
        // A probe failure at t=7 restarts the cooldown: t=8 still refused.
        assert!(b.record_failure(sec(7)).is_none());
        assert!(!b.allow(sec(8)));
        assert!(b.allow(sec(11)));
    }

    #[test]
    fn pool_prefers_healthy_then_fast_then_lowest_index() {
        let addrs: Vec<SocketAddr> = (0..3)
            .map(|i| SocketAddr::new(Addr::new(99, 0, 0, 40 + i), 8443))
            .collect();
        let mut pool = RemotePool::new(addrs, 3, SimDuration::from_secs(5));
        assert_eq!(pool.pick(sec(0), None), Some(0), "tie broken by index");
        pool.record_success(1, SimDuration::from_millis(50));
        pool.record_success(0, SimDuration::from_millis(200));
        pool.record_success(2, SimDuration::from_millis(90));
        assert_eq!(pool.pick(sec(0), None), Some(1), "fastest EWMA wins");
        pool.record_failure(1, sec(1));
        assert_eq!(pool.pick(sec(1), None), Some(2), "failures outrank RTT");
        assert_eq!(pool.pick(sec(1), Some(2)), Some(0), "exclude deprioritizes");
    }

    #[test]
    fn pool_exhaustion_and_recovery() {
        let addrs: Vec<SocketAddr> =
            (0..2).map(|i| SocketAddr::new(Addr::new(99, 0, 0, 40 + i), 8443)).collect();
        let mut pool = RemotePool::new(addrs, 1, SimDuration::from_secs(10));
        pool.record_failure(0, sec(0));
        pool.record_failure(1, sec(0));
        assert!(!pool.any_available(sec(5)));
        assert_eq!(pool.pick(sec(5), None), None);
        assert_eq!(pool.breakers_not_closed(), 2);
        // Probe success on remote 1 closes its breaker: traffic resumes.
        let t = pool.record_success(1, SimDuration::from_millis(80)).unwrap();
        assert_eq!(t.to, BreakerState::Closed);
        assert!(pool.any_available(sec(5)));
        assert_eq!(pool.pick(sec(5), None), Some(1));
    }

    #[test]
    fn swrr_rotates_among_equal_weights() {
        let addrs: Vec<SocketAddr> = (0..3)
            .map(|i| SocketAddr::new(Addr::new(99, 0, 0, 40 + i), 8443))
            .collect();
        let mut pool = RemotePool::new(addrs, 100, SimDuration::from_secs(5));
        let picks: Vec<Option<usize>> = (0..6).map(|_| pool.pick(sec(0), None)).collect();
        assert_eq!(
            picks,
            vec![Some(0), Some(1), Some(2), Some(0), Some(1), Some(2)],
            "equal weights round-robin from the lowest index"
        );
    }

    #[test]
    fn weighted_dispatch_favors_faster_remote() {
        let addrs: Vec<SocketAddr> =
            (0..2).map(|i| SocketAddr::new(Addr::new(99, 0, 0, 40 + i), 8443)).collect();
        let mut pool = RemotePool::new(addrs, 100, SimDuration::from_secs(5));
        pool.record_success(0, SimDuration::from_millis(10));
        pool.record_success(1, SimDuration::from_millis(30));
        let mut counts = [0usize; 2];
        for _ in 0..120 {
            counts[pool.pick(sec(0), None).unwrap()] += 1;
        }
        assert!(counts[1] > 0, "slow remote still carries some streams");
        assert!(
            counts[0] > 2 * counts[1],
            "3x-faster remote carries >2x the streams: {counts:?}"
        );
    }

    #[test]
    fn retired_remotes_never_picked_and_membership_is_dynamic() {
        let addrs = vec![SocketAddr::new(Addr::new(99, 0, 0, 40), 8443)];
        let mut pool = RemotePool::new(addrs, 1, SimDuration::from_secs(2));
        let fresh = SocketAddr::new(Addr::new(99, 0, 1, 7), 8443);
        let idx = pool.add_remote(fresh);
        assert_eq!(idx, 1);
        assert_eq!(pool.index_of(fresh), Some(1));
        pool.retire(0);
        assert_eq!(pool.active_len(), 1);
        assert_eq!(pool.len(), 2, "indices stay stable after retirement");
        for _ in 0..4 {
            assert_eq!(pool.pick(sec(0), None), Some(1), "retired entry never picked");
        }
        pool.record_failure(1, sec(0));
        assert!(!pool.any_available(sec(0)), "retired entries cast no availability vote");
    }

    #[test]
    fn half_open_pick_consumes_the_trial_slot() {
        let addrs = vec![SocketAddr::new(Addr::new(99, 0, 0, 40), 8443)];
        let mut pool = RemotePool::new(addrs, 1, SimDuration::from_secs(2));
        pool.record_failure(0, sec(0));
        assert_eq!(pool.pick(sec(3), None), Some(0), "cooldown elapsed: trial admitted");
        assert_eq!(pool.pick(sec(3), None), None, "trial slot consumed");
    }
}
