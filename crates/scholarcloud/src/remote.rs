//! The remote proxy: authenticates the cover preamble, deblinds the
//! stream, dials the whitelisted target (resolving names outside the
//! wall), and relays. Anything that fails authentication — garbage, web
//! crawlers, the GFW's active prober — gets an nginx-style 400 decoy.

use std::collections::{HashMap, HashSet};

use sc_netproto::socks::TargetAddr;
use sc_simnet::addr::SocketAddr;
use sc_simnet::api::{App, AppEvent, TcpEvent, TcpHandle};
use sc_simnet::sim::Ctx;
use sc_tunnels::names::NameMap;

use crate::config::ScConfig;
use crate::frame::{could_be_preamble, decoy_response, Hello, StreamCodec, StreamHeader};

enum ClientConn {
    AwaitHello { buf: Vec<u8> },
    Relaying { rx: StreamCodec, tx: StreamCodec, upstream: TcpHandle, span: sc_obs::SpanId },
    Decoyed,
}

/// The remote proxy app. Install on the foreign VM node.
pub struct RemoteProxy {
    config: ScConfig,
    names: NameMap,
    conns: HashMap<TcpHandle, ClientConn>,
    upstreams: HashMap<TcpHandle, TcpHandle>,
    upstream_pending: HashMap<TcpHandle, Vec<u8>>,
    /// Session nonces already accepted. A valid preamble whose nonce was
    /// seen before is a *replay* — the adaptive censor capturing and
    /// re-sending a real client's bytes to see whether we authenticate
    /// them. Replays get the decoy, so a replayed preamble looks exactly
    /// like garbage and the probe concludes "innocent web server".
    seen_nonces: HashSet<u64>,
    /// Authenticated tunnels served (diagnostics).
    pub tunnels: u64,
    /// Decoys served to unauthenticated connections (diagnostics: probes
    /// land here).
    pub decoys: u64,
}

impl RemoteProxy {
    /// Creates the proxy; `names` is the uncensored DNS view.
    pub fn new(config: ScConfig, names: NameMap) -> Self {
        RemoteProxy {
            config,
            names,
            conns: HashMap::new(),
            upstreams: HashMap::new(),
            upstream_pending: HashMap::new(),
            seen_nonces: HashSet::new(),
            tunnels: 0,
            decoys: 0,
        }
    }

    fn serve_decoy(&mut self, h: TcpHandle, reason: &'static str, ctx: &mut Ctx<'_>) {
        ctx.tcp_send(h, &decoy_response());
        ctx.tcp_close(h);
        self.conns.insert(h, ClientConn::Decoyed);
        self.decoys += 1;
        // Decoys served to hostile-looking connections (garbage, bad
        // MACs, replays) are probe sightings the operator's domestic side
        // can act on; decoys to authenticated-but-misdirected tunnels
        // (off-whitelist targets) are not.
        if matches!(reason, "not_preamble" | "bad_preamble_auth" | "replayed_preamble") {
            self.config.interference.note_probe();
        }
        sc_obs::counter_add("scholarcloud.decoys_served", 1);
        if sc_obs::is_enabled(sc_obs::Level::Info, "scholarcloud") {
            sc_obs::emit(
                sc_obs::Event::new(
                    ctx.now().as_micros(),
                    sc_obs::Level::Info,
                    "scholarcloud",
                    "remote",
                    "auth_fail",
                )
                .field("reason", reason),
            );
        }
    }

    fn advance(&mut self, h: TcpHandle, ctx: &mut Ctx<'_>) {
        if let Some(ClientConn::AwaitHello { buf }) = self.conns.get_mut(&h) {
            let snapshot = std::mem::take(buf);
            match Hello::parse(&self.config.secret, self.config.scheme.generation(), &snapshot) {
                Ok(None) => {
                    if !could_be_preamble(&snapshot) {
                        self.serve_decoy(h, "not_preamble", ctx);
                        return;
                    }
                    if let Some(ClientConn::AwaitHello { buf }) = self.conns.get_mut(&h) {
                        *buf = snapshot;
                    }
                    return;
                }
                Err(()) => {
                    self.serve_decoy(h, "bad_preamble_auth", ctx);
                    return;
                }
                Ok(Some((hello, used))) => {
                    if !self.seen_nonces.insert(hello.nonce) {
                        self.serve_decoy(h, "replayed_preamble", ctx);
                        return;
                    }
                    // The domestic side constructed its codec with
                    // encrypt = !is_tls, but is_tls is only known after
                    // decoding the header. Break the circularity by
                    // trying both codec variants on the header bytes; the
                    // header's strict framing disambiguates.
                    let mut rest = snapshot[used..].to_vec();
                    // First try: encrypt=false (TLS pass-through).
                    let mut rx0 = StreamCodec::new(&self.config.secret, &hello, false, 0);
                    let mut attempt = rest.clone();
                    rx0.decode(&mut attempt);
                    if let Some((header, consumed)) = StreamHeader::decode(&attempt) {
                        if header.is_tls {
                            let tx = StreamCodec::new(&self.config.secret, &hello, false, 1);
                            let leftover = attempt[consumed..].to_vec();
                            self.begin_relay(h, header, rx0, tx, leftover, ctx);
                            return;
                        }
                    }
                    // Second try: encrypt=true (plain-HTTP payloads).
                    let mut rx1 = StreamCodec::new(&self.config.secret, &hello, true, 0);
                    rx1.decode(&mut rest);
                    if let Some((header, consumed)) = StreamHeader::decode(&rest) {
                        if !header.is_tls {
                            let tx = StreamCodec::new(&self.config.secret, &hello, true, 1);
                            let leftover = rest[consumed..].to_vec();
                            self.begin_relay(h, header, rx1, tx, leftover, ctx);
                            return;
                        }
                    }
                    // Header incomplete: stash raw bytes and wait. We must
                    // re-run from scratch next time, so keep hello + rest.
                    let mut restored = snapshot;
                    self.conns.insert(h, ClientConn::AwaitHello { buf: Vec::new() });
                    if let Some(ClientConn::AwaitHello { buf }) = self.conns.get_mut(&h) {
                        buf.append(&mut restored);
                    }
                }
            }
        }
    }

    fn begin_relay(
        &mut self,
        h: TcpHandle,
        header: StreamHeader,
        rx: StreamCodec,
        tx: StreamCodec,
        leftover: Vec<u8>,
        ctx: &mut Ctx<'_>,
    ) {
        // Whitelist enforcement happens here too: the remote proxy only
        // dials whitelisted hosts, so a compromised domestic proxy cannot
        // widen the service's scope.
        let dest = match &header.target {
            TargetAddr::Domain(name, port) => {
                if !self.config.whitelisted(name) {
                    self.serve_decoy(h, "off_whitelist", ctx);
                    return;
                }
                match self.names.resolve(name) {
                    Some(a) => SocketAddr::new(a, *port),
                    None => {
                        self.serve_decoy(h, "unresolvable", ctx);
                        return;
                    }
                }
            }
            // Literal addresses cannot be whitelist-checked; refuse them.
            TargetAddr::Ip(_, _) => {
                self.serve_decoy(h, "ip_literal", ctx);
                return;
            }
        };
        let upstream = ctx.tcp_connect(dest);
        self.upstreams.insert(upstream, h);
        self.upstream_pending.insert(upstream, leftover);
        // Parent the relay span into the originating request's trace via
        // the in-band ids carried on the stream header.
        let span = sc_obs::span_start_ctx(
            ctx.now().as_micros(),
            sc_obs::Level::Debug,
            "scholarcloud",
            "remote",
            "relay",
            sc_obs::TraceCtx::new(sc_obs::TraceId(header.trace), sc_obs::SpanId(header.parent)),
            vec![("dest", sc_obs::Value::String(dest.to_string()))],
        );
        self.conns.insert(h, ClientConn::Relaying { rx, tx, upstream, span });
        self.tunnels += 1;
        sc_obs::counter_add("scholarcloud.remote_tunnels", 1);
        if sc_obs::is_enabled(sc_obs::Level::Info, "scholarcloud") {
            sc_obs::emit(
                sc_obs::Event::new(
                    ctx.now().as_micros(),
                    sc_obs::Level::Info,
                    "scholarcloud",
                    "remote",
                    "auth_ok",
                )
                .field("dest", dest.to_string()),
            );
        }
    }
}

impl App for RemoteProxy {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(self.config.remote.port);
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        let AppEvent::Tcp(h, tcp_ev) = ev else { return };

        // Upstream side.
        if let Some(&client) = self.upstreams.get(&h) {
            match tcp_ev {
                TcpEvent::Connected => {
                    if let Some(pending) = self.upstream_pending.remove(&h) {
                        if !pending.is_empty() {
                            ctx.tcp_send(h, &pending);
                        }
                    }
                }
                TcpEvent::DataReceived => {
                    let data = ctx.tcp_recv_all(h);
                    if let Some(ClientConn::Relaying { tx, .. }) = self.conns.get_mut(&client) {
                        let mut wire = data.to_vec();
                        tx.encode(&mut wire);
                        ctx.tcp_send(client, &wire);
                    }
                }
                TcpEvent::PeerClosed | TcpEvent::Reset | TcpEvent::ConnectFailed => {
                    ctx.tcp_close(client);
                    self.upstreams.remove(&h);
                    if let Some(ClientConn::Relaying { span, .. }) = self.conns.get_mut(&client) {
                        let ok = !matches!(tcp_ev, TcpEvent::ConnectFailed);
                        sc_obs::span_end(ctx.now().as_micros(), *span, vec![("ok", ok.into())]);
                        *span = sc_obs::SpanId::NONE;
                    }
                }
                _ => {}
            }
            return;
        }

        // Client (domestic proxy or prober) side.
        match tcp_ev {
            TcpEvent::Accepted { .. } => {
                self.conns.insert(h, ClientConn::AwaitHello { buf: Vec::new() });
                sc_obs::counter_add("scholarcloud.remote_accepts", 1);
            }
            TcpEvent::DataReceived => {
                let data = ctx.tcp_recv_all(h);
                match self.conns.get_mut(&h) {
                    Some(ClientConn::AwaitHello { buf }) => {
                        buf.extend_from_slice(&data);
                        self.advance(h, ctx);
                    }
                    Some(ClientConn::Relaying { rx, upstream, .. }) => {
                        let upstream = *upstream;
                        let mut plain = data.to_vec();
                        rx.decode(&mut plain);
                        if let Some(pending) = self.upstream_pending.get_mut(&upstream) {
                            pending.extend_from_slice(&plain);
                        } else {
                            ctx.tcp_send(upstream, &plain);
                        }
                    }
                    _ => {}
                }
            }
            TcpEvent::PeerClosed | TcpEvent::Reset => {
                if let Some(ClientConn::Relaying { upstream, span, .. }) = self.conns.remove(&h) {
                    ctx.tcp_close(upstream);
                    self.upstreams.remove(&upstream);
                    sc_obs::span_end(ctx.now().as_micros(), span, vec![("ok", true.into())]);
                }
            }
            _ => {}
        }
    }
}
