//! The elastic serverless remote tier: autoscaling, cold starts, cost
//! metering, and IP churn that outruns a blacklisting campaign.
//!
//! CensorLess-style deployments run circumvention remotes as ephemeral
//! cloud functions instead of long-lived VMs: capacity follows demand,
//! idle time costs (almost) nothing, and — decisive under censorship —
//! a blacklisted instance is simply retired and replaced at a fresh IP,
//! turning enumeration-and-blocking into a losing race for the censor.
//!
//! This module is the pure controller. It owns no sockets and no clock:
//! the [`DomesticProxy`](crate::DomesticProxy) drives it from a
//! recurring timer, feeding in sim time, admission signals, and uniform
//! RNG draws, and executes the returned [`ElasticAction`]s against the
//! [`RemotePool`](crate::RemotePool) and the simulation's node
//! lifecycle. That split keeps every transition deterministic and
//! directly proptestable (see `tests/elastic_props.rs`).
//!
//! # Instance state machine
//!
//! ```text
//!              cold start elapses            idle timeout / blacklist
//!  Provisioning ────────────────▶ Warm ──────────────────▶ Draining
//!       ▲                          │                           │
//!       │ scale-out / churn        │ streams dispatched        │ in-flight
//!       │ replacement              ▼ (SWRR weighted)           ▼ drains to 0
//!   (fresh IP from pool)      RemotePool entry             Retired
//! ```
//!
//! Draining instances take no new streams (their pool entry is retired)
//! but are never powered off while a stream is still in flight — the
//! invariant that lets scale-in happen mid-traffic without stranding
//! loads. Blacklisted instances follow the same path; their in-flight
//! streams die at the GFW's hands, the breaker/failover machinery moves
//! the browsers elsewhere, and the drained husk is powered off.
//!
//! # Cost model
//!
//! Three meters, all integer micro-dollars (floats would accumulate
//! platform-dependent rounding and break byte-identical traces):
//!
//! * **per-invocation** — every stream dispatched to an elastic
//!   instance ([`note_stream_start`](ElasticPool::note_stream_start));
//! * **per-GB egress** — every plaintext byte relayed back from an
//!   instance ([`note_egress`](ElasticPool::note_egress));
//! * **warm-idle** — every microsecond an instance spends `Warm` or
//!   `Draining`, accrued on each tick.
//!
//! [`ElasticConfig::static_cost_micro`] prices the same workload on a
//! static always-on VM pool, so an experiment can compare the two arms
//! with one cost arithmetic (see `examples/elastic_lab.rs`).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use sc_simnet::addr::Addr;
use sc_simnet::time::{SimDuration, SimTime};

/// Tunables for the elastic tier.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Floor on live (warm + provisioning) instances: scale-in stops
    /// here, so the tier can never go completely dark by its own hand.
    pub min_instances: usize,
    /// Ceiling on live instances: scale-out stops here.
    pub max_instances: usize,
    /// Cold-start band: each provision samples a deterministic latency
    /// in `[cold_start_min, cold_start_max)` from the seeded RNG.
    pub cold_start_min: SimDuration,
    /// Upper edge of the cold-start band (exclusive).
    pub cold_start_max: SimDuration,
    /// Target concurrent streams per warm instance: demand above
    /// `warm × target` triggers scale-out.
    pub target_inflight: usize,
    /// How long a warm instance must sit at zero in-flight streams
    /// before the idle scale-in drains it.
    pub idle_timeout: SimDuration,
    /// Cost: micro-dollars charged per stream dispatched.
    pub cost_per_invocation_micro: u64,
    /// Cost: micro-dollars per GB of egress (instance → domestic).
    pub cost_per_gb_egress_micro: u64,
    /// Cost: micro-dollars per hour an instance stays warm.
    pub cost_per_warm_hour_micro: u64,
    /// Cost: micro-dollars per hour of a *static always-on* VM — used
    /// only by [`static_cost_micro`](Self::static_cost_micro) to price
    /// the control arm of cost experiments (the paper's 2-VM deployment
    /// runs about 2.2 USD/day ≈ 46 000 µ$/hour per VM).
    pub cost_per_vm_hour_micro: u64,
    /// Surge capacity (whole instances) added to desired capacity while
    /// an SLO burn is in progress. Queue depth only sees demand the warm
    /// set already failed to absorb; a latency burn fires earlier, while
    /// requests are still being served — slowly. Zero disables the
    /// signal.
    pub burn_headroom: usize,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            min_instances: 1,
            max_instances: 8,
            cold_start_min: SimDuration::from_millis(300),
            cold_start_max: SimDuration::from_millis(1500),
            target_inflight: 4,
            idle_timeout: SimDuration::from_secs(10),
            cost_per_invocation_micro: 50,
            cost_per_gb_egress_micro: 90_000,
            cost_per_warm_hour_micro: 40_000,
            cost_per_vm_hour_micro: 46_000,
            burn_headroom: 1,
        }
    }
}

impl ElasticConfig {
    /// The cold-start latency for a uniform `draw` in `[0, 1)`.
    pub fn cold_start(&self, draw: f64) -> SimDuration {
        let lo = self.cold_start_min.as_micros();
        let hi = self.cold_start_max.as_micros().max(lo);
        let span = (hi - lo) as f64;
        SimDuration::from_micros(lo + (span * draw) as u64)
    }

    /// What the same workload costs on a static pool of `instances`
    /// always-on VMs over `runtime`, relaying `egress_bytes` — the
    /// control arm's price under the *same* cost arithmetic as the
    /// elastic meters (egress is billed identically; invocations are
    /// free on a VM you already pay for by the hour).
    pub fn static_cost_micro(
        &self,
        instances: usize,
        runtime: SimDuration,
        egress_bytes: u64,
    ) -> u64 {
        let vm_us = instances as u128 * runtime.as_micros() as u128;
        let vm = vm_us * self.cost_per_vm_hour_micro as u128 / 3_600_000_000;
        let egress =
            egress_bytes as u128 * self.cost_per_gb_egress_micro as u128 / 1_000_000_000;
        (vm + egress) as u64
    }
}

/// Where an instance is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceState {
    /// Spawn requested; the cold start has not elapsed yet.
    Provisioning,
    /// Serving: its pool entry receives weighted dispatch.
    Warm,
    /// Retired from dispatch; waiting for in-flight streams to finish.
    Draining,
    /// Powered off. Terminal.
    Retired,
}

impl InstanceState {
    /// Lower-case name for traces and dashboards.
    pub fn name(self) -> &'static str {
        match self {
            InstanceState::Provisioning => "provisioning",
            InstanceState::Warm => "warm",
            InstanceState::Draining => "draining",
            InstanceState::Retired => "retired",
        }
    }
}

/// Why an instance left the warm set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainReason {
    /// Idle timer elapsed with zero in-flight streams.
    Idle,
    /// GFW blacklisting suspected (breaker opened): churn and replace.
    Blacklist,
}

impl DrainReason {
    /// Lower-case name for traces.
    pub fn name(self) -> &'static str {
        match self {
            DrainReason::Idle => "idle",
            DrainReason::Blacklist => "blacklist",
        }
    }
}

/// One elastic instance's bookkeeping.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The instance's (unique, never reused) IP.
    pub addr: Addr,
    /// Lifecycle state.
    pub state: InstanceState,
    /// When the provision was requested.
    pub spawned_at: SimTime,
    /// The sampled cold-start latency.
    pub cold_start: SimDuration,
    /// Streams currently in flight on this instance.
    pub inflight: usize,
    /// When the instance last went idle (zero in-flight), while warm.
    pub idle_since: Option<SimTime>,
    /// When the instance was powered off, once retired.
    pub retired_at: Option<SimTime>,
    /// Set when the drain was a blacklist churn.
    pub churned: bool,
}

impl Instance {
    fn warm_deadline(&self) -> SimTime {
        self.spawned_at + self.cold_start
    }
}

/// An action the driver must execute against the pool/simulation.
/// Returned in a deterministic order (instance creation order within
/// each phase of the tick).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElasticAction {
    /// A fresh instance was requested: node stays dark until `Warm`.
    Provision {
        /// The fresh IP drawn from the address pool.
        addr: Addr,
        /// Its sampled cold-start latency.
        cold_start: SimDuration,
    },
    /// An instance's cold start elapsed: power its node up and add it
    /// to the remote pool.
    Warm {
        /// The instance now serving.
        addr: Addr,
        /// The cold start it paid (observability: cold-start histogram).
        cold_start: SimDuration,
    },
    /// Retire the instance's pool entry — no new streams — but keep the
    /// node powered while streams drain.
    Drain {
        /// The draining instance.
        addr: Addr,
        /// Why it drained.
        reason: DrainReason,
    },
    /// Drained dry: power the node off.
    Retire {
        /// The instance to power off.
        addr: Addr,
    },
}

/// The autoscaler + cost meter. Pure state machine: every mutation
/// happens in [`tick`](Self::tick) or an explicit `note_*`/`churn`
/// call, with time and randomness passed in.
#[derive(Debug)]
pub struct ElasticPool {
    cfg: ElasticConfig,
    instances: Vec<Instance>,
    /// Fresh IPs not yet used, drawn FIFO. Exhaustion is survivable:
    /// scale-out simply stops (and is counted) until capacity frees up.
    available: VecDeque<Addr>,
    /// Provisions refused because the address pool ran dry.
    pub starved_provisions: u64,
    invocations: u64,
    egress_bytes: u64,
    churns: u64,
    /// Accumulated instance-microseconds spent warm/draining.
    warm_us: u128,
    last_accrual: SimTime,
}

impl ElasticPool {
    /// Creates the controller over a pool of fresh addresses. Nothing
    /// is provisioned yet; call [`seed_warm`](Self::seed_warm) for
    /// instances that are already up at t = 0, then drive
    /// [`tick`](Self::tick) for the rest.
    pub fn new(cfg: ElasticConfig, addr_pool: Vec<Addr>) -> Self {
        ElasticPool {
            cfg,
            instances: Vec::new(),
            available: addr_pool.into(),
            starved_provisions: 0,
            invocations: 0,
            egress_bytes: 0,
            churns: 0,
            warm_us: 0,
            last_accrual: SimTime::ZERO,
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> &ElasticConfig {
        &self.cfg
    }

    /// Marks the next `n` pool addresses as warm from birth (their
    /// nodes are already up and listed in the proxy's remote pool —
    /// the pre-warmed baseline capacity). Returns the warmed addresses.
    pub fn seed_warm(&mut self, n: usize) -> Vec<Addr> {
        let mut warmed = Vec::new();
        for _ in 0..n {
            let Some(addr) = self.available.pop_front() else { break };
            self.instances.push(Instance {
                addr,
                state: InstanceState::Warm,
                spawned_at: SimTime::ZERO,
                cold_start: SimDuration::ZERO,
                inflight: 0,
                idle_since: Some(SimTime::ZERO),
                retired_at: None,
                churned: false,
            });
            warmed.push(addr);
        }
        warmed
    }

    fn instance_mut(&mut self, addr: Addr) -> Option<&mut Instance> {
        self.instances.iter_mut().find(|i| i.addr == addr)
    }

    /// All instances, in creation order (timeline rendering, tests).
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Addresses currently warm (the blacklisting campaign's target
    /// list: the censor can only block what is serving).
    pub fn warm_addrs(&self) -> Vec<Addr> {
        self.instances
            .iter()
            .filter(|i| i.state == InstanceState::Warm)
            .map(|i| i.addr)
            .collect()
    }

    /// Instances currently warm.
    pub fn warm_count(&self) -> usize {
        self.instances.iter().filter(|i| i.state == InstanceState::Warm).count()
    }

    /// Instances currently live: warm or still cold-starting (capacity
    /// that is, or is about to be, serving).
    pub fn live_count(&self) -> usize {
        self.instances
            .iter()
            .filter(|i| {
                matches!(i.state, InstanceState::Warm | InstanceState::Provisioning)
            })
            .count()
    }

    /// Streams dispatched to elastic instances so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Plaintext bytes relayed back from elastic instances so far.
    pub fn egress_bytes(&self) -> u64 {
        self.egress_bytes
    }

    /// Blacklist churns so far (instances retired and replaced).
    pub fn churns(&self) -> u64 {
        self.churns
    }

    /// A stream was dispatched to `addr`: one invocation charged, the
    /// idle timer reset. Returns false (and meters nothing) if `addr`
    /// is not an elastic instance.
    pub fn note_stream_start(&mut self, addr: Addr) -> bool {
        match self.instance_mut(addr) {
            Some(i) => {
                i.inflight += 1;
                i.idle_since = None;
                self.invocations += 1;
                true
            }
            None => false,
        }
    }

    /// A stream on `addr` finished (or died). The idle timer starts
    /// only when the last stream leaves.
    pub fn note_stream_end(&mut self, addr: Addr, now: SimTime) {
        if let Some(i) = self.instance_mut(addr) {
            i.inflight = i.inflight.saturating_sub(1);
            if i.inflight == 0 && i.state == InstanceState::Warm {
                i.idle_since = Some(now);
            }
        }
    }

    /// Plaintext bytes relayed back from `addr` (egress metering).
    pub fn note_egress(&mut self, addr: Addr, bytes: u64) {
        if self.instance_mut(addr).is_some() {
            self.egress_bytes += bytes;
        }
    }

    /// The breaker on `addr` opened: treat it as blacklisted. The next
    /// tick drains it and provisions a replacement at a fresh IP.
    /// Returns true if this call marked a warm instance for churn.
    pub fn churn(&mut self, addr: Addr) -> bool {
        if let Some(i) = self.instance_mut(addr) {
            if i.state == InstanceState::Warm && !i.churned {
                i.churned = true;
                return true;
            }
        }
        false
    }

    /// Whether `addr` is one of this tier's instances (any state).
    pub fn manages(&self, addr: Addr) -> bool {
        self.instances.iter().any(|i| i.addr == addr)
    }

    /// An instance's current state.
    pub fn state_of(&self, addr: Addr) -> Option<InstanceState> {
        self.instances.iter().find(|i| i.addr == addr).map(|i| i.state)
    }

    /// One controller tick at `now`. `queue_depth` is the admission
    /// queue's current depth (the demand the warm set is failing to
    /// absorb); `burning` is the SLO burn-rate signal — true while a
    /// latency or availability objective is actively burning budget,
    /// which adds [`burn_headroom`](ElasticConfig::burn_headroom)
    /// instances of surge demand so scale-out starts *before* the queue
    /// backs up; `draw` supplies uniform samples in `[0, 1)` from the
    /// caller's seeded RNG, consumed once per provision in a fixed
    /// order — so same-seed runs provision identical cold starts.
    ///
    /// Phases, in deterministic order: accrue warm charges, promote
    /// cold-started instances, drain churned instances, drain idle
    /// surplus, retire drained-dry instances, provision up to desired
    /// capacity.
    pub fn tick(
        &mut self,
        now: SimTime,
        queue_depth: usize,
        burning: bool,
        mut draw: impl FnMut() -> f64,
    ) -> Vec<ElasticAction> {
        let mut actions = Vec::new();
        self.accrue(now);

        // Promote: cold start elapsed → Warm.
        for i in self.instances.iter_mut() {
            if i.state == InstanceState::Provisioning && now >= i.warm_deadline() {
                i.state = InstanceState::Warm;
                i.idle_since = Some(now);
                actions.push(ElasticAction::Warm { addr: i.addr, cold_start: i.cold_start });
            }
        }

        // Churn: blacklisted instances leave the warm set immediately
        // (their replacement is provisioned below — draining capacity
        // does not count as live).
        for i in self.instances.iter_mut() {
            if i.state == InstanceState::Warm && i.churned {
                i.state = InstanceState::Draining;
                self.churns += 1;
                actions
                    .push(ElasticAction::Drain { addr: i.addr, reason: DrainReason::Blacklist });
            }
        }

        // Demand → desired capacity.
        let inflight: usize = self
            .instances
            .iter()
            .filter(|i| i.state == InstanceState::Warm)
            .map(|i| i.inflight)
            .sum();
        let mut demand = inflight + queue_depth;
        if burning {
            // A burning SLO is demand the queue cannot see yet: requests
            // are being served, just too slowly. Surge ahead of it.
            demand += self.cfg.burn_headroom * self.cfg.target_inflight.max(1);
        }
        let desired = demand
            .div_ceil(self.cfg.target_inflight.max(1))
            .clamp(self.cfg.min_instances, self.cfg.max_instances);

        // Idle scale-in: drain warm instances idle past the timeout,
        // oldest-idle first, never below desired (≥ min).
        let mut live = self.live_count();
        if live > desired {
            let mut idle: Vec<(SimTime, usize)> = self
                .instances
                .iter()
                .enumerate()
                .filter_map(|(k, i)| match (i.state, i.idle_since) {
                    (InstanceState::Warm, Some(since))
                        if i.inflight == 0
                            && now.saturating_since(since) >= self.cfg.idle_timeout =>
                    {
                        Some((since, k))
                    }
                    _ => None,
                })
                .collect();
            idle.sort();
            for (_, k) in idle {
                if live <= desired {
                    break;
                }
                let i = &mut self.instances[k];
                i.state = InstanceState::Draining;
                actions.push(ElasticAction::Drain { addr: i.addr, reason: DrainReason::Idle });
                live -= 1;
            }
        }

        // Retire: draining instances with nothing in flight power off.
        // Never with streams still up — scale-in must not strand loads.
        for i in self.instances.iter_mut() {
            if i.state == InstanceState::Draining && i.inflight == 0 {
                i.state = InstanceState::Retired;
                i.retired_at = Some(now);
                actions.push(ElasticAction::Retire { addr: i.addr });
            }
        }

        // Scale out to desired capacity, fresh IP per instance.
        while self.live_count() < desired {
            let Some(addr) = self.available.pop_front() else {
                self.starved_provisions += 1;
                break;
            };
            let cold_start = self.cfg.cold_start(draw());
            self.instances.push(Instance {
                addr,
                state: InstanceState::Provisioning,
                spawned_at: now,
                cold_start,
                inflight: 0,
                idle_since: None,
                retired_at: None,
                churned: false,
            });
            actions.push(ElasticAction::Provision { addr, cold_start });
        }

        actions
    }

    /// Accrues warm-idle charges up to `now` (warm and draining
    /// instances both hold memory and an IP, so both bill).
    fn accrue(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_accrual).as_micros() as u128;
        self.last_accrual = now;
        let billing = self
            .instances
            .iter()
            .filter(|i| matches!(i.state, InstanceState::Warm | InstanceState::Draining))
            .count() as u128;
        self.warm_us += billing * dt;
    }

    /// Micro-dollars charged for invocations so far.
    pub fn cost_invocation_micro(&self) -> u64 {
        self.invocations * self.cfg.cost_per_invocation_micro
    }

    /// Micro-dollars charged for egress so far.
    pub fn cost_egress_micro(&self) -> u64 {
        (self.egress_bytes as u128 * self.cfg.cost_per_gb_egress_micro as u128
            / 1_000_000_000) as u64
    }

    /// Micro-dollars charged for warm time so far (accrued at ticks).
    pub fn cost_warm_micro(&self) -> u64 {
        (self.warm_us * self.cfg.cost_per_warm_hour_micro as u128 / 3_600_000_000) as u64
    }

    /// Total micro-dollars charged so far.
    pub fn total_cost_micro(&self) -> u64 {
        self.cost_invocation_micro() + self.cost_egress_micro() + self.cost_warm_micro()
    }
}

/// Shared handle to an [`ElasticPool`], cloned between the scenario
/// builder (which seeds it and hands a copy to the experiment driver
/// for blacklist targeting) and the [`DomesticProxy`](crate::DomesticProxy)
/// that ticks it. Single-threaded by design, like every other shared
/// handle in the simulation.
#[derive(Debug, Clone)]
pub struct ElasticHandle {
    inner: Rc<RefCell<ElasticPool>>,
}

impl ElasticHandle {
    /// Wraps a pool in a shareable handle.
    pub fn new(pool: ElasticPool) -> Self {
        ElasticHandle { inner: Rc::new(RefCell::new(pool)) }
    }

    /// Runs `f` with mutable access to the pool.
    pub fn with<R>(&self, f: impl FnOnce(&mut ElasticPool) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }

    /// Addresses currently warm (see [`ElasticPool::warm_addrs`]).
    pub fn warm_addrs(&self) -> Vec<Addr> {
        self.inner.borrow().warm_addrs()
    }

    /// Total micro-dollars charged so far.
    pub fn total_cost_micro(&self) -> u64 {
        self.inner.borrow().total_cost_micro()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_addrs(n: usize) -> Vec<Addr> {
        (0..n).map(|i| Addr::new(99, 0, 1, 1 + i as u8)).collect()
    }

    fn cfg() -> ElasticConfig {
        ElasticConfig {
            min_instances: 1,
            max_instances: 4,
            cold_start_min: SimDuration::from_millis(500),
            cold_start_max: SimDuration::from_millis(500),
            target_inflight: 2,
            idle_timeout: SimDuration::from_secs(5),
            ..ElasticConfig::default()
        }
    }

    #[test]
    fn scale_out_waits_for_cold_start() {
        let mut p = ElasticPool::new(cfg(), pool_addrs(8));
        let seeded = p.seed_warm(1);
        assert_eq!(seeded.len(), 1);
        // Demand for 3 instances: queue depth 6, target 2.
        let acts = p.tick(SimTime::from_millis(100), 6, false, || 0.0);
        let provisions =
            acts.iter().filter(|a| matches!(a, ElasticAction::Provision { .. })).count();
        assert_eq!(provisions, 2);
        assert_eq!(p.warm_count(), 1, "cold-starting instances are not warm yet");
        // Before the cold start elapses: no promotion.
        let acts = p.tick(SimTime::from_millis(400), 6, false, || 0.0);
        assert!(acts.iter().all(|a| !matches!(a, ElasticAction::Warm { .. })));
        // After: both turn warm.
        let acts = p.tick(SimTime::from_millis(700), 6, false, || 0.0);
        let warms = acts.iter().filter(|a| matches!(a, ElasticAction::Warm { .. })).count();
        assert_eq!(warms, 2);
        assert_eq!(p.warm_count(), 3);
    }

    #[test]
    fn idle_scale_in_respects_min_and_inflight() {
        let mut p = ElasticPool::new(cfg(), pool_addrs(8));
        let seeded = p.seed_warm(3);
        // One instance holds a stream; all idle timers are long past.
        p.note_stream_start(seeded[2]);
        let acts = p.tick(SimTime::from_secs(60), 0, false, || 0.0);
        let drains: Vec<Addr> = acts
            .iter()
            .filter_map(|a| match a {
                ElasticAction::Drain { addr, reason: DrainReason::Idle } => Some(*addr),
                _ => None,
            })
            .collect();
        // Desired = max(ceil(1/2), min) = 1. Busy instance is not idle,
        // so the two idle ones drain down to desired.
        assert_eq!(drains, vec![seeded[0], seeded[1]]);
        assert_eq!(p.state_of(seeded[2]), Some(InstanceState::Warm));
        // Idle drains retire the same tick (nothing in flight).
        assert_eq!(p.state_of(seeded[0]), Some(InstanceState::Retired));
    }

    #[test]
    fn churn_drains_replaces_and_never_strands_inflight() {
        let mut p = ElasticPool::new(cfg(), pool_addrs(8));
        let seeded = p.seed_warm(1);
        p.note_stream_start(seeded[0]);
        p.churn(seeded[0]);
        let acts = p.tick(SimTime::from_secs(1), 0, false, || 0.5);
        assert!(acts.contains(&ElasticAction::Drain {
            addr: seeded[0],
            reason: DrainReason::Blacklist
        }));
        // Replacement provisioned at a fresh IP; victim not yet retired
        // (a stream is still in flight).
        assert!(acts.iter().any(|a| matches!(
            a,
            ElasticAction::Provision { addr, .. } if *addr != seeded[0]
        )));
        assert_eq!(p.state_of(seeded[0]), Some(InstanceState::Draining));
        assert_eq!(p.churns(), 1);
        // Stream ends → next tick powers it off.
        p.note_stream_end(seeded[0], SimTime::from_secs(2));
        let acts = p.tick(SimTime::from_secs(2), 0, false, || 0.5);
        assert!(acts.contains(&ElasticAction::Retire { addr: seeded[0] }));
        assert_eq!(p.state_of(seeded[0]), Some(InstanceState::Retired));
    }

    #[test]
    fn cost_meters_are_integer_and_monotone() {
        let mut p = ElasticPool::new(cfg(), pool_addrs(4));
        let seeded = p.seed_warm(2);
        p.note_stream_start(seeded[0]);
        p.note_egress(seeded[0], 2_000_000_000); // 2 GB
        p.tick(SimTime::from_secs(3600), 0, false, || 0.0);
        assert_eq!(p.cost_invocation_micro(), p.config().cost_per_invocation_micro);
        assert_eq!(p.cost_egress_micro(), 2 * p.config().cost_per_gb_egress_micro);
        // Two instances warm for one hour (one idle-drained at the tick,
        // but billing accrues before the drain).
        assert_eq!(p.cost_warm_micro(), 2 * p.config().cost_per_warm_hour_micro);
        assert_eq!(
            p.total_cost_micro(),
            p.cost_invocation_micro() + p.cost_egress_micro() + p.cost_warm_micro()
        );
    }

    #[test]
    fn slo_burn_scales_out_before_the_queue_backs_up() {
        // Same demand picture in both arms: one warm instance, two
        // streams in flight (at target), zero queued — the queue-depth
        // signal alone sees nothing to scale for.
        let arm = |burning: bool| {
            let mut p = ElasticPool::new(cfg(), pool_addrs(8));
            let seeded = p.seed_warm(1);
            p.note_stream_start(seeded[0]);
            p.note_stream_start(seeded[0]);
            let acts = p.tick(SimTime::from_secs(1), 0, burning, || 0.0);
            acts.iter().filter(|a| matches!(a, ElasticAction::Provision { .. })).count()
        };
        assert_eq!(arm(false), 0, "no queue, no burn: nothing to do");
        assert_eq!(
            arm(true),
            1,
            "a burning latency SLO surges capacity before requests queue"
        );
    }

    #[test]
    fn address_pool_exhaustion_is_survivable() {
        let mut p = ElasticPool::new(cfg(), pool_addrs(1));
        p.seed_warm(1);
        let acts = p.tick(SimTime::from_secs(1), 100, false, || 0.0);
        assert!(acts.iter().all(|a| !matches!(a, ElasticAction::Provision { .. })));
        assert!(p.starved_provisions > 0);
    }

    #[test]
    fn static_cost_prices_vm_hours_plus_egress() {
        let c = ElasticConfig::default();
        let cost = c.static_cost_micro(4, SimDuration::from_secs(3600), 1_000_000_000);
        assert_eq!(cost, 4 * c.cost_per_vm_hour_micro + c.cost_per_gb_egress_micro);
    }
}
