//! The domestic proxy: the only thing users ever talk to. It terminates
//! browser HTTP-proxy connections (CONNECT for HTTPS, absolute-form for
//! plain HTTP), enforces the whitelist, and forwards whitelisted traffic
//! to the remote proxy under the cover + blinding protocol.

use std::collections::HashMap;

use rand::Rng;
use sc_netproto::http::{HttpMessage, HttpParser, HttpRequest, HttpResponse};
use sc_netproto::socks::TargetAddr;
use sc_simnet::api::{App, AppEvent, TcpEvent, TcpHandle};
use sc_simnet::sim::Ctx;

use crate::config::ScConfig;
use crate::frame::{Hello, StreamCodec, StreamHeader};

enum BrowserConn {
    AwaitRequest(HttpParser),
    Tunneling { remote: TcpHandle },
    Dead,
}

struct RemoteConn {
    browser: TcpHandle,
    connected: bool,
    /// Wire bytes queued until the remote TCP connects (hello + header
    /// are pre-encoded here).
    pending: Vec<u8>,
    /// Outbound (domestic→remote) codec.
    tx: StreamCodec,
    /// Inbound (remote→domestic) codec.
    rx: StreamCodec,
    /// Plaintext bytes relayed browser→remote on this stream.
    up_bytes: u64,
    /// Plaintext bytes relayed remote→browser on this stream.
    down_bytes: u64,
}

/// The domestic proxy app. Install on the domestic VM node.
pub struct DomesticProxy {
    config: ScConfig,
    browsers: HashMap<TcpHandle, BrowserConn>,
    remotes: HashMap<TcpHandle, RemoteConn>,
    /// Whitelisted tunnels opened (diagnostics).
    pub tunnels_opened: u64,
    /// Requests refused as off-whitelist (diagnostics; should be zero
    /// when clients honour the PAC file).
    pub refused: u64,
}

impl DomesticProxy {
    /// Creates the proxy.
    pub fn new(config: ScConfig) -> Self {
        DomesticProxy {
            config,
            browsers: HashMap::new(),
            remotes: HashMap::new(),
            tunnels_opened: 0,
            refused: 0,
        }
    }

    fn open_tunnel(
        &mut self,
        browser: TcpHandle,
        header: StreamHeader,
        initial_plain: Vec<u8>,
        ctx: &mut Ctx<'_>,
    ) {
        let header_label = match &header.target {
            TargetAddr::Domain(host, port) => format!("{host}:{port}"),
            other => format!("{other:?}"),
        };
        let scheme = self.config.scheme.get();
        let nonce: u64 = ctx.rng().gen();
        let hello = Hello { scheme, nonce };
        let encrypt = !header.is_tls;
        let mut tx = StreamCodec::new(&self.config.secret, &hello, encrypt, 0);
        let rx = StreamCodec::new(&self.config.secret, &hello, encrypt, 1);
        let mut pending = hello.encode(&self.config.secret, &self.config.front_host);
        let mut head = header.encode();
        tx.encode(&mut head);
        pending.extend_from_slice(&head);
        if !initial_plain.is_empty() {
            let mut body = initial_plain;
            tx.encode(&mut body);
            pending.extend_from_slice(&body);
        }
        let remote = ctx.tcp_connect(self.config.remote);
        self.remotes.insert(
            remote,
            RemoteConn { browser, connected: false, pending, tx, rx, up_bytes: 0, down_bytes: 0 },
        );
        self.browsers.insert(browser, BrowserConn::Tunneling { remote });
        self.tunnels_opened += 1;
        sc_obs::counter_add("scholarcloud.tunnels_opened", 1);
        if sc_obs::is_enabled(sc_obs::Level::Info, "scholarcloud") {
            sc_obs::emit(
                sc_obs::Event::new(
                    ctx.now().as_micros(),
                    sc_obs::Level::Info,
                    "scholarcloud",
                    "domestic",
                    "tunnel_open",
                )
                .field("target", header_label)
                .field("encrypted", encrypt),
            );
        }
    }

    fn trace_refusal(&self, host: &str, ctx: &mut Ctx<'_>) {
        sc_obs::counter_add("scholarcloud.whitelist_refusals", 1);
        if sc_obs::is_enabled(sc_obs::Level::Warn, "scholarcloud") {
            sc_obs::emit(
                sc_obs::Event::new(
                    ctx.now().as_micros(),
                    sc_obs::Level::Warn,
                    "scholarcloud",
                    "domestic",
                    "whitelist_refused",
                )
                .field("host", host.to_string()),
            );
        }
    }

    fn handle_request(&mut self, browser: TcpHandle, req: HttpRequest, ctx: &mut Ctx<'_>) {
        if req.method == "CONNECT" {
            let Some((host, port_str)) = req.target.rsplit_once(':') else {
                ctx.tcp_send(browser, &HttpResponse::new(400, Vec::new()).encode());
                return;
            };
            let port: u16 = port_str.parse().unwrap_or(443);
            if !self.config.whitelisted(host) {
                self.refused += 1;
                self.trace_refusal(host, ctx);
                ctx.tcp_send(browser, &HttpResponse::new(403, Vec::new()).encode());
                ctx.tcp_close(browser);
                self.browsers.insert(browser, BrowserConn::Dead);
                return;
            }
            ctx.tcp_send(browser, b"HTTP/1.1 200 Connection established\r\n\r\n");
            let header = StreamHeader {
                is_tls: port == 443,
                target: TargetAddr::Domain(host.to_string(), port),
            };
            self.open_tunnel(browser, header, Vec::new(), ctx);
        } else if let Some(rest) = req.target.strip_prefix("http://") {
            // Absolute-form plain HTTP.
            let (hostport, path) = match rest.find('/') {
                Some(i) => (&rest[..i], &rest[i..]),
                None => (rest, "/"),
            };
            let (host, port) = match hostport.rsplit_once(':') {
                Some((h, p)) => (h, p.parse().unwrap_or(80)),
                None => (hostport, 80),
            };
            if !self.config.whitelisted(host) {
                self.refused += 1;
                self.trace_refusal(host, ctx);
                ctx.tcp_send(browser, &HttpResponse::new(403, Vec::new()).encode());
                ctx.tcp_close(browser);
                self.browsers.insert(browser, BrowserConn::Dead);
                return;
            }
            // Rewrite to origin-form and push through the tunnel.
            let mut origin_req = req.clone();
            origin_req.target = path.to_string();
            let header = StreamHeader {
                is_tls: false,
                target: TargetAddr::Domain(host.to_string(), port),
            };
            self.open_tunnel(browser, header, origin_req.encode(), ctx);
        } else {
            ctx.tcp_send(browser, &HttpResponse::new(400, Vec::new()).encode());
        }
    }
}

impl App for DomesticProxy {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(self.config.domestic.port);
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        let AppEvent::Tcp(h, tcp_ev) = ev else { return };

        // Remote side.
        if self.remotes.contains_key(&h) {
            match tcp_ev {
                TcpEvent::Connected => {
                    let conn = self.remotes.get_mut(&h).expect("checked");
                    conn.connected = true;
                    let pending = std::mem::take(&mut conn.pending);
                    ctx.tcp_send(h, &pending);
                }
                TcpEvent::DataReceived => {
                    let data = ctx.tcp_recv_all(h);
                    let conn = self.remotes.get_mut(&h).expect("checked");
                    let mut plain = data.to_vec();
                    conn.rx.decode(&mut plain);
                    conn.down_bytes += plain.len() as u64;
                    sc_obs::counter_add("scholarcloud.bytes_down", plain.len() as u64);
                    ctx.tcp_send(conn.browser, &plain);
                }
                TcpEvent::PeerClosed | TcpEvent::Reset | TcpEvent::ConnectFailed => {
                    if let Some(conn) = self.remotes.remove(&h) {
                        sc_obs::observe("scholarcloud.stream_bytes_up", conn.up_bytes);
                        sc_obs::observe("scholarcloud.stream_bytes_down", conn.down_bytes);
                        ctx.tcp_close(conn.browser);
                        self.browsers.insert(conn.browser, BrowserConn::Dead);
                    }
                }
                _ => {}
            }
            return;
        }

        // Browser side.
        match tcp_ev {
            TcpEvent::Accepted { .. } => {
                self.browsers.insert(h, BrowserConn::AwaitRequest(HttpParser::new()));
                sc_obs::counter_add("scholarcloud.domestic_accepts", 1);
            }
            TcpEvent::DataReceived => {
                let data = ctx.tcp_recv_all(h);
                match self.browsers.get_mut(&h) {
                    Some(BrowserConn::AwaitRequest(parser)) => {
                        let Ok(msgs) = parser.push(&data) else {
                            ctx.tcp_abort(h);
                            self.browsers.insert(h, BrowserConn::Dead);
                            return;
                        };
                        for msg in msgs {
                            if let HttpMessage::Request(req) = msg {
                                self.handle_request(h, req, ctx);
                                break; // one request per proxy connection
                            }
                        }
                    }
                    Some(BrowserConn::Tunneling { remote }) => {
                        let remote = *remote;
                        if let Some(conn) = self.remotes.get_mut(&remote) {
                            let mut wire = data.to_vec();
                            conn.up_bytes += wire.len() as u64;
                            sc_obs::counter_add("scholarcloud.bytes_up", wire.len() as u64);
                            conn.tx.encode(&mut wire);
                            if conn.connected {
                                ctx.tcp_send(remote, &wire);
                            } else {
                                conn.pending.extend_from_slice(&wire);
                            }
                        }
                    }
                    _ => {}
                }
            }
            TcpEvent::PeerClosed | TcpEvent::Reset => {
                if let Some(BrowserConn::Tunneling { remote }) = self.browsers.get(&h) {
                    let remote = *remote;
                    ctx.tcp_close(remote);
                    if let Some(conn) = self.remotes.remove(&remote) {
                        sc_obs::observe("scholarcloud.stream_bytes_up", conn.up_bytes);
                        sc_obs::observe("scholarcloud.stream_bytes_down", conn.down_bytes);
                    }
                }
                self.browsers.insert(h, BrowserConn::Dead);
            }
            _ => {}
        }
    }
}
