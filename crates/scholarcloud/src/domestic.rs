//! The domestic proxy: the only thing users ever talk to. It terminates
//! browser HTTP-proxy connections (CONNECT for HTTPS, absolute-form for
//! plain HTTP), enforces the whitelist, and forwards whitelisted traffic
//! to a pool of remote proxies under the cover + blinding protocol.
//!
//! # Resilience
//!
//! The censor's cheapest countermeasure is blacklisting remote VM IPs
//! (§4.2 of the paper), so tunnel origination is built around a
//! [`RemotePool`] rather than a single upstream:
//!
//! * every connect attempt runs under a deadline
//!   ([`ResilienceConfig::connect_timeout`]) — a blackholed remote costs
//!   seconds, not a full TCP SYN-retry cycle;
//! * failed attempts retry with deterministic exponential backoff,
//!   preferring a *different* remote (failover);
//! * consecutive failures open a per-remote circuit breaker, and active
//!   probes (plus half-open trials) detect recovery;
//! * when **every** remote is dark, whitelisted requests park briefly and
//!   then fail fast with `503` — a distinct, browser-visible signal —
//!   while non-whitelisted traffic is untouched (it never transits the
//!   proxy: the PAC file sends it DIRECT);
//! * the CONNECT `200` is only sent once the tunnel is actually
//!   established, so browsers cannot start a TLS handshake into a void.
//!
//! # Overload control
//!
//! The client-facing side is guarded by an [`AdmissionController`]
//! (see [`admission`](crate::admission)): concurrent tunnels are
//! capped, excess whitelisted requests wait in a bounded deadline-aware
//! queue, per-client token buckets and stream caps keep one hot client
//! from starving the rest, and the resilience layer's retries are
//! gated by a global retry budget. Shed work fails fast with
//! `503`/`429 + Retry-After` instead of queueing to die.
//!
//! Error surface seen by browsers: `403` off-whitelist, `429`
//! throttled (per-client rate or stream cap), `502` retries exhausted
//! or retry budget spent, `503` parked too long with no remote
//! available, shed by the admission queue, or deadline-shed.

use std::collections::HashMap;

use rand::Rng;
use sc_cache::{CacheKey, CachedResponse, Lookup, Role, Singleflight};
use sc_netproto::http::{HttpMessage, HttpParser, HttpRequest, HttpResponse};
use sc_netproto::socks::TargetAddr;
use sc_simnet::addr::{Addr, SocketAddr};
use sc_simnet::api::{App, AppEvent, TcpEvent, TcpHandle};
use sc_simnet::sim::Ctx;
use sc_simnet::time::{SimDuration, SimTime};

use crate::admission::{AdmissionController, Decision, Dequeued};
use crate::config::{ScConfig, REMOTE_PORT};
use crate::elastic::{ElasticAction, ElasticHandle};
use crate::fleet::FleetMember;
use crate::frame::{decoy_response, Hello, StreamCodec, StreamHeader};
use crate::resilience::{BreakerState, BreakerTransition, RemotePool};

/// How often a parked request re-checks the pool for a recovered remote
/// (probes also drain the parked set immediately on success).
const PARK_RECHECK: SimDuration = SimDuration::from_millis(250);

/// Loop-guard header on intra-fleet peering hops: carries the
/// requesting shard's index, and its presence means "answer locally,
/// never forward again" — a peering hop is one hop, by construction.
pub const FLEET_HEADER: &str = "Sc-Fleet";

/// Fleet-wide admission pressure floor: the sickest-shard-first shed
/// only engages once the fleet's published queue depths sum to at least
/// this many waiting requests (nominal traffic never queues, so the
/// fleet path costs nothing until a real overload).
const FLEET_PRESSURE_QUEUE: usize = 4;

/// How often the admission queue is re-checked for deadline sheds while
/// non-empty (slot releases also drain it immediately).
const QUEUE_TICK: SimDuration = SimDuration::from_millis(100);

/// Elastic autoscaler control-loop period. Half the smallest default
/// cold start, so a scale-out decision is never more than one tick
/// stale relative to the capacity it produces.
const ELASTIC_TICK: SimDuration = SimDuration::from_millis(500);

enum BrowserConn {
    AwaitRequest(HttpParser),
    /// Whitelisted request accepted; tunnel establishment in progress
    /// (state lives in `DomesticProxy::pending`).
    Pending,
    Tunneling { remote: TcpHandle },
    /// Plain-HTTP gateway mode: the proxy terminates HTTP on this conn
    /// (one request at a time, keep-alive across requests) and answers
    /// from the shared content cache, a coalesced in-flight fetch, or a
    /// per-request upstream tunnel. Unlike CONNECT, these requests
    /// expose their HTTP semantics — the only place caching can apply.
    Gateway(HttpParser),
    Dead,
}

/// A gateway request's in-flight upstream fetch, keyed by the leader's
/// browser handle. The upstream leg runs through the normal admission +
/// resilience machinery; the response is reassembled here instead of
/// being piped through.
struct GatewayFetch {
    /// `(host, path)` — the shared cache's key.
    key: CacheKey,
    /// Origin port of the upstream leg.
    port: u16,
    /// Origin-form request (replayed if the flight's leadership moves).
    request: HttpRequest,
    /// Store a `200` under `key` and fan it out to coalesced waiters.
    cacheable: bool,
    /// Carries our stored validator: an upstream `304` renews the entry.
    revalidating: bool,
    /// Reassembles the upstream response stream.
    parser: HttpParser,
}

/// An in-flight intra-fleet peering hop: a non-owner's cacheable miss
/// forwarded to the key's owner shard instead of upstream. The fetch
/// bookkeeping stays in `gw_fetches` under the leader's handle so a
/// failed hop can fall back to a normal upstream fetch.
struct PeerFetch {
    /// The gateway leader whose request this hop serves.
    leader: TcpHandle,
    /// Owner shard index the hop targets.
    owner: usize,
    /// Pre-encoded request, sent once the peer TCP connects.
    wire: Vec<u8>,
    connected: bool,
    /// Response settled; awaiting the close handshake's events.
    done: bool,
    /// Reassembles the owner's response.
    parser: HttpParser,
    /// Open "peer_fetch" span.
    span: sc_obs::SpanId,
    /// Leader's trace context (a fallback replay parents into it).
    tctx: sc_obs::TraceCtx,
}

/// A browser request between "accepted" and "tunnel established":
/// everything needed to (re)build an attempt from scratch.
struct PendingTunnel {
    header: StreamHeader,
    /// Plaintext to replay at the start of the stream (origin-form
    /// request for absolute-form HTTP, plus anything the browser sent
    /// while we were still connecting).
    initial_plain: Vec<u8>,
    /// Attempts started so far.
    attempts: u32,
    /// Pool index of the most recent attempt's remote.
    last_remote: Option<usize>,
    /// Send `200 Connection established` on success (CONNECT only).
    is_connect: bool,
    /// Rebuilt from a mid-stream death ([`StreamReplay`]): the browser
    /// already got its `200` the first time around, so establishment
    /// must complete silently.
    resumed: bool,
    /// When this request started waiting for *any* remote to come back.
    parked_since: Option<SimTime>,
    /// A connect attempt is currently outstanding.
    inflight: bool,
    /// A retry/park-recheck timer is currently armed.
    retry_armed: bool,
    /// Still waiting in the admission queue (no attempt may start and
    /// no active slot is held until the controller dequeues it).
    queued: bool,
    /// When the admission controller granted this request its slot
    /// (service-time EWMA: admit → tunnel established).
    admitted_at: SimTime,
    /// Trace context of the originating browser request (from its
    /// `Sc-Trace` header); every proxy span for this request parents
    /// into it.
    tctx: sc_obs::TraceCtx,
    /// Open "admission" span: arrival → admit/dequeue/shed verdict
    /// (its duration is the queue wait).
    admission_span: sc_obs::SpanId,
    /// Open "establish" span: first attempt → tunnel up or failure.
    establish_span: sc_obs::SpanId,
    /// Open "backoff"/"park" span while waiting between attempts.
    wait_span: sc_obs::SpanId,
}

/// Everything needed to transparently rebuild an established tunnel
/// whose remote leg died before delivering a single downstream byte.
/// The browser has observed nothing yet, so replaying the buffered
/// plaintext through a fresh tunnel (under whatever blinding scheme is
/// in force *now*) is indistinguishable from a slow first attempt.
/// This is the stream-level half of the rotation defense: a learned
/// signature RSTs the preamble after the connect succeeds, past the
/// establish-phase retry budget, and would otherwise kill every stream
/// in flight at the moment of detection.
struct StreamReplay {
    header: StreamHeader,
    is_connect: bool,
    /// Plaintext sent upstream so far (origin-form request plus every
    /// tunneled byte); capped at [`REPLAY_CAP`].
    sent_plain: Vec<u8>,
    /// Establish attempts already consumed by this browser request.
    attempts: u32,
    tctx: sc_obs::TraceCtx,
}

/// Upper bound on buffered upstream plaintext per stream: past this the
/// replay state is dropped and a mid-stream death is final, as before.
const REPLAY_CAP: usize = 16 * 1024;

struct RemoteConn {
    browser: TcpHandle,
    /// Index into the remote pool (health/breaker bookkeeping).
    remote_idx: usize,
    /// When the connect was issued (RTT measurement).
    started: SimTime,
    connected: bool,
    /// Wire bytes queued until the remote TCP connects (hello + header
    /// are pre-encoded here).
    pending: Vec<u8>,
    /// Outbound (domestic→remote) codec.
    tx: StreamCodec,
    /// Inbound (remote→domestic) codec.
    rx: StreamCodec,
    /// Plaintext bytes relayed browser→remote on this stream.
    up_bytes: u64,
    /// Plaintext bytes relayed remote→browser on this stream.
    down_bytes: u64,
    /// Open "attempt" span for this connect attempt.
    attempt_span: sc_obs::SpanId,
    /// Open "tunnel_stream"/"upstream_fetch" span once established.
    stream_span: sc_obs::SpanId,
    /// Armed while a mid-stream death is still transparently
    /// recoverable (see [`StreamReplay`]); cleared by the first
    /// downstream byte or a buffer overflow.
    replay: Option<StreamReplay>,
}

/// An active health probe: a bare TCP connect to a remote, closed as
/// soon as it succeeds. (The remote proxy sees a connection that dies
/// before sending a preamble — indistinguishable from a web crawler
/// timing out, so probes do not burn the cover story.)
struct Probe {
    remote_idx: usize,
    started: SimTime,
    /// Success recorded; awaiting the close handshake's events.
    done: bool,
}

/// What an armed timer token means when it fires. Simnet timers cannot
/// be cancelled, so every fired token is looked up here and stale ones
/// (purpose already resolved) are ignored.
enum TimerPurpose {
    /// Recurring probe round.
    ProbeTick,
    /// Deadline for a tunnel connect attempt (remote-side handle).
    ConnectDeadline(TcpHandle),
    /// Deadline for a probe connect (probe handle).
    ProbeDeadline(TcpHandle),
    /// Retry backoff elapsed / parked request re-check (browser handle).
    Retry(TcpHandle),
    /// Periodic admission-queue re-check (deadline sheds).
    QueueTick,
    /// Recurring elastic autoscaler tick.
    ElasticTick,
    /// Deadline for a whole intra-fleet peering hop (peer handle).
    PeerDeadline(TcpHandle),
}

/// The domestic proxy app. Install on the domestic VM node.
pub struct DomesticProxy {
    config: ScConfig,
    pool: RemotePool,
    admission: AdmissionController<TcpHandle>,
    browsers: HashMap<TcpHandle, BrowserConn>,
    remotes: HashMap<TcpHandle, RemoteConn>,
    /// Client address per browser connection (fairness keying).
    peers: HashMap<TcpHandle, Addr>,
    /// Requests awaiting tunnel establishment, keyed by browser handle.
    pending: HashMap<TcpHandle, PendingTunnel>,
    /// This proxy's fleet membership (None = the paper's single-proxy
    /// deployment; every fleet path is inert then).
    fleet: Option<FleetMember>,
    /// The elastic remote tier this proxy drives (None = the paper's
    /// static VM pool; every elastic path is inert then).
    elastic: Option<ElasticHandle>,
    /// In-flight intra-fleet peering hops, keyed by the peer-side handle.
    peer_fetches: HashMap<TcpHandle, PeerFetch>,
    /// In-flight gateway fetches, keyed by the leader's browser handle.
    gw_fetches: HashMap<TcpHandle, GatewayFetch>,
    /// Coalescing table for cacheable gateway fetches.
    singleflight: Singleflight<TcpHandle>,
    /// Which key each coalesced waiter is parked on, with its open
    /// "coalesce_wait" span and the waiter's own trace context (used if
    /// the waiter is promoted to leader).
    gw_waits: HashMap<TcpHandle, (CacheKey, sc_obs::SpanId, sc_obs::TraceCtx)>,
    /// `If-None-Match` validators sent by gateway requesters, consulted
    /// when answering from the cache (matching validator → bodyless 304).
    gw_inm: HashMap<TcpHandle, String>,
    probes: HashMap<TcpHandle, Probe>,
    timers: HashMap<u64, TimerPurpose>,
    next_timer: u64,
    /// A [`QUEUE_TICK`] timer is currently armed.
    queue_tick_armed: bool,
    /// Whitelisted tunnels opened (diagnostics).
    pub tunnels_opened: u64,
    /// Requests refused as off-whitelist (diagnostics; should be zero
    /// when clients honour the PAC file).
    pub refused: u64,
    /// Connect attempts retried after a failure (diagnostics).
    pub retries: u64,
    /// Retries that moved to a different remote (diagnostics).
    pub failovers: u64,
    /// Requests failed with 502 after exhausting attempts (diagnostics).
    pub tunnel_failures: u64,
    /// Requests failed with 503 while every remote was dark (diagnostics).
    pub fail_fast: u64,
    /// Decoys served to connections that never spoke HTTP (diagnostics;
    /// an active prober's garbage lands here).
    pub decoys: u64,
    /// Detection-driven scheme rotations performed (diagnostics).
    pub rotations: u64,
    /// Breaker openings observed (rotation-policy evidence).
    breaker_opens: u64,
    /// Interference units already consumed by past rotations.
    evidence_consumed: u64,
    /// When the scheme last rotated (cooldown bookkeeping).
    last_rotation: Option<SimTime>,
}

impl DomesticProxy {
    /// Creates the proxy with one circuit breaker per configured remote.
    pub fn new(config: ScConfig) -> Self {
        let pool = RemotePool::new(
            config.remotes.clone(),
            config.resilience.breaker_threshold,
            config.resilience.breaker_cooldown,
        );
        let admission = AdmissionController::new(config.admission.clone());
        DomesticProxy {
            config,
            pool,
            admission,
            browsers: HashMap::new(),
            remotes: HashMap::new(),
            peers: HashMap::new(),
            pending: HashMap::new(),
            fleet: None,
            elastic: None,
            peer_fetches: HashMap::new(),
            gw_fetches: HashMap::new(),
            singleflight: Singleflight::new(),
            gw_waits: HashMap::new(),
            gw_inm: HashMap::new(),
            probes: HashMap::new(),
            timers: HashMap::new(),
            next_timer: 1,
            queue_tick_armed: false,
            tunnels_opened: 0,
            refused: 0,
            retries: 0,
            failovers: 0,
            tunnel_failures: 0,
            fail_fast: 0,
            decoys: 0,
            rotations: 0,
            breaker_opens: 0,
            evidence_consumed: 0,
            last_rotation: None,
        }
    }

    /// Joins a fleet: this proxy becomes shard `member.self_idx`, its
    /// cacheable misses route to each key's owner shard, and its
    /// admission pressure is published to the shared sickness board.
    pub fn with_fleet(mut self, member: FleetMember) -> Self {
        self.fleet = Some(member);
        self
    }

    /// This proxy's fleet membership, if any (tests and dashboards).
    pub fn fleet(&self) -> Option<&FleetMember> {
        self.fleet.as_ref()
    }

    /// Attaches an elastic remote tier: the proxy ticks its autoscaler,
    /// meters invocations/egress into its cost model, executes its
    /// provision/retire actions against the remote pool and node
    /// lifecycle, and churns instances whose breaker opens.
    pub fn with_elastic(mut self, handle: ElasticHandle) -> Self {
        self.elastic = Some(handle);
        self
    }

    /// The attached elastic tier, if any (tests and dashboards).
    pub fn elastic(&self) -> Option<&ElasticHandle> {
        self.elastic.as_ref()
    }

    /// Read access to the remote pool (tests and dashboards).
    pub fn pool(&self) -> &RemotePool {
        &self.pool
    }

    /// Read access to the admission controller (tests and dashboards).
    pub fn admission(&self) -> &AdmissionController<TcpHandle> {
        &self.admission
    }

    fn arm(&mut self, delay: SimDuration, purpose: TimerPurpose, ctx: &mut Ctx<'_>) {
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, purpose);
        ctx.set_timer(delay, token);
    }

    fn emit_resilience(
        &self,
        level: sc_obs::Level,
        name: &'static str,
        fields: &[(&'static str, String)],
        ctx: &Ctx<'_>,
    ) {
        if sc_obs::is_enabled(level, "scholarcloud") {
            let mut ev = sc_obs::Event::new(
                ctx.now().as_micros(),
                level,
                "scholarcloud",
                "resilience",
                name,
            );
            for (k, v) in fields {
                ev = ev.field(k, v.clone());
            }
            sc_obs::emit(ev);
        }
    }

    fn emit_breaker(&self, idx: usize, t: BreakerTransition, ctx: &mut Ctx<'_>) {
        sc_obs::counter_add("scholarcloud.breaker_transitions", 1);
        let now_us = ctx.now().as_micros();
        match t.to {
            BreakerState::Open => sc_obs::ts_bump(now_us, "scholarcloud.breaker_opens", 1),
            BreakerState::Closed => sc_obs::ts_bump(now_us, "scholarcloud.breaker_closes", 1),
            BreakerState::HalfOpen => {}
        }
        self.emit_resilience(
            sc_obs::Level::Warn,
            "breaker",
            &[
                ("remote", self.pool.entry(idx).addr.to_string()),
                ("from", t.from.name().to_string()),
                ("to", t.to.name().to_string()),
            ],
            ctx,
        );
    }

    fn emit_admission(
        &self,
        level: sc_obs::Level,
        name: &'static str,
        fields: &[(&'static str, String)],
        ctx: &Ctx<'_>,
    ) {
        if sc_obs::is_enabled(level, "scholarcloud") {
            let mut ev = sc_obs::Event::new(
                ctx.now().as_micros(),
                level,
                "scholarcloud",
                "admission",
                name,
            );
            for (k, v) in fields {
                ev = ev.field(k, v.clone());
            }
            sc_obs::emit(ev);
        }
    }

    fn emit_cache(&self, name: &'static str, key: &CacheKey, ctx: &Ctx<'_>) {
        if sc_obs::is_enabled(sc_obs::Level::Debug, "scholarcloud") {
            let mut ev = sc_obs::Event::new(
                ctx.now().as_micros(),
                sc_obs::Level::Debug,
                "scholarcloud",
                "cache",
                name,
            )
            .field("host", key.0.clone())
            .field("path", key.1.clone());
            // Shard attribution only exists in fleet runs, so
            // single-proxy traces stay byte-identical with pre-fleet
            // builds.
            if let Some(f) = &self.fleet {
                ev = ev.field("shard", f.self_idx as u64);
            }
            sc_obs::emit(ev);
        }
    }

    fn emit_fleet(
        &self,
        level: sc_obs::Level,
        name: &'static str,
        fields: &[(&'static str, String)],
        ctx: &Ctx<'_>,
    ) {
        if sc_obs::is_enabled(level, "scholarcloud") {
            let mut ev = sc_obs::Event::new(
                ctx.now().as_micros(),
                level,
                "scholarcloud",
                "fleet",
                name,
            );
            if let Some(f) = &self.fleet {
                ev = ev.field("shard", f.self_idx as u64);
            }
            for (k, v) in fields {
                ev = ev.field(k, v.clone());
            }
            sc_obs::emit(ev);
        }
    }

    /// Publishes this shard's admission pressure to the fleet's shared
    /// sickness board (no-op outside a fleet).
    fn publish_sickness(&self) {
        if let Some(f) = &self.fleet {
            f.handle.publish(
                f.self_idx,
                self.admission.queue_depth(),
                self.admission.service_estimate(),
            );
        }
    }

    /// Bumps a cache counter and its timeline series together.
    fn count_cache(&self, name: &'static str, n: u64, ctx: &Ctx<'_>) {
        sc_obs::counter_add(name, n);
        sc_obs::ts_bump(ctx.now().as_micros(), name, n);
    }

    /// The client address behind a browser connection (fairness key).
    fn client_of(&self, browser: TcpHandle) -> Addr {
        self.peers.get(&browser).copied().unwrap_or(Addr::new(0, 0, 0, 0))
    }

    fn sample_queue_depth(&self, ctx: &Ctx<'_>) {
        sc_obs::ts_record(
            ctx.now().as_micros(),
            "scholarcloud.queue_depth",
            self.admission.queue_depth() as u64,
        );
    }

    /// Answers a shed/throttled request with its status and a
    /// `Retry-After` hint, then closes the connection — the fast
    /// failure path that keeps an overloaded proxy responsive.
    fn shed_browser(&mut self, browser: TcpHandle, code: u16, reason: &str, ctx: &mut Ctx<'_>) {
        self.fail_gateway_waiters(browser, code, ctx);
        if let Some(pt) = self.pending.remove(&browser) {
            let now_us = ctx.now().as_micros();
            sc_obs::span_end(
                now_us,
                pt.admission_span,
                vec![
                    ("verdict", sc_obs::Value::String(reason.to_string())),
                    ("code", u64::from(code).into()),
                ],
            );
            sc_obs::span_end(now_us, pt.wait_span, Vec::new());
            sc_obs::span_end(now_us, pt.establish_span, vec![("ok", false.into())]);
        }
        let retry_after = self.admission.retry_after();
        let secs = (retry_after.as_micros() + 999_999) / 1_000_000;
        let resp = HttpResponse::new(code, Vec::new())
            .header("Retry-After", &secs.max(1).to_string());
        ctx.tcp_send(browser, &resp.encode());
        ctx.tcp_close(browser);
        self.browsers.insert(browser, BrowserConn::Dead);
        let now_us = ctx.now().as_micros();
        let (counter, name) = if code == 429 {
            ("scholarcloud.throttled", "throttle")
        } else {
            ("scholarcloud.shed", "shed")
        };
        sc_obs::counter_add(counter, 1);
        sc_obs::ts_bump(now_us, counter, 1);
        self.emit_admission(
            sc_obs::Level::Warn,
            name,
            &[
                ("code", code.to_string()),
                ("reason", reason.to_string()),
                ("retry_after_us", retry_after.as_micros().to_string()),
            ],
            ctx,
        );
    }

    /// Arms the queue re-check tick if the queue is non-empty and no
    /// tick is outstanding (nominal traffic never queues, so nominal
    /// runs never pay for the timer).
    fn ensure_queue_tick(&mut self, ctx: &mut Ctx<'_>) {
        if !self.queue_tick_armed && self.admission.queue_depth() > 0 {
            self.queue_tick_armed = true;
            self.arm(QUEUE_TICK, TimerPurpose::QueueTick, ctx);
        }
    }

    /// Releases `browser`'s active slot and lets queued work advance
    /// into the freed capacity.
    fn release_slot(&mut self, browser: TcpHandle, ctx: &mut Ctx<'_>) {
        let client = self.client_of(browser);
        self.admission.release(client, ctx.now(), None);
        self.drain_queue(ctx);
        self.publish_sickness();
    }

    /// Dequeues as much as capacity allows: deadline-expired entries
    /// are shed with 503, admissible ones start their first attempt.
    fn drain_queue(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let actions = self.admission.drain(now);
        if actions.is_empty() {
            return;
        }
        for action in actions {
            match action {
                Dequeued::Shed { token } => {
                    self.shed_browser(token, 503, "deadline_shed", ctx);
                }
                Dequeued::Admit { token, waited } => {
                    sc_obs::counter_add("scholarcloud.admitted", 1);
                    match self.pending.get_mut(&token) {
                        Some(pt) => {
                            pt.queued = false;
                            pt.admitted_at = now;
                            let sp =
                                std::mem::replace(&mut pt.admission_span, sc_obs::SpanId::NONE);
                            sc_obs::span_end(
                                now.as_micros(),
                                sp,
                                vec![
                                    ("verdict", "admit".into()),
                                    ("waited_us", waited.as_micros().into()),
                                ],
                            );
                            self.emit_admission(
                                sc_obs::Level::Debug,
                                "dequeue",
                                &[("waited_us", waited.as_micros().to_string())],
                                ctx,
                            );
                            self.try_attempt(token, ctx);
                        }
                        // The browser vanished without the queue entry
                        // being removed; hand the slot straight back.
                        None => {
                            let client = self.client_of(token);
                            self.admission.release(client, now, None);
                        }
                    }
                }
            }
        }
        self.sample_queue_depth(ctx);
        self.ensure_queue_tick(ctx);
        self.publish_sickness();
    }

    fn record_remote_success(&mut self, idx: usize, rtt: SimDuration, ctx: &mut Ctx<'_>) {
        if let Some(t) = self.pool.record_success(idx, rtt) {
            self.emit_breaker(idx, t, ctx);
        }
    }

    fn record_remote_failure(&mut self, idx: usize, ctx: &mut Ctx<'_>) {
        if let Some(t) = self.pool.record_failure(idx, ctx.now()) {
            self.emit_breaker(idx, t, ctx);
            // An elastic instance whose breaker opens is presumed
            // blacklisted: churn it — retire at this IP, replace at a
            // fresh one — instead of waiting out probe recovery that
            // will never come.
            if t.to == BreakerState::Open {
                self.elastic_churn(idx, ctx);
                self.breaker_opens += 1;
                // Rotate *now*, not at the next tick: this request's own
                // retry already picks up the new scheme (the attempt
                // re-reads the live handle).
                self.maybe_rotate(ctx);
            }
        }
    }

    /// Evaluates the detection-driven scheme-rotation policy: breaker
    /// openings (tunnels dying at the censor's hands) plus remote-side
    /// probe sightings are the interference evidence; enough *new*
    /// evidence since the last rotation — outside the cooldown — rotates
    /// the blinding scheme, changing the cover traffic's on-wire shape
    /// and starving whatever signature the censor had learned. No timer
    /// is involved: an undetected scheme never rotates.
    fn maybe_rotate(&mut self, ctx: &mut Ctx<'_>) {
        let Some(policy) = self.config.rotation else { return };
        let now = ctx.now();
        let evidence = self.breaker_opens + self.config.interference.probe_sightings();
        let fresh = evidence.saturating_sub(self.evidence_consumed);
        if fresh < policy.threshold {
            return;
        }
        if let Some(last) = self.last_rotation {
            if now.saturating_since(last) < policy.cooldown {
                return;
            }
        }
        self.evidence_consumed = evidence;
        self.last_rotation = Some(now);
        self.rotations += 1;
        let from = self.config.scheme.get();
        // A fresh cover generation with the new codec: the censor's
        // classifier has never seen the rotated deployment's preamble,
        // so every learned signature starves from here on out.
        let to = self.config.scheme.rotate_fresh_at(now.as_micros());
        sc_obs::counter_add("scholarcloud.adaptive_rotations", 1);
        if sc_obs::is_enabled(sc_obs::Level::Info, "scholarcloud") {
            sc_obs::emit(
                sc_obs::Event::new(
                    now.as_micros(),
                    sc_obs::Level::Info,
                    "scholarcloud",
                    "adaptive",
                    "rotate",
                )
                .field("from", format!("{from:?}"))
                .field("to", format!("{to:?}"))
                .field("evidence", fresh),
            );
        }
        // Breaker amnesty: the opens that drove this rotation were the
        // censor killing the *scheme*, not the remotes. Forgive every
        // live breaker so the very next attempt tries the rotated
        // scheme immediately instead of waiting out a cooldown against
        // an endpoint that was never actually sick.
        for idx in 0..self.pool.len() {
            if self.pool.entry(idx).retired {
                continue;
            }
            if let Some(t) = self.pool.forgive(idx) {
                self.emit_breaker(idx, t, ctx);
            }
        }
    }

    fn emit_elastic(
        &self,
        name: &'static str,
        addr: Addr,
        extra: &[(&'static str, String)],
        ctx: &Ctx<'_>,
    ) {
        if !sc_obs::is_enabled(sc_obs::Level::Info, "scholarcloud") {
            return;
        }
        let mut ev = sc_obs::Event::new(
            ctx.now().as_micros(),
            sc_obs::Level::Info,
            "scholarcloud",
            "elastic",
            name,
        )
        .field("instance", addr.to_string());
        for (k, v) in extra {
            ev = ev.field(*k, v.clone());
        }
        sc_obs::emit(ev);
    }

    /// Marks the instance behind pool entry `idx` as blacklisted, if it
    /// is an elastic one; the next autoscaler tick drains and replaces
    /// it.
    fn elastic_churn(&mut self, idx: usize, ctx: &mut Ctx<'_>) {
        let Some(handle) = self.elastic.clone() else { return };
        let addr = self.pool.entry(idx).addr.addr;
        if handle.with(|p| p.churn(addr)) {
            sc_obs::counter_add("scholarcloud.elastic_churns", 1);
            self.emit_elastic("churn", addr, &[], ctx);
        }
    }

    /// Notes the end of a stream on pool entry `idx` for elastic idle
    /// accounting (no-op for static remotes).
    fn elastic_stream_end(&mut self, idx: usize, now: SimTime) {
        if let Some(handle) = &self.elastic {
            let addr = self.pool.entry(idx).addr.addr;
            handle.with(|p| p.note_stream_end(addr, now));
        }
    }

    /// One autoscaler control-loop tick: feed the admission queue depth
    /// into the elastic pool, execute the actions it returns against
    /// the remote pool and the node lifecycle, and publish the cost and
    /// capacity telemetry.
    fn elastic_tick(&mut self, ctx: &mut Ctx<'_>) {
        let Some(handle) = self.elastic.clone() else { return };
        let now = ctx.now();
        let queue_depth = self.admission.queue_depth();
        // SLO burn-rate input: a latency or availability objective
        // actively burning budget is demand the queue cannot see yet, so
        // it surges capacity ahead of the backlog. Outside an SLO-guarded
        // run there is no engine and the signal is simply false.
        let burning = sc_obs::with_slo_engine(|e| e.any_fired()).unwrap_or(false);
        let actions = handle.with(|p| p.tick(now, queue_depth, burning, || ctx.rng().gen()));
        for act in actions {
            match act {
                ElasticAction::Provision { addr, cold_start } => {
                    sc_obs::counter_add("scholarcloud.elastic_provisions", 1);
                    self.emit_elastic(
                        "provision",
                        addr,
                        &[("cold_start_us", cold_start.as_micros().to_string())],
                        ctx,
                    );
                }
                ElasticAction::Warm { addr, cold_start } => {
                    // The instance's node comes up and its pool entry
                    // starts taking weighted dispatch.
                    ctx.node_power(addr, true);
                    let sock = SocketAddr::new(addr, REMOTE_PORT);
                    if self.pool.index_of(sock).is_none() {
                        self.pool.add_remote(sock);
                    }
                    sc_obs::observe("scholarcloud.elastic_cold_start_us", cold_start.as_micros());
                    self.emit_elastic(
                        "warm",
                        addr,
                        &[("cold_start_us", cold_start.as_micros().to_string())],
                        ctx,
                    );
                }
                ElasticAction::Drain { addr, reason } => {
                    if let Some(idx) = self.pool.index_of(SocketAddr::new(addr, REMOTE_PORT)) {
                        self.pool.retire(idx);
                    }
                    self.emit_elastic("drain", addr, &[("reason", reason.name().to_string())], ctx);
                }
                ElasticAction::Retire { addr } => {
                    // In-flight streams drained; the husk powers off.
                    ctx.node_power(addr, false);
                    sc_obs::counter_add("scholarcloud.elastic_retires", 1);
                    self.emit_elastic("retire", addr, &[], ctx);
                }
            }
        }
        let (warm, live, cost_inv, cost_eg, cost_warm, total) = handle.with(|p| {
            (
                p.warm_count(),
                p.live_count(),
                p.cost_invocation_micro(),
                p.cost_egress_micro(),
                p.cost_warm_micro(),
                p.total_cost_micro(),
            )
        });
        sc_obs::ts_record(now.as_micros(), "scholarcloud.elastic_instances", live as u64);
        if sc_obs::is_enabled(sc_obs::Level::Info, "scholarcloud") {
            sc_obs::emit(
                sc_obs::Event::new(
                    now.as_micros(),
                    sc_obs::Level::Info,
                    "scholarcloud",
                    "elastic",
                    "cost",
                )
                .field("warm", warm as u64)
                .field("live", live as u64)
                .field("invocation_micro", cost_inv)
                .field("egress_micro", cost_eg)
                .field("warm_micro", cost_warm)
                .field("total_micro", total),
            );
        }
        self.arm(ELASTIC_TICK, TimerPurpose::ElasticTick, ctx);
    }

    /// Fails a pending browser request with a distinct, visible status.
    fn fail_browser(&mut self, browser: TcpHandle, code: u16, reason: &str, ctx: &mut Ctx<'_>) {
        self.fail_gateway_waiters(browser, code, ctx);
        let (target, held_slot) = match self.pending.remove(&browser) {
            Some(pt) => {
                let now_us = ctx.now().as_micros();
                sc_obs::span_end(
                    now_us,
                    pt.admission_span,
                    vec![("verdict", sc_obs::Value::String(reason.to_string()))],
                );
                sc_obs::span_end(now_us, pt.wait_span, Vec::new());
                sc_obs::span_end(
                    now_us,
                    pt.establish_span,
                    vec![
                        ("ok", false.into()),
                        ("code", u64::from(code).into()),
                        ("reason", sc_obs::Value::String(reason.to_string())),
                    ],
                );
                (target_label(&pt.header), !pt.queued)
            }
            None => (String::new(), false),
        };
        ctx.tcp_send(browser, &HttpResponse::new(code, Vec::new()).encode());
        ctx.tcp_close(browser);
        self.browsers.insert(browser, BrowserConn::Dead);
        match code {
            503 => {
                self.fail_fast += 1;
                sc_obs::counter_add("scholarcloud.fail_fast", 1);
                sc_obs::ts_bump(ctx.now().as_micros(), "scholarcloud.fail_fast", 1);
            }
            _ => {
                self.tunnel_failures += 1;
                sc_obs::counter_add("scholarcloud.tunnel_failures", 1);
                sc_obs::ts_bump(ctx.now().as_micros(), "scholarcloud.tunnel_failures", 1);
            }
        }
        self.emit_resilience(
            sc_obs::Level::Warn,
            "tunnel_failed",
            &[
                ("code", code.to_string()),
                ("reason", reason.to_string()),
                ("target", target),
            ],
            ctx,
        );
        if held_slot {
            self.release_slot(browser, ctx);
        }
    }

    /// Runs a whitelisted request through the admission pipeline:
    /// admitted work starts its first attempt, saturated work queues,
    /// everything else is answered immediately with `429`/`503`.
    fn admit_request(
        &mut self,
        browser: TcpHandle,
        header: StreamHeader,
        initial_plain: Vec<u8>,
        is_connect: bool,
        tctx: sc_obs::TraceCtx,
        ctx: &mut Ctx<'_>,
    ) {
        let now = ctx.now();
        let client = self.client_of(browser);
        // Fleet-wide admission: under fleet-wide pressure the sickest
        // shard sheds first — PAC failover then re-spreads its clients
        // across healthier shards instead of every shard browning out
        // in lockstep. Engages only when this shard IS the sickest and
        // already has queued work of its own.
        self.publish_sickness();
        if let Some(f) = &self.fleet {
            if f.handle.total_queue_depth() >= FLEET_PRESSURE_QUEUE
                && f.handle.sickest() == f.self_idx
                && self.admission.queue_depth() > 0
            {
                self.count_cache("scholarcloud.fleet_shed", 1, ctx);
                self.emit_fleet(
                    sc_obs::Level::Warn,
                    "fleet_shed",
                    &[
                        ("queue_depth", self.admission.queue_depth().to_string()),
                        ("fleet_queue", f.handle.total_queue_depth().to_string()),
                    ],
                    ctx,
                );
                self.shed_browser(browser, 503, "fleet_shed", ctx);
                return;
            }
        }
        // The admission span covers arrival → verdict: for queued work
        // its duration is exactly the queue wait.
        let admission_span = sc_obs::span_start_ctx(
            now.as_micros(),
            sc_obs::Level::Debug,
            "scholarcloud",
            "admission",
            "admission",
            tctx,
            vec![("target", sc_obs::Value::String(target_label(&header)))],
        );
        let decision = self.admission.on_request(browser, client, now);
        match decision {
            Decision::Admit => {
                sc_obs::counter_add("scholarcloud.admitted", 1);
                sc_obs::span_end(
                    now.as_micros(),
                    admission_span,
                    vec![("verdict", "admit".into()), ("waited_us", 0u64.into())],
                );
                self.emit_admission(
                    sc_obs::Level::Debug,
                    "admit",
                    &[
                        ("target", target_label(&header)),
                        ("active", self.admission.active().to_string()),
                    ],
                    ctx,
                );
                self.start_tunnel(
                    browser,
                    header,
                    initial_plain,
                    is_connect,
                    false,
                    tctx,
                    sc_obs::SpanId::NONE,
                    ctx,
                );
            }
            Decision::Enqueue => {
                sc_obs::counter_add("scholarcloud.queued", 1);
                self.emit_admission(
                    sc_obs::Level::Debug,
                    "enqueue",
                    &[
                        ("target", target_label(&header)),
                        ("depth", self.admission.queue_depth().to_string()),
                    ],
                    ctx,
                );
                self.start_tunnel(
                    browser,
                    header,
                    initial_plain,
                    is_connect,
                    true,
                    tctx,
                    admission_span,
                    ctx,
                );
                self.sample_queue_depth(ctx);
                self.ensure_queue_tick(ctx);
            }
            _ => {
                let code = decision.status().expect("refusals carry a status");
                sc_obs::span_end(
                    now.as_micros(),
                    admission_span,
                    vec![
                        ("verdict", sc_obs::Value::String(decision.name().to_string())),
                        ("code", u64::from(code).into()),
                    ],
                );
                self.shed_browser(browser, code, decision.name(), ctx);
            }
        }
    }

    /// Registers a whitelisted request; unless still `queued`, starts
    /// its first attempt.
    #[allow(clippy::too_many_arguments)]
    fn start_tunnel(
        &mut self,
        browser: TcpHandle,
        header: StreamHeader,
        initial_plain: Vec<u8>,
        is_connect: bool,
        queued: bool,
        tctx: sc_obs::TraceCtx,
        admission_span: sc_obs::SpanId,
        ctx: &mut Ctx<'_>,
    ) {
        // Gateway conns keep their request parser: the conn outlives the
        // per-request fetch tracked in `gw_fetches`.
        if !self.gw_fetches.contains_key(&browser) {
            self.browsers.insert(browser, BrowserConn::Pending);
        }
        self.pending.insert(
            browser,
            PendingTunnel {
                header,
                initial_plain,
                attempts: 0,
                last_remote: None,
                is_connect,
                resumed: false,
                parked_since: None,
                inflight: false,
                retry_armed: false,
                queued,
                admitted_at: ctx.now(),
                tctx,
                admission_span,
                establish_span: sc_obs::SpanId::NONE,
                wait_span: sc_obs::SpanId::NONE,
            },
        );
        if !queued {
            self.try_attempt(browser, ctx);
        }
    }

    /// Starts (or parks) the next connect attempt for a pending request.
    /// Callers must ensure no attempt is currently in flight.
    fn try_attempt(&mut self, browser: TcpHandle, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let Some(pt) = self.pending.get_mut(&browser) else { return };
        debug_assert!(!pt.inflight, "attempt already outstanding");
        // The establish span opens with the first attempt and stays open
        // across retries/backoffs/parks until the tunnel is up or the
        // request fails.
        if pt.establish_span.is_none() {
            pt.establish_span = sc_obs::span_start_ctx(
                now.as_micros(),
                sc_obs::Level::Debug,
                "scholarcloud",
                "resilience",
                "establish",
                pt.tctx,
                vec![("target", sc_obs::Value::String(target_label(&pt.header)))],
            );
        }
        let exclude = if pt.attempts > 0 { pt.last_remote } else { None };
        let Some(idx) = self.pool.pick(now, exclude) else {
            // Every breaker refuses: park and wait for recovery (probes
            // drain us early), failing fast once the window elapses.
            let newly_parked = pt.parked_since.is_none();
            let since = *pt.parked_since.get_or_insert(now);
            let expired =
                now.saturating_since(since) >= self.config.resilience.queue_fail_after;
            let arm_recheck = !expired && !pt.retry_armed;
            if arm_recheck {
                pt.retry_armed = true;
            }
            let target = target_label(&pt.header);
            if newly_parked {
                pt.wait_span = sc_obs::span_start_ctx(
                    now.as_micros(),
                    sc_obs::Level::Debug,
                    "scholarcloud",
                    "resilience",
                    "park",
                    pt.tctx.with_parent(pt.establish_span),
                    Vec::new(),
                );
                sc_obs::counter_add("scholarcloud.parked", 1);
                self.emit_resilience(
                    sc_obs::Level::Warn,
                    "parked",
                    &[("target", target)],
                    ctx,
                );
                // The parked set is bounded by the admission queue
                // limit: an all-remotes-dark flash crowd must not park
                // unboundedly. Overflow sheds the oldest parked
                // requests (FIFO by park time, handle id as the
                // deterministic tie-break).
                let cap = self.admission.queue_len().max(1);
                let mut parked: Vec<(SimTime, usize)> = self
                    .pending
                    .iter()
                    .filter_map(|(&b, p)| p.parked_since.map(|s| (s, b.0)))
                    .collect();
                if parked.len() > cap {
                    parked.sort();
                    let overflow: Vec<usize> =
                        parked.iter().take(parked.len() - cap).map(|&(_, b)| b).collect();
                    for b in overflow {
                        self.fail_browser(TcpHandle(b), 503, "parked_overflow", ctx);
                    }
                    // A same-instant park burst can shed this very
                    // request; it has already been answered then.
                    if !self.pending.contains_key(&browser) {
                        return;
                    }
                }
            }
            if expired {
                self.fail_browser(browser, 503, "all_remotes_dark", ctx);
            } else if arm_recheck {
                self.arm(PARK_RECHECK, TimerPurpose::Retry(browser), ctx);
            }
            return;
        };

        let prev = pt.last_remote;
        pt.last_remote = Some(idx);
        pt.attempts += 1;
        pt.parked_since = None;
        pt.inflight = true;
        let attempt = pt.attempts;
        // Any backoff/park wait ends the moment an attempt starts.
        let ws = std::mem::replace(&mut pt.wait_span, sc_obs::SpanId::NONE);
        sc_obs::span_end(now.as_micros(), ws, Vec::new());
        let attempt_span = sc_obs::span_start_ctx(
            now.as_micros(),
            sc_obs::Level::Debug,
            "scholarcloud",
            "resilience",
            "attempt",
            pt.tctx.with_parent(pt.establish_span),
            vec![
                ("remote", sc_obs::Value::String(self.pool.entry(idx).addr.to_string())),
                ("attempt", u64::from(attempt).into()),
            ],
        );
        let mut header = pt.header.clone();
        // The stream header carries this attempt's span as the remote
        // side's parent, so the relay span stitches under the attempt
        // that actually carried the traffic.
        header.parent = attempt_span.0;
        let initial_plain = pt.initial_plain.clone();

        if let Some(p) = prev {
            if p != idx {
                self.failovers += 1;
                sc_obs::counter_add("scholarcloud.failovers", 1);
                sc_obs::ts_bump(now.as_micros(), "scholarcloud.failovers", 1);
                self.emit_resilience(
                    sc_obs::Level::Info,
                    "failover",
                    &[
                        ("from", self.pool.entry(p).addr.to_string()),
                        ("to", self.pool.entry(idx).addr.to_string()),
                        ("attempt", attempt.to_string()),
                    ],
                    ctx,
                );
            }
        }

        // Fresh preamble + codecs per attempt: the remote treats every
        // TCP connection as a new session.
        let scheme = self.config.scheme.get();
        let nonce: u64 = ctx.rng().gen();
        let hello = Hello { scheme, nonce, generation: self.config.scheme.generation() };
        let encrypt = !header.is_tls;
        let mut tx = StreamCodec::new(&self.config.secret, &hello, encrypt, 0);
        let rx = StreamCodec::new(&self.config.secret, &hello, encrypt, 1);
        let mut pending_wire = hello.encode(&self.config.secret, &self.config.front_host);
        let mut head = header.encode();
        tx.encode(&mut head);
        pending_wire.extend_from_slice(&head);
        if !initial_plain.is_empty() {
            let mut body = initial_plain;
            tx.encode(&mut body);
            pending_wire.extend_from_slice(&body);
        }
        let addr = self.pool.entry(idx).addr;
        // Every connection to an elastic instance is one billable
        // invocation (the cloud function spins per connection).
        if let Some(handle) = &self.elastic {
            if handle.with(|p| p.note_stream_start(addr.addr)) {
                sc_obs::counter_add("scholarcloud.elastic_invocations", 1);
            }
        }
        let remote = ctx.tcp_connect(addr);
        self.remotes.insert(
            remote,
            RemoteConn {
                browser,
                remote_idx: idx,
                started: now,
                connected: false,
                pending: pending_wire,
                tx,
                rx,
                up_bytes: 0,
                down_bytes: 0,
                attempt_span,
                stream_span: sc_obs::SpanId::NONE,
                replay: None,
            },
        );
        self.arm(
            self.config.resilience.connect_timeout,
            TimerPurpose::ConnectDeadline(remote),
            ctx,
        );
        sc_obs::counter_add("scholarcloud.connect_attempts", 1);
    }

    /// Rebuilds a pending request from an established tunnel's replay
    /// buffer after a recoverable mid-stream death and starts the next
    /// attempt immediately. The browser keeps its admission slot and
    /// notices nothing: no downstream byte was ever delivered, and the
    /// rebuilt tunnel replays every plaintext byte the browser sent.
    fn resume_tunnel(
        &mut self,
        browser: TcpHandle,
        last_remote: usize,
        rep: StreamReplay,
        ctx: &mut Ctx<'_>,
    ) {
        let now = ctx.now();
        sc_obs::counter_add("scholarcloud.stream_resumes", 1);
        if sc_obs::is_enabled(sc_obs::Level::Info, "scholarcloud") {
            sc_obs::emit(
                sc_obs::Event::new(
                    now.as_micros(),
                    sc_obs::Level::Info,
                    "scholarcloud",
                    "domestic",
                    "stream_resume",
                )
                .field("target", target_label(&rep.header))
                .field("buffered", rep.sent_plain.len() as u64)
                .field("attempt", u64::from(rep.attempts)),
            );
        }
        let establish_span = sc_obs::span_start_ctx(
            now.as_micros(),
            sc_obs::Level::Debug,
            "scholarcloud",
            "resilience",
            "establish",
            rep.tctx,
            vec![
                ("target", sc_obs::Value::String(target_label(&rep.header))),
                ("resumed", true.into()),
            ],
        );
        self.browsers.insert(browser, BrowserConn::Pending);
        self.pending.insert(
            browser,
            PendingTunnel {
                header: rep.header,
                initial_plain: rep.sent_plain,
                attempts: rep.attempts,
                last_remote: Some(last_remote),
                is_connect: rep.is_connect,
                resumed: true,
                parked_since: None,
                inflight: false,
                retry_armed: false,
                queued: false,
                admitted_at: now,
                tctx: rep.tctx,
                admission_span: sc_obs::SpanId::NONE,
                establish_span,
                wait_span: sc_obs::SpanId::NONE,
            },
        );
        self.try_attempt(browser, ctx);
    }

    /// A tunnel connect attempt died before establishment: record the
    /// failure and schedule a retry (or give up with 502).
    fn attempt_failed(&mut self, remote_h: TcpHandle, reason: &'static str, ctx: &mut Ctx<'_>) {
        let Some(conn) = self.remotes.remove(&remote_h) else { return };
        self.elastic_stream_end(conn.remote_idx, ctx.now());
        let browser = conn.browser;
        sc_obs::span_end(
            ctx.now().as_micros(),
            conn.attempt_span,
            vec![("ok", false.into()), ("reason", reason.into())],
        );
        self.record_remote_failure(conn.remote_idx, ctx);
        let (exhausted, attempts) = match self.pending.get_mut(&browser) {
            Some(pt) => {
                pt.inflight = false;
                (pt.attempts >= self.config.resilience.max_attempts, pt.attempts)
            }
            // Browser gave up (or was refused) while we were connecting.
            None => return,
        };
        if exhausted {
            self.fail_browser(browser, 502, reason, ctx);
            return;
        }
        // The global retry budget caps brownout amplification: without
        // a token this request fails now instead of retrying.
        if !self.admission.retry_budget.try_retry() {
            sc_obs::counter_add("scholarcloud.retry_denied", 1);
            self.emit_admission(
                sc_obs::Level::Warn,
                "retry_denied",
                &[
                    ("reason", reason.to_string()),
                    ("attempt", attempts.to_string()),
                ],
                ctx,
            );
            self.fail_browser(browser, 502, "retry_budget_exhausted", ctx);
            return;
        }
        let draw: f64 = ctx.rng().gen();
        let delay = self.config.resilience.backoff.delay(attempts - 1, draw);
        if let Some(pt) = self.pending.get_mut(&browser) {
            pt.retry_armed = true;
            pt.wait_span = sc_obs::span_start_ctx(
                ctx.now().as_micros(),
                sc_obs::Level::Debug,
                "scholarcloud",
                "resilience",
                "backoff",
                pt.tctx.with_parent(pt.establish_span),
                vec![("delay_us", delay.as_micros().into())],
            );
        }
        self.retries += 1;
        sc_obs::counter_add("scholarcloud.retries", 1);
        self.emit_resilience(
            sc_obs::Level::Info,
            "retry",
            &[
                ("reason", reason.to_string()),
                ("attempt", attempts.to_string()),
                ("delay_us", delay.as_micros().to_string()),
            ],
            ctx,
        );
        self.arm(delay, TimerPurpose::Retry(browser), ctx);
    }

    /// A probe (or trial) just proved a remote healthy: retry every
    /// parked request immediately instead of waiting for its re-check.
    fn drain_parked(&mut self, ctx: &mut Ctx<'_>) {
        let parked: Vec<TcpHandle> = self
            .pending
            .iter()
            .filter(|(_, pt)| pt.parked_since.is_some() && !pt.inflight)
            .map(|(&b, _)| b)
            .collect();
        for browser in parked {
            self.try_attempt(browser, ctx);
        }
    }

    /// Launches one probe round (unproven or unhealthy remotes only) and
    /// re-arms the next tick.
    fn probe_round(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        // Probe sightings accrue on the remote side between our own
        // failure events; re-evaluate rotation on the same cadence as
        // health probing so they are picked up without a dedicated timer.
        self.maybe_rotate(ctx);
        for idx in 0..self.pool.len() {
            let e = self.pool.entry(idx);
            // Retired entries (drained elastic instances) are gone for
            // good — probing them would just re-open their breakers.
            if e.retired {
                continue;
            }
            let needs_probe = e.health.rtt_ewma.is_none()
                || e.health.consecutive_failures > 0
                || e.breaker.state() != BreakerState::Closed;
            // Probes that already succeeded (`done`) are only waiting for
            // their close handshake; they must not suppress a fresh probe
            // of a remote that may have gone dark since.
            let already_probing =
                self.probes.values().any(|p| p.remote_idx == idx && !p.done);
            if !needs_probe || already_probing {
                continue;
            }
            let addr = e.addr;
            let h = ctx.tcp_connect(addr);
            self.probes.insert(h, Probe { remote_idx: idx, started: now, done: false });
            self.arm(
                self.config.resilience.connect_timeout,
                TimerPurpose::ProbeDeadline(h),
                ctx,
            );
            sc_obs::counter_add("scholarcloud.probes", 1);
        }
        self.arm(self.config.resilience.probe_interval, TimerPurpose::ProbeTick, ctx);
    }

    fn on_timer(&mut self, purpose: TimerPurpose, ctx: &mut Ctx<'_>) {
        match purpose {
            TimerPurpose::ProbeTick => self.probe_round(ctx),
            TimerPurpose::ConnectDeadline(rh) => {
                let live = matches!(self.remotes.get(&rh), Some(c) if !c.connected);
                if live {
                    ctx.tcp_abort(rh);
                    sc_obs::counter_add("scholarcloud.connect_timeouts", 1);
                    self.attempt_failed(rh, "connect_timeout", ctx);
                }
            }
            TimerPurpose::ProbeDeadline(ph) => {
                let live = matches!(self.probes.get(&ph), Some(p) if !p.done);
                if live {
                    ctx.tcp_abort(ph);
                    let p = self.probes.remove(&ph).expect("checked");
                    sc_obs::counter_add("scholarcloud.probe_timeouts", 1);
                    self.record_remote_failure(p.remote_idx, ctx);
                }
            }
            TimerPurpose::Retry(browser) => {
                let ready = match self.pending.get_mut(&browser) {
                    Some(pt) => {
                        pt.retry_armed = false;
                        !pt.inflight && !pt.queued
                    }
                    None => false,
                };
                if ready {
                    self.try_attempt(browser, ctx);
                }
            }
            TimerPurpose::QueueTick => {
                self.queue_tick_armed = false;
                self.drain_queue(ctx);
                self.ensure_queue_tick(ctx);
            }
            TimerPurpose::ElasticTick => self.elastic_tick(ctx),
            TimerPurpose::PeerDeadline(ph) => {
                let state = self.peer_fetches.get(&ph).map(|p| (p.connected, p.done));
                if let Some((connected, false)) = state {
                    ctx.tcp_abort(ph);
                    sc_obs::counter_add("scholarcloud.peer_timeouts", 1);
                    let reason = if connected {
                        "peer_response_timeout"
                    } else {
                        "peer_connect_timeout"
                    };
                    self.peer_fetch_failed(ph, reason, ctx);
                }
            }
        }
    }

    fn on_probe_event(&mut self, h: TcpHandle, tcp_ev: TcpEvent, ctx: &mut Ctx<'_>) {
        match tcp_ev {
            TcpEvent::Connected => {
                let (idx, rtt) = {
                    let p = self.probes.get_mut(&h).expect("caller checked");
                    p.done = true;
                    (p.remote_idx, ctx.now().saturating_since(p.started))
                };
                ctx.tcp_close(h);
                sc_obs::observe("scholarcloud.probe_rtt_us", rtt.as_micros());
                self.record_remote_success(idx, rtt, ctx);
                self.drain_parked(ctx);
            }
            TcpEvent::ConnectFailed | TcpEvent::Reset | TcpEvent::PeerClosed => {
                let p = self.probes.remove(&h).expect("caller checked");
                if !p.done {
                    self.record_remote_failure(p.remote_idx, ctx);
                }
            }
            _ => {}
        }
    }

    /// One parsed request on a gateway-mode browser conn: resolve the
    /// target (absolute-form, or origin-form via the Host header — the
    /// browser's RTT probes arrive that way), enforce the whitelist, and
    /// serve from the shared cache, an in-flight coalesced fetch, or
    /// upstream.
    fn gateway_request(&mut self, browser: TcpHandle, req: HttpRequest, ctx: &mut Ctx<'_>) {
        let (host, port, path) = if let Some(rest) = req.target.strip_prefix("http://") {
            let (hostport, path) = match rest.find('/') {
                Some(i) => (&rest[..i], &rest[i..]),
                None => (rest, "/"),
            };
            let (host, port) = match hostport.rsplit_once(':') {
                Some((h, p)) => (h, p.parse().unwrap_or(80)),
                None => (hostport, 80),
            };
            (host.to_string(), port, path.to_string())
        } else if req.target.starts_with('/') {
            match req.host() {
                Some(h) => (h.to_string(), 80, req.target.clone()),
                None => {
                    ctx.tcp_send(browser, &HttpResponse::new(400, Vec::new()).encode());
                    return;
                }
            }
        } else {
            ctx.tcp_send(browser, &HttpResponse::new(400, Vec::new()).encode());
            return;
        };
        if !self.config.whitelisted(&host) {
            self.refused += 1;
            self.trace_refusal(&host, ctx);
            ctx.tcp_send(browser, &HttpResponse::new(403, Vec::new()).encode());
            ctx.tcp_close(browser);
            self.browsers.insert(browser, BrowserConn::Dead);
            return;
        }
        let now = ctx.now();
        // Trace context arrives on the request itself; the proxy's
        // cache/admission/resilience spans all parent into it.
        let tctx = req
            .header_value(sc_obs::TRACE_HEADER)
            .and_then(sc_obs::TraceCtx::parse)
            .unwrap_or(sc_obs::TraceCtx::NONE);
        let key: CacheKey = (host.clone(), path.clone());
        match req.header_value("If-None-Match") {
            Some(inm) => {
                self.gw_inm.insert(browser, inm.to_string());
            }
            None => {
                self.gw_inm.remove(&browser);
            }
        }
        let cacheable = req.method == "GET" && self.config.cache.borrow().enabled();
        // An intra-fleet peering hop announces itself with the
        // loop-guard header: the owner answers locally (cache,
        // coalesced flight, or its own upstream fetch) and never
        // re-forwards — one hop, by construction.
        let peer_hop = req
            .header_value(FLEET_HEADER)
            .and_then(|v| v.parse::<usize>().ok());
        if let Some(from) = peer_hop {
            self.config.cache.borrow_mut().note_peer_serve();
            self.count_cache("scholarcloud.peer_serves", 1, ctx);
            self.emit_fleet(
                sc_obs::Level::Debug,
                "peer_serve",
                &[("from", from.to_string()), ("path", path.clone())],
                ctx,
            );
        }

        // Upstream leg is origin-form.
        let mut origin_req = req;
        origin_req.target = path;
        origin_req.headers.retain(|(n, _)| !n.eq_ignore_ascii_case(FLEET_HEADER));

        if !cacheable {
            // Non-GET (the HEAD RTT probe) or cache disabled: a plain
            // uncoalesced pass-through fetch.
            self.gateway_fetch(browser, port, key, origin_req, false, false, tctx, ctx);
            return;
        }
        // The client's validator is answered from the cache, not
        // forwarded: the shared cache needs the full body for its other
        // readers, so only *its own* validator may go upstream.
        origin_req.headers.retain(|(n, _)| !n.eq_ignore_ascii_case("If-None-Match"));

        enum Plan {
            Hit(CachedResponse),
            Fetch { stored_etag: Option<String> },
        }
        let plan = {
            let _prof = sc_obs::prof::scope(sc_obs::prof::Subsystem::Cache);
            let mut cache = self.config.cache.borrow_mut();
            match cache.lookup(&key, now) {
                Lookup::Fresh(r) => {
                    let r = r.clone();
                    cache.note_hit(r.body.len());
                    Plan::Hit(r)
                }
                Lookup::Stale(_) => Plan::Fetch {
                    stored_etag: cache.etag_of(&key).filter(|e| !e.is_empty()).map(str::to_string),
                },
                Lookup::Miss => Plan::Fetch { stored_etag: None },
            }
        };
        // An instant "cache_lookup" span records the verdict in the
        // trace tree (and marks the request as having reached the cache
        // tier even when it never goes upstream).
        let verdict = match &plan {
            Plan::Hit(_) => "hit",
            Plan::Fetch { stored_etag: Some(_) } => "stale",
            Plan::Fetch { stored_etag: None } => "miss",
        };
        let lookup_span = sc_obs::span_start_ctx(
            now.as_micros(),
            sc_obs::Level::Debug,
            "scholarcloud",
            "cache",
            "cache_lookup",
            tctx,
            vec![("verdict", verdict.into())],
        );
        sc_obs::span_end(now.as_micros(), lookup_span, Vec::new());
        match plan {
            Plan::Hit(r) => {
                self.count_cache("scholarcloud.cache_hits", 1, ctx);
                self.count_cache("scholarcloud.cache_bytes_saved", r.body.len() as u64, ctx);
                self.emit_cache("hit", &key, ctx);
                self.serve_from_cache(browser, &r, ctx);
            }
            Plan::Fetch { stored_etag } => match self.singleflight.begin(&key, browser) {
                Role::Waiter => {
                    // No admission slot, no tunnel: park on the leader's
                    // in-flight fetch.
                    let wait_span = sc_obs::span_start_ctx(
                        now.as_micros(),
                        sc_obs::Level::Debug,
                        "scholarcloud",
                        "cache",
                        "coalesce_wait",
                        tctx,
                        vec![("path", sc_obs::Value::String(key.1.clone()))],
                    );
                    self.gw_waits.insert(browser, (key.clone(), wait_span, tctx));
                    self.config.cache.borrow_mut().note_coalesced();
                    self.count_cache("scholarcloud.cache_coalesced", 1, ctx);
                    self.emit_cache("coalesced", &key, ctx);
                }
                Role::Leader => {
                    let revalidating = stored_etag.is_some();
                    // A non-owner's miss takes one intra-fleet hop to
                    // the key's owner (whose singleflight coalesces the
                    // whole fleet's demand) instead of a cross-border
                    // fetch — unless this request already IS such a hop.
                    if peer_hop.is_none() {
                        if let Some(owner) = self.peer_owner_of(&key, now) {
                            self.start_peer_fetch(
                                browser,
                                owner,
                                port,
                                key,
                                origin_req,
                                stored_etag,
                                tctx,
                                ctx,
                            );
                            return;
                        }
                    }
                    let origin_req = match stored_etag {
                        Some(etag) => origin_req.header("If-None-Match", &etag),
                        None => origin_req,
                    };
                    self.gateway_fetch(
                        browser,
                        port,
                        key,
                        origin_req,
                        true,
                        revalidating,
                        tctx,
                        ctx,
                    );
                }
            },
        }
    }

    /// The peer shard owning `key` right now, or `None` when the hop
    /// should not happen: no fleet, a one-member fleet, or this shard
    /// owns the key itself (possibly by inheritance from a dead peer).
    fn peer_owner_of(&self, key: &CacheKey, now: SimTime) -> Option<usize> {
        let f = self.fleet.as_ref()?;
        if f.handle.len() < 2 {
            return None;
        }
        let owner = f.owner_for(key, now);
        (owner != f.self_idx).then_some(owner)
    }

    /// Launches an intra-fleet peering hop: one absolute-form GET to
    /// the key's owner shard, marked with the loop-guard header and
    /// carrying *our* stored validator (the owner's `304` renews our
    /// entry). The fetch bookkeeping is registered under the leader as
    /// usual so waiters coalesce locally too; a failed hop dead-marks
    /// the peer and falls back to a normal upstream fetch.
    #[allow(clippy::too_many_arguments)]
    fn start_peer_fetch(
        &mut self,
        leader: TcpHandle,
        owner: usize,
        port: u16,
        key: CacheKey,
        request: HttpRequest,
        stored_etag: Option<String>,
        tctx: sc_obs::TraceCtx,
        ctx: &mut Ctx<'_>,
    ) {
        let now = ctx.now();
        let (self_idx, addr) = {
            let f = self.fleet.as_ref().expect("caller checked");
            (f.self_idx, f.handle.member_addr(owner))
        };
        let revalidating = stored_etag.is_some();
        self.config.cache.borrow_mut().note_peer_fetch();
        self.count_cache("scholarcloud.peer_fetches", 1, ctx);
        self.emit_fleet(
            sc_obs::Level::Debug,
            "peer_fetch",
            &[
                ("owner", owner.to_string()),
                ("host", key.0.clone()),
                ("path", key.1.clone()),
            ],
            ctx,
        );
        let span = sc_obs::span_start_ctx(
            now.as_micros(),
            sc_obs::Level::Debug,
            "scholarcloud",
            "fleet",
            "peer_fetch",
            tctx,
            vec![("owner", (owner as u64).into())],
        );
        let target = if port == 80 {
            format!("http://{}{}", key.0, key.1)
        } else {
            format!("http://{}:{}{}", key.0, port, key.1)
        };
        let mut hop = HttpRequest::get(&key.0, &target)
            .header(FLEET_HEADER, &self_idx.to_string())
            .header(sc_obs::TRACE_HEADER, &tctx.with_parent(span).header_value());
        if let Some(etag) = &stored_etag {
            hop = hop.header("If-None-Match", etag);
        }
        self.gw_fetches.insert(
            leader,
            GatewayFetch {
                key,
                port,
                request,
                cacheable: true,
                revalidating,
                parser: HttpParser::new(),
            },
        );
        let h = ctx.tcp_connect(addr);
        self.peer_fetches.insert(
            h,
            PeerFetch {
                leader,
                owner,
                wire: hop.encode(),
                connected: false,
                done: false,
                parser: HttpParser::new(),
                span,
                tctx,
            },
        );
        // One deadline covers the whole hop (connect + response): a
        // crashed or wedged owner must cost one bounded wait, then the
        // fallback goes upstream.
        self.arm(
            self.config.resilience.connect_timeout.saturating_mul(2),
            TimerPurpose::PeerDeadline(h),
            ctx,
        );
    }

    /// The owner shard answered an intra-fleet hop. A `200`/`304`
    /// settles exactly like an upstream response (the `200` body is
    /// stored locally too — a deliberate hot-key replica, so repeat
    /// traffic at this shard stops paying the hop); no admission slot
    /// was held, so nothing is released. Anything else means the owner
    /// is alive but refusing (shedding under fleet pressure): not a
    /// liveness failure — no dead-mark, fall back upstream.
    fn peer_fetch_done(&mut self, h: TcpHandle, resp: HttpResponse, ctx: &mut Ctx<'_>) {
        let now_us = ctx.now().as_micros();
        let ok = resp.status == 200 || resp.status == 304;
        let (leader, owner, span, tctx) = {
            let pf = self.peer_fetches.get_mut(&h).expect("caller checked");
            pf.done = true;
            (
                pf.leader,
                pf.owner,
                std::mem::replace(&mut pf.span, sc_obs::SpanId::NONE),
                pf.tctx,
            )
        };
        ctx.tcp_close(h);
        sc_obs::span_end(
            now_us,
            span,
            vec![("ok", ok.into()), ("status", u64::from(resp.status).into())],
        );
        if !ok {
            self.count_cache("scholarcloud.peer_refusals", 1, ctx);
            self.emit_fleet(
                sc_obs::Level::Info,
                "peer_refused",
                &[
                    ("owner", owner.to_string()),
                    ("status", resp.status.to_string()),
                ],
                ctx,
            );
            self.peer_fallback_upstream(leader, tctx, ctx);
            return;
        }
        let was_dead = self.fleet.as_mut().map_or(false, |f| f.mark_peer_up(owner));
        if was_dead {
            self.count_cache("scholarcloud.peer_recoveries", 1, ctx);
            self.emit_fleet(
                sc_obs::Level::Info,
                "peer_up",
                &[("peer", owner.to_string())],
                ctx,
            );
        }
        let Some(fetch) = self.gw_fetches.remove(&leader) else { return };
        self.settle_fetch(leader, fetch, resp, true, ctx);
    }

    /// An intra-fleet hop died (connect failure, deadline, reset):
    /// dead-mark the owner with exponential re-probe backoff — misses
    /// on its keyspace re-route to each key's next-highest scorer until
    /// the backoff elapses — and fall back upstream for this request.
    fn peer_fetch_failed(&mut self, h: TcpHandle, reason: &'static str, ctx: &mut Ctx<'_>) {
        let Some(pf) = self.peer_fetches.remove(&h) else { return };
        if pf.done {
            return;
        }
        let now = ctx.now();
        sc_obs::span_end(
            now.as_micros(),
            pf.span,
            vec![("ok", false.into()), ("reason", reason.into())],
        );
        let backoff = self.fleet.as_mut().map(|f| f.mark_peer_dead(pf.owner, now));
        self.count_cache("scholarcloud.peer_dead_marks", 1, ctx);
        self.emit_fleet(
            sc_obs::Level::Warn,
            "peer_dead",
            &[
                ("peer", pf.owner.to_string()),
                ("reason", reason.to_string()),
                ("backoff_us", backoff.map_or(0, |b| b.as_micros()).to_string()),
            ],
            ctx,
        );
        self.peer_fallback_upstream(pf.leader, pf.tctx, ctx);
    }

    /// Replays a failed hop's request through the normal upstream
    /// machinery. One hop max: even if another peer now owns the key,
    /// the fallback goes straight upstream — bounded worst-case
    /// latency per request, by construction.
    fn peer_fallback_upstream(
        &mut self,
        leader: TcpHandle,
        tctx: sc_obs::TraceCtx,
        ctx: &mut Ctx<'_>,
    ) {
        // The browser may have vanished while the hop was in flight.
        let Some(fetch) = self.gw_fetches.remove(&leader) else { return };
        let request = match self.config.cache.borrow().etag_of(&fetch.key) {
            Some(etag) if fetch.revalidating && !etag.is_empty() => {
                fetch.request.header("If-None-Match", etag)
            }
            _ => fetch.request,
        };
        self.gateway_fetch(
            leader,
            fetch.port,
            fetch.key,
            request,
            true,
            fetch.revalidating,
            tctx,
            ctx,
        );
    }

    fn on_peer_event(&mut self, h: TcpHandle, tcp_ev: TcpEvent, ctx: &mut Ctx<'_>) {
        match tcp_ev {
            TcpEvent::Connected => {
                let pf = self.peer_fetches.get_mut(&h).expect("caller checked");
                pf.connected = true;
                let wire = std::mem::take(&mut pf.wire);
                ctx.tcp_send(h, &wire);
            }
            TcpEvent::DataReceived => {
                let data = ctx.tcp_recv_all(h);
                enum Outcome {
                    Ignore,
                    Bad,
                    Response(HttpResponse),
                }
                let outcome = {
                    let pf = self.peer_fetches.get_mut(&h).expect("caller checked");
                    if pf.done {
                        Outcome::Ignore
                    } else {
                        match pf.parser.push(&data) {
                            Err(_) => Outcome::Bad,
                            Ok(msgs) => msgs
                                .into_iter()
                                .find_map(|m| match m {
                                    HttpMessage::Response(r) => Some(r),
                                    _ => None,
                                })
                                .map_or(Outcome::Ignore, Outcome::Response),
                        }
                    }
                };
                match outcome {
                    Outcome::Ignore => {}
                    Outcome::Bad => {
                        ctx.tcp_abort(h);
                        self.peer_fetch_failed(h, "bad_peer_response", ctx);
                    }
                    Outcome::Response(resp) => self.peer_fetch_done(h, resp, ctx),
                }
            }
            TcpEvent::ConnectFailed | TcpEvent::Reset | TcpEvent::PeerClosed => {
                let done = self.peer_fetches.get(&h).map_or(true, |p| p.done);
                if done {
                    // Settled hop: just drain the close handshake.
                    self.peer_fetches.remove(&h);
                } else {
                    let reason = match tcp_ev {
                        TcpEvent::ConnectFailed => "peer_connect_failed",
                        TcpEvent::Reset => "peer_reset",
                        _ => "peer_closed",
                    };
                    self.peer_fetch_failed(h, reason, ctx);
                }
            }
            _ => {}
        }
    }

    /// Launches a gateway request's upstream fetch through the normal
    /// admission + tunnel machinery (one tunnel per fetch).
    #[allow(clippy::too_many_arguments)]
    fn gateway_fetch(
        &mut self,
        browser: TcpHandle,
        port: u16,
        key: CacheKey,
        request: HttpRequest,
        cacheable: bool,
        revalidating: bool,
        tctx: sc_obs::TraceCtx,
        ctx: &mut Ctx<'_>,
    ) {
        let now = ctx.now();
        if cacheable {
            self.config.cache.borrow_mut().note_upstream_fetch(&key, now);
            if !revalidating {
                self.config.cache.borrow_mut().note_miss();
                self.count_cache("scholarcloud.cache_misses", 1, ctx);
                self.emit_cache("miss", &key, ctx);
            }
        }
        let header = StreamHeader {
            is_tls: false,
            trace: tctx.trace.0,
            parent: 0,
            target: TargetAddr::Domain(key.0.clone(), port),
        };
        let wire = request.encode();
        self.gw_fetches.insert(
            browser,
            GatewayFetch { key, port, request, cacheable, revalidating, parser: HttpParser::new() },
        );
        self.admit_request(browser, header, wire, false, tctx, ctx);
    }

    /// A gateway upstream fetch completed: update the cache, answer the
    /// leader and every coalesced waiter, and tear the tunnel down.
    fn gateway_fetch_done(
        &mut self,
        remote_h: TcpHandle,
        leader: TcpHandle,
        resp: HttpResponse,
        ctx: &mut Ctx<'_>,
    ) {
        let Some(fetch) = self.gw_fetches.remove(&leader) else { return };
        // One fetch per tunnel: close the upstream leg and free the slot.
        ctx.tcp_close(remote_h);
        if let Some(conn) = self.remotes.remove(&remote_h) {
            self.elastic_stream_end(conn.remote_idx, ctx.now());
            sc_obs::observe("scholarcloud.stream_bytes_up", conn.up_bytes);
            sc_obs::observe("scholarcloud.stream_bytes_down", conn.down_bytes);
            sc_obs::span_end(
                ctx.now().as_micros(),
                conn.stream_span,
                vec![("ok", true.into()), ("bytes_down", conn.down_bytes.into())],
            );
        }
        self.settle_fetch(leader, fetch, resp, false, ctx);
        self.release_slot(leader, ctx);
    }

    /// Settles a completed fetch: update the cache, answer the leader
    /// and every coalesced waiter. Shared between the upstream path
    /// (which then releases its admission slot) and the intra-fleet
    /// peering path (which held none). `via_peer` bodies came from a
    /// peer's cache over the LAN, so a changed representation there is
    /// not a local miss.
    fn settle_fetch(
        &mut self,
        leader: TcpHandle,
        fetch: GatewayFetch,
        resp: HttpResponse,
        via_peer: bool,
        ctx: &mut Ctx<'_>,
    ) {
        let now = ctx.now();
        let cache_prof = sc_obs::prof::scope(sc_obs::prof::Subsystem::Cache);
        let served: Option<CachedResponse> = if !fetch.cacheable {
            None
        } else if resp.status == 304 && fetch.revalidating {
            // Our validator held: a cheap bodyless exchange renewed the
            // entry for everyone.
            let renewed = {
                let mut cache = self.config.cache.borrow_mut();
                let ttl = cache.ttl_for(&fetch.key.0, resp.max_age_secs());
                cache.revalidate(&fetch.key, ttl, now, resp.header_value("ETag")).cloned()
            };
            if let Some(r) = &renewed {
                self.config.cache.borrow_mut().note_bytes_saved(r.body.len());
                self.count_cache("scholarcloud.cache_revalidated", 1, ctx);
                self.count_cache("scholarcloud.cache_bytes_saved", r.body.len() as u64, ctx);
                self.emit_cache("revalidated", &fetch.key, ctx);
            }
            renewed
        } else if resp.status == 200 {
            let entry = CachedResponse {
                status: 200,
                content_type: resp
                    .header_value("Content-Type")
                    .unwrap_or("application/octet-stream")
                    .to_string(),
                etag: resp.header_value("ETag").unwrap_or_default().to_string(),
                max_age: resp.max_age_secs(),
                body: resp.body.clone(),
            };
            let evicted = {
                let mut cache = self.config.cache.borrow_mut();
                let ttl = cache.ttl_for(&fetch.key.0, entry.max_age);
                if fetch.revalidating && !via_peer {
                    // The representation changed upstream: the stale
                    // entry did not help after all.
                    cache.note_miss();
                }
                cache.insert(fetch.key.clone(), entry.clone(), ttl, now).evicted
            };
            if fetch.revalidating && !via_peer {
                self.count_cache("scholarcloud.cache_misses", 1, ctx);
                self.emit_cache("miss", &fetch.key, ctx);
            }
            for victim in &evicted {
                self.count_cache("scholarcloud.cache_evicted", 1, ctx);
                self.emit_cache("evicted", victim, ctx);
            }
            Some(entry)
        } else {
            None
        };
        drop(cache_prof);
        match served {
            Some(entry) => {
                self.serve_from_cache(leader, &entry, ctx);
                if let Some(flight) = self.singleflight.complete(&fetch.key) {
                    for w in flight.waiters {
                        if let Some((_, ws, _)) = self.gw_waits.remove(&w) {
                            sc_obs::span_end(now.as_micros(), ws, vec![("ok", true.into())]);
                        }
                        self.config.cache.borrow_mut().note_bytes_saved(entry.body.len());
                        self.count_cache(
                            "scholarcloud.cache_bytes_saved",
                            entry.body.len() as u64,
                            ctx,
                        );
                        self.serve_from_cache(w, &entry, ctx);
                    }
                }
            }
            None => {
                // Pass-through (non-GET, cache off, or an uncacheable
                // status): every coalesced requester gets the same
                // answer.
                let wire = resp.encode();
                ctx.tcp_send(leader, &wire);
                if fetch.cacheable {
                    if let Some(flight) = self.singleflight.complete(&fetch.key) {
                        for w in flight.waiters {
                            if let Some((_, ws, _)) = self.gw_waits.remove(&w) {
                                sc_obs::span_end(now.as_micros(), ws, vec![("ok", true.into())]);
                            }
                            ctx.tcp_send(w, &wire);
                        }
                    }
                }
            }
        }
    }

    /// Answers a gateway requester from a cache entry: `304` when its own
    /// validator still matches, the full `200` otherwise. Validators and
    /// freshness are forwarded so browser caches layer on top.
    fn serve_from_cache(&mut self, browser: TcpHandle, entry: &CachedResponse, ctx: &mut Ctx<'_>) {
        let inm = self.gw_inm.remove(&browser);
        let not_modified =
            !entry.etag.is_empty() && inm.as_deref() == Some(entry.etag.as_str());
        let mut resp = if not_modified {
            HttpResponse::new(304, Vec::new())
        } else {
            HttpResponse::new(entry.status, entry.body.clone())
                .header("Content-Type", &entry.content_type)
        };
        if !entry.etag.is_empty() {
            resp = resp.header("ETag", &entry.etag);
        }
        if let Some(max_age) = entry.max_age {
            resp = resp.header("Cache-Control", &format!("public, max-age={max_age}"));
        }
        ctx.tcp_send(browser, &resp.encode());
    }

    /// A gateway leader's request failed (shed, retries exhausted, or
    /// upstream death): its coalesced waiters get the same answer —
    /// without this they would hang until their browsers time out.
    fn fail_gateway_waiters(&mut self, leader: TcpHandle, code: u16, ctx: &mut Ctx<'_>) {
        let Some(fetch) = self.gw_fetches.remove(&leader) else { return };
        self.gw_inm.remove(&leader);
        if !fetch.cacheable {
            return;
        }
        let Some(flight) = self.singleflight.complete(&fetch.key) else { return };
        let wire = HttpResponse::new(code, Vec::new()).encode();
        for w in flight.waiters {
            if let Some((_, ws, _)) = self.gw_waits.remove(&w) {
                sc_obs::span_end(
                    ctx.now().as_micros(),
                    ws,
                    vec![("ok", false.into()), ("code", u64::from(code).into())],
                );
            }
            self.gw_inm.remove(&w);
            ctx.tcp_send(w, &wire);
            ctx.tcp_close(w);
            self.browsers.insert(w, BrowserConn::Dead);
        }
    }

    /// A gateway browser conn went away: drop it from any coalesced
    /// flight. A departing waiter is simply removed; a departing leader
    /// hands the fetch to its first waiter, whose replayed request goes
    /// back through admission under its own slot.
    fn gateway_browser_gone(&mut self, browser: TcpHandle, ctx: &mut Ctx<'_>) {
        self.gw_inm.remove(&browser);
        if let Some((key, ws, _)) = self.gw_waits.remove(&browser) {
            sc_obs::span_end(ctx.now().as_micros(), ws, vec![("ok", false.into())]);
            self.singleflight.forget(&key, browser);
            return;
        }
        let Some(fetch) = self.gw_fetches.remove(&browser) else { return };
        if !fetch.cacheable {
            return;
        }
        if let Some(promoted) = self.singleflight.forget(&fetch.key, browser) {
            // The dead leader's attempt is torn down by the caller; the
            // promoted waiter restarts the fetch (stats already counted
            // this as one miss — a replay is not a second one). Its
            // coalesce wait ends here; the replayed fetch runs under the
            // promoted waiter's own trace context.
            let promoted_ctx = match self.gw_waits.remove(&promoted) {
                Some((_, ws, tctx)) => {
                    sc_obs::span_end(
                        ctx.now().as_micros(),
                        ws,
                        vec![("promoted", true.into())],
                    );
                    tctx
                }
                None => sc_obs::TraceCtx::NONE,
            };
            self.config.cache.borrow_mut().note_upstream_fetch(&fetch.key, ctx.now());
            let header = StreamHeader {
                is_tls: false,
                trace: promoted_ctx.trace.0,
                parent: 0,
                target: TargetAddr::Domain(fetch.key.0.clone(), fetch.port),
            };
            let wire = fetch.request.encode();
            self.gw_fetches.insert(
                promoted,
                GatewayFetch {
                    key: fetch.key,
                    port: fetch.port,
                    request: fetch.request,
                    cacheable: true,
                    revalidating: fetch.revalidating,
                    parser: HttpParser::new(),
                },
            );
            self.admit_request(promoted, header, wire, false, promoted_ctx, ctx);
        }
    }

    fn handle_request(&mut self, browser: TcpHandle, req: HttpRequest, ctx: &mut Ctx<'_>) {
        if req.method == "CONNECT" {
            let Some((host, port_str)) = req.target.rsplit_once(':') else {
                ctx.tcp_send(browser, &HttpResponse::new(400, Vec::new()).encode());
                return;
            };
            let port: u16 = port_str.parse().unwrap_or(443);
            if !self.config.whitelisted(host) {
                self.refused += 1;
                self.trace_refusal(host, ctx);
                ctx.tcp_send(browser, &HttpResponse::new(403, Vec::new()).encode());
                ctx.tcp_close(browser);
                self.browsers.insert(browser, BrowserConn::Dead);
                return;
            }
            // The 200 is deferred until the tunnel actually connects —
            // see `TcpEvent::Connected` on the remote side.
            let tctx = req
                .header_value(sc_obs::TRACE_HEADER)
                .and_then(sc_obs::TraceCtx::parse)
                .unwrap_or(sc_obs::TraceCtx::NONE);
            let header = StreamHeader {
                is_tls: port == 443,
                trace: tctx.trace.0,
                parent: 0,
                target: TargetAddr::Domain(host.to_string(), port),
            };
            self.admit_request(browser, header, Vec::new(), true, tctx, ctx);
        } else if req.target.starts_with("http://") || req.target.starts_with('/') {
            // Plain HTTP (absolute-form, or origin-form with a Host
            // header): gateway mode. The conn stays in gateway mode for
            // keep-alive follow-ups; each request runs through the
            // shared content cache.
            self.browsers.insert(browser, BrowserConn::Gateway(HttpParser::new()));
            self.gateway_request(browser, req, ctx);
        } else {
            ctx.tcp_send(browser, &HttpResponse::new(400, Vec::new()).encode());
        }
    }

    fn trace_refusal(&self, host: &str, ctx: &mut Ctx<'_>) {
        sc_obs::counter_add("scholarcloud.whitelist_refusals", 1);
        if sc_obs::is_enabled(sc_obs::Level::Warn, "scholarcloud") {
            sc_obs::emit(
                sc_obs::Event::new(
                    ctx.now().as_micros(),
                    sc_obs::Level::Warn,
                    "scholarcloud",
                    "domestic",
                    "whitelist_refused",
                )
                .field("host", host.to_string()),
            );
        }
    }
}

fn target_label(header: &StreamHeader) -> String {
    match &header.target {
        TargetAddr::Domain(host, port) => format!("{host}:{port}"),
        other => format!("{other:?}"),
    }
}

impl App for DomesticProxy {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(self.config.domestic.port);
        self.arm(self.config.resilience.probe_interval, TimerPurpose::ProbeTick, ctx);
        if self.elastic.is_some() {
            self.arm(ELASTIC_TICK, TimerPurpose::ElasticTick, ctx);
        }
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        // Wall-clock attribution for scholar-bench; inert unless the
        // profiler is enabled, never read by proxy logic.
        let _prof = sc_obs::prof::scope(sc_obs::prof::Subsystem::Proxy);
        let (h, tcp_ev) = match ev {
            AppEvent::TimerFired(token) => {
                if let Some(purpose) = self.timers.remove(&token) {
                    self.on_timer(purpose, ctx);
                }
                return;
            }
            AppEvent::Tcp(h, tcp_ev) => (h, tcp_ev),
            _ => return,
        };

        // Probe side.
        if self.probes.contains_key(&h) {
            self.on_probe_event(h, tcp_ev, ctx);
            return;
        }

        // Intra-fleet peering side.
        if self.peer_fetches.contains_key(&h) {
            self.on_peer_event(h, tcp_ev, ctx);
            return;
        }

        // Remote side.
        if self.remotes.contains_key(&h) {
            match tcp_ev {
                TcpEvent::Connected => {
                    let now = ctx.now();
                    let (browser, idx, rtt, wire, attempt_span) = {
                        let conn = self.remotes.get_mut(&h).expect("checked");
                        conn.connected = true;
                        (
                            conn.browser,
                            conn.remote_idx,
                            now.saturating_since(conn.started),
                            std::mem::take(&mut conn.pending),
                            std::mem::replace(&mut conn.attempt_span, sc_obs::SpanId::NONE),
                        )
                    };
                    ctx.tcp_send(h, &wire);
                    sc_obs::span_end(now.as_micros(), attempt_span, vec![("ok", true.into())]);
                    sc_obs::observe("scholarcloud.connect_rtt_us", rtt.as_micros());
                    self.record_remote_success(idx, rtt, ctx);
                    if let Some(pt) = self.pending.remove(&browser) {
                        sc_obs::span_end(
                            now.as_micros(),
                            pt.establish_span,
                            vec![
                                ("ok", true.into()),
                                ("attempts", u64::from(pt.attempts).into()),
                            ],
                        );
                        // The transfer span covers the tunnel's lifetime:
                        // established → torn down, parented on the
                        // browser-side span that requested it.
                        let stream_span = sc_obs::span_start_ctx(
                            now.as_micros(),
                            sc_obs::Level::Debug,
                            "scholarcloud",
                            "domestic",
                            if pt.is_connect { "tunnel_stream" } else { "upstream_fetch" },
                            pt.tctx,
                            vec![(
                                "target",
                                sc_obs::Value::String(target_label(&pt.header)),
                            )],
                        );
                        let arm_replay = self.config.resilience.stream_resume
                            && !self.gw_fetches.contains_key(&browser)
                            && pt.initial_plain.len() <= REPLAY_CAP;
                        if let Some(conn) = self.remotes.get_mut(&h) {
                            conn.stream_span = stream_span;
                            if arm_replay {
                                conn.replay = Some(StreamReplay {
                                    header: pt.header.clone(),
                                    is_connect: pt.is_connect,
                                    sent_plain: pt.initial_plain.clone(),
                                    attempts: pt.attempts,
                                    tctx: pt.tctx,
                                });
                            }
                        }
                        self.admission
                            .record_service(now.saturating_since(pt.admitted_at));
                        if pt.is_connect && !pt.resumed {
                            ctx.tcp_send(browser, b"HTTP/1.1 200 Connection established\r\n\r\n");
                        }
                        // A gateway leader's conn stays in gateway mode
                        // (its fetch is tracked in `gw_fetches`); only
                        // opaque tunnels switch to piping.
                        if !self.gw_fetches.contains_key(&browser) {
                            self.browsers.insert(browser, BrowserConn::Tunneling { remote: h });
                        }
                        self.tunnels_opened += 1;
                        sc_obs::counter_add("scholarcloud.tunnels_opened", 1);
                        if sc_obs::is_enabled(sc_obs::Level::Info, "scholarcloud") {
                            sc_obs::emit(
                                sc_obs::Event::new(
                                    now.as_micros(),
                                    sc_obs::Level::Info,
                                    "scholarcloud",
                                    "domestic",
                                    "tunnel_open",
                                )
                                .field("target", target_label(&pt.header))
                                .field("encrypted", !pt.header.is_tls)
                                .field("remote", self.pool.entry(idx).addr.to_string())
                                .field("attempt", pt.attempts as u64),
                            );
                        }
                    }
                }
                TcpEvent::DataReceived => {
                    let data = ctx.tcp_recv_all(h);
                    let conn = self.remotes.get_mut(&h).expect("checked");
                    let mut plain = data.to_vec();
                    conn.rx.decode(&mut plain);
                    conn.down_bytes += plain.len() as u64;
                    // The browser has now observed upstream state: a
                    // later death can no longer be replayed from zero.
                    conn.replay = None;
                    sc_obs::counter_add("scholarcloud.bytes_down", plain.len() as u64);
                    let browser = conn.browser;
                    let ridx = conn.remote_idx;
                    // Relayed plaintext is the instance's billable
                    // egress under the elastic cost model.
                    if let Some(handle) = &self.elastic {
                        let addr = self.pool.entry(ridx).addr.addr;
                        handle.with(|p| p.note_egress(addr, plain.len() as u64));
                    }
                    if let Some(fetch) = self.gw_fetches.get_mut(&browser) {
                        // Gateway fetch: reassemble the upstream response
                        // instead of piping bytes through.
                        let Ok(msgs) = fetch.parser.push(&plain) else {
                            ctx.tcp_abort(h);
                            if let Some(conn) = self.remotes.remove(&h) {
                                self.elastic_stream_end(conn.remote_idx, ctx.now());
                                sc_obs::span_end(
                                    ctx.now().as_micros(),
                                    conn.stream_span,
                                    vec![("ok", false.into())],
                                );
                            }
                            self.fail_browser(browser, 502, "bad_upstream_response", ctx);
                            return;
                        };
                        for m in msgs {
                            if let HttpMessage::Response(resp) = m {
                                self.gateway_fetch_done(h, browser, resp, ctx);
                                break;
                            }
                        }
                        return;
                    }
                    ctx.tcp_send(browser, &plain);
                }
                TcpEvent::PeerClosed | TcpEvent::Reset | TcpEvent::ConnectFailed => {
                    let connected =
                        self.remotes.get(&h).map_or(false, |c| c.connected);
                    if !connected {
                        let reason = match tcp_ev {
                            TcpEvent::ConnectFailed => "connect_failed",
                            TcpEvent::Reset => "reset",
                            _ => "peer_closed",
                        };
                        self.attempt_failed(h, reason, ctx);
                    } else if let Some(mut conn) = self.remotes.remove(&h) {
                        let now = ctx.now();
                        self.elastic_stream_end(conn.remote_idx, now);
                        let reset = matches!(tcp_ev, TcpEvent::Reset);
                        // A mid-stream RST before any downstream byte is
                        // the adaptive censor's learned-signature RESET
                        // landing on the preamble, past the establish
                        // retry budget. Record the failure *first* so
                        // the breaker/rotation evidence is current (a
                        // detection-driven rotation fires right here),
                        // then rebuild the request from its replay
                        // buffer and retry under the rotated scheme.
                        if reset && conn.down_bytes == 0 {
                            if let Some(rep) = conn.replay.take() {
                                if rep.attempts < self.config.resilience.max_attempts {
                                    self.record_remote_failure(conn.remote_idx, ctx);
                                    sc_obs::observe(
                                        "scholarcloud.stream_bytes_up",
                                        conn.up_bytes,
                                    );
                                    sc_obs::observe("scholarcloud.stream_bytes_down", 0);
                                    sc_obs::span_end(
                                        now.as_micros(),
                                        conn.stream_span,
                                        vec![
                                            ("ok", false.into()),
                                            ("bytes_down", 0u64.into()),
                                            ("resumed", true.into()),
                                        ],
                                    );
                                    self.resume_tunnel(
                                        conn.browser,
                                        conn.remote_idx,
                                        rep,
                                        ctx,
                                    );
                                    return;
                                }
                            }
                        }
                        sc_obs::observe("scholarcloud.stream_bytes_up", conn.up_bytes);
                        sc_obs::observe("scholarcloud.stream_bytes_down", conn.down_bytes);
                        sc_obs::span_end(
                            now.as_micros(),
                            conn.stream_span,
                            vec![
                                ("ok", (!reset).into()),
                                ("bytes_down", conn.down_bytes.into()),
                            ],
                        );
                        if reset {
                            // A mid-stream RST is a health signal (GFW
                            // interference or a dying VM), not a normal
                            // end-of-stream.
                            self.record_remote_failure(conn.remote_idx, ctx);
                        }
                        // A gateway fetch dying mid-response takes its
                        // coalesced waiters down with the same status.
                        self.fail_gateway_waiters(conn.browser, 502, ctx);
                        ctx.tcp_close(conn.browser);
                        self.browsers.insert(conn.browser, BrowserConn::Dead);
                        self.release_slot(conn.browser, ctx);
                    }
                }
                _ => {}
            }
            return;
        }

        // Browser side.
        match tcp_ev {
            TcpEvent::Accepted { peer } => {
                self.peers.insert(h, peer.addr);
                self.browsers.insert(h, BrowserConn::AwaitRequest(HttpParser::new()));
                sc_obs::counter_add("scholarcloud.domestic_accepts", 1);
            }
            TcpEvent::DataReceived => {
                let data = ctx.tcp_recv_all(h);
                match self.browsers.get_mut(&h) {
                    Some(BrowserConn::AwaitRequest(parser)) => {
                        let Ok(msgs) = parser.push(&data) else {
                            // Bytes that never parse as HTTP are not a
                            // browser — they are a scanner or an active
                            // probe. Aborting here would answer garbage
                            // with an RST, the exact silent-proxy
                            // signature probing looks for; serve the
                            // same boring decoy as the remote side and
                            // close cleanly. No admission slot is held:
                            // admission only engages after a parsed
                            // request is whitelisted.
                            ctx.tcp_send(h, &decoy_response());
                            ctx.tcp_close(h);
                            self.browsers.insert(h, BrowserConn::Dead);
                            self.decoys += 1;
                            sc_obs::counter_add("scholarcloud.decoys_served", 1);
                            self.config.interference.note_probe();
                            if sc_obs::is_enabled(sc_obs::Level::Info, "scholarcloud") {
                                sc_obs::emit(
                                    sc_obs::Event::new(
                                        ctx.now().as_micros(),
                                        sc_obs::Level::Info,
                                        "scholarcloud",
                                        "domestic",
                                        "decoy",
                                    )
                                    .field("reason", "not_http"),
                                );
                            }
                            return;
                        };
                        for msg in msgs {
                            if let HttpMessage::Request(req) = msg {
                                self.handle_request(h, req, ctx);
                                break; // one request per proxy connection
                            }
                        }
                    }
                    Some(BrowserConn::Gateway(parser)) => {
                        let Ok(msgs) = parser.push(&data) else {
                            ctx.tcp_abort(h);
                            self.gateway_browser_gone(h, ctx);
                            self.browsers.insert(h, BrowserConn::Dead);
                            return;
                        };
                        let reqs: Vec<HttpRequest> = msgs
                            .into_iter()
                            .filter_map(|m| match m {
                                HttpMessage::Request(r) => Some(r),
                                _ => None,
                            })
                            .collect();
                        for req in reqs {
                            self.gateway_request(h, req, ctx);
                        }
                    }
                    Some(BrowserConn::Pending) => {
                        // Early bytes while the tunnel is still
                        // connecting: remember them for any retry, and
                        // queue them on the in-flight attempt so the
                        // established stream stays in order.
                        if let Some(pt) = self.pending.get_mut(&h) {
                            pt.initial_plain.extend_from_slice(&data);
                        }
                        sc_obs::counter_add("scholarcloud.bytes_up", data.len() as u64);
                        if let Some(conn) =
                            self.remotes.values_mut().find(|c| c.browser == h && !c.connected)
                        {
                            let mut wire = data.to_vec();
                            conn.up_bytes += wire.len() as u64;
                            conn.tx.encode(&mut wire);
                            conn.pending.extend_from_slice(&wire);
                        }
                    }
                    Some(BrowserConn::Tunneling { remote }) => {
                        let remote = *remote;
                        if let Some(conn) = self.remotes.get_mut(&remote) {
                            match conn.replay.as_mut() {
                                Some(rep) if rep.sent_plain.len() + data.len() <= REPLAY_CAP => {
                                    rep.sent_plain.extend_from_slice(&data);
                                }
                                Some(_) => conn.replay = None,
                                None => {}
                            }
                            let mut wire = data.to_vec();
                            conn.up_bytes += wire.len() as u64;
                            sc_obs::counter_add("scholarcloud.bytes_up", wire.len() as u64);
                            conn.tx.encode(&mut wire);
                            if conn.connected {
                                ctx.tcp_send(remote, &wire);
                            } else {
                                conn.pending.extend_from_slice(&wire);
                            }
                        }
                    }
                    _ => {}
                }
            }
            TcpEvent::PeerClosed | TcpEvent::Reset => {
                self.gateway_browser_gone(h, ctx);
                if let Some(pt) = self.pending.remove(&h) {
                    let now_us = ctx.now().as_micros();
                    sc_obs::span_end(
                        now_us,
                        pt.admission_span,
                        vec![("verdict", "abandoned".into())],
                    );
                    sc_obs::span_end(now_us, pt.wait_span, Vec::new());
                    sc_obs::span_end(now_us, pt.establish_span, vec![("ok", false.into())]);
                    if pt.queued {
                        // Browser gave up while still in the admission
                        // queue: no slot was held yet.
                        self.admission.remove_queued(h);
                        self.sample_queue_depth(ctx);
                        self.browsers.insert(h, BrowserConn::Dead);
                        return;
                    }
                    // Browser gave up mid-establishment: abort the
                    // outstanding attempt without blaming the remote.
                    let inflight: Vec<TcpHandle> = self
                        .remotes
                        .iter()
                        .filter(|(_, c)| c.browser == h)
                        .map(|(&rh, _)| rh)
                        .collect();
                    for rh in inflight {
                        ctx.tcp_abort(rh);
                        if let Some(conn) = self.remotes.remove(&rh) {
                            self.elastic_stream_end(conn.remote_idx, ctx.now());
                            sc_obs::span_end(
                                now_us,
                                conn.attempt_span,
                                vec![("ok", false.into()), ("reason", "browser_gone".into())],
                            );
                            sc_obs::span_end(now_us, conn.stream_span, Vec::new());
                        }
                    }
                    self.browsers.insert(h, BrowserConn::Dead);
                    self.release_slot(h, ctx);
                    return;
                }
                if let Some(BrowserConn::Tunneling { remote }) = self.browsers.get(&h) {
                    let remote = *remote;
                    ctx.tcp_close(remote);
                    if let Some(conn) = self.remotes.remove(&remote) {
                        self.elastic_stream_end(conn.remote_idx, ctx.now());
                        sc_obs::observe("scholarcloud.stream_bytes_up", conn.up_bytes);
                        sc_obs::observe("scholarcloud.stream_bytes_down", conn.down_bytes);
                        sc_obs::span_end(
                            ctx.now().as_micros(),
                            conn.stream_span,
                            vec![("ok", true.into()), ("bytes_down", conn.down_bytes.into())],
                        );
                    }
                    self.browsers.insert(h, BrowserConn::Dead);
                    self.release_slot(h, ctx);
                    return;
                }
                self.browsers.insert(h, BrowserConn::Dead);
            }
            _ => {}
        }
    }
}
