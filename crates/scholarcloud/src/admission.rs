//! Overload control for the domestic proxy: bounded admission,
//! deadline-aware load shedding, per-client fairness, and a global
//! retry budget.
//!
//! The paper's §4.5 scalability experiment served ~1,000 users from one
//! 4-core VM — the domestic proxy is the deployment's shared
//! chokepoint. Under a flash crowd an unprotected proxy queues
//! unboundedly and collapses tail latency for everyone; the overload
//! pipeline here degrades *gracefully* instead: excess work is refused
//! early with a fast, browser-visible `503`/`429 + Retry-After`, and
//! the work that is admitted still finishes within its deadline budget.
//!
//! # Pipeline
//!
//! ```text
//!            ┌────────────────────── per-client fairness ──────────────────────┐
//! request ──▶ token bucket (rate)  ──▶ max streams per client ──▶ capacity ─▶ Admit
//!            │ full? ─▶ 429        │  over? ─▶ 429              │ free slot
//!            └──────────────────────┴───────────────────────────┤
//!                                                               ▼ saturated
//!                                              bounded queue + deadline check
//!                                              queue full        ─▶ 503 shed
//!                                              budget < EWMA     ─▶ 503 shed
//!                                              otherwise         ─▶ Enqueue
//! ```
//!
//! Queued work carries a deadline (`arrival + deadline_budget`); at
//! dequeue time anything whose *remaining* budget no longer covers the
//! observed tunnel-establishment EWMA is shed rather than admitted to
//! die of timeout downstream. The retry budget is the third guard: the
//! resilience layer (PR 3) may only retry while the global budget —
//! refilled at `retry_budget_frac` tokens per admitted request — has a
//! whole token, so under brownout retries amplify offered load by at
//! most `1 + retry_budget_frac` instead of `max_attempts`×.
//!
//! Everything here is pure state-machine logic in the style of
//! [`resilience`](crate::resilience): no clocks, no RNG — time comes in
//! as [`SimTime`] arguments so the proxy stays deterministic and two
//! same-seed runs make byte-identical admission decisions.

use std::collections::{BTreeMap, VecDeque};

use sc_simnet::addr::Addr;
use sc_simnet::time::{SimDuration, SimTime};

/// A deterministic token bucket: `rate_per_sec` tokens accrue per
/// simulated second up to `capacity`, refilled lazily on access from
/// the caller-supplied clock.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    rate_per_sec: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A full bucket (burst available immediately).
    pub fn new(rate_per_sec: f64, capacity: f64) -> Self {
        let capacity = capacity.max(0.0);
        TokenBucket { capacity, rate_per_sec: rate_per_sec.max(0.0), tokens: capacity, last: SimTime::ZERO }
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate_per_sec).min(self.capacity);
    }

    /// Takes one token if available.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Whether the bucket is back at capacity at `now` (idle-client GC).
    pub fn full(&mut self, now: SimTime) -> bool {
        self.refill(now);
        self.tokens >= self.capacity
    }
}

/// The global retry budget: every *admitted* request deposits
/// `frac` of a token (capped at `burst`), every retry withdraws a whole
/// one. Unlike [`TokenBucket`] the refill is work-driven, not
/// time-driven — the budget tracks offered load, so the amplification
/// bound holds at any request rate.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    /// Milli-tokens: integer arithmetic so `10 × 0.1 = 1` exactly —
    /// the budget must be bit-deterministic, not just approximately
    /// fair.
    millitokens: u64,
    deposit_milli: u64,
    burst_milli: u64,
    /// Retries refused because the budget was exhausted (diagnostics).
    pub denied: u64,
}

impl RetryBudget {
    /// Starts with a full burst allowance.
    pub fn new(frac: f64, burst: f64) -> Self {
        let burst_milli = (burst.max(0.0) * 1000.0).round() as u64;
        RetryBudget {
            millitokens: burst_milli,
            deposit_milli: (frac.max(0.0) * 1000.0).round() as u64,
            burst_milli,
            denied: 0,
        }
    }

    /// Credits the budget for one admitted request.
    pub fn on_admit(&mut self) {
        self.millitokens =
            (self.millitokens + self.deposit_milli).min(self.burst_milli.max(self.millitokens));
    }

    /// Withdraws one token for a retry; `false` means the retry must
    /// not happen (counted in [`denied`](Self::denied)).
    pub fn try_retry(&mut self) -> bool {
        if self.millitokens >= 1000 {
            self.millitokens -= 1000;
            true
        } else {
            self.denied += 1;
            false
        }
    }

    /// Tokens currently available.
    pub fn available(&self) -> f64 {
        self.millitokens as f64 / 1000.0
    }
}

/// EWMA of observed service times (tunnel establishment, admit →
/// connected), the shedding estimate: a queued request whose remaining
/// deadline budget cannot cover this estimate is rejected instead of
/// queued to die.
#[derive(Debug, Clone, Default)]
pub struct ServiceEwma {
    ewma: Option<SimDuration>,
}

impl ServiceEwma {
    /// Records one observed service time (α = 0.3, like the pool's RTT
    /// EWMA).
    pub fn record(&mut self, d: SimDuration) {
        self.ewma = Some(match self.ewma {
            None => d,
            Some(prev) => {
                SimDuration::from_micros((7 * prev.as_micros() + 3 * d.as_micros()) / 10)
            }
        });
    }

    /// Current estimate; `ZERO` until the first observation (nothing is
    /// shed on deadline before the proxy has seen real service times).
    pub fn estimate(&self) -> SimDuration {
        self.ewma.unwrap_or(SimDuration::ZERO)
    }
}

/// Overload-control tunables. The defaults are deliberately generous —
/// nominal paper-shaped scenarios (a handful of clients) never hit any
/// of these limits, so traces from earlier PRs are unchanged; the
/// flash-crowd scenarios shrink `max_tunnels`/`queue_len` to model an
/// undersized proxy.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Concurrent tunnels the proxy will carry (active slots).
    pub max_tunnels: usize,
    /// Bounded pending queue for requests arriving while saturated.
    /// Also caps the resilience layer's parked set.
    pub queue_len: usize,
    /// Per-request deadline budget: a request may spend at most this
    /// long queued + establishing before it is useless to the browser.
    pub deadline_budget: SimDuration,
    /// `Retry-After` advertised on 429/503 shed responses.
    pub retry_after: SimDuration,
    /// Per-client token-bucket refill rate (requests/second).
    pub per_client_rate: f64,
    /// Per-client token-bucket burst capacity.
    pub per_client_burst: f64,
    /// Max concurrent streams (admitted + queued) per client address.
    pub max_streams_per_client: usize,
    /// Retry-budget deposit per admitted request (0.1 → retries may
    /// amplify offered load by at most 1.1×).
    pub retry_budget_frac: f64,
    /// Retry-budget burst allowance (tokens available before any
    /// deposits, and the deposit cap).
    pub retry_budget_burst: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_tunnels: 256,
            queue_len: 64,
            deadline_budget: SimDuration::from_secs(6),
            retry_after: SimDuration::from_secs(1),
            per_client_rate: 16.0,
            per_client_burst: 32.0,
            max_streams_per_client: 32,
            retry_budget_frac: 0.1,
            retry_budget_burst: 8.0,
        }
    }
}

/// The verdict on an arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Admitted: an active slot was consumed; the caller must
    /// [`release`](AdmissionController::release) it on any terminal path.
    Admit,
    /// Saturated but within limits: queued (the controller holds the
    /// token until [`drain`](AdmissionController::drain) or
    /// [`remove_queued`](AdmissionController::remove_queued)).
    Enqueue,
    /// Shed: the pending queue is full → `503`.
    ShedQueueFull,
    /// Shed: the deadline budget cannot cover the service estimate →
    /// `503`.
    ShedDeadline,
    /// Throttled: the client's token bucket is empty → `429`.
    Throttled,
    /// Throttled: the client is at its concurrent-stream cap → `429`.
    TooManyStreams,
}

impl Decision {
    /// Short machine-readable name for traces.
    pub fn name(self) -> &'static str {
        match self {
            Decision::Admit => "admit",
            Decision::Enqueue => "enqueue",
            Decision::ShedQueueFull => "shed_queue_full",
            Decision::ShedDeadline => "shed_deadline",
            Decision::Throttled => "throttled",
            Decision::TooManyStreams => "too_many_streams",
        }
    }

    /// The HTTP status this decision surfaces to the browser (`None`
    /// for admit/enqueue).
    pub fn status(self) -> Option<u16> {
        match self {
            Decision::Admit | Decision::Enqueue => None,
            Decision::ShedQueueFull | Decision::ShedDeadline => Some(503),
            Decision::Throttled | Decision::TooManyStreams => Some(429),
        }
    }
}

/// What [`drain`](AdmissionController::drain) did with one queued entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dequeued<T> {
    /// Dequeued into a free slot; the caller starts the tunnel and must
    /// eventually [`release`](AdmissionController::release).
    Admit {
        /// The queued token.
        token: T,
        /// How long the request waited in the queue.
        waited: SimDuration,
    },
    /// Dequeued and shed: the remaining deadline budget no longer
    /// covers the service estimate → `503`.
    Shed {
        /// The queued token.
        token: T,
    },
}

#[derive(Debug, Clone)]
struct Queued<T> {
    token: T,
    client: Addr,
    enqueued_at: SimTime,
    deadline: SimTime,
}

#[derive(Debug, Clone)]
struct ClientState {
    bucket: TokenBucket,
    /// Outstanding work (admitted + queued) for this client.
    streams: usize,
}

/// The admission controller: tracks active tunnels, the bounded queue,
/// and per-client state. Generic over the queued token `T` (the
/// domestic proxy queues browser connection handles).
///
/// Deterministic by construction: per-client state lives in a
/// [`BTreeMap`] keyed by [`Addr`] and the queue is FIFO, so iteration
/// order never depends on hash seeds.
#[derive(Debug, Clone)]
pub struct AdmissionController<T> {
    cfg: AdmissionConfig,
    active: usize,
    queue: VecDeque<Queued<T>>,
    clients: BTreeMap<Addr, ClientState>,
    service: ServiceEwma,
    /// Global retry budget consulted by the resilience layer.
    pub retry_budget: RetryBudget,
    /// Requests admitted (directly or from the queue).
    pub admitted: u64,
    /// Requests enqueued.
    pub enqueued: u64,
    /// Requests shed with 503 (queue full / deadline).
    pub shed: u64,
    /// Requests throttled with 429 (rate / stream cap).
    pub throttled: u64,
}

impl<T: Copy + PartialEq> AdmissionController<T> {
    /// A controller with no work outstanding.
    pub fn new(cfg: AdmissionConfig) -> Self {
        let retry_budget = RetryBudget::new(cfg.retry_budget_frac, cfg.retry_budget_burst);
        AdmissionController {
            cfg,
            active: 0,
            queue: VecDeque::new(),
            clients: BTreeMap::new(),
            service: ServiceEwma::default(),
            retry_budget,
            admitted: 0,
            enqueued: 0,
            shed: 0,
            throttled: 0,
        }
    }

    /// Active (admitted, unreleased) tunnels.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The current service-time estimate.
    pub fn service_estimate(&self) -> SimDuration {
        self.service.estimate()
    }

    /// The configured queue bound (shared with the parked-set cap).
    pub fn queue_len(&self) -> usize {
        self.cfg.queue_len
    }

    /// The `Retry-After` to advertise on shed/throttle responses.
    pub fn retry_after(&self) -> SimDuration {
        self.cfg.retry_after
    }

    fn client(&mut self, client: Addr, now: SimTime) -> &mut ClientState {
        let cfg = &self.cfg;
        let state = self.clients.entry(client).or_insert_with(|| {
            let mut bucket = TokenBucket::new(cfg.per_client_rate, cfg.per_client_burst);
            // A fresh bucket's `last` is time zero; align it so the
            // client does not inherit a phantom idle-time refill.
            bucket.refill(now);
            bucket.tokens = bucket.capacity;
            ClientState { bucket, streams: 0 }
        });
        state
    }

    /// Whether `remaining` budget still covers the service estimate.
    /// Exactly-equal budgets are admitted — shedding triggers only when
    /// the budget is strictly short.
    fn deadline_ok(&self, remaining: SimDuration) -> bool {
        remaining >= self.service.estimate()
    }

    /// Decides the fate of a request arriving from `client` at `now`.
    /// On [`Decision::Enqueue`] the controller keeps `token`.
    pub fn on_request(&mut self, token: T, client: Addr, now: SimTime) -> Decision {
        let max_streams = self.cfg.max_streams_per_client;
        let state = self.client(client, now);
        if !state.bucket.try_take(now) {
            self.throttled += 1;
            return Decision::Throttled;
        }
        if state.streams >= max_streams {
            self.throttled += 1;
            return Decision::TooManyStreams;
        }
        if self.active < self.cfg.max_tunnels {
            self.active += 1;
            self.client(client, now).streams += 1;
            self.admitted += 1;
            self.retry_budget.on_admit();
            return Decision::Admit;
        }
        if self.queue.len() >= self.cfg.queue_len {
            self.shed += 1;
            return Decision::ShedQueueFull;
        }
        if !self.deadline_ok(self.cfg.deadline_budget) {
            self.shed += 1;
            return Decision::ShedDeadline;
        }
        self.client(client, now).streams += 1;
        self.queue.push_back(Queued {
            token,
            client,
            enqueued_at: now,
            deadline: now + self.cfg.deadline_budget,
        });
        self.enqueued += 1;
        Decision::Enqueue
    }

    /// Dequeues as much as the current capacity allows: expired entries
    /// are shed regardless of free slots, admissible entries are
    /// admitted while slots remain. Call whenever a slot frees or on a
    /// periodic tick; returns the actions in queue order.
    pub fn drain(&mut self, now: SimTime) -> Vec<Dequeued<T>> {
        let mut out = Vec::new();
        while let Some(front) = self.queue.front() {
            let remaining = front.deadline.saturating_since(now);
            if !self.deadline_ok(remaining) {
                let q = self.queue.pop_front().expect("front checked");
                self.release_stream(q.client);
                self.shed += 1;
                out.push(Dequeued::Shed { token: q.token });
                continue;
            }
            if self.active >= self.cfg.max_tunnels {
                break;
            }
            let q = self.queue.pop_front().expect("front checked");
            self.active += 1;
            self.admitted += 1;
            self.retry_budget.on_admit();
            out.push(Dequeued::Admit {
                token: q.token,
                waited: now.saturating_since(q.enqueued_at),
            });
        }
        out
    }

    /// Records an observed service time without releasing a slot (the
    /// domestic proxy observes establishment while the tunnel stays
    /// active and holds its slot).
    pub fn record_service(&mut self, d: SimDuration) {
        self.service.record(d);
    }

    /// Releases an admitted request's slot (tunnel finished, failed, or
    /// the browser went away). `establish` carries the observed
    /// admit→connected service time when the tunnel did establish.
    pub fn release(&mut self, client: Addr, now: SimTime, establish: Option<SimDuration>) {
        debug_assert!(self.active > 0, "release without an active slot");
        self.active = self.active.saturating_sub(1);
        if let Some(d) = establish {
            self.service.record(d);
        }
        self.release_stream(client);
        self.gc_client(client, now);
    }

    /// Removes a still-queued request (browser disconnected while
    /// waiting). Returns whether the token was found.
    pub fn remove_queued(&mut self, token: T) -> bool {
        if let Some(pos) = self.queue.iter().position(|q| q.token == token) {
            let q = self.queue.remove(pos).expect("position checked");
            self.release_stream(q.client);
            true
        } else {
            false
        }
    }

    fn release_stream(&mut self, client: Addr) {
        if let Some(state) = self.clients.get_mut(&client) {
            state.streams = state.streams.saturating_sub(1);
        }
    }

    /// Drops idle per-client state (no outstanding streams, bucket back
    /// at capacity) so a flash crowd does not leak client entries
    /// forever.
    fn gc_client(&mut self, client: Addr, now: SimTime) {
        if let Some(state) = self.clients.get_mut(&client) {
            if state.streams == 0 && state.bucket.full(now) {
                self.clients.remove(&client);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn client(n: u8) -> Addr {
        Addr::new(10, 0, 1, n)
    }

    #[test]
    fn bucket_burst_then_refill() {
        let mut b = TokenBucket::new(2.0, 4.0);
        // Full burst up front…
        for _ in 0..4 {
            assert!(b.try_take(at(0)));
        }
        assert!(!b.try_take(at(0)), "burst exhausted");
        // …then rate-limited refill: 2 tokens/s.
        assert!(b.try_take(at(1)));
        assert!(b.try_take(at(1)));
        assert!(!b.try_take(at(1)));
        // Refill caps at capacity no matter how long the idle gap.
        assert!(b.full(at(1000)));
        assert!((b.available(at(1000)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_zero_rate_never_refills() {
        let mut b = TokenBucket::new(0.0, 1.0);
        assert!(b.try_take(at(0)));
        assert!(!b.try_take(at(1_000_000)), "zero rate: burst only");
    }

    #[test]
    fn bucket_fractional_refill_accumulates() {
        let mut b = TokenBucket::new(0.5, 1.0);
        assert!(b.try_take(at(0)));
        assert!(!b.try_take(at(1)), "0.5 tokens: not enough");
        assert!(b.try_take(at(2)), "1.0 tokens accrued");
    }

    #[test]
    fn retry_budget_caps_amplification() {
        let mut rb = RetryBudget::new(0.1, 2.0);
        // Burst: two retries are free.
        assert!(rb.try_retry());
        assert!(rb.try_retry());
        assert!(!rb.try_retry());
        assert_eq!(rb.denied, 1);
        // Ten admits earn exactly one more retry.
        for _ in 0..10 {
            rb.on_admit();
        }
        assert!(rb.try_retry());
        assert!(!rb.try_retry());
        assert_eq!(rb.denied, 2);
    }

    #[test]
    fn admits_until_capacity_then_queues_then_sheds() {
        let mut cfg = AdmissionConfig::default();
        cfg.max_tunnels = 2;
        cfg.queue_len = 1;
        let mut adm: AdmissionController<u32> = AdmissionController::new(cfg);
        assert_eq!(adm.on_request(1, client(1), at(0)), Decision::Admit);
        assert_eq!(adm.on_request(2, client(2), at(0)), Decision::Admit);
        assert_eq!(adm.on_request(3, client(3), at(0)), Decision::Enqueue);
        assert_eq!(adm.on_request(4, client(4), at(0)), Decision::ShedQueueFull);
        assert_eq!((adm.active(), adm.queue_depth()), (2, 1));
        // A release frees a slot; draining admits the queued request.
        adm.release(client(1), at(1), Some(SimDuration::from_millis(300)));
        let drained = adm.drain(at(1));
        assert_eq!(
            drained,
            vec![Dequeued::Admit { token: 3, waited: SimDuration::from_secs(1) }]
        );
        assert_eq!(adm.admitted, 3);
        assert_eq!(adm.shed, 1);
    }

    #[test]
    fn deadline_boundary_budget_equal_to_ewma_admits() {
        let mut cfg = AdmissionConfig::default();
        cfg.max_tunnels = 1;
        cfg.queue_len = 8;
        cfg.deadline_budget = SimDuration::from_secs(2);
        let mut adm: AdmissionController<u32> = AdmissionController::new(cfg);
        assert_eq!(adm.on_request(1, client(1), at(0)), Decision::Admit);
        // Teach the EWMA a 2 s service time — exactly the budget.
        adm.release(client(1), at(0), Some(SimDuration::from_secs(2)));
        assert_eq!(adm.service_estimate(), SimDuration::from_secs(2));
        assert_eq!(adm.on_request(2, client(2), at(0)), Decision::Admit);
        // Saturated again: budget == EWMA must still enqueue (strictly
        // short budgets shed).
        assert_eq!(adm.on_request(3, client(3), at(10)), Decision::Enqueue);
        // At the deadline itself the remaining budget is zero < EWMA:
        // the queued entry is shed even with a free slot.
        adm.release(client(2), at(12), None);
        assert_eq!(adm.drain(at(12)), vec![Dequeued::Shed { token: 3 }]);
    }

    #[test]
    fn fresh_queue_sheds_when_budget_strictly_short() {
        let mut cfg = AdmissionConfig::default();
        cfg.max_tunnels = 1;
        cfg.deadline_budget = SimDuration::from_millis(500);
        let mut adm: AdmissionController<u32> = AdmissionController::new(cfg);
        assert_eq!(adm.on_request(1, client(1), at(0)), Decision::Admit);
        adm.release(client(1), at(0), Some(SimDuration::from_millis(600)));
        assert_eq!(adm.on_request(2, client(1), at(0)), Decision::Admit);
        // Saturated and the full budget (500 ms) < EWMA (600 ms):
        // rejected at arrival, never queued.
        assert_eq!(adm.on_request(3, client(2), at(0)), Decision::ShedDeadline);
        assert_eq!(adm.queue_depth(), 0);
    }

    #[test]
    fn per_client_rate_and_stream_caps() {
        let mut cfg = AdmissionConfig::default();
        cfg.per_client_rate = 1.0;
        cfg.per_client_burst = 2.0;
        cfg.max_streams_per_client = 1;
        let mut adm: AdmissionController<u32> = AdmissionController::new(cfg);
        assert_eq!(adm.on_request(1, client(1), at(0)), Decision::Admit);
        // Second request: bucket still has a token but the stream cap
        // bites.
        assert_eq!(adm.on_request(2, client(1), at(0)), Decision::TooManyStreams);
        // Third: the bucket is now empty too.
        assert_eq!(adm.on_request(3, client(1), at(0)), Decision::Throttled);
        // A different client is unaffected — fairness is per address.
        assert_eq!(adm.on_request(4, client(2), at(0)), Decision::Admit);
        // Releasing the stream lets the client back in once the bucket
        // refills.
        adm.release(client(1), at(5), None);
        assert_eq!(adm.on_request(5, client(1), at(5)), Decision::Admit);
        assert_eq!(adm.throttled, 2);
    }

    #[test]
    fn remove_queued_frees_the_stream_slot() {
        let mut cfg = AdmissionConfig::default();
        cfg.max_tunnels = 1;
        cfg.max_streams_per_client = 1;
        let mut adm: AdmissionController<u32> = AdmissionController::new(cfg);
        assert_eq!(adm.on_request(1, client(1), at(0)), Decision::Admit);
        assert_eq!(adm.on_request(2, client(2), at(0)), Decision::Enqueue);
        assert!(adm.remove_queued(2));
        assert!(!adm.remove_queued(2), "already gone");
        assert_eq!(adm.queue_depth(), 0);
        // The stream slot came back: client 2 can queue again.
        assert_eq!(adm.on_request(3, client(2), at(0)), Decision::Enqueue);
    }
}
