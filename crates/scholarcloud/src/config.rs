//! ScholarCloud deployment configuration and the operator's live
//! blinding-scheme control.

use std::cell::RefCell;
use std::rc::Rc;

use sc_cache::{CacheConfig, CacheHandle};
use sc_crypto::blinding::BlindingScheme;
use sc_netproto::pac::PacFile;
use sc_simnet::addr::{Addr, SocketAddr};
use sc_simnet::time::SimDuration;

use crate::admission::AdmissionConfig;
use crate::resilience::BackoffPolicy;

/// The remote proxy's listening port.
pub const REMOTE_PORT: u16 = 8443;
/// The domestic proxy's listening port (what the PAC file points at).
pub const DOMESTIC_PORT: u16 = 8080;

/// A live handle to the blinding scheme in force. Because the operator
/// controls both proxies, the scheme can be rotated at any time without
/// touching clients — the paper's agility argument against a censor that
/// learns one scheme's signature.
#[derive(Debug, Clone)]
pub struct SchemeHandle(Rc<RefCell<(BlindingScheme, u32)>>);

impl SchemeHandle {
    /// Starts with the given scheme at cover generation 0.
    pub fn new(scheme: BlindingScheme) -> Self {
        SchemeHandle(Rc::new(RefCell::new((scheme, 0))))
    }

    /// The scheme currently in force.
    pub fn get(&self) -> BlindingScheme {
        self.0.borrow().0
    }

    /// The cover-path generation currently in force (see
    /// `frame::cover_path_gen`). Stays 0 — the fixed pre-adaptive cover
    /// endpoints — until a detection-driven rotation bumps it.
    pub fn generation(&self) -> u32 {
        self.0.borrow().1
    }

    /// Sets the scheme (generation untouched).
    pub fn set(&self, scheme: BlindingScheme) {
        self.0.borrow_mut().0 = scheme;
    }

    /// Rotates to the next scheme in the rotation order.
    ///
    /// Out-of-band operator rotation with no sim clock in scope; the
    /// emitted event is stamped t_us = 0 by convention. In-sim policy
    /// rotations should use [`rotate_at`](Self::rotate_at).
    pub fn rotate(&self) -> BlindingScheme {
        self.rotate_at(0)
    }

    /// Rotates to the next scheme, stamping the event with `t_us` (the
    /// sim clock of the policy decision that triggered it). The cover
    /// generation is kept: this is the pre-adaptive operator rotation
    /// every pinned trace was recorded against.
    pub fn rotate_at(&self, t_us: u64) -> BlindingScheme {
        self.rotate_inner(t_us, false)
    }

    /// Rotates to the next scheme AND advances the cover-path
    /// generation, so the new deployment fronts an endpoint the censor
    /// has never fingerprinted. This is the detection-driven defense's
    /// rotation: a codec change alone re-uses one of finitely many
    /// covers, and an adaptive censor eventually holds a live signature
    /// for all of them.
    pub fn rotate_fresh_at(&self, t_us: u64) -> BlindingScheme {
        self.rotate_inner(t_us, true)
    }

    fn rotate_inner(&self, t_us: u64, fresh_cover: bool) -> BlindingScheme {
        let rotation = BlindingScheme::rotation();
        let cur = self.get();
        let idx = rotation.iter().position(|s| *s == cur).unwrap_or(0);
        let next = rotation[(idx + 1) % rotation.len()];
        let generation = {
            let mut inner = self.0.borrow_mut();
            inner.0 = next;
            if fresh_cover {
                inner.1 += 1;
            }
            inner.1
        };
        sc_obs::counter_add("scholarcloud.scheme_rotations", 1);
        if sc_obs::is_enabled(sc_obs::Level::Info, "scholarcloud") {
            let mut ev =
                sc_obs::Event::new(t_us, sc_obs::Level::Info, "scholarcloud", "scheme", "rotate")
                    .field("from", format!("{cur:?}"))
                    .field("to", format!("{next:?}"));
            if fresh_cover {
                ev = ev.field("generation", u64::from(generation));
            }
            sc_obs::emit(ev);
        }
        next
    }
}

/// Shared interference telemetry between the proxies. The operator runs
/// both ends, so the remote's view of hostile probing is available to the
/// domestic side's rotation policy without an in-band channel — the same
/// control-plane sharing as [`SchemeHandle`].
#[derive(Debug, Clone, Default)]
pub struct InterferencePad(Rc<RefCell<InterferenceCounters>>);

/// What the pad accumulates.
#[derive(Debug, Default)]
pub struct InterferenceCounters {
    /// Connections the remote side decoyed because they replayed a
    /// previously seen preamble — the signature of an adaptive censor's
    /// probing campaign, not of a misconfigured client.
    pub probe_sightings: u64,
}

impl InterferencePad {
    /// A fresh pad with zeroed counters.
    pub fn new() -> Self {
        InterferencePad::default()
    }

    /// Records one probe sighting (remote side).
    pub fn note_probe(&self) {
        self.0.borrow_mut().probe_sightings += 1;
    }

    /// Total probe sightings so far (domestic side reads this).
    pub fn probe_sightings(&self) -> u64 {
        self.0.borrow().probe_sightings
    }
}

/// The domestic proxy's detection-driven scheme-rotation policy: rotate
/// the blinding scheme when observed interference (breaker openings plus
/// remote-side probe sightings) crosses `threshold` new units since the
/// last rotation, but never twice within `cooldown`. Rotation is driven
/// by evidence of detection, not a timer — an undetected scheme is left
/// alone indefinitely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RotationPolicy {
    /// New interference units (breaker openings + probe sightings) that
    /// trigger a rotation.
    pub threshold: u64,
    /// Minimum spacing between rotations.
    pub cooldown: SimDuration,
}

impl Default for RotationPolicy {
    fn default() -> Self {
        RotationPolicy { threshold: 3, cooldown: SimDuration::from_secs(10) }
    }
}

impl Default for SchemeHandle {
    fn default() -> Self {
        SchemeHandle::new(BlindingScheme::ByteMap)
    }
}

/// Tunables for the domestic proxy's failure handling: per-attempt
/// connect deadlines, retry budget and backoff, circuit breaking, active
/// probing, and the fail-fast window for requests parked while every
/// remote is dark.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// How long a tunnel (or probe) connect may take before the attempt
    /// is aborted and counted as a failure.
    pub connect_timeout: SimDuration,
    /// Total connect attempts per browser request before it fails with
    /// 502 (first try included).
    pub max_attempts: u32,
    /// Delay schedule between attempts.
    pub backoff: BackoffPolicy,
    /// Consecutive failures that open a remote's circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker refuses traffic before half-opening.
    pub breaker_cooldown: SimDuration,
    /// Interval between active health-probe rounds (probes target
    /// remotes that are unproven or unhealthy).
    pub probe_interval: SimDuration,
    /// How long a request may stay parked waiting for *any* remote to
    /// come back before it fails fast with 503.
    pub queue_fail_after: SimDuration,
    /// Transparently re-establish a tunnel that is RST mid-stream
    /// before the first downstream byte arrives. The adaptive censor's
    /// learned-signature RESET lands exactly there — on the preamble,
    /// after the connect succeeded — where the plain retry budget no
    /// longer applies; without this, one detection kills every stream
    /// in flight even though rotation reacts within the same instant.
    /// Off by default: pre-adaptive traces were pinned without it.
    pub stream_resume: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            connect_timeout: SimDuration::from_secs(2),
            max_attempts: 3,
            backoff: BackoffPolicy::default(),
            breaker_threshold: 2,
            breaker_cooldown: SimDuration::from_secs(8),
            probe_interval: SimDuration::from_secs(2),
            queue_fail_after: SimDuration::from_secs(2),
            stream_resume: false,
        }
    }
}

/// Full ScholarCloud deployment parameters, shared by both proxies.
#[derive(Debug, Clone)]
pub struct ScConfig {
    /// The domestic proxy's address (inside the wall).
    pub domestic: SocketAddr,
    /// The primary remote proxy's address (outside the wall). Kept for
    /// single-remote deployments and as `remotes[0]`.
    pub remote: SocketAddr,
    /// Every remote proxy the domestic side may tunnel through, in
    /// preference order (the paper's §4.2 answer to IP blacklisting:
    /// cheap cloud VMs are expendable; spin up siblings and fail over).
    pub remotes: Vec<SocketAddr>,
    /// Failure-handling tunables for the domestic side.
    pub resilience: ResilienceConfig,
    /// Overload-control tunables for the domestic side (admission,
    /// fairness, retry budget).
    pub admission: AdmissionConfig,
    /// Operator shared secret (authenticates the inter-proxy channel).
    pub secret: Vec<u8>,
    /// Host header fronted in the cover preamble.
    pub front_host: String,
    /// The reviewable whitelist of legal-but-blocked domains (§3:
    /// government agencies can inspect and amend it).
    pub whitelist: Vec<String>,
    /// Live blinding-scheme control.
    pub scheme: SchemeHandle,
    /// The domestic proxy's shared content cache (plain-HTTP gateway
    /// traffic only; CONNECT tunnels are opaque). A zero-byte budget
    /// disables caching while keeping the gateway path — the cache-off
    /// control in experiments. The handle is shared so the harness can
    /// read hit/miss statistics after a run.
    pub cache: CacheHandle,
    /// Shared interference telemetry (remote writes, domestic reads).
    pub interference: InterferencePad,
    /// Detection-driven scheme rotation. `None` (the default) keeps the
    /// scheme fixed for the whole deployment — the pre-adaptive behavior
    /// every pinned trace was recorded against.
    pub rotation: Option<RotationPolicy>,
}

impl ScConfig {
    /// The deployment shape from the paper: a domestic VM at Tsinghua and
    /// a remote VM in San Mateo, whitelisting Google Scholar.
    pub fn new(domestic_addr: Addr, remote_addr: Addr) -> Self {
        let remote = SocketAddr::new(remote_addr, REMOTE_PORT);
        ScConfig {
            domestic: SocketAddr::new(domestic_addr, DOMESTIC_PORT),
            remote,
            remotes: vec![remote],
            resilience: ResilienceConfig::default(),
            admission: AdmissionConfig::default(),
            secret: b"scholarcloud-operator-secret-2016".to_vec(),
            front_host: "cdn.thucloud.example".into(),
            whitelist: vec!["scholar.google.com".into(), "www.google.com".into()],
            scheme: SchemeHandle::default(),
            cache: CacheHandle::new(CacheConfig::default()),
            interference: InterferencePad::new(),
            rotation: None,
        }
    }

    /// Replaces the shared content cache's configuration (byte budget,
    /// default TTL, per-host TTL overrides), resetting its contents.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = CacheHandle::new(cache);
        self
    }

    /// Replaces the remote pool with `addrs` (each listening on
    /// [`REMOTE_PORT`]); `remote` tracks the first entry.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    pub fn with_remotes(mut self, addrs: &[Addr]) -> Self {
        assert!(!addrs.is_empty(), "need at least one remote");
        self.remotes = addrs.iter().map(|&a| SocketAddr::new(a, REMOTE_PORT)).collect();
        self.remote = self.remotes[0];
        self
    }

    /// The PAC file users point their browsers at: whitelisted domains go
    /// to the domestic proxy, everything else DIRECT.
    pub fn pac_file(&self) -> PacFile {
        PacFile::new(self.whitelist.iter().cloned(), self.domestic)
    }

    /// Whether `host` is on the whitelist.
    pub fn whitelisted(&self, host: &str) -> bool {
        let host = host.to_ascii_lowercase();
        self.whitelist
            .iter()
            .any(|d| host == *d || host.ends_with(&format!(".{d}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_netproto::pac::ProxyDecision;

    fn config() -> ScConfig {
        ScConfig::new(Addr::new(10, 1, 0, 1), Addr::new(99, 0, 0, 40))
    }

    #[test]
    fn pac_routes_only_whitelist_to_proxy() {
        let cfg = config();
        let pac = cfg.pac_file();
        assert_eq!(
            pac.decide("scholar.google.com"),
            ProxyDecision::Proxy(cfg.domestic)
        );
        assert_eq!(pac.decide("baidu.com"), ProxyDecision::Direct);
        // The generated JavaScript parses back to the same policy.
        let parsed = sc_netproto::pac::PacFile::parse(&pac.to_javascript()).unwrap();
        assert_eq!(parsed, pac);
    }

    #[test]
    fn scheme_rotation_cycles() {
        let h = SchemeHandle::default();
        let start = h.get();
        let mut seen = vec![start];
        for _ in 0..BlindingScheme::rotation().len() - 1 {
            seen.push(h.rotate());
        }
        assert_eq!(h.rotate(), start, "rotation should cycle");
        seen.sort_by_key(|s| s.wire_id());
        seen.dedup();
        assert_eq!(seen.len(), BlindingScheme::rotation().len());
    }

    #[test]
    fn whitelist_matches_subdomains() {
        let cfg = config();
        assert!(cfg.whitelisted("scholar.google.com"));
        assert!(cfg.whitelisted("cache.Scholar.google.com"));
        assert!(!cfg.whitelisted("notscholar.example"));
    }
}
