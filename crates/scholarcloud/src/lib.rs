//! # sc-core — ScholarCloud
//!
//! The paper's primary contribution: a split-proxy system that lets users
//! inside an extreme censorship regime reach *legal but incidentally
//! blocked* services (Google Scholar) with nothing but a browser PAC
//! setting.
//!
//! * [`config`] — deployment parameters, the reviewable whitelist, PAC
//!   generation, and live blinding-scheme rotation.
//! * [`domestic`] — the domestic proxy users talk to (HTTP CONNECT /
//!   absolute-form proxy, whitelist enforcement, tunnel origination).
//! * [`remote`] — the remote proxy outside the wall (preamble
//!   authentication, deblinding, exit-side name resolution, HTTP decoy for
//!   probes).
//! * [`frame`] — the inter-proxy wire protocol: HTTP-shaped cover
//!   preamble + blinded (and, for non-TLS payloads, encrypted) stream.
//! * [`ops`] — the deployment's cost/usage model (2 VMs, 2.2 USD/day).
//!
//! ## Why it beats the GFW in the simulation (and the paper)
//!
//! 1. The cover preamble makes the flow classify as plain HTTP, so the
//!    "fully encrypted traffic" heuristic that flags Shadowsocks never
//!    fires.
//! 2. Message blinding destroys the embedded TLS ClientHello pattern, so
//!    the GFW's in-body SNI scan finds nothing (disable blinding and it
//!    does — see the `ablation_blinding` bench).
//! 3. Anything that fails the preamble MAC — including active probes —
//!    receives an nginx-style 400, so probing classifies the remote as an
//!    innocent web server.
//! 4. The operator controls both proxies, so when the censor learns one
//!    scheme's signature the scheme rotates (`SchemeHandle::rotate`);
//!    Tor and Shadowsocks would need to upgrade relays or user clients.

#![warn(missing_docs)]

pub mod admission;
pub mod config;
pub mod domestic;
pub mod elastic;
pub mod fleet;
pub mod frame;
pub mod ops;
pub mod remote;
pub mod resilience;

pub use admission::{AdmissionConfig, AdmissionController, Decision, Dequeued, RetryBudget, TokenBucket};
pub use config::{
    InterferencePad, ResilienceConfig, RotationPolicy, ScConfig, SchemeHandle, DOMESTIC_PORT,
    REMOTE_PORT,
};
pub use sc_cache::{CacheConfig, CacheHandle, CacheStats, ShardMap};
pub use domestic::DomesticProxy;
pub use elastic::{
    DrainReason, ElasticAction, ElasticConfig, ElasticHandle, ElasticPool, Instance,
    InstanceState,
};
pub use fleet::{FleetHandle, FleetMember, ShardSickness};
pub use frame::{Hello, StreamCodec, StreamHeader};
pub use ops::Deployment;
pub use remote::RemoteProxy;
pub use resilience::{BackoffPolicy, BreakerState, CircuitBreaker, RemotePool};
