//! The domestic-proxy fleet tier: shared membership, cache-shard
//! ownership, peer liveness, and fleet-wide admission pressure.
//!
//! The paper's artifact is ONE domestic proxy — a single point of
//! failure for the whole legal avenue. Production is a fleet: N
//! [`DomesticProxy`](crate::DomesticProxy) instances behind client-side
//! PAC failover, with the shared content cache *sharded* across them by
//! rendezvous hashing ([`sc_cache::ShardMap`]) so each `(host, path)`
//! key has exactly one owner. A miss at a non-owner costs one
//! intra-fleet peering hop to the owner (whose local singleflight then
//! coalesces the whole fleet's demand into one upstream fetch) instead
//! of a scarce cross-border fetch.
//!
//! Two kinds of state live here:
//!
//! * [`FleetHandle`] — the `Rc<RefCell<_>>`-shared roster: member
//!   gateway addresses, the shard map, and each shard's published
//!   sickness (admission queue depth + service-time EWMA). Shared the
//!   same way [`sc_cache::CacheHandle`] already is; in a real
//!   deployment this is the proxies' gossip/config plane.
//! * [`FleetMember`] — one proxy's private view: its own shard index
//!   plus per-peer dead-marks with deterministic re-probe backoff. Peer
//!   liveness is deliberately *local* knowledge (each proxy learns of a
//!   dead peer by its own failed hop), so placement never depends on
//!   another node's observation order.

use std::cell::RefCell;
use std::rc::Rc;

use sc_cache::{CacheKey, ShardMap};
use sc_simnet::addr::SocketAddr;
use sc_simnet::time::{SimDuration, SimTime};

/// First re-probe delay after a peer dead-mark; doubles per consecutive
/// failure up to [`PEER_DEAD_CAP`].
const PEER_DEAD_BASE: SimDuration = SimDuration::from_millis(500);
/// Upper bound on the peer re-probe backoff.
const PEER_DEAD_CAP: SimDuration = SimDuration::from_secs(8);

/// One shard's published admission pressure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSickness {
    /// Admission queue depth last published by the shard.
    pub queue_depth: usize,
    /// Service-time EWMA (µs) last published by the shard.
    pub service_estimate_us: u64,
}

/// Shared fleet roster + sickness board.
#[derive(Debug)]
pub struct Fleet {
    members: Vec<SocketAddr>,
    shards: ShardMap,
    sickness: Vec<ShardSickness>,
}

/// Cloneable shared handle to the fleet roster.
#[derive(Debug, Clone)]
pub struct FleetHandle(Rc<RefCell<Fleet>>);

impl FleetHandle {
    /// A fleet over the given member gateway addresses (shard index =
    /// position in `members`).
    pub fn new(members: Vec<SocketAddr>) -> Self {
        let shards = ShardMap::new(members.len());
        let sickness = vec![ShardSickness::default(); members.len()];
        FleetHandle(Rc::new(RefCell::new(Fleet { members, shards, sickness })))
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.borrow().members.len()
    }

    /// Whether the fleet has no members.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().members.is_empty()
    }

    /// Gateway address of member `idx`.
    pub fn member_addr(&self, idx: usize) -> SocketAddr {
        self.0.borrow().members[idx]
    }

    /// The owner of `key` among the members marked alive.
    pub fn owner_among(&self, key: &CacheKey, alive: &[bool]) -> Option<usize> {
        self.0.borrow().shards.owner_among(key, alive)
    }

    /// Publishes shard `idx`'s current admission pressure.
    pub fn publish(&self, idx: usize, queue_depth: usize, service_estimate: SimDuration) {
        self.0.borrow_mut().sickness[idx] = ShardSickness {
            queue_depth,
            service_estimate_us: service_estimate.as_micros(),
        };
    }

    /// Total published queue depth across the fleet.
    pub fn total_queue_depth(&self) -> usize {
        self.0.borrow().sickness.iter().map(|s| s.queue_depth).sum()
    }

    /// The sickest shard right now: deepest queue first, slowest
    /// service EWMA second, lowest index as the deterministic tie-break.
    pub fn sickest(&self) -> usize {
        let fleet = self.0.borrow();
        (0..fleet.sickness.len())
            .max_by_key(|&i| {
                let s = &fleet.sickness[i];
                // max_by_key keeps the LAST max on ties; invert the
                // index so the lowest one wins deterministically.
                (s.queue_depth, s.service_estimate_us, std::cmp::Reverse(i))
            })
            .unwrap_or(0)
    }

    /// Published sickness of shard `idx` (dashboards/tests).
    pub fn sickness(&self, idx: usize) -> ShardSickness {
        self.0.borrow().sickness[idx]
    }
}

/// One proxy's private fleet view: its shard index plus per-peer
/// dead-marks with deterministic exponential re-probe backoff.
#[derive(Debug)]
pub struct FleetMember {
    /// This proxy's shard index.
    pub self_idx: usize,
    /// The shared roster.
    pub handle: FleetHandle,
    /// Per-peer: do not re-attempt the peer before this instant.
    dead_until: Vec<SimTime>,
    /// Per-peer consecutive-failure count (backoff level).
    fail_level: Vec<u32>,
}

impl FleetMember {
    /// A member's view, all peers presumed alive.
    pub fn new(self_idx: usize, handle: FleetHandle) -> Self {
        let n = handle.len();
        assert!(self_idx < n, "member index outside the roster");
        FleetMember {
            self_idx,
            handle,
            dead_until: vec![SimTime::ZERO; n],
            fail_level: vec![0; n],
        }
    }

    /// Whether peer `idx` is currently attemptable. Self is always
    /// alive. A dead-marked peer becomes attemptable again once its
    /// backoff elapses — the next peering hop doubles as the re-probe.
    pub fn peer_alive(&self, idx: usize, now: SimTime) -> bool {
        idx == self.self_idx || self.dead_until[idx] <= now
    }

    /// The liveness vector at `now` (self always alive).
    pub fn alive_vec(&self, now: SimTime) -> Vec<bool> {
        (0..self.dead_until.len()).map(|i| self.peer_alive(i, now)).collect()
    }

    /// The owner shard for `key` among currently attemptable members.
    /// Falls back to `self` if somehow nobody is alive (cannot happen:
    /// self always is).
    pub fn owner_for(&self, key: &CacheKey, now: SimTime) -> usize {
        self.handle
            .owner_among(key, &self.alive_vec(now))
            .unwrap_or(self.self_idx)
    }

    /// Marks peer `idx` dead after a failed hop; returns the backoff
    /// until the next re-probe (500 ms · 2^level, capped at 8 s).
    pub fn mark_peer_dead(&mut self, idx: usize, now: SimTime) -> SimDuration {
        let level = self.fail_level[idx];
        self.fail_level[idx] = level.saturating_add(1);
        let backoff = PEER_DEAD_BASE
            .saturating_mul(1u64 << level.min(4))
            .clamp(PEER_DEAD_BASE, PEER_DEAD_CAP);
        self.dead_until[idx] = now + backoff;
        backoff
    }

    /// A hop to peer `idx` succeeded: clear its dead state (rejoin).
    /// Returns whether the peer had been marked dead.
    pub fn mark_peer_up(&mut self, idx: usize) -> bool {
        let was_dead = self.fail_level[idx] > 0;
        self.fail_level[idx] = 0;
        self.dead_until[idx] = SimTime::ZERO;
        was_dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_simnet::addr::Addr;

    fn members(n: usize) -> Vec<SocketAddr> {
        (0..n).map(|i| SocketAddr::new(Addr::new(10, 1, 0, 1 + i as u8), 8080)).collect()
    }

    fn key(path: &str) -> CacheKey {
        ("scholar.google.com".to_string(), path.to_string())
    }

    #[test]
    fn dead_mark_backs_off_exponentially_and_rejoins() {
        let fleet = FleetHandle::new(members(3));
        let mut m = FleetMember::new(0, fleet);
        let t0 = SimTime::from_secs(10);
        assert!(m.peer_alive(1, t0));
        let b0 = m.mark_peer_dead(1, t0);
        assert_eq!(b0, SimDuration::from_millis(500));
        assert!(!m.peer_alive(1, t0));
        assert!(m.peer_alive(1, t0 + b0), "backoff elapsed: re-probe allowed");
        let b1 = m.mark_peer_dead(1, t0 + b0);
        assert_eq!(b1, SimDuration::from_secs(1), "doubles per failure");
        for _ in 0..10 {
            let _ = m.mark_peer_dead(1, t0);
        }
        assert!(m.mark_peer_dead(1, t0) <= SimDuration::from_secs(8), "capped");
        assert!(m.mark_peer_up(1), "was dead");
        assert!(m.peer_alive(1, t0));
        assert!(!m.mark_peer_up(1), "already up");
    }

    #[test]
    fn owner_routes_around_dead_peers_and_back() {
        let fleet = FleetHandle::new(members(4));
        let mut m = FleetMember::new(0, fleet);
        let now = SimTime::from_secs(1);
        // Find a key owned by some peer (not self).
        let k = (0..100)
            .map(|i| key(&format!("/p{i}")))
            .find(|k| m.owner_for(k, now) != 0)
            .expect("rendezvous spreads keys");
        let owner = m.owner_for(&k, now);
        let backoff = m.mark_peer_dead(owner, now);
        let moved = m.owner_for(&k, now);
        assert_ne!(moved, owner, "dead owner's keyspace moves");
        assert_eq!(m.owner_for(&k, now + backoff), owner, "moves back after backoff");
    }

    #[test]
    fn sickest_shard_is_deepest_queue_with_index_tiebreak() {
        let fleet = FleetHandle::new(members(3));
        assert_eq!(fleet.sickest(), 0, "all-equal tie breaks low");
        fleet.publish(2, 5, SimDuration::from_millis(80));
        fleet.publish(1, 5, SimDuration::from_millis(80));
        assert_eq!(fleet.sickest(), 1, "equal sickness tie breaks on index");
        fleet.publish(2, 9, SimDuration::from_millis(10));
        assert_eq!(fleet.sickest(), 2, "queue depth dominates");
        assert_eq!(fleet.total_queue_depth(), 14);
    }
}
