//! The ScholarCloud inter-proxy wire protocol.
//!
//! A domestic→remote connection looks, to an on-path observer, like an
//! ordinary HTTP upload: a printable request head (the *cover preamble*)
//! followed by an octet-stream body. The body is the user's traffic,
//! passed through a confidential [`Blinder`] (and encrypted with a
//! session key when it is not already TLS).
//!
//! The preamble carries an HMAC proof of the shared secret. Anything that
//! fails the proof — including the GFW's active prober — receives a bland
//! HTTP 400 decoy, which is why probing never confirms a ScholarCloud
//! remote (§3, "message blinding"; probe resistance).

use sc_crypto::blinding::{Blinder, BlindingScheme};
use sc_crypto::hmac::{ct_eq, hkdf, hmac_sha256};
use sc_crypto::sha256::sha256;
use sc_crypto::modes::Ctr;
use sc_crypto::{Aes, KeySize};
use sc_netproto::socks::TargetAddr;

/// Each blinding scheme fronts as a different innocuous endpoint, so a
/// censor signature written against one scheme's cover does not match the
/// next (the paper's agility argument).
pub fn cover_path(scheme: BlindingScheme) -> &'static str {
    match scheme {
        BlindingScheme::Identity => "/raw",
        BlindingScheme::ByteMap => "/api/sync",
        BlindingScheme::XorRolling => "/cdn/upload",
        BlindingScheme::NibbleSwap => "/static/blob",
    }
}

/// Path segments the generation-derived covers are assembled from:
/// boring CDN/API vocabulary, so any derived endpoint reads like the
/// upload path of yet another web app.
const COVER_DIRS: [&str; 16] = [
    "api", "cdn", "static", "assets", "media", "files", "data", "svc", "app", "edge", "img",
    "pkg", "ext", "feeds", "hooks", "gw",
];
const COVER_LEAVES: [&str; 16] = [
    "sync", "upload", "blob", "push", "batch", "ingest", "beacon", "report", "submit", "store",
    "put", "send", "collect", "track", "log", "events",
];

/// The cover endpoint for a scheme at a given rotation *generation*.
///
/// Generation 0 is the fixed paths every pre-adaptive trace was pinned
/// against; later generations derive a fresh innocuous path from the
/// scheme and the generation counter. This is the half of the agility
/// argument a 3-scheme codec rotation alone cannot deliver: an adaptive
/// censor fingerprints the cover preamble, and with a finite set of
/// covers it eventually holds a live signature for every one of them.
/// The operator controls both proxies, so each detection-driven
/// rotation can front an endpoint the censor has never seen — the
/// censor's classifier restarts from zero while the old signature
/// starves out its TTL.
pub fn cover_path_gen(scheme: BlindingScheme, generation: u32) -> String {
    if generation == 0 {
        return cover_path(scheme).to_string();
    }
    let mut msg = Vec::with_capacity(16);
    msg.extend_from_slice(b"scholarcloud-cover-v1");
    msg.push(scheme.wire_id());
    msg.extend_from_slice(&generation.to_le_bytes());
    let d = sha256(&msg);
    format!(
        "/{}/{}-{:02x}{:02x}",
        COVER_DIRS[(d[0] & 0x0f) as usize],
        COVER_LEAVES[(d[1] & 0x0f) as usize],
        d[2],
        d[3],
    )
}

/// The parsed cover preamble.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Blinding scheme for the rest of the stream.
    pub scheme: BlindingScheme,
    /// Session nonce (keys are derived from secret + nonce).
    pub nonce: u64,
    /// Cover-path generation (see [`cover_path_gen`]). Carried by the
    /// path itself, not the MAC: it selects cover dressing only — keys
    /// derive from secret + nonce regardless.
    pub generation: u32,
}

fn mac_hex(secret: &[u8], scheme: BlindingScheme, nonce: u64) -> String {
    let mut msg = Vec::with_capacity(16);
    msg.push(scheme.wire_id());
    msg.extend_from_slice(&nonce.to_be_bytes());
    let tag = hmac_sha256(secret, &msg);
    tag[..12].iter().map(|b| format!("{b:02x}")).collect()
}

impl Hello {
    /// Renders the cover preamble (a complete HTTP request head).
    pub fn encode(&self, secret: &[u8], front_host: &str) -> Vec<u8> {
        let mac = mac_hex(secret, self.scheme, self.nonce);
        format!(
            "POST {} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/octet-stream\r\nX-Req-Id: {:016x}\r\nX-Trace: {}\r\nTransfer-Encoding: chunked\r\n\r\n",
            cover_path_gen(self.scheme, self.generation),
            front_host,
            self.nonce,
            mac,
        )
        .into_bytes()
    }

    /// Attempts to parse and authenticate a preamble from the start of a
    /// stream. Returns the hello and bytes consumed, `Ok(None)` if more
    /// data is needed, or `Err(())` if the head is complete but invalid
    /// (serve the decoy).
    ///
    /// `generation` is the receiver's current cover-path generation;
    /// the previous generation is also accepted so flows already in
    /// flight when a rotation lands still authenticate. Anything older
    /// — including an active prober replaying a long-captured preamble
    /// — no longer parses and gets the decoy.
    #[allow(clippy::result_unit_err)]
    pub fn parse(
        secret: &[u8],
        generation: u32,
        data: &[u8],
    ) -> Result<Option<(Hello, usize)>, ()> {
        let Some(head_end) = data.windows(4).position(|w| w == b"\r\n\r\n") else {
            // An absurdly long "head" is not a preamble.
            return if data.len() > 4096 { Err(()) } else { Ok(None) };
        };
        let head = std::str::from_utf8(&data[..head_end]).map_err(|_| ())?;
        let mut lines = head.split("\r\n");
        let start = lines.next().ok_or(())?;
        let path = start.strip_prefix("POST ").and_then(|s| s.strip_suffix(" HTTP/1.1")).ok_or(())?;
        let (scheme, generation) = [
            BlindingScheme::Identity,
            BlindingScheme::ByteMap,
            BlindingScheme::XorRolling,
            BlindingScheme::NibbleSwap,
        ]
        .into_iter()
        .flat_map(|s| {
            [generation, generation.saturating_sub(1)].map(move |g| (s, g))
        })
        .find(|&(s, g)| cover_path_gen(s, g) == path)
        .ok_or(())?;
        let mut nonce = None;
        let mut trace = None;
        for line in lines {
            if let Some(v) = line.strip_prefix("X-Req-Id: ") {
                nonce = u64::from_str_radix(v.trim(), 16).ok();
            } else if let Some(v) = line.strip_prefix("X-Trace: ") {
                trace = Some(v.trim().to_string());
            }
        }
        let (Some(nonce), Some(trace)) = (nonce, trace) else { return Err(()) };
        let expect = mac_hex(secret, scheme, nonce);
        if !ct_eq(expect.as_bytes(), trace.as_bytes()) {
            return Err(());
        }
        Ok(Some((Hello { scheme, nonce, generation }, head_end + 4)))
    }
}

/// Derives the session key for a hello.
pub fn session_key(secret: &[u8], nonce: u64) -> [u8; 32] {
    hkdf(&nonce.to_be_bytes(), secret, b"scholarcloud-session", 32)
        .try_into()
        .expect("32-byte output")
}

/// The per-stream header inside the tunnel: whether the payload is
/// already TLS (in which case ScholarCloud does not re-encrypt) and the
/// target the remote proxy should dial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamHeader {
    /// Payload is already end-to-end encrypted (HTTPS).
    pub is_tls: bool,
    /// End-to-end trace id of the originating browser request (0 when
    /// the stream is untraced). Carried in-band so the remote proxy can
    /// parent its relay span into the same trace tree.
    pub trace: u64,
    /// Span id on the domestic side that caused this stream (0 when
    /// tracing is disabled).
    pub parent: u64,
    /// Where the remote proxy should connect.
    pub target: TargetAddr,
}

impl StreamHeader {
    /// Encodes: flag(1) ‖ trace(8) ‖ parent(8) ‖ target (SOCKS format),
    /// length-prefixed. The trace fields are fixed width — zero when
    /// untraced — so traced and untraced runs frame identically.
    pub fn encode(&self) -> Vec<u8> {
        let t = self.target.encode();
        let mut out = Vec::with_capacity(t.len() + 19);
        out.extend_from_slice(&((t.len() + 17) as u16).to_be_bytes());
        out.push(self.is_tls as u8);
        out.extend_from_slice(&self.trace.to_be_bytes());
        out.extend_from_slice(&self.parent.to_be_bytes());
        out.extend_from_slice(&t);
        out
    }

    /// Decodes from the front of `data`; returns header + bytes consumed,
    /// or `None` if incomplete/invalid.
    pub fn decode(data: &[u8]) -> Option<(StreamHeader, usize)> {
        if data.len() < 2 {
            return None;
        }
        let len = u16::from_be_bytes([data[0], data[1]]) as usize;
        if len < 18 || data.len() < 2 + len {
            return None;
        }
        let is_tls = match data[2] {
            0 => false,
            1 => true,
            _ => return None,
        };
        let trace = u64::from_be_bytes(data[3..11].try_into().ok()?);
        let parent = u64::from_be_bytes(data[11..19].try_into().ok()?);
        let (target, used) = TargetAddr::decode(&data[19..2 + len])?;
        if used != len - 17 {
            return None;
        }
        Some((StreamHeader { is_tls, trace, parent, target }, 2 + len))
    }
}

/// The symmetric stream codec used on each side of the tunnel: blinding
/// always; encryption only when the payload is not already TLS.
pub struct StreamCodec {
    blinder: Box<dyn Blinder>,
    cipher: Option<Ctr>,
    encode_pos: u64,
    decode_pos: u64,
}

impl core::fmt::Debug for StreamCodec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StreamCodec")
            .field("scheme", &self.blinder.scheme())
            .field("encrypting", &self.cipher.is_some())
            .finish()
    }
}

impl StreamCodec {
    /// Creates the codec for one direction of one stream.
    ///
    /// `dir` distinguishes the two directions so they use independent
    /// cipher streams.
    pub fn new(secret: &[u8], hello: &Hello, encrypt: bool, dir: u8) -> Self {
        let blinder = hello.scheme.instantiate(&session_key(secret, hello.nonce));
        let cipher = encrypt.then(|| {
            let key = session_key(secret, hello.nonce ^ 0xd1d1_d1d1);
            let mut nonce = [0u8; 16];
            nonce[0] = dir;
            Ctr::new(Aes::new(KeySize::Aes256, &key).expect("32-byte key"), nonce)
        });
        StreamCodec { blinder, cipher, encode_pos: 0, decode_pos: 0 }
    }

    /// Transforms plaintext into wire bytes (encrypt-then-blind).
    pub fn encode(&mut self, data: &mut [u8]) {
        if let Some(c) = self.cipher.as_mut() {
            c.apply(data);
        }
        self.blinder.encode(data, self.encode_pos);
        self.encode_pos += data.len() as u64;
    }

    /// Transforms wire bytes back into plaintext (deblind-then-decrypt).
    ///
    /// Note: each direction needs its own codec; `decode` here exists for
    /// the peer's symmetric instance.
    pub fn decode(&mut self, data: &mut [u8]) {
        self.blinder.decode(data, self.decode_pos);
        self.decode_pos += data.len() as u64;
        if let Some(c) = self.cipher.as_mut() {
            c.apply(data);
        }
    }
}

/// Whether `buf` could still grow into a valid cover preamble. The remote
/// proxy serves the decoy as soon as this returns `false`, so probes (48
/// bytes of garbage) are answered like a web server instead of hanging —
/// hanging is exactly the signature the GFW's prober confirms.
pub fn could_be_preamble(buf: &[u8]) -> bool {
    if buf.len() > 4096 {
        return false;
    }
    let prefix = b"POST /";
    let n = buf.len().min(prefix.len());
    buf[..n] == prefix[..n]
}

/// The decoy response served to anything that fails authentication.
pub fn decoy_response() -> Vec<u8> {
    b"HTTP/1.1 400 Bad Request\r\nServer: nginx/1.10.3\r\nContent-Type: text/html\r\nContent-Length: 166\r\nConnection: close\r\n\r\n<html>\r\n<head><title>400 Bad Request</title></head>\r\n<body bgcolor=\"white\">\r\n<center><h1>400 Bad Request</h1></center>\r\n<hr><center>nginx/1.10.3</center>\r\n</body>\r\n</html>"
        .to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_simnet::addr::Addr;

    const SECRET: &[u8] = b"shared-operator-secret";

    #[test]
    fn hello_roundtrip() {
        let hello = Hello { scheme: BlindingScheme::ByteMap, nonce: 0xdead_beef, generation: 0 };
        let wire = hello.encode(SECRET, "cdn.front.example");
        let (parsed, used) = Hello::parse(SECRET, 0, &wire).unwrap().unwrap();
        assert_eq!(parsed, hello);
        assert_eq!(used, wire.len());
        // The preamble must look like printable HTTP to DPI.
        assert!(wire.starts_with(b"POST /api/sync HTTP/1.1\r\n"));
        let stats = sc_crypto::entropy::PayloadStats::analyze(&wire);
        assert!(stats.printable > 0.95);
    }

    #[test]
    fn hello_rejects_wrong_secret() {
        let hello = Hello { scheme: BlindingScheme::ByteMap, nonce: 7, generation: 0 };
        let wire = hello.encode(SECRET, "h");
        assert!(Hello::parse(b"other-secret", 0, &wire).is_err());
    }

    #[test]
    fn hello_rejects_garbage_and_honest_http() {
        assert!(Hello::parse(SECRET, 0, b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").is_err());
        let garbage = vec![0xa7u8; 5000];
        assert!(Hello::parse(SECRET, 0, &garbage).is_err());
        // Incomplete head: need more data.
        assert_eq!(Hello::parse(SECRET, 0, b"POST /api/sync HTT").unwrap(), None);
    }

    #[test]
    fn each_scheme_has_distinct_cover_path() {
        let paths: std::collections::HashSet<&str> = BlindingScheme::rotation()
            .into_iter()
            .map(cover_path)
            .collect();
        assert_eq!(paths.len(), BlindingScheme::rotation().len());
    }

    #[test]
    fn stream_header_roundtrip() {
        for header in [
            StreamHeader {
                is_tls: true,
                trace: 0xfeed_face_cafe_f00d,
                parent: 42,
                target: TargetAddr::Domain("scholar.google.com".into(), 443),
            },
            StreamHeader {
                is_tls: false,
                trace: 0,
                parent: 0,
                target: TargetAddr::Ip(Addr::new(99, 2, 0, 1), 80),
            },
        ] {
            let enc = header.encode();
            let (dec, used) = StreamHeader::decode(&enc).unwrap();
            assert_eq!(dec, header);
            assert_eq!(used, enc.len());
        }
        assert!(StreamHeader::decode(&[0, 1]).is_none());
    }

    #[test]
    fn codec_roundtrip_with_and_without_encryption() {
        let hello = Hello { scheme: BlindingScheme::ByteMap, nonce: 99, generation: 0 };
        for encrypt in [false, true] {
            let mut a = StreamCodec::new(SECRET, &hello, encrypt, 0);
            let mut b = StreamCodec::new(SECRET, &hello, encrypt, 0);
            let plain = b"GET /scholar HTTP/1.1\r\nHost: scholar.google.com\r\n\r\n".to_vec();
            let mut wire = plain.clone();
            a.encode(&mut wire);
            assert_ne!(wire, plain);
            b.decode(&mut wire);
            assert_eq!(wire, plain, "encrypt={encrypt}");
        }
    }

    #[test]
    fn blinded_tls_hides_client_hello() {
        // The core claim: a TLS ClientHello passed through the codec is no
        // longer recognizable by the GFW's SNI sniffer.
        let mut tls = sc_netproto::TlsClient::new("scholar.google.com", 5);
        let hello_bytes = tls.start_handshake();
        assert!(sc_netproto::sniff_sni(&hello_bytes).is_some());
        let hello = Hello { scheme: BlindingScheme::ByteMap, nonce: 3, generation: 0 };
        let mut codec = StreamCodec::new(SECRET, &hello, false, 0);
        let mut wire = hello_bytes.clone();
        codec.encode(&mut wire);
        assert!(sc_netproto::sniff_sni(&wire).is_none());
        // And no offset scan finds it either.
        let found = (0..wire.len().saturating_sub(42))
            .any(|off| sc_netproto::sniff_sni(&wire[off..]).is_some());
        assert!(!found);
    }

    #[test]
    fn decoy_looks_like_nginx() {
        let d = decoy_response();
        assert!(d.starts_with(b"HTTP/1.1 400"));
        assert!(String::from_utf8_lossy(&d).contains("nginx"));
    }

    #[test]
    fn session_keys_differ_by_nonce() {
        assert_ne!(session_key(SECRET, 1), session_key(SECRET, 2));
        assert_eq!(session_key(SECRET, 1), session_key(SECRET, 1));
    }
}
