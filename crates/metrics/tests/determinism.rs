//! The whole harness is deterministic: identical seeds reproduce identical
//! metrics for every access method.

use sc_metrics::{Method, ScenarioConfig, run_scenario};

#[test]
fn scenarios_are_bit_for_bit_reproducible() {
    for method in [Method::ScholarCloud, Method::Shadowsocks, Method::NativeVpn] {
        let run = || {
            let mut cfg = ScenarioConfig::paper(method, 4242);
            cfg.loads = 3;
            let out = run_scenario(&cfg);
            let plts: Vec<Option<u64>> = out.loads[0]
                .iter()
                .map(|r| r.plt.map(|d| d.as_micros()))
                .collect();
            (plts, out.client_sent_bytes, out.client_recv_bytes, out.gfw)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "{method:?} must be deterministic");
    }
}
