//! Summary statistics for experiment series (means with min/max error
//! bars, as in the paper's figures).

/// Mean / min / max summary of a sample series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a slice; `None` if empty.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary { n, mean, min, max })
    }

    /// A zero summary for empty series (renders as n=0).
    pub fn empty() -> Summary {
        Summary { n: 0, mean: 0.0, min: 0.0, max: 0.0 }
    }

    /// Summarizes, defaulting to [`Summary::empty`].
    pub fn of_or_empty(samples: &[f64]) -> Summary {
        Summary::of(samples).unwrap_or_else(Summary::empty)
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.n == 0 {
            write!(f, "—")
        } else {
            write!(f, "{:.3} [{:.3}, {:.3}] (n={})", self.mean, self.min, self.max, self.n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(Summary::of(&[]).is_none());
        assert_eq!(Summary::of_or_empty(&[]).n, 0);
        assert_eq!(Summary::of_or_empty(&[]).to_string(), "—");
    }
}
