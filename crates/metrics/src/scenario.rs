//! The scenario builder: wires the paper's measurement testbed — client(s)
//! in CERNET, the GFW at the border, the VM servers in the US, Google
//! Scholar — for any access method, runs it, and collects the metrics.
//!
//! All latency/loss/bandwidth constants live in [`calibration`], each
//! annotated with the paper-derived target it reproduces.

use sc_crypto::blinding::BlindingScheme;
use sc_dns::{AuthoritativeServer, RecursiveResolver, Zone};
use sc_gfw::{ActiveProber, GfwConfig, GfwCounters, GfwHandle, GfwMiddlebox, new_gfw};
use sc_simnet::addr::{Addr, SocketAddr};
use sc_simnet::link::LinkConfig;
use sc_simnet::sim::Sim;
use sc_simnet::time::{SimDuration, SimTime};
use sc_tunnels::names::NameMap;
use sc_tunnels::shadowsocks::{SS_LOCAL_PORT, SsConfig, SsLocal, SsRemote};
use sc_tunnels::status::TunnelStatus;
use sc_tunnels::tor::{
    DIR_PORT, DirectoryServer, MEEK_PORT, MeekGateway, OR_PORT, OrRelay, TOR_SOCKS_PORT, TorClient,
    TorConfig,
};
use sc_tunnels::vpn::{VpnClient, VpnServer, VpnVariant};
use sc_web::{
    Browser, BrowserConfig, LoadLog, OriginServer, PageSpec, ProxyPolicy, ReadyProbe, new_load_log,
};

/// The access methods compared in the paper's Figures 5–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// No circumvention (blocked; baseline for overhead only).
    Direct,
    /// Native VPN (PPTP).
    NativeVpn,
    /// OpenVPN.
    OpenVpn,
    /// Tor with the meek transport.
    Tor,
    /// Shadowsocks.
    Shadowsocks,
    /// ScholarCloud.
    ScholarCloud,
}

impl Method {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Method::Direct => "Direct",
            Method::NativeVpn => "Native VPN",
            Method::OpenVpn => "OpenVPN",
            Method::Tor => "Tor",
            Method::Shadowsocks => "Shadowsocks",
            Method::ScholarCloud => "ScholarCloud",
        }
    }

    /// The five methods of Figure 5 (Direct excluded — it is blocked).
    pub fn all_measured() -> [Method; 5] {
        [
            Method::NativeVpn,
            Method::OpenVpn,
            Method::Tor,
            Method::Shadowsocks,
            Method::ScholarCloud,
        ]
    }
}

/// Calibration constants with their paper-derived targets.
pub mod calibration {
    use super::*;

    /// Campus LAN hop (client↔CERNET).
    pub const LAN_DELAY: SimDuration = SimDuration::from_millis(2);
    /// CERNET↔border.
    pub const CERNET_DELAY: SimDuration = SimDuration::from_millis(5);
    /// Border↔US (trans-Pacific): sets the ~200 ms Beijing↔San-Mateo RTT
    /// band of Figure 5b.
    pub const PACIFIC_DELAY: SimDuration = SimDuration::from_millis(90);
    /// Base loss on the border link: with GFW interference disabled this
    /// yields the ~0.2% PLR the paper measures for VPNs and non-blocked
    /// US sites (Figure 5c's floor).
    pub const BORDER_LOSS: f64 = 0.0006;
    /// Per-method server access bandwidth, modelling single-core crypto
    /// throughput of the 1-core VM (Figure 7): Shadowsocks saturates
    /// first (knee past 60 clients), native VPN next, OpenVPN and
    /// ScholarCloud degrade most gently.
    pub fn server_bandwidth_bps(method: Method) -> u64 {
        match method {
            Method::Shadowsocks => 2_500_000,
            Method::NativeVpn => 6_000_000,
            Method::OpenVpn => 20_000_000,
            Method::ScholarCloud => 20_000_000,
            Method::Tor | Method::Direct => 100_000_000,
        }
    }
}

/// Addresses used by the standard topology.
pub mod addrs {
    use super::Addr;

    /// First client (more clients increment the last octet).
    pub const CLIENT_BASE: Addr = Addr::new(10, 0, 1, 1);
    /// CERNET campus router.
    pub const CERNET: Addr = Addr::new(10, 0, 0, 254);
    /// Domestic ISP resolver (queries cross the GFW).
    pub const RESOLVER_CN: Addr = Addr::new(10, 0, 0, 53);
    /// ScholarCloud domestic proxy VM.
    pub const SC_DOMESTIC: Addr = Addr::new(10, 1, 0, 1);
    /// Border router hosting the GFW.
    pub const BORDER: Addr = Addr::new(172, 16, 0, 1);
    /// US-side router.
    pub const US: Addr = Addr::new(99, 0, 0, 254);
    /// Foreign recursive resolver (used by VPN clients).
    pub const RESOLVER_US: Addr = Addr::new(99, 0, 0, 52);
    /// Authoritative DNS.
    pub const AUTH_DNS: Addr = Addr::new(99, 0, 0, 53);
    /// VPN server VM.
    pub const VPN: Addr = Addr::new(99, 0, 0, 10);
    /// Shadowsocks remote VM.
    pub const SS: Addr = Addr::new(99, 0, 0, 11);
    /// Tor bridge (meek front).
    pub const BRIDGE: Addr = Addr::new(99, 0, 0, 20);
    /// Tor middle relay.
    pub const MIDDLE: Addr = Addr::new(99, 0, 0, 21);
    /// Tor exit relay.
    pub const EXIT: Addr = Addr::new(99, 0, 0, 22);
    /// Tor directory.
    pub const DIRECTORY: Addr = Addr::new(99, 0, 0, 30);
    /// ScholarCloud remote proxy VM.
    pub const SC_REMOTE: Addr = Addr::new(99, 0, 0, 40);
    /// First elastic serverless remote instance (the fresh-IP pool
    /// occupies consecutive addresses in 99.0.1.0/24).
    pub const SC_ELASTIC_BASE: Addr = Addr::new(99, 0, 1, 1);
    /// Google Scholar origin (inside the blacklisted prefix).
    pub const SCHOLAR: Addr = Addr::new(99, 2, 0, 1);
    /// accounts.google.com origin (same prefix).
    pub const ACCOUNTS: Addr = Addr::new(99, 2, 0, 2);
}

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Access method under test.
    pub method: Method,
    /// RNG seed.
    pub seed: u64,
    /// Page loads per client.
    pub loads: usize,
    /// Gap between loads (the paper used 60 s).
    pub interval: SimDuration,
    /// Concurrent clients (Figure 7 sweeps this).
    pub clients: usize,
    /// Whether the GFW middlebox is attached (ablations disable it).
    pub gfw: bool,
    /// Shadowsocks keep-alive window (ablation sweeps it).
    pub ss_keepalive: SimDuration,
    /// Whether Shadowsocks authenticates per data connection (Figure 4
    /// shows TCP-1 in every HTTP session; the keep-alive ablation turns
    /// this off to isolate the timeout effect).
    pub ss_auth_per_connection: bool,
    /// ScholarCloud blinding scheme (Identity = blinding off ablation).
    pub sc_scheme: BlindingScheme,
    /// Tor consensus size (bootstrapping cost).
    pub consensus_len: usize,
    /// Per-load timeout.
    pub timeout: SimDuration,
    /// Extra signatures pushed to the GFW (agility ablation).
    pub gfw_learned_signatures: Vec<Vec<u8>>,
    /// Stagger between consecutive clients' start times (load-ramp
    /// scenarios: client `i` comes online at `i × ramp_stagger`).
    /// `ZERO` starts everyone together, the paper's shape.
    pub ramp_stagger: SimDuration,
    /// Overrides the method's calibrated server access bandwidth
    /// (bits/s) — the operator "capacity incident" knob used by the
    /// ops dashboard demo to drive the server into saturation.
    pub server_bandwidth_override: Option<u64>,
    /// Number of ScholarCloud remote proxy VMs (≥ 1). Extra remotes sit
    /// at consecutive addresses after [`addrs::SC_REMOTE`] and feed the
    /// domestic proxy's failover pool — the chaos scenarios blacklist
    /// them one by one.
    pub sc_remotes: usize,
    /// Overrides the domestic proxy's concurrent-tunnel cap (overload
    /// scenarios undersize this to force shedding).
    pub sc_max_tunnels: Option<usize>,
    /// Overrides the domestic proxy's pending-queue length.
    pub sc_queue_len: Option<usize>,
    /// Extra flash-crowd clients (ScholarCloud only). They sit at
    /// consecutive addresses after the nominal clients and stay idle
    /// behind a shared gate until a
    /// [`Fault::FlashCrowd`](sc_simnet::faults::Fault) opens it; their
    /// arrivals are spread over [`flash_ramp`](Self::flash_ramp)
    /// starting at [`flash_start`](Self::flash_start). Their load logs
    /// are appended after the nominal clients' in
    /// [`ScenarioOutcome::loads`].
    pub flash_clients: usize,
    /// Page loads per flash-crowd client.
    pub flash_loads: usize,
    /// When (from t=0) the flash crowd begins arriving. Schedule the
    /// `Fault::FlashCrowd` trigger at this time; the gate doubles as a
    /// safety — with no fault installed the crowd never starts.
    pub flash_start: SimDuration,
    /// Window over which flash arrivals are spread (uniform ramp).
    pub flash_ramp: SimDuration,
    /// Extra simulated time appended to the runtime budget (overload
    /// scenarios need post-spike recovery room).
    pub extra_runtime: SimDuration,
    /// Byte budget for the domestic proxy's shared content cache
    /// (ScholarCloud only; plain-HTTP gateway traffic). `Some(0)` keeps
    /// the gateway path but disables the cache — the cache-off control.
    /// `None` leaves the proxy's default cache configuration in place.
    pub sc_cache_bytes: Option<usize>,
    /// Default TTL for cached entries whose origin sets no `max-age`.
    pub sc_cache_ttl: Option<SimDuration>,
    /// Serves the scholar page over plain HTTP (port 80) so browsers use
    /// the proxy's absolute-form gateway path instead of CONNECT — the
    /// only mode in which the proxy sees HTTP semantics and the shared
    /// cache can act. The paper's HTTPS shape (`false`) is unaffected.
    pub sc_http_page: bool,
    /// Overrides the origins' `Cache-Control: max-age` (seconds). Small
    /// values force revalidation between load rounds.
    pub origin_max_age: Option<u64>,
    /// Number of domestic-proxy fleet members (≥ 1, ScholarCloud only).
    /// With more than one, members sit at consecutive addresses from
    /// [`addrs::SC_DOMESTIC`], browsers get per-client *rotated* PAC
    /// fallback lists (`PROXY a; PROXY b; …`) so nominal load spreads
    /// across the fleet, and the shared content cache shards across
    /// members by rendezvous hashing with one intra-fleet peering hop
    /// on non-owner misses. `1` is the paper's single-VM shape and
    /// leaves every code path byte-identical to the pre-fleet build.
    pub sc_fleet: usize,
    /// Size of the elastic serverless remote tier's fresh-IP address
    /// pool (ScholarCloud only; `0` = elastic off, the static
    /// [`sc_remotes`](Self::sc_remotes) pool serves as in the paper).
    /// When > 0 the domestic proxy's remote pool is seeded with
    /// [`sc_elastic_min`](Self::sc_elastic_min) pre-warmed instances
    /// from [`addrs::SC_ELASTIC_BASE`] and autoscales over the rest:
    /// scale-out on admission pressure (with sampled cold starts),
    /// scale-in on idle, churn-and-replace on GFW blacklisting.
    /// Requires `sc_fleet == 1`.
    pub sc_elastic_pool: usize,
    /// Elastic: minimum live instances (also the pre-warmed seed).
    pub sc_elastic_min: usize,
    /// Elastic: maximum live instances.
    pub sc_elastic_max: usize,
    /// Elastic: idle window before a surplus instance is drained.
    pub sc_elastic_idle: SimDuration,
    /// Elastic: cold-start band in milliseconds `(min, max)`; each
    /// provision samples uniformly from the seeded RNG.
    pub sc_elastic_cold_ms: (u64, u64),
    /// Reactive-censor master switch. `false` — the default — keeps the
    /// GFW the static rule set every pre-adaptive trace was pinned
    /// against: no suspicion scoring, no fingerprint learning, no
    /// probing campaigns, no regional drift, zero extra RNG draws.
    pub sc_adaptive: bool,
    /// Adaptive: flows sharing a cover fingerprint before the censor
    /// learns it as a blockable signature.
    pub sc_adaptive_learn_flows: u32,
    /// Adaptive: how long a learned signature lives without a matching
    /// flow refreshing it (rotation starves the refresh).
    pub sc_adaptive_signature_ttl: SimDuration,
    /// Adaptive: probe waves per campaign against one suspect server.
    pub sc_adaptive_campaign_waves: u32,
    /// Adaptive: number of enforcement regions (per-region drift).
    pub sc_adaptive_regions: u32,
    /// Adaptive: probability in `[0, 1)` that a region's current drift
    /// roll leaves learned-signature flows unenforced (the paper's
    /// observation that blocking differs by province and time of day).
    pub sc_adaptive_leniency: f64,
    /// Defense: detection-driven scheme rotation in the domestic proxy.
    /// `false` keeps the scheme fixed for the whole run (the control
    /// arm; also the pre-adaptive behavior).
    pub sc_adaptive_rotation: bool,
    /// Defense: new interference units (breaker opens + remote-side
    /// probe sightings) that trigger a rotation.
    pub sc_adaptive_rotation_threshold: u64,
    /// Defense: minimum spacing between rotations.
    pub sc_adaptive_rotation_cooldown: SimDuration,
}

impl ScenarioConfig {
    /// The paper's single-client measurement shape for `method`.
    pub fn paper(method: Method, seed: u64) -> Self {
        ScenarioConfig {
            method,
            seed,
            loads: 10,
            interval: SimDuration::from_secs(60),
            clients: 1,
            gfw: true,
            ss_keepalive: SimDuration::from_secs(10),
            ss_auth_per_connection: true,
            sc_scheme: BlindingScheme::ByteMap,
            consensus_len: 400 * 1024,
            timeout: SimDuration::from_secs(55),
            gfw_learned_signatures: Vec::new(),
            ramp_stagger: SimDuration::ZERO,
            server_bandwidth_override: None,
            sc_remotes: 1,
            sc_max_tunnels: None,
            sc_queue_len: None,
            flash_clients: 0,
            flash_loads: 1,
            flash_start: SimDuration::ZERO,
            flash_ramp: SimDuration::ZERO,
            extra_runtime: SimDuration::ZERO,
            sc_cache_bytes: None,
            sc_cache_ttl: None,
            sc_http_page: false,
            origin_max_age: None,
            sc_fleet: 1,
            sc_elastic_pool: 0,
            sc_elastic_min: 1,
            sc_elastic_max: 8,
            sc_elastic_idle: SimDuration::from_secs(10),
            sc_elastic_cold_ms: (300, 1500),
            sc_adaptive: false,
            sc_adaptive_learn_flows: 6,
            sc_adaptive_signature_ttl: SimDuration::from_secs(45),
            sc_adaptive_campaign_waves: 3,
            sc_adaptive_regions: 1,
            sc_adaptive_leniency: 0.0,
            sc_adaptive_rotation: false,
            sc_adaptive_rotation_threshold: 3,
            sc_adaptive_rotation_cooldown: SimDuration::from_secs(10),
        }
    }

    /// The addresses the ScholarCloud remote VMs occupy under this
    /// config (`sc_remotes` consecutive addresses from
    /// [`addrs::SC_REMOTE`]).
    pub fn sc_remote_addrs(&self) -> Vec<Addr> {
        let base = addrs::SC_REMOTE.as_u32();
        (0..self.sc_remotes.max(1))
            .map(|i| Addr::from_u32(base + i as u32))
            .collect()
    }

    /// The addresses the domestic-proxy fleet members occupy under this
    /// config (`sc_fleet` consecutive addresses from
    /// [`addrs::SC_DOMESTIC`]).
    pub fn sc_domestic_addrs(&self) -> Vec<Addr> {
        let base = addrs::SC_DOMESTIC.as_u32();
        (0..self.sc_fleet.max(1))
            .map(|i| Addr::from_u32(base + i as u32))
            .collect()
    }

    /// The fresh-IP pool the elastic tier draws from under this config
    /// (`sc_elastic_pool` consecutive addresses from
    /// [`addrs::SC_ELASTIC_BASE`]; empty when elastic is off).
    pub fn sc_elastic_addrs(&self) -> Vec<Addr> {
        let base = addrs::SC_ELASTIC_BASE.as_u32();
        (0..self.sc_elastic_pool)
            .map(|i| Addr::from_u32(base + i as u32))
            .collect()
    }
}

/// The SLOs an operator of the paper's deployment would watch, in the
/// workspace's time-series vocabulary (see `sc_obs::slo`):
///
/// * **plt-p95** — 95th-percentile page-load time under 6 s (the paper's
///   Figure 5a puts well-behaved subsequent loads around 3–4 s; 6 s is
///   the "users start complaining" line);
/// * **availability** — at least 99% of finished loads succeed.
pub fn default_slos() -> Vec<sc_obs::SloSpec> {
    vec![
        sc_obs::SloSpec::quantile("plt-p95", "web.plt_us", 0.95, 6_000_000),
        sc_obs::SloSpec::availability("availability", "web.loads_ok", "web.loads_failed", 0.99),
    ]
}

/// Everything a scenario run produces.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Per-client page-load results.
    pub loads: Vec<Vec<sc_web::PageLoadResult>>,
    /// Mean end-to-end packet loss rate across clients.
    pub plr: f64,
    /// GFW activity counters.
    pub gfw: GfwCounters,
    /// Wire bytes originated by the first client.
    pub client_sent_bytes: u64,
    /// Wire bytes delivered to the first client.
    pub client_recv_bytes: u64,
    /// Packets originated by the first client.
    pub client_sent_packets: u64,
    /// Censor drops broken out by GFW rule label, sorted by label.
    pub censor_by_rule: Vec<(&'static str, u64)>,
    /// Simulated duration.
    pub sim_end: SimTime,
    /// Events the simulator's loop dispatched (`scholar-bench`'s
    /// events/sec numerator).
    pub events_processed: u64,
    /// Timer events (TCP + app) fired during the run.
    pub timers_fired: u64,
    /// High-water mark of the event-queue depth.
    pub queue_depth_hwm: u64,
}

impl ScenarioOutcome {
    /// All successful PLTs (seconds), split (first_time, subsequent).
    pub fn plts(&self) -> (Vec<f64>, Vec<f64>) {
        let mut first = Vec::new();
        let mut subs = Vec::new();
        for client in &self.loads {
            for r in client {
                if let Some(plt) = r.plt {
                    if r.failed {
                        continue;
                    }
                    if r.first_time {
                        first.push(plt.as_secs_f64());
                    } else {
                        subs.push(plt.as_secs_f64());
                    }
                }
            }
        }
        (first, subs)
    }

    /// All RTT samples in milliseconds.
    pub fn rtts_ms(&self) -> Vec<f64> {
        self.loads
            .iter()
            .flatten()
            .filter_map(|r| r.rtt.map(|d| d.as_micros() as f64 / 1000.0))
            .collect()
    }

    /// Fraction of loads that failed.
    pub fn failure_rate(&self) -> f64 {
        let total: usize = self.loads.iter().map(Vec::len).sum();
        if total == 0 {
            return 1.0;
        }
        let failed: usize = self
            .loads
            .iter()
            .flatten()
            .filter(|r| r.failed)
            .count();
        failed as f64 / total as f64
    }
}

/// A fully wired scenario that has not run yet: the seam for fault
/// injection. Install a [`FaultPlan`](sc_simnet::faults::FaultPlan) on
/// [`sim`](Self::sim) (or mutate [`gfw`](Self::gfw) via
/// `sc_gfw::blacklist_ip` faults), then call
/// [`finish`](Self::finish) to run to completion and collect metrics.
pub struct BuiltScenario {
    /// The simulator, with every node, link, and app installed but no
    /// event processed yet.
    pub sim: Sim,
    /// Live handle to the GFW state when the middlebox is attached.
    pub gfw: Option<GfwHandle>,
    /// ScholarCloud remote VM addresses, in pool order.
    pub sc_remote_addrs: Vec<Addr>,
    /// The us↔sc-remote access links, same order as
    /// [`sc_remote_addrs`](Self::sc_remote_addrs).
    pub sc_remote_links: Vec<sc_simnet::link::LinkId>,
    /// The gate holding back the flash crowd (present when
    /// [`ScenarioConfig::flash_clients`] > 0). Open it from a
    /// [`Fault::FlashCrowd`](sc_simnet::faults::Fault) trigger at
    /// [`ScenarioConfig::flash_start`] to release the crowd.
    pub flash_gate: Option<std::rc::Rc<std::cell::Cell<bool>>>,
    /// Live handle to the domestic proxy's shared content cache
    /// (ScholarCloud only). Read [`stats`](sc_core::CacheHandle::stats)
    /// after [`finish`](Self::finish) for hit/miss/coalescing counts.
    /// Under a fleet this is member 0's shard.
    pub sc_cache: Option<sc_core::CacheHandle>,
    /// Domestic-proxy node ids in fleet-member order (always at least
    /// the single `sc-domestic` node). Crash scenarios pass these to
    /// [`Fault::NodeCrash`](sc_simnet::faults::Fault).
    pub sc_domestic_nodes: Vec<sc_simnet::link::NodeId>,
    /// Shared fleet roster when a fleet is deployed
    /// ([`ScenarioConfig::sc_fleet`] > 1).
    pub sc_fleet: Option<sc_core::FleetHandle>,
    /// Per-member cache shard handles when a fleet is deployed, in
    /// member order (empty otherwise — use
    /// [`sc_cache`](Self::sc_cache)).
    pub sc_fleet_caches: Vec<sc_core::CacheHandle>,
    /// Live handle to the elastic remote tier when
    /// [`ScenarioConfig::sc_elastic_pool`] > 0. Blacklisting campaigns
    /// read [`warm_addrs`](sc_core::ElasticHandle::warm_addrs) from a
    /// `Fault::Callback` to target whatever is serving at that moment;
    /// read the cost meters after [`finish`](Self::finish).
    pub sc_elastic: Option<sc_core::ElasticHandle>,
    cfg: ScenarioConfig,
    clients: Vec<sc_simnet::link::NodeId>,
    logs: Vec<LoadLog>,
    span: sc_obs::SpanId,
    runtime: SimDuration,
}

impl BuiltScenario {
    /// The simulated duration [`finish`](Self::finish) will run for.
    pub fn runtime(&self) -> SimDuration {
        self.runtime
    }
}

/// Builds and runs a scenario to completion, returning the metrics.
pub fn run_scenario(cfg: &ScenarioConfig) -> ScenarioOutcome {
    build_scenario(cfg).finish()
}

/// The PAC policy client `client_idx` is provisioned with under a
/// fleet: the full gateway list rotated by client index, so nominal
/// load spreads across members while every client keeps the whole
/// fleet as ordered fallbacks. The policy is round-tripped through
/// [`PacFile::parse`] on its own [`to_javascript`](PacFile::to_javascript)
/// rendering — clients receive PAC files as JavaScript, so the wire
/// format is what gets exercised, not just the in-memory struct.
fn fleet_pac(
    whitelist: &[String],
    gateways: &[sc_simnet::addr::SocketAddr],
    client_idx: usize,
) -> sc_netproto::pac::PacFile {
    let n = gateways.len();
    let rotated: Vec<_> = (0..n).map(|j| gateways[(client_idx + j) % n]).collect();
    let pac = sc_netproto::pac::PacFile::with_fallbacks(whitelist.iter().cloned(), rotated);
    sc_netproto::pac::PacFile::parse(&pac.to_javascript()).expect("generated PAC parses")
}

/// Builds a scenario without running it (see [`BuiltScenario`]).
pub fn build_scenario(cfg: &ScenarioConfig) -> BuiltScenario {
    use addrs::*;
    use calibration::*;

    let mut sim = Sim::new(cfg.seed);
    let span = sc_obs::span_start(
        0,
        sc_obs::Level::Info,
        "metrics",
        "scenario",
        "run",
        vec![
            ("method", cfg.method.name().into()),
            ("seed", cfg.seed.into()),
            ("clients", (cfg.clients as u64).into()),
            ("loads", (cfg.loads as u64).into()),
        ],
    );

    // --- nodes ---
    let clients: Vec<_> = (0..cfg.clients)
        .map(|i| {
            let base = CLIENT_BASE.as_u32();
            sim.add_node(format!("client-{i}"), Addr::from_u32(base + i as u32))
        })
        .collect();
    // Flash-crowd clients at consecutive addresses after the nominal
    // ones; their browsers are only installed for ScholarCloud.
    let flash_clients: Vec<_> = (0..cfg.flash_clients)
        .map(|i| {
            let base = CLIENT_BASE.as_u32() + cfg.clients as u32;
            sim.add_node(format!("flash-{i}"), Addr::from_u32(base + i as u32))
        })
        .collect();
    let cernet = sim.add_node("cernet", CERNET);
    let resolver_cn = sim.add_node("resolver-cn", RESOLVER_CN);
    let sc_domestic = sim.add_node("sc-domestic", SC_DOMESTIC);
    // Extra fleet members at consecutive addresses; with `sc_fleet: 1`
    // no extra node exists and the topology is byte-identical to the
    // pre-fleet build.
    let sc_domestic_nodes: Vec<_> = std::iter::once(sc_domestic)
        .chain((1..cfg.sc_fleet.max(1)).map(|i| {
            sim.add_node(
                format!("sc-domestic-{i}"),
                Addr::from_u32(SC_DOMESTIC.as_u32() + i as u32),
            )
        }))
        .collect();
    let border = sim.add_node("border", BORDER);
    let us = sim.add_node("us", US);
    let resolver_us = sim.add_node("resolver-us", RESOLVER_US);
    let auth_dns = sim.add_node("auth-dns", AUTH_DNS);
    let vpn = sim.add_node("vpn", VPN);
    let ss = sim.add_node("ss", SS);
    let bridge = sim.add_node("bridge", BRIDGE);
    let middle = sim.add_node("middle", MIDDLE);
    let exit = sim.add_node("exit", EXIT);
    let directory = sim.add_node("directory", DIRECTORY);
    let sc_remote_addrs = cfg.sc_remote_addrs();
    let sc_remotes: Vec<_> = sc_remote_addrs
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            let name =
                if i == 0 { "sc-remote".to_string() } else { format!("sc-remote-{i}") };
            sim.add_node(name, a)
        })
        .collect();
    // Elastic serverless instances (only when the knob is on, so every
    // existing scenario's topology — and trace — is untouched).
    let sc_elastic_addrs = if cfg.method == Method::ScholarCloud {
        cfg.sc_elastic_addrs()
    } else {
        Vec::new()
    };
    let sc_elastic_nodes: Vec<_> = sc_elastic_addrs
        .iter()
        .enumerate()
        .map(|(i, &a)| sim.add_node(format!("sc-elastic-{i}"), a))
        .collect();
    let scholar = sim.add_node("scholar", SCHOLAR);
    let accounts = sim.add_node("accounts", ACCOUNTS);

    // --- links ---
    let lan = LinkConfig::with_delay(LAN_DELAY);
    for &c in &clients {
        sim.add_link(c, cernet, lan);
    }
    for &c in &flash_clients {
        sim.add_link(c, cernet, lan);
    }
    sim.add_link(resolver_cn, cernet, lan);
    for &n in &sc_domestic_nodes {
        sim.add_link(n, cernet, lan);
    }
    sim.add_link(cernet, border, LinkConfig::with_delay(CERNET_DELAY));
    sim.add_link(
        border,
        us,
        LinkConfig::with_delay(PACIFIC_DELAY).loss(BORDER_LOSS),
    );
    sim.add_link(us, resolver_us, lan);
    sim.add_link(us, auth_dns, lan);
    // Per-method server access links model single-core VM throughput.
    // The override (when set) replaces the calibrated figure for the
    // method under test only — other methods' servers are idle anyway.
    let server_bw = |m: Method| {
        if cfg.method == m {
            cfg.server_bandwidth_override.unwrap_or_else(|| server_bandwidth_bps(m))
        } else {
            server_bandwidth_bps(m)
        }
    };
    sim.add_link(
        us,
        vpn,
        lan.bandwidth_bps(server_bw(Method::NativeVpn).max(server_bw(Method::OpenVpn))),
    );
    sim.add_link(us, ss, lan.bandwidth_bps(server_bw(Method::Shadowsocks)));
    sim.add_link(us, bridge, lan);
    sim.add_link(us, middle, lan);
    sim.add_link(us, exit, lan);
    sim.add_link(us, directory, lan);
    let sc_remote_links: Vec<_> = sc_remotes
        .iter()
        .map(|&n| sim.add_link(us, n, lan.bandwidth_bps(server_bw(Method::ScholarCloud))))
        .collect();
    for &n in &sc_elastic_nodes {
        sim.add_link(us, n, lan.bandwidth_bps(server_bw(Method::ScholarCloud)));
    }
    sim.add_link(us, scholar, lan);
    sim.add_link(us, accounts, lan);
    sim.compute_routes();

    // --- GFW ---
    let gfw: Option<GfwHandle> = if cfg.gfw {
        let mut gfw_cfg = GfwConfig::china_2017((Addr::new(99, 2, 0, 0), 16));
        gfw_cfg
            .learned_signatures
            .extend(cfg.gfw_learned_signatures.iter().cloned());
        if cfg.sc_adaptive {
            gfw_cfg.adaptive = Some(sc_gfw::AdaptiveConfig {
                learn_after_flows: cfg.sc_adaptive_learn_flows.max(1),
                signature_ttl: cfg.sc_adaptive_signature_ttl,
                campaign_waves: cfg.sc_adaptive_campaign_waves,
                regions: cfg.sc_adaptive_regions.max(1),
                leniency: cfg.sc_adaptive_leniency,
                ..sc_gfw::AdaptiveConfig::default()
            });
            // A reactive censor resets what it learns instead of merely
            // throttling it — learned-signature tunnels die, breakers
            // open, and the defense's rotation policy has something real
            // to detect.
            gfw_cfg.policies.learned_signature = sc_gfw::Policy::RESET;
        }
        let handle = new_gfw(gfw_cfg);
        sim.set_middlebox(border, Box::new(GfwMiddlebox::new(handle.clone())));
        sim.install_app(border, Box::new(ActiveProber::new(handle.clone())));
        Some(handle)
    } else {
        None
    };

    // --- DNS ---
    let mut zone = Zone::new();
    zone.insert("scholar.google.com", SCHOLAR, 300);
    zone.insert("accounts.google.com", ACCOUNTS, 300);
    sim.install_app(auth_dns, Box::new(AuthoritativeServer::new(zone)));
    sim.install_app(resolver_cn, Box::new(RecursiveResolver::new(AUTH_DNS)));
    sim.install_app(resolver_us, Box::new(RecursiveResolver::new(AUTH_DNS)));

    // --- origins ---
    let mut scholar_origin =
        OriginServer::new("scholar.google.com", PageSpec::google_scholar(), 1001);
    if cfg.sc_http_page {
        scholar_origin = scholar_origin.with_http_serving();
    }
    if let Some(secs) = cfg.origin_max_age {
        scholar_origin = scholar_origin.with_max_age(secs);
    }
    sim.install_app(scholar, Box::new(scholar_origin));
    let mut accounts_origin = OriginServer::new(
        "accounts.google.com",
        PageSpec::endpoints("accounts.google.com", &[("/recordlogin", 400)]),
        1002,
    );
    if let Some(secs) = cfg.origin_max_age {
        accounts_origin = accounts_origin.with_max_age(secs);
    }
    sim.install_app(accounts, Box::new(accounts_origin));

    let names = NameMap::new([
        ("scholar.google.com", SCHOLAR),
        ("accounts.google.com", ACCOUNTS),
    ]);

    // --- per-method infrastructure + browser policy ---
    let mut logs: Vec<LoadLog> = Vec::with_capacity(cfg.clients + cfg.flash_clients);
    let mut flash_gate: Option<std::rc::Rc<std::cell::Cell<bool>>> = None;
    let mut sc_cache: Option<sc_core::CacheHandle> = None;
    let mut sc_fleet: Option<sc_core::FleetHandle> = None;
    let mut sc_fleet_caches: Vec<sc_core::CacheHandle> = Vec::new();
    let mut sc_elastic: Option<sc_core::ElasticHandle> = None;
    match cfg.method {
        Method::Direct => {
            for (i, &c) in clients.iter().enumerate() {
                let log = new_load_log();
                let mut bcfg = BrowserConfig::scholar(RESOLVER_CN, ProxyPolicy::Direct);
                bcfg.loads = cfg.loads;
                bcfg.interval = cfg.interval;
                bcfg.timeout = cfg.timeout;
                bcfg.entropy = cfg.seed ^ (i as u64);
                bcfg.start_delay = cfg.ramp_stagger.saturating_mul(i as u64);
                sim.install_app(c, Box::new(Browser::new(bcfg, None, log.clone())));
                logs.push(log);
            }
        }
        Method::NativeVpn | Method::OpenVpn => {
            let variant = if cfg.method == Method::NativeVpn {
                VpnVariant::Pptp
            } else {
                VpnVariant::OpenVpn
            };
            sim.install_app(vpn, Box::new(VpnServer::new(variant, 2000)));
            for (i, &c) in clients.iter().enumerate() {
                let status = TunnelStatus::new();
                sim.install_app(
                    c,
                    Box::new(VpnClient::new(variant, VPN, 3000 + i as u64, status.clone())),
                );
                let log = new_load_log();
                let mut bcfg = BrowserConfig::scholar(RESOLVER_US, ProxyPolicy::Direct);
                bcfg.loads = cfg.loads;
                bcfg.interval = cfg.interval;
                bcfg.timeout = cfg.timeout;
                bcfg.entropy = cfg.seed ^ (i as u64);
                bcfg.start_delay = cfg.ramp_stagger.saturating_mul(i as u64);
                let gate = {
                    let status = status.clone();
                    ReadyProbe::new(move || status.is_up())
                };
                sim.install_app(c, Box::new(Browser::new(bcfg, Some(gate), log.clone())));
                logs.push(log);
            }
        }
        Method::Shadowsocks => {
            let mut ss_cfg = SsConfig::new(SocketAddr::new(SS, sc_tunnels::SS_PORT));
            ss_cfg.keepalive = cfg.ss_keepalive;
            ss_cfg.auth_per_connection = cfg.ss_auth_per_connection;
            sim.install_app(ss, Box::new(SsRemote::new(&ss_cfg, names.clone())));
            for (i, &c) in clients.iter().enumerate() {
                sim.install_app(c, Box::new(SsLocal::new(ss_cfg.clone())));
                let log = new_load_log();
                let mut bcfg = BrowserConfig::scholar(
                    RESOLVER_CN,
                    ProxyPolicy::Socks(SocketAddr::new(sim.addr_of(c), SS_LOCAL_PORT)),
                );
                bcfg.loads = cfg.loads;
                bcfg.interval = cfg.interval;
                bcfg.timeout = cfg.timeout;
                bcfg.entropy = cfg.seed ^ (i as u64);
                bcfg.start_delay = cfg.ramp_stagger.saturating_mul(i as u64);
                sim.install_app(c, Box::new(Browser::new(bcfg, None, log.clone())));
                logs.push(log);
            }
        }
        Method::Tor => {
            sim.install_app(bridge, Box::new(OrRelay::new(OR_PORT, 4001, NameMap::default())));
            sim.install_app(bridge, Box::new(MeekGateway::new(4002)));
            sim.install_app(middle, Box::new(OrRelay::new(OR_PORT, 4003, NameMap::default())));
            sim.install_app(exit, Box::new(OrRelay::new(OR_PORT, 4004, names.clone())));
            sim.install_app(
                directory,
                Box::new(DirectoryServer::with_consensus_len(cfg.consensus_len)),
            );
            for (i, &c) in clients.iter().enumerate() {
                let status = TunnelStatus::new();
                let tor_cfg = TorConfig {
                    directory: SocketAddr::new(DIRECTORY, DIR_PORT),
                    bridge: SocketAddr::new(BRIDGE, MEEK_PORT),
                    front_domain: "ajax.cdn-front.example".into(),
                    middle: SocketAddr::new(MIDDLE, OR_PORT),
                    exit: SocketAddr::new(EXIT, OR_PORT),
                    socks_port: TOR_SOCKS_PORT,
                };
                sim.install_app(
                    c,
                    Box::new(TorClient::new(tor_cfg, 5000 + i as u64, status.clone())),
                );
                let log = new_load_log();
                let mut bcfg = BrowserConfig::scholar(
                    RESOLVER_CN,
                    ProxyPolicy::Socks(SocketAddr::new(sim.addr_of(c), TOR_SOCKS_PORT)),
                );
                bcfg.loads = cfg.loads;
                bcfg.interval = cfg.interval;
                bcfg.timeout = cfg.timeout;
                bcfg.entropy = cfg.seed ^ (i as u64);
                bcfg.start_delay = cfg.ramp_stagger.saturating_mul(i as u64);
                let gate = {
                    let status = status.clone();
                    ReadyProbe::new(move || status.is_up())
                };
                sim.install_app(c, Box::new(Browser::new(bcfg, Some(gate), log.clone())));
                logs.push(log);
            }
        }
        Method::ScholarCloud => {
            let mut sc_cfg = sc_core::ScConfig::new(SC_DOMESTIC, SC_REMOTE)
                .with_remotes(&sc_remote_addrs);
            sc_cfg.whitelist = vec!["scholar.google.com".into(), "accounts.google.com".into()];
            sc_cfg.scheme.set(cfg.sc_scheme);
            if cfg.sc_adaptive_rotation {
                sc_cfg.rotation = Some(sc_core::RotationPolicy {
                    threshold: cfg.sc_adaptive_rotation_threshold.max(1),
                    cooldown: cfg.sc_adaptive_rotation_cooldown,
                });
                // The stream-level half of the defense: a learned
                // signature RSTs established tunnels (past the connect
                // retry budget), so rotation only preserves in-flight
                // streams if they transparently re-establish under the
                // rotated scheme.
                sc_cfg.resilience.stream_resume = true;
            }
            if let Some(m) = cfg.sc_max_tunnels {
                sc_cfg.admission.max_tunnels = m;
            }
            if let Some(q) = cfg.sc_queue_len {
                sc_cfg.admission.queue_len = q;
            }
            if cfg.sc_cache_bytes.is_some() || cfg.sc_cache_ttl.is_some() {
                let mut cache_cfg = sc_core::CacheConfig::default();
                if let Some(b) = cfg.sc_cache_bytes {
                    cache_cfg.capacity_bytes = b;
                }
                if let Some(t) = cfg.sc_cache_ttl {
                    cache_cfg.default_ttl = t;
                }
                sc_cfg = sc_cfg.with_cache(cache_cfg);
            }
            sc_cache = Some(sc_cfg.cache.clone());
            let fleet_n = cfg.sc_fleet.max(1);
            let gateways: Vec<SocketAddr> = cfg
                .sc_domestic_addrs()
                .into_iter()
                .map(|a| SocketAddr::new(a, sc_core::DOMESTIC_PORT))
                .collect();
            if cfg.sc_elastic_pool > 0 {
                // Elastic tier: the domestic proxy's remote pool starts
                // as the pre-warmed seed instances and autoscales over
                // the fresh-IP pool; the static sc-remote VMs are not
                // in the pool (they are the control arm's tier).
                assert_eq!(
                    fleet_n, 1,
                    "the elastic remote tier drives a single domestic proxy (sc_fleet must be 1)"
                );
                let e_cfg = sc_core::ElasticConfig {
                    min_instances: cfg.sc_elastic_min.max(1),
                    max_instances: cfg.sc_elastic_max.max(cfg.sc_elastic_min.max(1)),
                    idle_timeout: cfg.sc_elastic_idle,
                    cold_start_min: SimDuration::from_millis(cfg.sc_elastic_cold_ms.0),
                    cold_start_max: SimDuration::from_millis(cfg.sc_elastic_cold_ms.1),
                    ..sc_core::ElasticConfig::default()
                };
                let mut pool = sc_core::ElasticPool::new(e_cfg, sc_elastic_addrs.clone());
                let warmed = pool.seed_warm(cfg.sc_elastic_min.max(1));
                assert!(
                    !warmed.is_empty(),
                    "sc_elastic_pool must cover at least sc_elastic_min addresses"
                );
                sc_cfg = sc_cfg.with_remotes(&warmed);
                sc_elastic = Some(sc_core::ElasticHandle::new(pool));
            }
            if fleet_n == 1 {
                let mut proxy = sc_core::DomesticProxy::new(sc_cfg.clone());
                if let Some(handle) = &sc_elastic {
                    proxy = proxy.with_elastic(handle.clone());
                }
                sim.install_app(sc_domestic, Box::new(proxy));
            } else {
                // Fleet: each member gets its own shard of the content
                // cache (separate store, same configuration) plus the
                // shared roster for peering, liveness, and the
                // fleet-wide admission sickness board. Member 0 keeps
                // the base config's cache handle so `sc_cache` still
                // points at a live shard.
                let fleet = sc_core::FleetHandle::new(gateways.clone());
                for (i, &node) in sc_domestic_nodes.iter().enumerate() {
                    let mut mcfg = sc_cfg.clone();
                    mcfg.domestic = gateways[i];
                    if i > 0 {
                        let mut cache_cfg = sc_core::CacheConfig::default();
                        if let Some(b) = cfg.sc_cache_bytes {
                            cache_cfg.capacity_bytes = b;
                        }
                        if let Some(t) = cfg.sc_cache_ttl {
                            cache_cfg.default_ttl = t;
                        }
                        mcfg = mcfg.with_cache(cache_cfg);
                    }
                    sc_fleet_caches.push(mcfg.cache.clone());
                    sim.install_app(
                        node,
                        Box::new(
                            sc_core::DomesticProxy::new(mcfg)
                                .with_fleet(sc_core::FleetMember::new(i, fleet.clone())),
                        ),
                    );
                }
                sc_fleet = Some(fleet);
            }
            for &n in &sc_remotes {
                sim.install_app(
                    n,
                    Box::new(sc_core::RemoteProxy::new(sc_cfg.clone(), names.clone())),
                );
            }
            // Every elastic instance runs a remote proxy. Standby
            // instances power down right after their app starts
            // listening (the lifecycle event is scheduled at the same
            // instant but a later sequence number than the app start,
            // so listen state survives the power-down); the autoscaler
            // powers them back up when it provisions them.
            if let Some(handle) = &sc_elastic {
                let warmed = handle.warm_addrs();
                for (i, &node) in sc_elastic_nodes.iter().enumerate() {
                    sim.install_app(
                        node,
                        Box::new(sc_core::RemoteProxy::new(sc_cfg.clone(), names.clone())),
                    );
                    if !warmed.contains(&sc_elastic_addrs[i]) {
                        sim.schedule_lifecycle(node, false, SimDuration::ZERO);
                    }
                }
            }
            for (i, &c) in clients.iter().enumerate() {
                let log = new_load_log();
                let pac = if fleet_n > 1 {
                    fleet_pac(&sc_cfg.whitelist, &gateways, i)
                } else {
                    sc_cfg.pac_file()
                };
                let mut bcfg = BrowserConfig::scholar(RESOLVER_CN, ProxyPolicy::Pac(pac));
                bcfg.loads = cfg.loads;
                bcfg.interval = cfg.interval;
                bcfg.timeout = cfg.timeout;
                bcfg.entropy = cfg.seed ^ (i as u64);
                bcfg.start_delay = cfg.ramp_stagger.saturating_mul(i as u64);
                if cfg.sc_http_page {
                    bcfg.page_port = 80;
                }
                sim.install_app(c, Box::new(Browser::new(bcfg, None, log.clone())));
                logs.push(log);
            }
            if cfg.flash_clients > 0 {
                // The crowd waits behind a shared gate that only a
                // `Fault::FlashCrowd` trigger opens; each client also
                // sleeps until its slot on the arrival ramp, so the
                // surge shape is an experiment parameter, not noise.
                let gate_flag = std::rc::Rc::new(std::cell::Cell::new(false));
                let offsets =
                    sc_simnet::ramp::uniform_offsets(cfg.flash_clients, cfg.flash_ramp);
                for (i, &c) in flash_clients.iter().enumerate() {
                    let log = new_load_log();
                    let pac = if fleet_n > 1 {
                        fleet_pac(&sc_cfg.whitelist, &gateways, cfg.clients + i)
                    } else {
                        sc_cfg.pac_file()
                    };
                    let mut bcfg = BrowserConfig::scholar(RESOLVER_CN, ProxyPolicy::Pac(pac));
                    bcfg.loads = cfg.flash_loads;
                    bcfg.interval = cfg.interval;
                    bcfg.timeout = cfg.timeout;
                    bcfg.entropy = cfg.seed ^ (0x1000 + i as u64);
                    bcfg.start_delay = cfg.flash_start + offsets[i];
                    if cfg.sc_http_page {
                        bcfg.page_port = 80;
                    }
                    let gate = {
                        let flag = gate_flag.clone();
                        ReadyProbe::new(move || flag.get())
                    };
                    sim.install_app(c, Box::new(Browser::new(bcfg, Some(gate), log.clone())));
                    logs.push(log);
                }
                flash_gate = Some(gate_flag);
            }
        }
    }

    // Budget: tunnel/bootstrap time + loads * interval + slack.
    let bootstrap = SimDuration::from_secs(30);
    let runtime = bootstrap
        + cfg.interval.saturating_mul(cfg.loads as u64)
        + cfg.ramp_stagger.saturating_mul(cfg.clients.saturating_sub(1) as u64)
        + cfg.timeout
        + cfg.extra_runtime;

    BuiltScenario {
        sim,
        gfw,
        sc_remote_addrs,
        sc_remote_links,
        flash_gate,
        sc_cache,
        sc_domestic_nodes,
        sc_fleet,
        sc_fleet_caches,
        sc_elastic,
        cfg: cfg.clone(),
        clients,
        logs,
        span,
        runtime,
    }
}

impl BuiltScenario {
    /// Runs the scenario to completion and collects the metrics.
    pub fn finish(self) -> ScenarioOutcome {
        let BuiltScenario { mut sim, gfw, cfg, clients, logs, span, runtime, .. } = self;
        sim.run_for(runtime);

        // For ScholarCloud the censored path is the domestic↔remote leg
        // (the client only talks to the domestic proxy over the campus
        // LAN), so PLR is measured at the domestic proxy — the vantage
        // the paper's deployment measures from.
        let plr_addr_override =
            (cfg.method == Method::ScholarCloud).then_some(addrs::SC_DOMESTIC);
        let first_client_addr = sim.addr_of(clients[0]);
        let counters = sim
            .stats
            .by_addr
            .get(&first_client_addr)
            .copied()
            .unwrap_or_default();
        let mut plr_sum = 0.0;
        match plr_addr_override {
            Some(addr) => plr_sum = sim.stats.loss_rate_for(addr) * cfg.clients as f64,
            None => {
                for &c in &clients {
                    plr_sum += sim.stats.loss_rate_for(sim.addr_of(c));
                }
            }
        }
        let outcome = ScenarioOutcome {
            loads: logs.iter().map(|l| l.borrow().clone()).collect(),
            plr: plr_sum / cfg.clients as f64,
            gfw: gfw.map(|g| g.borrow().counters).unwrap_or_default(),
            client_sent_bytes: counters.sent_bytes,
            client_recv_bytes: counters.delivered_bytes,
            client_sent_packets: counters.sent,
            censor_by_rule: sim.stats.censor_by_rule(),
            sim_end: sim.now(),
            events_processed: sim.stats.events_processed,
            timers_fired: sim.stats.timers_fired,
            queue_depth_hwm: sim.stats.queue_depth_hwm,
        };
        sc_obs::span_end(
            sim.now().as_micros(),
            span,
            vec![
                ("censor_drops", sim.stats.censor_drops().into()),
                ("packets_sent", sim.stats.packets_sent.into()),
            ],
        );
        outcome
    }
}
