//! # sc-metrics
//!
//! The measurement harness: [`scenario`] wires the full testbed (clients
//! in CERNET, GFW at the border, VM servers in the US, Google Scholar)
//! for any access method; [`experiments`] contains one runner per paper
//! figure (3, 5a–c, 6a–c, 7) plus the ablations DESIGN.md calls out;
//! [`report`] renders the results; [`overhead`] holds the Figure-6
//! client-overhead models; [`stats`] the mean/min/max summaries;
//! [`trace`] wires the `SC_TRACE` env var to a JSONL event trace.

#![warn(missing_docs)]

pub mod experiments;
pub mod overhead;
pub mod report;
pub mod scenario;
pub mod stats;
pub mod trace;

pub use experiments::{
    Fig3Row, Fig5Row, Fig6Row, Fig7Point, FIG7_CLIENTS, ablation_agility, ablation_blinding,
    ablation_ss_keepalive, fig3_survey, fig5_all, fig5_method, fig6_all, fig6_method, fig7_method,
};
pub use scenario::{
    BuiltScenario, Method, ScenarioConfig, ScenarioOutcome, build_scenario, default_slos,
    run_scenario,
};
pub use stats::Summary;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scholarcloud_scenario_produces_clean_loads() {
        let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, 21);
        cfg.loads = 3;
        let out = run_scenario(&cfg);
        assert_eq!(out.loads.len(), 1);
        assert_eq!(out.loads[0].len(), 3, "{:?}", out.loads[0]);
        assert!(out.failure_rate() == 0.0, "{:?}", out.loads[0]);
        // PLR should be near the 0.2% baseline (no GFW interference).
        assert!(out.plr < 0.01, "plr {}", out.plr);
        assert_eq!(out.gfw.embedded_sni_resets, 0);
    }

    #[test]
    fn native_vpn_scenario_produces_clean_loads() {
        let mut cfg = ScenarioConfig::paper(Method::NativeVpn, 22);
        cfg.loads = 3;
        let out = run_scenario(&cfg);
        assert_eq!(out.loads[0].len(), 3, "{:?}", out.loads[0]);
        assert!(out.failure_rate() == 0.0, "{:?}", out.loads[0]);
        assert!(out.plr < 0.01, "plr {}", out.plr);
    }

    #[test]
    fn shadowsocks_is_slower_than_scholarcloud() {
        let mut ss_cfg = ScenarioConfig::paper(Method::Shadowsocks, 23);
        ss_cfg.loads = 4;
        let ss = run_scenario(&ss_cfg);
        let mut sc_cfg = ScenarioConfig::paper(Method::ScholarCloud, 23);
        sc_cfg.loads = 4;
        let sc = run_scenario(&sc_cfg);
        let (_, ss_subs) = ss.plts();
        let (_, sc_subs) = sc.plts();
        let ss_mean = Summary::of_or_empty(&ss_subs).mean;
        let sc_mean = Summary::of_or_empty(&sc_subs).mean;
        assert!(ss_mean > sc_mean, "ss {ss_mean} vs sc {sc_mean}");
    }

    #[test]
    fn direct_access_to_scholar_is_blocked() {
        let mut cfg = ScenarioConfig::paper(Method::Direct, 24);
        cfg.loads = 1;
        cfg.timeout = sc_simnet::time::SimDuration::from_secs(20);
        let out = run_scenario(&cfg);
        assert!(out.failure_rate() > 0.99, "direct access must fail: {:?}", out.loads[0]);
        assert!(out.gfw.dns_poisoned > 0 || out.gfw.ip_blocked > 0);
    }

    #[test]
    fn fig3_converges() {
        let row = fig3_survey(100_000, 3);
        assert!((row.bypass_share - 0.26).abs() < 0.02);
        assert!((row.shadowsocks - 0.21).abs() < 0.03);
    }
}
