//! Client-side overhead models for Figure 6.
//!
//! **Substitution note (DESIGN.md §2):** the paper measured CPU and memory
//! with the Windows task manager on a ThinkPad. We have no Windows laptop
//! inside the simulation, so:
//!
//! * **traffic** (6a) is *measured* — wire bytes originated + delivered at
//!   the client node during one access, straight from the simulator;
//! * **CPU** (6b) is an analytic model: browser base cost + per-KB
//!   crypto/framing coefficients per method, anchored to the paper's
//!   absolute numbers (native VPN 3.07% … Tor 3.62%);
//! * **memory** (6c) is browser footprint + per-method client software +
//!   per-connection state, anchored to the paper's "before/after" bars
//!   (Tor Browser ≈70% above Chrome; after: native +30 MB … Tor +90 MB).

use crate::scenario::Method;

/// One access's client traffic, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficSample {
    /// Wire bytes sent by the client during the access.
    pub sent: u64,
    /// Wire bytes received by the client.
    pub received: u64,
}

impl TrafficSample {
    /// Total KB moved.
    pub fn total_kb(&self) -> f64 {
        (self.sent + self.received) as f64 / 1024.0
    }
}

/// CPU model coefficients (percent of one core).
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    /// Browser baseline while loading a page (percent).
    pub browser_base: f64,
    /// Added browser cost per KB of page traffic.
    pub per_kb: f64,
    /// Extra client-software cost per KB tunneled (crypto + framing).
    pub extra_client_per_kb: f64,
    /// Fixed extra client-software cost (event loops, timers).
    pub extra_client_base: f64,
}

impl CpuModel {
    /// Coefficients per method, anchored to Figure 6b.
    pub fn for_method(method: Method) -> CpuModel {
        // Browser base ≈ 2.9%; native VPN's kernel-path crypto is nearly
        // free to the *client process*; Tor's onion crypto (3 AES layers)
        // plus the dedicated browser costs the most.
        match method {
            Method::Direct => CpuModel { browser_base: 2.9, per_kb: 0.004, extra_client_per_kb: 0.0, extra_client_base: 0.0 },
            Method::NativeVpn => CpuModel { browser_base: 2.9, per_kb: 0.004, extra_client_per_kb: 0.002, extra_client_base: 0.02 },
            Method::OpenVpn => CpuModel { browser_base: 2.9, per_kb: 0.004, extra_client_per_kb: 0.006, extra_client_base: 0.06 },
            Method::Shadowsocks => CpuModel { browser_base: 2.9, per_kb: 0.004, extra_client_per_kb: 0.008, extra_client_base: 0.08 },
            Method::Tor => CpuModel { browser_base: 3.25, per_kb: 0.004, extra_client_per_kb: 0.004, extra_client_base: 0.12 },
            Method::ScholarCloud => CpuModel { browser_base: 2.9, per_kb: 0.004, extra_client_per_kb: 0.0, extra_client_base: 0.0 },
        }
    }

    /// Browser CPU percent for an access moving `kb` kilobytes.
    pub fn browser_percent(&self, kb: f64) -> f64 {
        self.browser_base + self.per_kb * kb
    }

    /// Extra client-software CPU percent for the same access.
    pub fn extra_client_percent(&self, kb: f64) -> f64 {
        self.extra_client_base + self.extra_client_per_kb * kb
    }
}

/// Memory model (MB), anchored to Figure 6c.
#[derive(Debug, Clone, Copy)]
pub struct MemoryModel {
    /// Browser footprint before browsing (Chrome ≈ 95 MB; Tor Browser is
    /// ~70% larger per the paper).
    pub browser_before_mb: f64,
    /// Browser growth when actively loading the page.
    pub browser_active_mb: f64,
    /// Client software footprint (0 for native VPN / ScholarCloud).
    pub extra_client_mb: f64,
    /// Per-TCP-connection state (KB) — counted from the simulation's real
    /// connection tally.
    pub per_connection_kb: f64,
}

impl MemoryModel {
    /// Coefficients per method.
    pub fn for_method(method: Method) -> MemoryModel {
        match method {
            Method::Direct => MemoryModel { browser_before_mb: 95.0, browser_active_mb: 22.0, extra_client_mb: 0.0, per_connection_kb: 40.0 },
            Method::NativeVpn => MemoryModel { browser_before_mb: 95.0, browser_active_mb: 26.0, extra_client_mb: 3.0, per_connection_kb: 40.0 },
            Method::OpenVpn => MemoryModel { browser_before_mb: 95.0, browser_active_mb: 26.0, extra_client_mb: 18.0, per_connection_kb: 40.0 },
            Method::Shadowsocks => MemoryModel { browser_before_mb: 95.0, browser_active_mb: 28.0, extra_client_mb: 24.0, per_connection_kb: 60.0 },
            Method::Tor => MemoryModel { browser_before_mb: 162.0, browser_active_mb: 55.0, extra_client_mb: 32.0, per_connection_kb: 80.0 },
            Method::ScholarCloud => MemoryModel { browser_before_mb: 95.0, browser_active_mb: 24.0, extra_client_mb: 0.0, per_connection_kb: 40.0 },
        }
    }

    /// Memory before actively browsing (browser + resident client sw).
    pub fn before_mb(&self) -> f64 {
        self.browser_before_mb + self.extra_client_mb
    }

    /// Memory while loading, given the measured connection count.
    pub fn after_mb(&self, connections: usize) -> f64 {
        self.before_mb() + self.browser_active_mb + connections as f64 * self.per_connection_kb / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_ordering_matches_figure_6b() {
        let kb = 25.0;
        let total = |m: Method| {
            let c = CpuModel::for_method(m);
            c.browser_percent(kb) + c.extra_client_percent(kb)
        };
        // Native VPN least, Tor most (paper: 3.07% → 3.62%).
        assert!(total(Method::NativeVpn) < total(Method::OpenVpn));
        assert!(total(Method::OpenVpn) <= total(Method::Shadowsocks));
        assert!(total(Method::Shadowsocks) < total(Method::Tor));
        let native = total(Method::NativeVpn);
        let tor = total(Method::Tor);
        assert!((2.9..3.4).contains(&native), "native {native}");
        assert!((3.3..4.0).contains(&tor), "tor {tor}");
        // The increase is modest (~18% in the paper).
        assert!((tor - native) / native < 0.35);
    }

    #[test]
    fn memory_matches_figure_6c_shape() {
        let chrome = MemoryModel::for_method(Method::NativeVpn);
        let tor = MemoryModel::for_method(Method::Tor);
        // Tor Browser ≈ 70% more than Chrome before browsing.
        let ratio = tor.browser_before_mb / chrome.browser_before_mb;
        assert!((1.6..1.8).contains(&ratio), "ratio {ratio}");
        // After: native +~30 MB, Tor +~90 MB.
        let native_delta = chrome.after_mb(4) - chrome.before_mb();
        let tor_delta = tor.after_mb(6) - tor.before_mb();
        assert!((20.0..40.0).contains(&native_delta), "native {native_delta}");
        assert!((45.0..95.0).contains(&tor_delta), "tor {tor_delta}");
        assert!(tor_delta > 2.0 * native_delta);
    }

    #[test]
    fn traffic_sample_total() {
        let t = TrafficSample { sent: 1024, received: 2048 };
        assert!((t.total_kb() - 3.0).abs() < 1e-12);
    }
}
