//! Text renderers: print each figure's data the way the paper reports it,
//! plus the per-scenario interference report and the observability
//! metrics summary.

use crate::experiments::{Fig3Row, Fig5Row, Fig6Row, Fig7Point};
use crate::scenario::{Method, ScenarioOutcome};

/// Renders one scenario run's censorship-interference breakdown: what the
/// GFW did, and which rule each censor-dropped packet died to.
pub fn render_scenario(method: Method, o: &ScenarioOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!("Scenario — {}
", method.name()));
    out.push_str(&format!("  sim time:               {:.1} s
", o.sim_end.as_secs_f64()));
    out.push_str(&format!("  packet loss rate:       {:.3}%
", o.plr * 100.0));
    out.push_str(&format!("  load failure rate:      {:.1}%
", o.failure_rate() * 100.0));
    out.push_str(&format!("  dns poisoned:           {}
", o.gfw.dns_poisoned));
    out.push_str(&format!("  keyword resets:         {}
", o.gfw.keyword_resets));
    out.push_str(&format!("  sni resets:             {}
", o.gfw.sni_resets));
    out.push_str(&format!("  embedded-sni resets:    {}
", o.gfw.embedded_sni_resets));
    out.push_str(&format!("  probes requested:       {}
", o.gfw.probes_requested));
    out.push_str(&format!("  servers confirmed:      {}
", o.gfw.servers_confirmed));
    if o.censor_by_rule.is_empty() {
        out.push_str("  censor drops:           none
");
    } else {
        out.push_str("  censor drops by rule:
");
        for (rule, n) in &o.censor_by_rule {
            out.push_str(&format!("    {rule:<22}{n}
"));
        }
    }
    // Failed loads broken out by the proxy status that killed them —
    // separates policy refusals (403) from overload shedding (429/503)
    // and upstream darkness (502).
    let mut by_status: std::collections::BTreeMap<u16, u64> = std::collections::BTreeMap::new();
    let mut throttled_ok = 0u64;
    for r in o.loads.iter().flatten() {
        if r.failed {
            if let Some(s) = r.proxy_status {
                *by_status.entry(s).or_default() += 1;
            }
        } else if r.throttled {
            throttled_ok += 1;
        }
    }
    if !by_status.is_empty() {
        out.push_str("  failed loads by proxy status:
");
        for (status, n) in &by_status {
            let label = match status {
                403 => "403 (policy)",
                429 => "429 (throttled)",
                502 => "502 (upstream)",
                503 => "503 (shed)",
                _ => "other",
            };
            out.push_str(&format!("    {label:<22}{n}
"));
        }
    }
    if throttled_ok > 0 {
        out.push_str(&format!("  throttled-then-ok loads: {throttled_ok}
"));
    }
    out
}

/// Renders the domestic proxy's shared-cache counters the way an
/// operator would read them after a run: how much of the gateway
/// traffic the cache absorbed, and by which mechanism (fresh hit,
/// coalesced flight, cheap revalidation).
pub fn render_cache(stats: &sc_core::CacheStats) -> String {
    let mut out = String::from("Shared cache — domestic proxy\n");
    out.push_str(&format!("  hits:                   {}\n", stats.hits));
    out.push_str(&format!("  misses:                 {}\n", stats.misses));
    out.push_str(&format!("  coalesced waiters:      {}\n", stats.coalesced));
    out.push_str(&format!("  revalidations (304):    {}\n", stats.revalidated));
    out.push_str(&format!("  insertions:             {}\n", stats.insertions));
    out.push_str(&format!("  evictions:              {}\n", stats.evicted));
    out.push_str(&format!("  oversize rejects:       {}\n", stats.rejected_oversize));
    out.push_str(&format!("  upstream fetches:       {}\n", stats.upstream_fetches.len()));
    out.push_str(&format!(
        "  upstream bytes saved:   {:.1} KB\n",
        stats.bytes_saved as f64 / 1024.0
    ));
    out.push_str(&format!(
        "  hit rate:               {:.1}%\n",
        stats.hit_rate() * 100.0
    ));
    out
}

/// Renders the installed observability registry (counters, gauges,
/// histogram percentiles), or a placeholder when no collector is
/// installed. Plugs the `sc-obs` metrics into the report output.
pub fn render_obs_summary() -> String {
    sc_obs::with_registry(|r| r.render_summary())
        .unwrap_or_else(|| "observability: no collector installed
".to_string())
}

/// Renders the installed time-series store's per-window timeline for
/// one series (rates for counter series, p50/p95/p99 for sample
/// series), or a placeholder when no window-enabled collector is
/// installed.
pub fn render_timeline(series: &str) -> String {
    sc_obs::with_timeseries(|ts| ts.render_timeline(series))
        .unwrap_or_else(|| format!("timeline — {series}: no window-enabled collector installed\n"))
}

/// Renders the SLO engine's verdict table (one row per SLO: state,
/// worst burn rate, fire/resolve counts), or a placeholder when no SLO
/// engine is installed.
pub fn render_slo_verdicts() -> String {
    sc_obs::with_slo_engine(|e| e.verdict_table())
        .unwrap_or_else(|| "SLOs: no SLO-enabled collector installed\n".to_string())
}

/// Renders the full operator dashboard: one timeline per requested
/// series followed by the SLO verdict table. The shape an operator of
/// the paper's deployment would glance at first.
pub fn render_ops_dashboard(series: &[&str]) -> String {
    let mut out = String::from("=== operator dashboard ===\n");
    for s in series {
        out.push_str(&render_timeline(s));
        out.push('\n');
    }
    out.push_str(&render_slo_verdicts());
    out
}

/// One scenario's wall-clock performance numbers for [`render_perf`] —
/// filled by the `scholar-bench` harness from `sc_obs::prof` and the
/// simulator's event-loop counters.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Scenario name.
    pub name: String,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Events the simulator loop dispatched.
    pub events: u64,
    /// Events per wall second.
    pub events_per_sec: f64,
    /// Simulated seconds per wall second.
    pub sim_per_wall: f64,
    /// Event-queue depth high-water mark.
    pub queue_depth_hwm: u64,
    /// Peak live heap bytes (0 when no counting allocator installed).
    pub peak_alloc_bytes: u64,
    /// `(subsystem, exclusive wall ns)` attribution, report order.
    pub subsystems: Vec<(String, u64)>,
}

/// Renders the `scholar-bench` console table: one throughput row per
/// scenario, then per-subsystem wall-time attribution as a share of
/// each scenario's profiled time.
pub fn render_perf(rows: &[PerfRow]) -> String {
    let mut out = String::from("Performance — wall-clock (best iteration)\n");
    out.push_str(&format!(
        "  {:<12} {:>9} {:>10} {:>12} {:>10} {:>7} {:>10}\n",
        "scenario", "wall ms", "events", "events/s", "sim/wall", "q-hwm", "peak KiB"
    ));
    for r in rows {
        out.push_str(&format!(
            "  {:<12} {:>9.1} {:>10} {:>12.0} {:>10.0} {:>7} {:>10}\n",
            r.name,
            r.wall_ms,
            r.events,
            r.events_per_sec,
            r.sim_per_wall,
            r.queue_depth_hwm,
            r.peak_alloc_bytes / 1024,
        ));
    }
    out.push_str("  subsystem attribution (% of profiled wall time):\n");
    for r in rows {
        let total: u64 = r.subsystems.iter().map(|(_, ns)| ns).sum();
        out.push_str(&format!("  {:<12}", r.name));
        for (name, ns) in &r.subsystems {
            let pct = if total > 0 { *ns as f64 / total as f64 * 100.0 } else { 0.0 };
            out.push_str(&format!(" {name} {pct:.0}%"));
        }
        out.push('\n');
    }
    out
}

/// Renders Figure 3 as text.
pub fn render_fig3(row: &Fig3Row) -> String {
    let mut out = String::new();
    out.push_str("Figure 3 — methods for accessing Google Scholar (survey)\n");
    out.push_str(&format!("  respondents:            {}\n", row.respondents));
    out.push_str(&format!("  bypass the GFW:         {:.1}%   (paper: 26%)\n", row.bypass_share * 100.0));
    out.push_str(&format!("  VPN (of bypassers):     {:.1}%   (paper: 43%)\n", row.vpn * 100.0));
    out.push_str(&format!("    native VPN within VPN:{:.1}%   (paper: 93%)\n", row.native_within_vpn * 100.0));
    out.push_str(&format!("  Tor:                    {:.1}%   (paper: 2%)\n", row.tor * 100.0));
    out.push_str(&format!("  Shadowsocks:            {:.1}%   (paper: 21%)\n", row.shadowsocks * 100.0));
    out.push_str(&format!("  other methods:          {:.1}%   (paper: 34%)\n", row.other * 100.0));
    out
}

/// Renders Figures 5a–5c as a table.
pub fn render_fig5(rows: &[Fig5Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 5 — performance and robustness\n");
    out.push_str(&format!(
        "{:<14} {:>16} {:>16} {:>12} {:>9} {:>9}\n",
        "method", "PLT first (s)", "PLT subs (s)", "RTT (ms)", "PLR (%)", "fail (%)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>16} {:>16} {:>12} {:>9.3} {:>9.1}\n",
            r.method.name(),
            format_summary(&r.plt_first),
            format_summary(&r.plt_subsequent),
            format_summary(&r.rtt_ms),
            r.plr * 100.0,
            r.failure_rate * 100.0,
        ));
    }
    out
}

fn format_summary(s: &crate::stats::Summary) -> String {
    if s.n == 0 {
        "—".to_string()
    } else {
        format!("{:.2} [{:.2},{:.2}]", s.mean, s.min, s.max)
    }
}

/// Renders Figures 6a–6c as a table.
pub fn render_fig6(rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 6 — client-side overhead\n");
    out.push_str(&format!(
        "{:<14} {:>12} {:>12} {:>11} {:>11} {:>12} {:>12}\n",
        "method", "sent (KB)", "recv (KB)", "CPU brw %", "CPU cli %", "mem before", "mem after"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>12.1} {:>12.1} {:>11.2} {:>11.2} {:>10.0}MB {:>10.0}MB\n",
            r.method.name(),
            r.traffic.sent as f64 / 1024.0,
            r.traffic.received as f64 / 1024.0,
            r.cpu_browser,
            r.cpu_extra,
            r.mem_before_mb,
            r.mem_after_mb,
        ));
    }
    out
}

/// Renders Figure 7 curves.
pub fn render_fig7(curves: &[(Method, Vec<Fig7Point>)]) -> String {
    let mut out = String::new();
    out.push_str("Figure 7 — scalability (mean PLT in s vs concurrent clients)\n");
    out.push_str(&format!("{:<14}", "clients"));
    if let Some((_, first)) = curves.first() {
        for p in first {
            out.push_str(&format!("{:>8}", p.clients));
        }
    }
    out.push('\n');
    for (method, points) in curves {
        out.push_str(&format!("{:<14}", method.name()));
        for p in points {
            out.push_str(&format!("{:>8.2}", p.plt_mean));
        }
        out.push('\n');
    }
    out
}

/// Renders rows as CSV (for external plotting).
pub fn fig5_csv(rows: &[Fig5Row]) -> String {
    let mut out = String::from(
        "method,plt_first_mean,plt_first_min,plt_first_max,plt_subs_mean,plt_subs_min,plt_subs_max,rtt_ms_mean,plr,failure_rate\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.2},{:.6},{:.4}\n",
            r.method.name(),
            r.plt_first.mean,
            r.plt_first.min,
            r.plt_first.max,
            r.plt_subsequent.mean,
            r.plt_subsequent.min,
            r.plt_subsequent.max,
            r.rtt_ms.mean,
            r.plr,
            r.failure_rate,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    #[test]
    fn rendering_is_stable() {
        let row = Fig5Row {
            method: Method::ScholarCloud,
            plt_first: Summary { n: 1, mean: 2.1, min: 2.0, max: 2.2 },
            plt_subsequent: Summary { n: 9, mean: 1.3, min: 1.2, max: 1.5 },
            rtt_ms: Summary { n: 9, mean: 150.0, min: 140.0, max: 160.0 },
            plr: 0.0022,
            failure_rate: 0.0,
        };
        let text = render_fig5(&[row.clone()]);
        assert!(text.contains("ScholarCloud"));
        assert!(text.contains("1.30"));
        let csv = fig5_csv(&[row]);
        assert!(csv.lines().count() == 2);
        assert!(csv.contains("ScholarCloud,2.1"));
    }
}
