//! One runner per figure in the paper's evaluation. Each returns typed
//! rows that [`report`](crate::report) renders as the figure's data.

use crate::overhead::{CpuModel, MemoryModel, TrafficSample};
use crate::scenario::{Method, ScenarioConfig, ScenarioOutcome, run_scenario};
use crate::stats::Summary;
use sc_regulation::{SurveyDistribution, SurveyTabulation, sample_population};
use sc_simnet::time::SimDuration;

/// Figure 3: the access-method survey.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Row {
    /// Respondents sampled.
    pub respondents: usize,
    /// Share who bypass the GFW at all.
    pub bypass_share: f64,
    /// Among bypassers: VPN share.
    pub vpn: f64,
    /// Among VPN users: native VPN share.
    pub native_within_vpn: f64,
    /// Among bypassers: Tor share.
    pub tor: f64,
    /// Among bypassers: Shadowsocks share.
    pub shadowsocks: f64,
    /// Among bypassers: other methods.
    pub other: f64,
}

/// Runs the Figure-3 survey pipeline.
pub fn fig3_survey(respondents: usize, seed: u64) -> Fig3Row {
    let dist = SurveyDistribution::paper();
    let population = sample_population(&dist, respondents, seed);
    let t = SurveyTabulation::tabulate(&population);
    let (vpn, tor, ss, other) = t.method_shares();
    Fig3Row {
        respondents,
        bypass_share: t.bypass_share(),
        vpn,
        native_within_vpn: t.native_share_within_vpn(),
        tor,
        shadowsocks: ss,
        other,
    }
}

/// One method's row for Figures 5a–5c.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Access method.
    pub method: Method,
    /// First-time page load time (s).
    pub plt_first: Summary,
    /// Subsequent page load time (s).
    pub plt_subsequent: Summary,
    /// Round-trip time (ms).
    pub rtt_ms: Summary,
    /// Packet loss rate (fraction).
    pub plr: f64,
    /// Load failure rate (fraction).
    pub failure_rate: f64,
}

/// Runs the full Figure-5 measurement (PLT/RTT/PLR) for one method.
pub fn fig5_method(method: Method, seed: u64, loads: usize) -> Fig5Row {
    let mut cfg = ScenarioConfig::paper(method, seed);
    cfg.loads = loads;
    let outcome = run_scenario(&cfg);
    summarize_fig5(method, &outcome)
}

/// Summarizes an existing outcome into a Figure-5 row.
pub fn summarize_fig5(method: Method, outcome: &ScenarioOutcome) -> Fig5Row {
    let (first, subs) = outcome.plts();
    Fig5Row {
        method,
        plt_first: Summary::of_or_empty(&first),
        plt_subsequent: Summary::of_or_empty(&subs),
        rtt_ms: Summary::of_or_empty(&outcome.rtts_ms()),
        plr: outcome.plr,
        failure_rate: outcome.failure_rate(),
    }
}

/// Runs Figure 5 for all five measured methods.
pub fn fig5_all(seed: u64, loads: usize) -> Vec<Fig5Row> {
    Method::all_measured()
        .into_iter()
        .map(|m| fig5_method(m, seed, loads))
        .collect()
}

/// One method's row for Figures 6a–6c.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Access method.
    pub method: Method,
    /// Measured wire traffic per access.
    pub traffic: TrafficSample,
    /// Modelled browser CPU percent.
    pub cpu_browser: f64,
    /// Modelled extra-client CPU percent.
    pub cpu_extra: f64,
    /// Modelled memory before browsing (MB).
    pub mem_before_mb: f64,
    /// Modelled memory while browsing (MB).
    pub mem_after_mb: f64,
}

/// Runs the Figure-6 overhead measurement for one method.
///
/// Traffic is the *marginal* cost of one access — the byte difference
/// between a 5-load run and a 1-load run divided by 4 — so one-time setup
/// (Tor's directory bootstrap, VPN handshakes) does not skew the
/// per-access number, matching the paper's per-access methodology.
pub fn fig6_method(method: Method, seed: u64) -> Fig6Row {
    let mut cfg = ScenarioConfig::paper(method, seed);
    cfg.loads = 5;
    let outcome = run_scenario(&cfg);
    let mut cfg1 = ScenarioConfig::paper(method, seed);
    cfg1.loads = 1;
    let base = run_scenario(&cfg1);
    let traffic = TrafficSample {
        sent: outcome.client_sent_bytes.saturating_sub(base.client_sent_bytes) / 4,
        received: outcome.client_recv_bytes.saturating_sub(base.client_recv_bytes) / 4,
    };
    let kb = traffic.total_kb();
    let cpu = CpuModel::for_method(method);
    let mem = MemoryModel::for_method(method);
    let mean_conns = {
        let all: Vec<usize> = outcome
            .loads
            .iter()
            .flatten()
            .map(|r| r.connections)
            .collect();
        if all.is_empty() { 3 } else { all.iter().sum::<usize>() / all.len() }
    };
    Fig6Row {
        method,
        traffic,
        cpu_browser: cpu.browser_percent(kb),
        cpu_extra: cpu.extra_client_percent(kb),
        mem_before_mb: mem.before_mb(),
        mem_after_mb: mem.after_mb(mean_conns),
    }
}

/// Runs Figure 6 for the baseline (direct from an uncensored vantage) and
/// all methods.
pub fn fig6_all(seed: u64) -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    // Baseline: direct access with no GFW (the paper's US client).
    let mut cfg = ScenarioConfig::paper(Method::Direct, seed);
    cfg.gfw = false;
    cfg.loads = 5;
    let outcome = run_scenario(&cfg);
    let accesses = cfg.loads as u64;
    rows.push(Fig6Row {
        method: Method::Direct,
        traffic: TrafficSample {
            sent: outcome.client_sent_bytes / accesses,
            received: outcome.client_recv_bytes / accesses,
        },
        cpu_browser: CpuModel::for_method(Method::Direct).browser_percent(19.0),
        cpu_extra: 0.0,
        mem_before_mb: MemoryModel::for_method(Method::Direct).before_mb(),
        mem_after_mb: MemoryModel::for_method(Method::Direct).after_mb(3),
    });
    for m in Method::all_measured() {
        rows.push(fig6_method(m, seed));
    }
    rows
}

/// One point on a Figure-7 scalability curve.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Point {
    /// Concurrent clients.
    pub clients: usize,
    /// Mean subsequent PLT (s).
    pub plt_mean: f64,
    /// Failure rate.
    pub failure_rate: f64,
}

/// The paper's client counts for Figure 7.
pub const FIG7_CLIENTS: [usize; 8] = [5, 15, 30, 60, 90, 120, 150, 180];

/// Runs the Figure-7 scalability sweep for one method. Tor is excluded in
/// the paper (no control over bridges); callers usually sweep
/// `[NativeVpn, OpenVpn, Shadowsocks, ScholarCloud]`.
pub fn fig7_method(method: Method, seed: u64, client_counts: &[usize]) -> Vec<Fig7Point> {
    client_counts
        .iter()
        .map(|&n| {
            let mut cfg = ScenarioConfig::paper(method, seed ^ n as u64);
            cfg.clients = n;
            cfg.loads = 3;
            cfg.interval = SimDuration::from_secs(12);
            cfg.timeout = SimDuration::from_secs(30);
            let outcome = run_scenario(&cfg);
            let (_, subs) = outcome.plts();
            Fig7Point {
                clients: n,
                plt_mean: Summary::of_or_empty(&subs).mean,
                failure_rate: outcome.failure_rate(),
            }
        })
        .collect()
}

/// Ablation: ScholarCloud with blinding disabled (Identity scheme): the
/// GFW's embedded-SNI scan should reset the tunnel; with blinding the
/// service is clean. Returns (blinded row, unblinded row, resets seen).
pub fn ablation_blinding(seed: u64) -> (Fig5Row, Fig5Row, u64) {
    let cfg_on = ScenarioConfig::paper(Method::ScholarCloud, seed);
    let on = run_scenario(&cfg_on);
    let mut cfg_off = ScenarioConfig::paper(Method::ScholarCloud, seed);
    cfg_off.sc_scheme = sc_crypto::BlindingScheme::Identity;
    let off = run_scenario(&cfg_off);
    let resets = off.gfw.embedded_sni_resets;
    (
        summarize_fig5(Method::ScholarCloud, &on),
        summarize_fig5(Method::ScholarCloud, &off),
        resets,
    )
}

/// Ablation: the GFW learns the current cover signature; rotation evades.
/// Returns (failure rate before rotation, after rotation).
pub fn ablation_agility(seed: u64) -> (f64, f64) {
    // GFW learns the ByteMap cover path signature.
    let mut learned = ScenarioConfig::paper(Method::ScholarCloud, seed);
    learned.gfw_learned_signatures = vec![b"POST /api/sync".to_vec()];
    let before = run_scenario(&learned);
    // Operator rotates to XorRolling (different cover path).
    let mut rotated = learned.clone();
    rotated.sc_scheme = sc_crypto::BlindingScheme::XorRolling;
    let after = run_scenario(&rotated);
    (before.failure_rate().max(before.plr * 10.0), after.failure_rate().max(after.plr * 10.0))
}

/// Ablation: sweep the Shadowsocks keep-alive window (the paper blames
/// the 10 s default for its PLT). Returns (keepalive s, mean subs PLT).
pub fn ablation_ss_keepalive(seed: u64, windows_s: &[u64]) -> Vec<(u64, f64)> {
    windows_s
        .iter()
        .map(|&w| {
            let mut cfg = ScenarioConfig::paper(Method::Shadowsocks, seed);
            cfg.ss_keepalive = SimDuration::from_secs(w);
            // Isolate the keep-alive effect (shared auth window).
            cfg.ss_auth_per_connection = false;
            cfg.loads = 6;
            let outcome = run_scenario(&cfg);
            let (_, subs) = outcome.plts();
            (w, Summary::of_or_empty(&subs).mean)
        })
        .collect()
}
