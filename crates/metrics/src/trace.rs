//! Environment-driven trace collection for the examples and harnesses.
//!
//! Setting `SC_TRACE=/path/to/trace.jsonl` before running any example
//! installs a [`sc_obs`] dispatcher with a JSONL sink at `Debug` level,
//! so every instrumented component (simnet, gfw, scholarcloud, tunnels,
//! web, metrics) streams its events to that file. Traces are keyed to
//! simulation time and are byte-identical across runs of the same seeded
//! scenario.

use sc_obs::{Dispatcher, JsonlSink, Level, ObsGuard, SloSpec, WindowSpec};

/// The environment variable naming the JSONL trace destination.
pub const SC_TRACE_ENV: &str = "SC_TRACE";

/// Installs a JSONL trace collector if `SC_TRACE` is set, returning the
/// guard that keeps it active (drop it to flush and uninstall). Returns
/// `None` — and collects nothing — when the variable is unset or the
/// file cannot be created.
///
/// ```no_run
/// let _obs = sc_metrics::trace::obs_from_env();
/// // ... run scenarios; drop the guard (end of scope) to flush.
/// ```
pub fn obs_from_env() -> Option<ObsGuard> {
    let path = std::env::var(SC_TRACE_ENV).ok()?;
    if path.is_empty() {
        return None;
    }
    match JsonlSink::create(&path) {
        Ok(sink) => {
            eprintln!("[sc-obs] tracing to {path} (SC_TRACE)");
            Some(
                Dispatcher::new()
                    .with_level(Level::Debug)
                    .with_sink(Box::new(sink))
                    .install(),
            )
        }
        Err(e) => {
            eprintln!("[sc-obs] SC_TRACE={path}: cannot create trace file: {e}");
            None
        }
    }
}

/// Installs an operator-grade collector: windowed time-series with the
/// given geometry, the given SLOs evaluated as simulation time advances
/// (alerts flow through the normal sink path), and — if `SC_TRACE` is
/// set — a JSONL sink capturing everything including the alerts.
///
/// ```no_run
/// let guard = sc_metrics::trace::ops_obs(
///     sc_obs::WindowSpec::seconds(10),
///     sc_metrics::scenario::default_slos(),
/// );
/// // ... run the scenario, render dashboards, then:
/// let fired = sc_obs::with_slo_engine(|e| e.total_fired()).unwrap_or(0);
/// drop(guard);
/// # let _ = fired;
/// ```
pub fn ops_obs(windows: WindowSpec, slos: Vec<SloSpec>) -> ObsGuard {
    let mut d = Dispatcher::new()
        .with_level(Level::Debug)
        .with_windows(windows)
        .with_slos(slos);
    if let Ok(path) = std::env::var(SC_TRACE_ENV) {
        if !path.is_empty() {
            match JsonlSink::create(&path) {
                Ok(sink) => {
                    eprintln!("[sc-obs] tracing to {path} (SC_TRACE)");
                    d = d.with_sink(Box::new(sink));
                }
                Err(e) => {
                    eprintln!("[sc-obs] SC_TRACE={path}: cannot create trace file: {e}");
                }
            }
        }
    }
    d.install()
}

/// Installs a JSONL trace collector writing to `path` unconditionally.
/// Used by tests that assert on trace contents.
pub fn obs_to_file(path: &str) -> std::io::Result<ObsGuard> {
    let sink = JsonlSink::create(path)?;
    Ok(Dispatcher::new()
        .with_level(Level::Debug)
        .with_sink(Box::new(sink))
        .install())
}
