//! # sc-dns
//!
//! The DNS substrate for the ScholarCloud reproduction: wire format
//! ([`message`]), authoritative + caching recursive servers ([`server`]),
//! and an embeddable stub resolver with a client-side cache ([`stub`]).
//!
//! DNS matters to the paper twice over:
//!
//! 1. **DNS poisoning** is one of the GFW's blocking techniques — the
//!    censor forges answers for blocked names as the query crosses the
//!    border ([`server::forge_response`] is the injection primitive the
//!    GFW middlebox uses).
//! 2. **Cold DNS caches** are the first of the paper's three reasons that
//!    first-time page loads are much slower than subsequent ones (§4.3).
//!
//! ## Example
//!
//! ```
//! use sc_dns::message::{ARecord, DnsMessage, Rcode};
//! use sc_simnet::addr::Addr;
//!
//! let q = DnsMessage::query(1, "scholar.google.com");
//! let r = DnsMessage::response(
//!     &q,
//!     Rcode::NoError,
//!     vec![ARecord { addr: Addr::new(99, 2, 0, 1), ttl: 300 }],
//! );
//! assert_eq!(DnsMessage::decode(&r.encode()).unwrap(), r);
//! ```

#![warn(missing_docs)]

pub mod message;
pub mod server;
pub mod stub;

pub use message::{ARecord, DnsMessage, Rcode};
pub use server::{AuthoritativeServer, RecursiveResolver, Zone, DNS_PORT, forge_response};
pub use stub::{Resolution, ResolveOutcome, StubResolver};

#[cfg(test)]
mod tests {
    use super::*;
    use sc_simnet::prelude::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// App that resolves one name via a stub resolver and logs the result.
    struct ResolveOnce {
        stub: StubResolver,
        name: String,
        result: Rc<RefCell<Option<Resolution>>>,
        resolved_at: Rc<RefCell<Option<SimTime>>>,
    }

    impl App for ResolveOnce {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.stub.bind(ctx);
            if let Some(r) = self.stub.resolve(&self.name, 0, ctx) {
                *self.result.borrow_mut() = Some(r);
                *self.resolved_at.borrow_mut() = Some(ctx.now());
            }
        }
        fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
            if let AppEvent::Udp { socket, payload, .. } = ev {
                if let Some(r) = self.stub.on_datagram(socket, &payload, ctx.now()) {
                    *self.result.borrow_mut() = Some(r);
                    *self.resolved_at.borrow_mut() = Some(ctx.now());
                }
            }
        }
    }

    fn dns_topology() -> (Sim, NodeId, NodeId, NodeId) {
        // client — resolver — authoritative
        let mut sim = Sim::new(5);
        let client = sim.add_node("client", Addr::new(10, 0, 0, 1));
        let resolver = sim.add_node("resolver", Addr::new(10, 0, 0, 53));
        let auth = sim.add_node("auth", Addr::new(99, 0, 0, 53));
        sim.add_link(client, resolver, LinkConfig::with_delay(SimDuration::from_millis(5)));
        sim.add_link(resolver, auth, LinkConfig::with_delay(SimDuration::from_millis(80)));
        sim.compute_routes();
        (sim, client, resolver, auth)
    }

    #[test]
    fn end_to_end_recursive_resolution() {
        let (mut sim, client, resolver, auth) = dns_topology();
        let mut zone = Zone::new();
        zone.insert("scholar.google.com", Addr::new(99, 2, 0, 1), 300);
        sim.install_app(auth, Box::new(AuthoritativeServer::new(zone)));
        sim.install_app(resolver, Box::new(RecursiveResolver::new(Addr::new(99, 0, 0, 53))));
        let result = Rc::new(RefCell::new(None));
        let at = Rc::new(RefCell::new(None));
        sim.install_app(
            client,
            Box::new(ResolveOnce {
                stub: StubResolver::new(Addr::new(10, 0, 0, 53)),
                name: "scholar.google.com".into(),
                result: result.clone(),
                resolved_at: at.clone(),
            }),
        );
        sim.run_for(SimDuration::from_secs(2));
        let r = result.borrow().clone().expect("should resolve");
        assert_eq!(
            r.outcome,
            ResolveOutcome::Resolved(vec![Addr::new(99, 2, 0, 1)])
        );
        assert!(!r.from_cache);
        // Full path: 2*(5+80) ms = 170 ms.
        let ms = at.borrow().unwrap().as_micros() as f64 / 1000.0;
        assert!((170.0..175.0).contains(&ms), "resolution took {ms} ms");
    }

    #[test]
    fn nxdomain_propagates() {
        let (mut sim, client, resolver, auth) = dns_topology();
        sim.install_app(auth, Box::new(AuthoritativeServer::new(Zone::new())));
        sim.install_app(resolver, Box::new(RecursiveResolver::new(Addr::new(99, 0, 0, 53))));
        let result = Rc::new(RefCell::new(None));
        let at = Rc::new(RefCell::new(None));
        sim.install_app(
            client,
            Box::new(ResolveOnce {
                stub: StubResolver::new(Addr::new(10, 0, 0, 53)),
                name: "nonexistent.example".into(),
                result: result.clone(),
                resolved_at: at,
            }),
        );
        sim.run_for(SimDuration::from_secs(2));
        let r = result.borrow().clone().expect("should get an answer");
        assert_eq!(r.outcome, ResolveOutcome::Failed(Rcode::NxDomain));
    }

    /// Two apps on the same client node resolving the same name in
    /// sequence: the second should be served from the resolver cache and
    /// be much faster (the paper's first-time vs subsequent distinction).
    #[test]
    fn resolver_cache_makes_second_lookup_fast() {
        let (mut sim, client, resolver, auth) = dns_topology();
        let mut zone = Zone::new();
        zone.insert("scholar.google.com", Addr::new(99, 2, 0, 1), 300);
        sim.install_app(auth, Box::new(AuthoritativeServer::new(zone)));
        sim.install_app(resolver, Box::new(RecursiveResolver::new(Addr::new(99, 0, 0, 53))));

        let r1 = Rc::new(RefCell::new(None));
        let at1 = Rc::new(RefCell::new(None));
        sim.install_app(
            client,
            Box::new(ResolveOnce {
                stub: StubResolver::new(Addr::new(10, 0, 0, 53)),
                name: "scholar.google.com".into(),
                result: r1.clone(),
                resolved_at: at1.clone(),
            }),
        );
        sim.run_for(SimDuration::from_secs(1));
        // Second, independent stub (cold local cache, warm resolver cache).
        let r2 = Rc::new(RefCell::new(None));
        let at2 = Rc::new(RefCell::new(None));
        let start2 = sim.now();
        sim.install_app(
            client,
            Box::new(ResolveOnce {
                stub: StubResolver::new(Addr::new(10, 0, 0, 53)),
                name: "scholar.google.com".into(),
                result: r2.clone(),
                resolved_at: at2.clone(),
            }),
        );
        sim.run_for(SimDuration::from_secs(1));
        assert!(r2.borrow().is_some());
        let d2 = at2.borrow().unwrap() - start2;
        // Cache hit path is client↔resolver only: ~10 ms, not ~170 ms.
        assert!(d2.as_millis() <= 12, "cached lookup took {d2}");
    }

    /// The stub's own cache answers synchronously.
    #[test]
    fn stub_cache_hit_is_synchronous() {
        struct DoubleResolve {
            stub: StubResolver,
            hits: Rc<RefCell<u64>>,
        }
        impl App for DoubleResolve {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                self.stub.bind(ctx);
                self.stub.resolve("a.example", 1, ctx);
            }
            fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
                if let AppEvent::Udp { socket, payload, .. } = ev {
                    if self.stub.on_datagram(socket, &payload, ctx.now()).is_some() {
                        // Resolve again: must be a synchronous cache hit.
                        let r = self.stub.resolve("a.example", 2, ctx);
                        assert!(r.is_some_and(|r| r.from_cache));
                        *self.hits.borrow_mut() = self.stub.cache_hits;
                    }
                }
            }
        }
        let (mut sim, client, resolver, auth) = dns_topology();
        let mut zone = Zone::new();
        zone.insert("a.example", Addr::new(99, 9, 9, 9), 300);
        sim.install_app(auth, Box::new(AuthoritativeServer::new(zone)));
        sim.install_app(resolver, Box::new(RecursiveResolver::new(Addr::new(99, 0, 0, 53))));
        let hits = Rc::new(RefCell::new(0));
        sim.install_app(
            client,
            Box::new(DoubleResolve { stub: StubResolver::new(Addr::new(10, 0, 0, 53)), hits: hits.clone() }),
        );
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(*hits.borrow(), 1);
    }
}
