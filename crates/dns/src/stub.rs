//! A stub resolver helper that apps (the browser, proxies) embed to issue
//! DNS queries and match up responses, with a local cache — the cache whose
//! cold state is one of the paper's three reasons first-time page loads are
//! slower (§4.3).

use std::collections::HashMap;

use sc_simnet::addr::{Addr, SocketAddr};
use sc_simnet::api::UdpHandle;
use sc_simnet::sim::Ctx;
use sc_simnet::time::SimTime;

use crate::message::{DnsMessage, Rcode};
use crate::server::DNS_PORT;

/// Outcome of a resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveOutcome {
    /// Addresses, most-preferred first.
    Resolved(Vec<Addr>),
    /// The name does not exist (or the server failed).
    Failed(Rcode),
}

/// A completed resolution event returned by [`StubResolver::on_datagram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// The name that was queried.
    pub name: String,
    /// The outcome.
    pub outcome: ResolveOutcome,
    /// Opaque context supplied at [`StubResolver::resolve`] time.
    pub token: u64,
    /// Whether the answer came from the local cache.
    pub from_cache: bool,
}

#[derive(Debug, Clone)]
struct CachedAnswer {
    outcome: ResolveOutcome,
    expires: SimTime,
}

/// An embeddable stub resolver. The owning app routes UDP datagrams from
/// the resolver's socket into [`StubResolver::on_datagram`].
#[derive(Debug)]
pub struct StubResolver {
    server: SocketAddr,
    sock: Option<UdpHandle>,
    next_id: u16,
    pending: HashMap<u16, (String, u64)>,
    cache: HashMap<String, CachedAnswer>,
    /// Number of queries answered from cache.
    pub cache_hits: u64,
    /// Number of queries sent upstream.
    pub queries_sent: u64,
}

impl StubResolver {
    /// Creates a stub pointing at a resolver address (port 53).
    pub fn new(server: Addr) -> Self {
        StubResolver {
            server: SocketAddr::new(server, DNS_PORT),
            sock: None,
            next_id: 1,
            pending: HashMap::new(),
            cache: HashMap::new(),
            cache_hits: 0,
            queries_sent: 0,
        }
    }

    /// Binds the stub's socket; call from the app's `on_start`.
    pub fn bind(&mut self, ctx: &mut Ctx<'_>) {
        self.sock = ctx.udp_bind(0);
    }

    /// The socket handle, once bound.
    pub fn socket(&self) -> Option<UdpHandle> {
        self.sock
    }

    /// Starts (or short-circuits) a resolution. If the name is cached the
    /// result is returned immediately; otherwise a query goes out and the
    /// result arrives later via [`StubResolver::on_datagram`].
    ///
    /// # Panics
    ///
    /// Panics if [`StubResolver::bind`] has not been called.
    pub fn resolve(&mut self, name: &str, token: u64, ctx: &mut Ctx<'_>) -> Option<Resolution> {
        let sock = self.sock.expect("StubResolver::bind not called");
        let key = name.to_ascii_lowercase();
        if let Some(hit) = self.cache.get(&key) {
            if hit.expires > ctx.now() {
                self.cache_hits += 1;
                return Some(Resolution {
                    name: key,
                    outcome: hit.outcome.clone(),
                    token,
                    from_cache: true,
                });
            }
            self.cache.remove(&key);
        }
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        self.pending.insert(id, (key.clone(), token));
        self.queries_sent += 1;
        ctx.udp_send(sock, self.server, DnsMessage::query(id, &key).encode());
        None
    }

    /// Feeds a datagram that arrived on the stub's socket. Returns the
    /// completed resolution if the datagram was a matching response.
    pub fn on_datagram(&mut self, socket: UdpHandle, payload: &[u8], now: SimTime) -> Option<Resolution> {
        if Some(socket) != self.sock {
            return None;
        }
        let msg = DnsMessage::decode(payload).ok()?;
        if !msg.is_response {
            return None;
        }
        let (name, token) = self.pending.remove(&msg.id)?;
        let outcome = if msg.rcode == Rcode::NoError && !msg.answers.is_empty() {
            ResolveOutcome::Resolved(msg.answers.iter().map(|a| a.addr).collect())
        } else {
            ResolveOutcome::Failed(msg.rcode)
        };
        let ttl = msg.answers.iter().map(|a| a.ttl).min().unwrap_or(30);
        self.cache.insert(
            name.clone(),
            CachedAnswer {
                outcome: outcome.clone(),
                expires: now + sc_simnet::time::SimDuration::from_secs(ttl as u64),
            },
        );
        Some(Resolution { name, outcome, token, from_cache: false })
    }

    /// Drops all cached entries (models a browser restart).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Whether any queries are awaiting answers.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Retransmits every outstanding query (the owner calls this from a
    /// retry timer; real stub resolvers retransmit after ~1 s).
    ///
    /// # Panics
    ///
    /// Panics if [`StubResolver::bind`] has not been called.
    pub fn retry_pending(&mut self, ctx: &mut Ctx<'_>) {
        let sock = self.sock.expect("StubResolver::bind not called");
        for (&id, (name, _)) in self.pending.iter() {
            self.queries_sent += 1;
            ctx.udp_send(sock, self.server, DnsMessage::query(id, name).encode());
        }
    }
}
