//! DNS message wire format (simplified single-question A-record subset).
//!
//! The format is structured enough for the GFW's DNS-poisoning module to
//! parse queries off the wire and fabricate answers — the attack described
//! in the paper's §1/§5 (reference [2], "collateral damage of DNS
//! injection") — while staying compact.

use bytes::{BufMut, Bytes, BytesMut};
use sc_simnet::addr::Addr;

/// Maximum length of a domain name on the wire.
pub const MAX_NAME_LEN: usize = 253;

/// Response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rcode {
    /// Success.
    NoError,
    /// Name does not exist.
    NxDomain,
    /// Server failure.
    ServFail,
}

impl Rcode {
    fn to_byte(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::NxDomain => 3,
            Rcode::ServFail => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(Rcode::NoError),
            3 => Some(Rcode::NxDomain),
            2 => Some(Rcode::ServFail),
            _ => None,
        }
    }
}

/// An address record in an answer section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ARecord {
    /// The answer address.
    pub addr: Addr,
    /// Time-to-live in seconds.
    pub ttl: u32,
}

/// A DNS message: either a query or a response for one A-record question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsMessage {
    /// Transaction id (matched between query and response).
    pub id: u16,
    /// True for responses.
    pub is_response: bool,
    /// Response code (meaningful for responses).
    pub rcode: Rcode,
    /// The queried domain name, lowercase.
    pub qname: String,
    /// Answer records.
    pub answers: Vec<ARecord>,
}

impl DnsMessage {
    /// Builds a query for `qname`.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty or longer than [`MAX_NAME_LEN`].
    pub fn query(id: u16, qname: &str) -> Self {
        assert!(
            !qname.is_empty() && qname.len() <= MAX_NAME_LEN,
            "invalid query name"
        );
        DnsMessage {
            id,
            is_response: false,
            rcode: Rcode::NoError,
            qname: qname.to_ascii_lowercase(),
            answers: Vec::new(),
        }
    }

    /// Builds a response to `query` with the given answers.
    pub fn response(query: &DnsMessage, rcode: Rcode, answers: Vec<ARecord>) -> Self {
        DnsMessage {
            id: query.id,
            is_response: true,
            rcode,
            qname: query.qname.clone(),
            answers,
        }
    }

    /// Serializes to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.qname.len() + 8 * self.answers.len());
        buf.put_u16(self.id);
        buf.put_u8(self.is_response as u8);
        buf.put_u8(self.rcode.to_byte());
        buf.put_u8(self.qname.len() as u8);
        buf.put_slice(self.qname.as_bytes());
        buf.put_u8(self.answers.len() as u8);
        for a in &self.answers {
            buf.put_u32(a.addr.as_u32());
            buf.put_u32(a.ttl);
        }
        buf.freeze()
    }

    /// Parses wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DnsDecodeError`] for truncated or malformed input.
    pub fn decode(data: &[u8]) -> Result<Self, DnsDecodeError> {
        if data.len() < 5 {
            return Err(DnsDecodeError::Truncated);
        }
        let id = u16::from_be_bytes([data[0], data[1]]);
        let is_response = match data[2] {
            0 => false,
            1 => true,
            _ => return Err(DnsDecodeError::Malformed("bad response flag")),
        };
        let rcode = Rcode::from_byte(data[3]).ok_or(DnsDecodeError::Malformed("bad rcode"))?;
        let name_len = data[4] as usize;
        if data.len() < 5 + name_len + 1 {
            return Err(DnsDecodeError::Truncated);
        }
        let qname = std::str::from_utf8(&data[5..5 + name_len])
            .map_err(|_| DnsDecodeError::Malformed("name not utf-8"))?
            .to_string();
        let mut pos = 5 + name_len;
        let ancount = data[pos] as usize;
        pos += 1;
        if data.len() != pos + ancount * 8 {
            return Err(DnsDecodeError::Truncated);
        }
        let mut answers = Vec::with_capacity(ancount);
        for i in 0..ancount {
            let off = pos + i * 8;
            let addr = Addr::from_u32(u32::from_be_bytes(data[off..off + 4].try_into().unwrap()));
            let ttl = u32::from_be_bytes(data[off + 4..off + 8].try_into().unwrap());
            answers.push(ARecord { addr, ttl });
        }
        Ok(DnsMessage { id, is_response, rcode, qname, answers })
    }
}

/// Error parsing a DNS message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsDecodeError {
    /// Input too short.
    Truncated,
    /// A field had an invalid value.
    Malformed(&'static str),
}

impl core::fmt::Display for DnsDecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DnsDecodeError::Truncated => write!(f, "truncated DNS message"),
            DnsDecodeError::Malformed(what) => write!(f, "malformed DNS message: {what}"),
        }
    }
}

impl std::error::Error for DnsDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let q = DnsMessage::query(0x1234, "Scholar.Google.COM");
        assert_eq!(q.qname, "scholar.google.com"); // lowercased
        let decoded = DnsMessage::decode(&q.encode()).unwrap();
        assert_eq!(decoded, q);
    }

    #[test]
    fn response_roundtrip() {
        let q = DnsMessage::query(7, "example.com");
        let r = DnsMessage::response(
            &q,
            Rcode::NoError,
            vec![
                ARecord { addr: Addr::new(99, 1, 2, 3), ttl: 300 },
                ARecord { addr: Addr::new(99, 1, 2, 4), ttl: 300 },
            ],
        );
        let decoded = DnsMessage::decode(&r.encode()).unwrap();
        assert_eq!(decoded, r);
        assert_eq!(decoded.id, 7);
        assert!(decoded.is_response);
    }

    #[test]
    fn nxdomain_roundtrip() {
        let q = DnsMessage::query(9, "no.such.domain");
        let r = DnsMessage::response(&q, Rcode::NxDomain, vec![]);
        assert_eq!(DnsMessage::decode(&r.encode()).unwrap().rcode, Rcode::NxDomain);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(DnsMessage::decode(&[]).is_err());
        assert!(DnsMessage::decode(&[0, 1, 2]).is_err());
        // Bad response flag.
        let mut enc = DnsMessage::query(1, "a.b").encode().to_vec();
        enc[2] = 9;
        assert_eq!(
            DnsMessage::decode(&enc).unwrap_err(),
            DnsDecodeError::Malformed("bad response flag")
        );
        // Truncated answers.
        let q = DnsMessage::query(7, "example.com");
        let r = DnsMessage::response(&q, Rcode::NoError, vec![ARecord { addr: Addr::new(1, 1, 1, 1), ttl: 1 }]);
        let enc = r.encode();
        assert!(DnsMessage::decode(&enc[..enc.len() - 2]).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid query name")]
    fn empty_name_panics() {
        let _ = DnsMessage::query(1, "");
    }
}
