//! DNS servers: an authoritative zone server and a caching recursive
//! resolver, both as [`App`]s on simulated nodes.

use std::collections::HashMap;

use bytes::Bytes;
use sc_simnet::addr::{Addr, SocketAddr};
use sc_simnet::api::{App, AppEvent, UdpHandle};
use sc_simnet::sim::Ctx;
use sc_simnet::time::SimTime;

use crate::message::{ARecord, DnsMessage, Rcode};

/// The standard DNS port.
pub const DNS_PORT: u16 = 53;

/// A zone: name → addresses. Names are stored lowercase.
#[derive(Debug, Clone, Default)]
pub struct Zone {
    records: HashMap<String, Vec<ARecord>>,
}

impl Zone {
    /// Creates an empty zone.
    pub fn new() -> Self {
        Zone::default()
    }

    /// Adds an A record.
    pub fn insert(&mut self, name: &str, addr: Addr, ttl: u32) -> &mut Self {
        self.records
            .entry(name.to_ascii_lowercase())
            .or_default()
            .push(ARecord { addr, ttl });
        self
    }

    /// Looks up a name.
    pub fn lookup(&self, name: &str) -> Option<&[ARecord]> {
        self.records.get(&name.to_ascii_lowercase()).map(Vec::as_slice)
    }

    /// Number of distinct names.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the zone has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// An authoritative DNS server answering from a static [`Zone`].
#[derive(Debug)]
pub struct AuthoritativeServer {
    zone: Zone,
}

impl AuthoritativeServer {
    /// Creates a server for `zone`.
    pub fn new(zone: Zone) -> Self {
        AuthoritativeServer { zone }
    }
}

impl App for AuthoritativeServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.udp_bind(DNS_PORT);
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        let AppEvent::Udp { socket, from, payload } = ev else { return };
        let Ok(query) = DnsMessage::decode(&payload) else { return };
        if query.is_response {
            return;
        }
        let reply = match self.zone.lookup(&query.qname) {
            Some(records) => DnsMessage::response(&query, Rcode::NoError, records.to_vec()),
            None => DnsMessage::response(&query, Rcode::NxDomain, vec![]),
        };
        ctx.udp_send(socket, from, reply.encode());
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    answers: Vec<ARecord>,
    rcode: Rcode,
    expires: SimTime,
}

/// A caching recursive resolver. Queries it cannot answer from cache are
/// forwarded to an upstream (authoritative) server; responses are cached
/// by TTL.
///
/// In the China topology this is the ISP resolver *inside* the GFW, so
/// queries for blocked names cross the border and can be poisoned in
/// flight — the resolver faithfully caches the forged answer, which is why
/// DNS poisoning is so effective.
#[derive(Debug)]
pub struct RecursiveResolver {
    upstream: Addr,
    cache: HashMap<String, CacheEntry>,
    /// In-flight upstream queries: upstream-id → (client, client-id).
    pending: HashMap<u16, (SocketAddr, u16)>,
    next_id: u16,
    sock: Option<UdpHandle>,
    /// Cache hits (diagnostics).
    pub hits: u64,
    /// Cache misses (diagnostics).
    pub misses: u64,
}

impl RecursiveResolver {
    /// Creates a resolver forwarding to `upstream`.
    pub fn new(upstream: Addr) -> Self {
        RecursiveResolver {
            upstream,
            cache: HashMap::new(),
            pending: HashMap::new(),
            next_id: 1,
            sock: None,
            hits: 0,
            misses: 0,
        }
    }
}

impl App for RecursiveResolver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.sock = ctx.udp_bind(DNS_PORT);
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        let AppEvent::Udp { socket, from, payload } = ev else { return };
        let Ok(msg) = DnsMessage::decode(&payload) else { return };

        if !msg.is_response {
            // Client query: cache or forward.
            if let Some(entry) = self.cache.get(&msg.qname) {
                if entry.expires > ctx.now() {
                    self.hits += 1;
                    let reply = DnsMessage::response(&msg, entry.rcode, entry.answers.clone());
                    ctx.udp_send(socket, from, reply.encode());
                    return;
                }
                self.cache.remove(&msg.qname);
            }
            self.misses += 1;
            let upstream_id = self.next_id;
            self.next_id = self.next_id.wrapping_add(1).max(1);
            self.pending.insert(upstream_id, (from, msg.id));
            let fwd = DnsMessage::query(upstream_id, &msg.qname);
            ctx.udp_send(socket, SocketAddr::new(self.upstream, DNS_PORT), fwd.encode());
        } else {
            // Upstream response: cache + relay to the waiting client.
            // (First answer wins — which is precisely what makes on-path
            // DNS injection effective: the forged answer races the real
            // one and usually arrives first.)
            let Some((client, client_id)) = self.pending.remove(&msg.id) else { return };
            let ttl = msg.answers.iter().map(|a| a.ttl).min().unwrap_or(60);
            self.cache.insert(
                msg.qname.clone(),
                CacheEntry {
                    answers: msg.answers.clone(),
                    rcode: msg.rcode,
                    expires: ctx.now() + sc_simnet::time::SimDuration::from_secs(ttl as u64),
                },
            );
            let mut relayed = msg.clone();
            relayed.id = client_id;
            ctx.udp_send(socket, client, relayed.encode());
        }
    }
}

/// Builds a forged response to a query observed on the wire — the GFW's
/// DNS-injection primitive. Returns `None` if the bytes are not a query.
pub fn forge_response(query_bytes: &[u8], fake_addr: Addr, ttl: u32) -> Option<Bytes> {
    let msg = DnsMessage::decode(query_bytes).ok()?;
    if msg.is_response {
        return None;
    }
    let forged = DnsMessage::response(&msg, Rcode::NoError, vec![ARecord { addr: fake_addr, ttl }]);
    Some(forged.encode())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_lookup_is_case_insensitive() {
        let mut z = Zone::new();
        z.insert("Scholar.Google.com", Addr::new(99, 2, 0, 1), 300);
        assert!(z.lookup("scholar.google.COM").is_some());
        assert!(z.lookup("example.com").is_none());
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    fn forge_response_matches_query_id() {
        let q = DnsMessage::query(0xbeef, "scholar.google.com");
        let forged = forge_response(&q.encode(), Addr::new(1, 2, 3, 4), 600).unwrap();
        let parsed = DnsMessage::decode(&forged).unwrap();
        assert_eq!(parsed.id, 0xbeef);
        assert!(parsed.is_response);
        assert_eq!(parsed.answers[0].addr, Addr::new(1, 2, 3, 4));
    }

    #[test]
    fn forge_ignores_responses() {
        let q = DnsMessage::query(1, "x.y");
        let r = DnsMessage::response(&q, Rcode::NoError, vec![]);
        assert!(forge_response(&r.encode(), Addr::new(1, 1, 1, 1), 60).is_none());
        assert!(forge_response(b"junk", Addr::new(1, 1, 1, 1), 60).is_none());
    }
}
