//! Property-based tests on the simulator's wire formats and invariants.

use bytes::Bytes;
use proptest::prelude::*;
use sc_simnet::addr::{Addr, SocketAddr};
use sc_simnet::packet::{L4, Packet, TcpFlags, TcpSegmentBody};
use sc_simnet::time::{SimDuration, SimTime};

fn packet_strategy() -> impl Strategy<Value = Packet> {
    let payload = prop::collection::vec(any::<u8>(), 0..1500);
    (any::<u32>(), any::<u32>(), any::<u8>(), 0u8..3, any::<u16>(), any::<u16>(),
     any::<u64>(), any::<u64>(), 0u8..16, any::<u32>(), payload)
        .prop_map(|(src, dst, ttl, kind, sp, dp, seq, ack, flags, window, payload)| {
            let src_a = Addr::from_u32(src);
            let dst_a = Addr::from_u32(dst);
            let mut pkt = match kind {
                0 => Packet::tcp(
                    SocketAddr::new(src_a, sp),
                    SocketAddr::new(dst_a, dp),
                    TcpSegmentBody {
                        seq,
                        ack,
                        flags: tcp_flags_from(flags),
                        window,
                        payload: Bytes::from(payload),
                    },
                ),
                1 => Packet::udp(
                    SocketAddr::new(src_a, sp),
                    SocketAddr::new(dst_a, dp),
                    Bytes::from(payload),
                ),
                _ => Packet::raw(src_a, dst_a, 47, Bytes::from(payload)),
            };
            pkt.ttl = ttl;
            pkt
        })
}

fn tcp_flags_from(bits: u8) -> TcpFlags {
    TcpFlags {
        syn: bits & 1 != 0,
        ack: bits & 2 != 0,
        fin: bits & 4 != 0,
        rst: bits & 8 != 0,
    }
}

proptest! {
    /// Packet encode/decode is the identity.
    #[test]
    fn packet_codec_roundtrip(pkt in packet_strategy()) {
        let decoded = Packet::decode(&pkt.encode()).unwrap();
        prop_assert_eq!(decoded, pkt);
    }

    /// Truncating an encoded packet never decodes successfully (except at
    /// full length) and never panics.
    #[test]
    fn packet_decode_rejects_truncation(pkt in packet_strategy(), cut in 0usize..100) {
        let wire = pkt.encode();
        let cut = cut.min(wire.len().saturating_sub(1));
        prop_assert!(Packet::decode(&wire[..cut]).is_err());
    }

    /// Nested encapsulation (VPN-style) is lossless.
    #[test]
    fn packet_nested_encapsulation(inner in packet_strategy(), outer_port: u16) {
        let outer = Packet::udp(
            SocketAddr::new(Addr::new(10, 0, 0, 1), outer_port),
            SocketAddr::new(Addr::new(99, 0, 0, 1), 1194),
            inner.encode(),
        );
        let outer2 = Packet::decode(&outer.encode()).unwrap();
        if let L4::Udp(u) = &outer2.l4 {
            prop_assert_eq!(Packet::decode(&u.payload).unwrap(), inner);
        } else {
            prop_assert!(false);
        }
    }

    /// Time arithmetic is consistent: (t + d) - t == d.
    #[test]
    fn time_arithmetic(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t0 = SimTime::from_micros(t);
        let dd = SimDuration::from_micros(d);
        prop_assert_eq!((t0 + dd) - t0, dd);
        prop_assert!((t0 + dd) >= t0);
    }

    /// Address prefix matching is reflexive at /32 and monotone in length.
    #[test]
    fn prefix_monotonicity(a: u32, len in 0u8..33) {
        let addr = Addr::from_u32(a);
        prop_assert!(addr.in_prefix(addr, 32));
        prop_assert!(addr.in_prefix(addr, len));
    }
}
