//! Simulation-wide packet accounting, the source of the paper's packet
//! loss rate (PLR) metric and the per-method traffic overhead numbers.

use std::collections::HashMap;

use crate::addr::Addr;

/// Why a packet failed to reach the next hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Random link loss.
    LinkLoss,
    /// Transmit queue overflow.
    QueueOverflow,
    /// Middlebox (GFW) verdict; the label identifies the rule.
    Censor(&'static str),
    /// TTL expired.
    TtlExpired,
    /// No route to destination.
    NoRoute,
    /// Link administratively down (injected fault).
    LinkDown,
    /// Destination or transit node is crashed (injected fault).
    NodeDown,
    /// Endpoints are on opposite sides of an injected partition.
    Partitioned,
}

/// Per-address packet counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AddrCounters {
    /// Packets this address originated that were offered to a link.
    pub sent: u64,
    /// Bytes this address originated (wire bytes).
    pub sent_bytes: u64,
    /// Packets destined to / originated by this address that were dropped.
    pub dropped: u64,
    /// Packets delivered to this address.
    pub delivered: u64,
    /// Bytes delivered to this address.
    pub delivered_bytes: u64,
}

/// Global statistics collected by the simulator core.
#[derive(Debug, Default)]
pub struct SimStats {
    /// Total packets offered to links.
    pub packets_sent: u64,
    /// Total packets delivered to their destination node.
    pub packets_delivered: u64,
    /// Drop counts by reason.
    pub drops: HashMap<DropReason, u64>,
    /// Per-source-address counters.
    pub by_addr: HashMap<Addr, AddrCounters>,
    /// Events popped off the event queue and dispatched — the
    /// numerator of the `events/sec` throughput metric `scholar-bench`
    /// reports.
    pub events_processed: u64,
    /// Timer events (TCP retransmit/delack + app timers) fired.
    pub timers_fired: u64,
    /// High-water mark of the event-queue depth, a proxy for how much
    /// simultaneity a scenario generates (and for heap pressure once
    /// the ROADMAP's queue overhaul lands).
    pub queue_depth_hwm: u64,
}

impl SimStats {
    /// Records a transmission attempt by `src`.
    pub fn record_sent(&mut self, src: Addr, wire_len: usize) {
        self.packets_sent += 1;
        let c = self.by_addr.entry(src).or_default();
        c.sent += 1;
        c.sent_bytes += wire_len as u64;
    }

    /// Records a drop of a packet from `src` to `dst`.
    ///
    /// The global `drops` map counts each dropped packet **exactly
    /// once**, no matter where on the path it died. The per-address
    /// attribution below intentionally charges both endpoints (each
    /// "experienced" the loss), which is what [`loss_rate_for`]'s
    /// to/from-denominator expects — it is not double counting in the
    /// global totals.
    ///
    /// [`loss_rate_for`]: SimStats::loss_rate_for
    pub fn record_drop(&mut self, src: Addr, dst: Addr, reason: DropReason) {
        *self.drops.entry(reason).or_insert(0) += 1;
        self.by_addr.entry(src).or_default().dropped += 1;
        if dst != src {
            self.by_addr.entry(dst).or_default().dropped += 1;
        }
    }

    /// Records final delivery to `dst`.
    pub fn record_delivered(&mut self, dst: Addr, wire_len: usize) {
        self.packets_delivered += 1;
        let c = self.by_addr.entry(dst).or_default();
        c.delivered += 1;
        c.delivered_bytes += wire_len as u64;
    }

    /// Total drops across all reasons.
    pub fn total_drops(&self) -> u64 {
        self.drops.values().sum()
    }

    /// Drops attributed to censorship verdicts.
    pub fn censor_drops(&self) -> u64 {
        self.drops
            .iter()
            .filter(|(r, _)| matches!(r, DropReason::Censor(_)))
            .map(|(_, n)| *n)
            .sum()
    }

    /// Drops attributed to injected faults (downed links, crashed nodes,
    /// partitions) — the chaos-engineering counterpart of
    /// [`censor_drops`](Self::censor_drops).
    pub fn fault_drops(&self) -> u64 {
        self.drops
            .iter()
            .filter(|(r, _)| {
                matches!(
                    r,
                    DropReason::LinkDown | DropReason::NodeDown | DropReason::Partitioned
                )
            })
            .map(|(_, n)| *n)
            .sum()
    }

    /// Censor drops broken out by GFW rule label, sorted by label so
    /// reports and ablations are deterministic.
    pub fn censor_by_rule(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = self
            .drops
            .iter()
            .filter_map(|(r, n)| match r {
                DropReason::Censor(label) => Some((*label, *n)),
                _ => None,
            })
            .collect();
        out.sort_unstable_by_key(|(label, _)| *label);
        out
    }

    /// End-to-end packet loss rate for traffic involving `addr`: drops of
    /// packets to/from the address divided by packets it originated plus
    /// packets delivered to it.
    pub fn loss_rate_for(&self, addr: Addr) -> f64 {
        let Some(c) = self.by_addr.get(&addr) else { return 0.0 };
        let denom = c.sent + c.delivered;
        if denom == 0 {
            return 0.0;
        }
        c.dropped as f64 / denom as f64
    }

    /// Overall packet loss rate.
    pub fn overall_loss_rate(&self) -> f64 {
        if self.packets_sent == 0 {
            return 0.0;
        }
        self.total_drops() as f64 / self.packets_sent as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = SimStats::default();
        let a = Addr::new(10, 0, 0, 1);
        let b = Addr::new(99, 0, 0, 1);
        s.record_sent(a, 100);
        s.record_sent(a, 200);
        s.record_delivered(b, 100);
        s.record_drop(a, b, DropReason::Censor("gfw-dpi"));
        assert_eq!(s.packets_sent, 2);
        assert_eq!(s.packets_delivered, 1);
        assert_eq!(s.total_drops(), 1);
        assert_eq!(s.censor_drops(), 1);
        assert_eq!(s.by_addr[&a].sent_bytes, 300);
        assert!((s.loss_rate_for(a) - 0.5).abs() < 1e-12);
        assert!((s.overall_loss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mid_path_drop_counts_once_globally() {
        // A packet dropped mid-path (e.g. a GFW verdict at a border
        // router, neither src nor dst) must appear exactly once in the
        // global drop totals; per-address attribution charges both
        // endpoints, which feeds the to/from denominator of
        // loss_rate_for and is deliberate.
        let mut s = SimStats::default();
        let src = Addr::new(10, 0, 0, 1);
        let dst = Addr::new(99, 0, 0, 1);
        s.record_drop(src, dst, DropReason::Censor("gfw-sni"));
        assert_eq!(s.total_drops(), 1);
        assert_eq!(s.censor_drops(), 1);
        assert_eq!(s.drops[&DropReason::Censor("gfw-sni")], 1);
        assert_eq!(s.by_addr[&src].dropped, 1);
        assert_eq!(s.by_addr[&dst].dropped, 1);
        // Self-addressed traffic is charged once, not twice.
        s.record_drop(src, src, DropReason::NoRoute);
        assert_eq!(s.by_addr[&src].dropped, 2);
        assert_eq!(s.total_drops(), 2);
    }

    #[test]
    fn censor_breakdown_is_sorted_by_label() {
        let mut s = SimStats::default();
        let a = Addr::new(10, 0, 0, 1);
        let b = Addr::new(99, 0, 0, 1);
        s.record_drop(a, b, DropReason::Censor("gfw-sni"));
        s.record_drop(a, b, DropReason::Censor("gfw-ip-block"));
        s.record_drop(a, b, DropReason::Censor("gfw-sni"));
        s.record_drop(a, b, DropReason::LinkLoss);
        assert_eq!(
            s.censor_by_rule(),
            vec![("gfw-ip-block", 1), ("gfw-sni", 2)]
        );
    }

    #[test]
    fn loss_rate_of_unknown_addr_is_zero() {
        let s = SimStats::default();
        assert_eq!(s.loss_rate_for(Addr::new(1, 2, 3, 4)), 0.0);
        assert_eq!(s.overall_loss_rate(), 0.0);
    }
}
