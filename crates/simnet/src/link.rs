//! Point-to-point links with propagation delay, serialization bandwidth,
//! bounded queues, and base (non-censorship) loss.

use crate::time::{SimDuration, SimTime};

/// Identifies a link in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// Identifies a node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Configuration for a link.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Probability in `[0, 1]` that any packet is lost (background loss,
    /// independent of censorship). `1.0` models a fully dead path.
    pub loss: f64,
    /// Maximum bytes that may be queued awaiting serialization before the
    /// link tail-drops.
    pub queue_limit_bytes: usize,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            delay: SimDuration::from_millis(10),
            bandwidth_bps: 100_000_000, // 100 Mbps, the paper's VM uplink
            loss: 0.0,
            // Sized near the bandwidth-delay product of a 100 Mbps
            // trans-Pacific path so bulk transfers are not artificially
            // loss-bound.
            queue_limit_bytes: 3 * 1024 * 1024,
        }
    }
}

impl LinkConfig {
    /// Creates a config with the given delay and defaults elsewhere.
    pub fn with_delay(delay: SimDuration) -> Self {
        LinkConfig { delay, ..Default::default() }
    }

    /// Sets the loss probability. The closed range `[0.0, 1.0]` is
    /// accepted: `1.0` drops every packet, which is how a blackholed
    /// (but still routed) path is expressed.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= loss <= 1.0`.
    pub fn loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0,1]");
        self.loss = loss;
        self
    }

    /// Sets the bandwidth in bits per second.
    pub fn bandwidth_bps(mut self, bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        self.bandwidth_bps = bps;
        self
    }
}

/// A bidirectional link between two nodes. Each direction has independent
/// serialization state.
#[derive(Debug)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Link parameters.
    pub config: LinkConfig,
    /// Administrative state: a downed link (fault injection) drops every
    /// packet offered to it without consuming RNG draws.
    pub up: bool,
    /// Per-direction time at which the transmitter becomes free
    /// (index 0 = a→b, 1 = b→a).
    next_free: [SimTime; 2],
}

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOutcome {
    /// Packet will arrive at the far end at the given time.
    Deliver(SimTime),
    /// Packet dropped: transmit queue full.
    QueueDrop,
}

impl Link {
    /// Creates a link between `a` and `b`.
    pub fn new(a: NodeId, b: NodeId, config: LinkConfig) -> Self {
        Link { a, b, config, up: true, next_free: [SimTime::ZERO; 2] }
    }

    /// The far end as seen from `from`; `None` if `from` is not an endpoint.
    pub fn other_end(&self, from: NodeId) -> Option<NodeId> {
        if from == self.a {
            Some(self.b)
        } else if from == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Offers a packet of `wire_len` bytes for transmission from `from` at
    /// `now`. Background loss is decided by the caller (who owns the RNG);
    /// this method models only queueing + serialization + propagation.
    pub fn transmit(&mut self, from: NodeId, wire_len: usize, now: SimTime) -> LinkOutcome {
        let dir = if from == self.a { 0 } else { 1 };
        let backlog_end = self.next_free[dir].max(now);
        // Bytes currently queued = time until free * bandwidth.
        let queued_secs = (backlog_end - now).as_secs_f64();
        let queued_bytes = queued_secs * self.config.bandwidth_bps as f64 / 8.0;
        if queued_bytes as usize > self.config.queue_limit_bytes {
            return LinkOutcome::QueueDrop;
        }
        let ser = SimDuration::from_secs_f64(wire_len as f64 * 8.0 / self.config.bandwidth_bps as f64);
        let departure = backlog_end + ser;
        self.next_free[dir] = departure;
        LinkOutcome::Deliver(departure + self.config.delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_time_includes_serialization_and_propagation() {
        let cfg = LinkConfig::with_delay(SimDuration::from_millis(50)).bandwidth_bps(8_000_000);
        let mut link = Link::new(NodeId(0), NodeId(1), cfg);
        // 1000 bytes at 8 Mbps = 1 ms serialization + 50 ms propagation.
        match link.transmit(NodeId(0), 1000, SimTime::ZERO) {
            LinkOutcome::Deliver(t) => assert_eq!(t.as_micros(), 51_000),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_queue() {
        let cfg = LinkConfig::with_delay(SimDuration::ZERO).bandwidth_bps(8_000_000);
        let mut link = Link::new(NodeId(0), NodeId(1), cfg);
        let t1 = match link.transmit(NodeId(0), 1000, SimTime::ZERO) {
            LinkOutcome::Deliver(t) => t,
            _ => panic!(),
        };
        let t2 = match link.transmit(NodeId(0), 1000, SimTime::ZERO) {
            LinkOutcome::Deliver(t) => t,
            _ => panic!(),
        };
        assert_eq!(t2.as_micros() - t1.as_micros(), 1_000);
    }

    #[test]
    fn directions_are_independent() {
        let cfg = LinkConfig::with_delay(SimDuration::ZERO).bandwidth_bps(8_000_000);
        let mut link = Link::new(NodeId(0), NodeId(1), cfg);
        let _ = link.transmit(NodeId(0), 100_000, SimTime::ZERO);
        // The reverse direction is unaffected by the forward backlog.
        match link.transmit(NodeId(1), 1000, SimTime::ZERO) {
            LinkOutcome::Deliver(t) => assert_eq!(t.as_micros(), 1_000),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn queue_overflow_drops() {
        let cfg = LinkConfig {
            delay: SimDuration::ZERO,
            bandwidth_bps: 8_000, // 1 KB/s
            loss: 0.0,
            queue_limit_bytes: 2_000,
        };
        let mut link = Link::new(NodeId(0), NodeId(1), cfg);
        let mut drops = 0;
        for _ in 0..10 {
            if matches!(link.transmit(NodeId(0), 1000, SimTime::ZERO), LinkOutcome::QueueDrop) {
                drops += 1;
            }
        }
        assert!(drops >= 6, "expected most packets to tail-drop, got {drops}");
    }

    #[test]
    fn other_end() {
        let link = Link::new(NodeId(3), NodeId(7), LinkConfig::default());
        assert_eq!(link.other_end(NodeId(3)), Some(NodeId(7)));
        assert_eq!(link.other_end(NodeId(7)), Some(NodeId(3)));
        assert_eq!(link.other_end(NodeId(5)), None);
    }

    #[test]
    #[should_panic(expected = "loss must be in")]
    fn invalid_loss_panics() {
        let _ = LinkConfig::default().loss(1.5);
    }

    #[test]
    fn full_loss_is_representable() {
        // A dead-but-routed path: loss = 1.0 must be accepted.
        let cfg = LinkConfig::default().loss(1.0);
        assert_eq!(cfg.loss, 1.0);
        let cfg = LinkConfig::default().loss(0.0);
        assert_eq!(cfg.loss, 0.0);
    }
}
