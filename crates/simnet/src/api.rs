//! Application-facing API: the [`App`] trait, handles, and events.
//!
//! Every protocol endpoint in the reproduction — browsers, proxies, VPN
//! servers, DNS resolvers, origin servers, the GFW's active prober — is an
//! `App` installed on a node. Apps are event-driven: the simulator calls
//! [`App::on_event`] with timers, TCP events, and UDP datagrams, and the
//! app reacts through the [`Ctx`](crate::sim::Ctx) it is handed.

use bytes::Bytes;

use crate::addr::SocketAddr;
use crate::packet::Packet;

/// Identifies an application instance on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppId(pub usize);

/// Handle to a TCP connection on the local node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcpHandle(pub usize);

/// Handle to a bound UDP socket on the local node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdpHandle(pub u16);

/// TCP connection events delivered to apps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpEvent {
    /// Active open completed.
    Connected,
    /// Active open failed (RST or SYN retry exhaustion).
    ConnectFailed,
    /// A listener produced a new established connection.
    Accepted {
        /// The peer's socket address.
        peer: SocketAddr,
    },
    /// New in-order data is available to [`recv`](crate::sim::Ctx::tcp_recv).
    DataReceived,
    /// The peer sent FIN: no more data will arrive (data already received
    /// may still be buffered).
    PeerClosed,
    /// The connection was reset (peer RST or retry exhaustion).
    Reset,
}

/// Events delivered to an [`App`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppEvent {
    /// A timer set via [`Ctx::set_timer`](crate::sim::Ctx::set_timer) fired.
    TimerFired(u64),
    /// An event on a TCP connection owned by this app.
    Tcp(TcpHandle, TcpEvent),
    /// A datagram arrived on a UDP socket owned by this app.
    Udp {
        /// The local socket it arrived on.
        socket: UdpHandle,
        /// Sender address.
        from: SocketAddr,
        /// Datagram payload.
        payload: Bytes,
    },
    /// A raw-protocol packet (GRE/ESP/…) arrived, for apps registered via
    /// [`Ctx::register_raw`](crate::sim::Ctx::register_raw).
    RawPacket(Packet),
}

/// An event-driven application running on a node.
///
/// Implementations hold their own state machine; all interaction with the
/// network goes through the [`Ctx`](crate::sim::Ctx) passed to each call.
pub trait App {
    /// Called once when the simulation starts.
    fn on_start(&mut self, ctx: &mut crate::sim::Ctx<'_>) {
        let _ = ctx;
    }

    /// Called for every event addressed to this app.
    fn on_event(&mut self, event: AppEvent, ctx: &mut crate::sim::Ctx<'_>);
}

/// Decides, per packet, whether a node-level tunnel captures an outgoing
/// packet (full-tunnel VPNs capture everything non-local; split tunnels
/// capture a prefix).
pub trait PacketTunnel {
    /// Wraps an outgoing packet. Return the packet(s) that should actually
    /// leave the node — typically one encapsulated packet, or the original
    /// if the tunnel does not capture this destination.
    fn wrap(&mut self, pkt: Packet, now: crate::time::SimTime) -> Vec<Packet>;

    /// Human-readable tunnel name (diagnostics).
    fn name(&self) -> &str;
}
