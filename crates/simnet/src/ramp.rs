//! Client arrival ramps for load scenarios.
//!
//! A flash crowd is not an instantaneous step: real users pile on over
//! seconds to minutes. The helpers here turn a crowd size and a ramp
//! window into deterministic per-client arrival offsets, so scenario
//! builders can spread [`Fault::FlashCrowd`](crate::faults::Fault)
//! arrivals without reaching for the RNG (the shape of the ramp is an
//! experiment parameter, not noise).

use crate::time::SimDuration;

/// `n` arrival offsets spread evenly across `[0, ramp]`: client `i`
/// arrives at `i × ramp / (n − 1)` (the first immediately, the last at
/// the end of the window). A single client arrives immediately; a zero
/// window collapses to a step.
pub fn uniform_offsets(n: usize, ramp: SimDuration) -> Vec<SimDuration> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![SimDuration::ZERO];
    }
    let span = ramp.as_micros();
    (0..n)
        .map(|i| SimDuration::from_micros(span * i as u64 / (n as u64 - 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_the_window() {
        let offs = uniform_offsets(5, SimDuration::from_secs(8));
        assert_eq!(offs.len(), 5);
        assert_eq!(offs[0], SimDuration::ZERO);
        assert_eq!(offs[4], SimDuration::from_secs(8));
        assert_eq!(offs[2], SimDuration::from_secs(4));
        // Monotone non-decreasing.
        assert!(offs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn degenerate_shapes() {
        assert!(uniform_offsets(0, SimDuration::from_secs(1)).is_empty());
        assert_eq!(uniform_offsets(1, SimDuration::from_secs(1)), vec![SimDuration::ZERO]);
        let step = uniform_offsets(3, SimDuration::ZERO);
        assert!(step.iter().all(|&d| d == SimDuration::ZERO), "zero window is a step");
    }
}
