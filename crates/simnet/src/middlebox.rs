//! In-path middleboxes: the hook through which the GFW (or any other
//! packet-inspecting appliance) is attached to a router.

use rand::rngs::SmallRng;

use crate::packet::Packet;
use crate::time::SimTime;

/// What a middlebox decided to do with a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Forward unchanged.
    Forward,
    /// Silently discard. The label is recorded in drop statistics
    /// (e.g. `"gfw-ip-block"`).
    Drop(&'static str),
}

/// Context handed to a middlebox for each packet.
pub struct MbCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Deterministic RNG (shared with the whole simulation).
    pub rng: &'a mut SmallRng,
    /// Packets to inject *from this node* after the verdict is applied
    /// (spoofed RSTs, poisoned DNS answers, …). They are routed normally.
    pub inject: Vec<Packet>,
}

impl<'a> MbCtx<'a> {
    /// Queues a packet for injection from the middlebox's node.
    pub fn inject(&mut self, pkt: Packet) {
        self.inject.push(pkt);
    }
}

/// A packet-inspecting appliance sitting on the forwarding path of a node.
///
/// `process` sees every packet the node forwards (not packets addressed to
/// the node itself). Implementations may keep per-flow state, inject
/// packets, and consult the simulation clock and RNG.
pub trait Middlebox {
    /// Inspects one packet and renders a verdict.
    fn process(&mut self, pkt: &Packet, ctx: &mut MbCtx<'_>) -> Verdict;

    /// Diagnostic name.
    fn name(&self) -> &str {
        "middlebox"
    }
}
