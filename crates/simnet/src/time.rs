//! Simulated time: microsecond-resolution instants and durations.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, measured in microseconds since the start
/// of the simulation.
///
/// # Examples
///
/// ```
/// use sc_simnet::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(30);
/// assert_eq!(t.as_micros(), 30_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from seconds since simulation start (the
    /// natural unit for fault plans).
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`; zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be non-negative");
        SimDuration((s * 1_000_000.0).round() as u64)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this duration (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Returns `self` clamped into `[lo, hi]`.
    pub fn clamp(self, lo: SimDuration, hi: SimDuration) -> Self {
        SimDuration(self.0.clamp(lo.0, hi.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(500);
        let t2 = t + SimDuration::from_millis(2);
        assert_eq!(t2.as_micros(), 2_500);
        assert_eq!((t2 - t).as_micros(), 2_000);
        // Subtraction saturates rather than panicking.
        assert_eq!((t - t2).as_micros(), 0);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(3).as_millis(), 3_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_micros(), 250_000);
        assert!((SimTime::from_micros(1_500_000).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(17).to_string(), "17us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(1).to_string(), "1.000s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn clamp_and_mul() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.saturating_mul(3), SimDuration::from_millis(300));
        assert_eq!(
            d.clamp(SimDuration::from_millis(200), SimDuration::from_secs(1)),
            SimDuration::from_millis(200)
        );
    }
}
