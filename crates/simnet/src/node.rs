//! Nodes: hosts and routers. Every node owns a TCP layer, a UDP layer,
//! raw-protocol handlers, optional middlebox, optional packet tunnel, and
//! a set of applications.

use std::collections::{HashMap, VecDeque};

use crate::addr::Addr;
use crate::api::{App, AppEvent, AppId, PacketTunnel};
use crate::link::LinkId;
use crate::middlebox::Middlebox;
use crate::tcp::TcpLayer;

/// UDP layer: port → owning app.
#[derive(Debug, Default)]
pub struct UdpLayer {
    sockets: HashMap<u16, AppId>,
    next_ephemeral: u16,
}

impl UdpLayer {
    /// Creates an empty UDP layer.
    pub fn new() -> Self {
        UdpLayer { sockets: HashMap::new(), next_ephemeral: 50_000 }
    }

    /// Binds `port` (0 = pick an ephemeral port) to `app`.
    /// Returns the bound port, or `None` if the port is taken.
    pub fn bind(&mut self, port: u16, app: AppId) -> Option<u16> {
        if port != 0 {
            if self.sockets.contains_key(&port) {
                return None;
            }
            self.sockets.insert(port, app);
            return Some(port);
        }
        loop {
            let p = self.next_ephemeral;
            self.next_ephemeral = self.next_ephemeral.checked_add(1).unwrap_or(50_000);
            if !self.sockets.contains_key(&p) {
                self.sockets.insert(p, app);
                return Some(p);
            }
        }
    }

    /// Releases a bound port.
    pub fn unbind(&mut self, port: u16) {
        self.sockets.remove(&port);
    }

    /// The app bound to `port`, if any.
    pub fn lookup(&self, port: u16) -> Option<AppId> {
        self.sockets.get(&port).copied()
    }
}

/// A node in the topology.
pub struct Node {
    /// Human-readable name.
    pub name: String,
    /// The node's network address.
    pub addr: Addr,
    /// Links attached to this node.
    pub links: Vec<LinkId>,
    /// Destination address → next-hop link (computed by routing).
    pub routes: HashMap<Addr, LinkId>,
    /// Installed applications (slot is `None` while the app is running).
    pub apps: Vec<Option<Box<dyn App>>>,
    /// TCP layer.
    pub tcp: TcpLayer,
    /// UDP layer.
    pub udp: UdpLayer,
    /// Raw IP protocol number → handler app.
    pub raw_handlers: HashMap<u8, AppId>,
    /// Port-range taps: packets whose destination port falls in a range
    /// are delivered to the app as [`AppEvent::RawPacket`](crate::api::AppEvent)
    /// instead of the transport stack (used by NAT implementations).
    pub port_taps: Vec<(u16, u16, AppId)>,
    /// Optional in-path middlebox (inspects forwarded packets).
    pub middlebox: Option<Box<dyn Middlebox>>,
    /// Optional packet tunnel capturing outgoing packets (VPN client side).
    pub tunnel: Option<Box<dyn PacketTunnel>>,
    /// App events awaiting top-level dispatch.
    pub pending: VecDeque<(AppId, AppEvent)>,
    /// Liveness: a crashed node (fault injection) neither receives nor
    /// forwards packets and its timers are swallowed until restart.
    pub up: bool,
}

impl core::fmt::Debug for Node {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Node")
            .field("name", &self.name)
            .field("addr", &self.addr)
            .field("apps", &self.apps.len())
            .field("links", &self.links)
            .finish_non_exhaustive()
    }
}

impl Node {
    /// Creates a node with no links or apps.
    pub fn new(name: impl Into<String>, addr: Addr) -> Self {
        Node {
            name: name.into(),
            addr,
            links: Vec::new(),
            routes: HashMap::new(),
            apps: Vec::new(),
            tcp: TcpLayer::new(),
            udp: UdpLayer::new(),
            raw_handlers: HashMap::new(),
            port_taps: Vec::new(),
            middlebox: None,
            tunnel: None,
            pending: VecDeque::new(),
            up: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_bind_ephemeral_and_conflict() {
        let mut udp = UdpLayer::new();
        assert_eq!(udp.bind(53, AppId(0)), Some(53));
        assert_eq!(udp.bind(53, AppId(1)), None);
        let e1 = udp.bind(0, AppId(1)).unwrap();
        let e2 = udp.bind(0, AppId(1)).unwrap();
        assert_ne!(e1, e2);
        assert!(e1 >= 50_000);
        assert_eq!(udp.lookup(53), Some(AppId(0)));
        udp.unbind(53);
        assert_eq!(udp.lookup(53), None);
    }
}
