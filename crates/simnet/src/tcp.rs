//! A simulation-grade TCP: three-way handshake, cumulative ACKs,
//! go-back-N retransmission with RFC 6298 RTO estimation, fast retransmit
//! on triple duplicate ACKs, slow start + AIMD congestion control, FIN
//! teardown, RST handling, and TIME_WAIT.
//!
//! Loss injected by links or by the GFW shows up here as retransmissions
//! and congestion backoff, which is exactly how censorship-induced loss
//! degrades page load time in the paper's measurements.

use bytes::Bytes;
use std::collections::HashMap;
use std::collections::VecDeque;

use crate::addr::SocketAddr;
use crate::api::{AppEvent, AppId, TcpEvent, TcpHandle};
use crate::packet::{Packet, TcpFlags, TcpSegment, TcpSegmentBody};
use crate::time::{SimDuration, SimTime};

/// Maximum segment size (payload bytes per segment).
pub const MSS: usize = 1400;
/// Receive window advertised by every endpoint.
pub const RECV_WINDOW: u32 = 1 << 20;
/// Initial congestion window (bytes) — 10 segments, like modern stacks.
pub const INITIAL_CWND: usize = 10 * MSS;
/// Lower bound on the retransmission timeout.
pub const MIN_RTO: SimDuration = SimDuration::from_millis(200);
/// Upper bound on the retransmission timeout.
pub const MAX_RTO: SimDuration = SimDuration::from_secs(10);
/// Initial RTO before any RTT sample (RFC 6298 says 1 s).
pub const INITIAL_RTO: SimDuration = SimDuration::from_secs(1);
/// TIME_WAIT linger.
pub const TIME_WAIT: SimDuration = SimDuration::from_secs(1);
/// Retransmission attempts before giving up on an established connection.
pub const MAX_RETRIES: u32 = 8;
/// SYN retransmission attempts before reporting connect failure.
pub const MAX_SYN_RETRIES: u32 = 5;

/// TCP connection states (RFC 793 subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// SYN sent, waiting for SYN-ACK.
    SynSent,
    /// SYN received on a listener, SYN-ACK sent.
    SynRcvd,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent, not yet acknowledged.
    FinWait1,
    /// Our FIN acknowledged; waiting for peer's FIN.
    FinWait2,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Peer closed, then we closed; FIN sent.
    LastAck,
    /// Both sent FINs simultaneously.
    Closing,
    /// Waiting out stray segments before freeing state.
    TimeWait,
    /// Fully closed; slot retained for handle stability.
    Closed,
}

/// Timer kinds owned by the TCP layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpTimerKind {
    /// Retransmission timeout.
    Rto,
    /// TIME_WAIT expiry.
    TimeWait,
}

/// A timer token scheduled by the TCP layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpTimer {
    /// Connection slot.
    pub conn: usize,
    /// Generation at scheduling time; stale timers are ignored.
    pub gen: u64,
    /// What the timer means.
    pub kind: TcpTimerKind,
}

/// Side effects produced by TCP processing, drained by the simulator core.
#[derive(Debug, Default)]
pub struct Effects {
    /// Packets to transmit from this node.
    pub out: Vec<Packet>,
    /// Events to deliver to applications on this node.
    pub app_events: Vec<(AppId, AppEvent)>,
    /// Timers to schedule.
    pub timers: Vec<(SimDuration, TcpTimer)>,
}

#[derive(Debug)]
struct Conn {
    app: AppId,
    local: SocketAddr,
    remote: SocketAddr,
    state: TcpState,
    /// First unacknowledged sequence number.
    snd_una: u64,
    /// Next sequence number to send.
    snd_nxt: u64,
    /// Highest sequence number ever sent plus one (`SND.MAX`). Unlike
    /// `snd_nxt` it never rewinds on go-back-N recovery, so it bounds the
    /// ACKs a well-behaved peer can legitimately produce.
    snd_max: u64,
    /// Bytes queued for sending; `send_buf[0]` is sequence `snd_una`.
    send_buf: VecDeque<u8>,
    /// Peer's advertised window.
    snd_wnd: u32,
    /// Next expected receive sequence.
    rcv_nxt: u64,
    /// In-order received bytes not yet drained by the app.
    recv_buf: VecDeque<u8>,
    cwnd: usize,
    ssthresh: usize,
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    /// (sequence end, send time) of the segment being timed for RTT.
    rtt_sample: Option<(u64, SimTime)>,
    timer_gen: u64,
    rto_armed: bool,
    dup_acks: u32,
    retries: u32,
    /// App called close: FIN should be sent once the buffer drains.
    fin_pending: bool,
    /// Sequence number consumed by our FIN once sent.
    fin_seq: Option<u64>,
    /// Peer's FIN has been processed.
    peer_fin_rcvd: bool,
    /// Total payload bytes retransmitted (diagnostics).
    retransmitted_bytes: u64,
}

impl Conn {
    fn flight(&self) -> usize {
        (self.snd_nxt - self.snd_una) as usize
    }

    /// Unsent bytes sitting in the buffer.
    fn unsent(&self) -> usize {
        self.send_buf.len() - self.flight().min(self.send_buf.len())
    }
}

/// Per-node TCP layer: connections, listeners, and the demux table.
#[derive(Debug, Default)]
pub struct TcpLayer {
    conns: Vec<Conn>,
    /// (local port, remote socket) → connection slot.
    demux: HashMap<(u16, SocketAddr), usize>,
    /// Listening port → owning app.
    listeners: HashMap<u16, AppId>,
    next_ephemeral: u16,
    /// Deterministic ISS counter.
    next_iss: u64,
}

/// Statistics snapshot for one connection (used by tests and metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnStats {
    /// Current state.
    pub state: TcpState,
    /// Bytes retransmitted so far.
    pub retransmitted_bytes: u64,
    /// Current congestion window in bytes.
    pub cwnd: usize,
    /// Smoothed RTT, if sampled.
    pub srtt: Option<SimDuration>,
}

impl TcpLayer {
    /// Creates an empty TCP layer.
    pub fn new() -> Self {
        TcpLayer {
            conns: Vec::new(),
            demux: HashMap::new(),
            listeners: HashMap::new(),
            next_ephemeral: 40_000,
            next_iss: 1_000,
        }
    }

    /// Begins listening on `port` for `app`. Returns `false` if the port is
    /// already bound.
    pub fn listen(&mut self, port: u16, app: AppId) -> bool {
        if self.listeners.contains_key(&port) {
            return false;
        }
        self.listeners.insert(port, app);
        true
    }

    /// Stops listening on `port`.
    pub fn unlisten(&mut self, port: u16) {
        self.listeners.remove(&port);
    }

    fn alloc_ephemeral(&mut self, remote: SocketAddr) -> u16 {
        loop {
            let p = self.next_ephemeral;
            self.next_ephemeral = self.next_ephemeral.checked_add(1).unwrap_or(40_000);
            if !self.demux.contains_key(&(p, remote)) && !self.listeners.contains_key(&p) {
                return p;
            }
        }
    }

    fn new_conn(&mut self, app: AppId, local: SocketAddr, remote: SocketAddr, state: TcpState, iss: u64) -> usize {
        let conn = Conn {
            app,
            local,
            remote,
            state,
            snd_una: iss,
            snd_nxt: iss,
            snd_max: iss,
            send_buf: VecDeque::new(),
            snd_wnd: RECV_WINDOW,
            rcv_nxt: 0,
            recv_buf: VecDeque::new(),
            cwnd: INITIAL_CWND,
            ssthresh: usize::MAX / 2,
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: INITIAL_RTO,
            rtt_sample: None,
            timer_gen: 0,
            rto_armed: false,
            dup_acks: 0,
            retries: 0,
            fin_pending: false,
            fin_seq: None,
            peer_fin_rcvd: false,
            retransmitted_bytes: 0,
        };
        let idx = self.conns.len();
        self.conns.push(conn);
        self.demux.insert((local.port, remote), idx);
        idx
    }

    /// Opens a connection from `local_addr` to `remote`. Returns the handle;
    /// the app hears `Connected` or `ConnectFailed` later.
    pub fn connect(
        &mut self,
        app: AppId,
        local_addr: crate::addr::Addr,
        remote: SocketAddr,
        fx: &mut Effects,
    ) -> TcpHandle {
        let port = self.alloc_ephemeral(remote);
        let local = SocketAddr::new(local_addr, port);
        let iss = self.next_iss;
        self.next_iss += 100_000;
        let idx = self.new_conn(app, local, remote, TcpState::SynSent, iss);
        let c = &mut self.conns[idx];
        c.snd_nxt = iss + 1; // SYN consumes one sequence number
        c.snd_max = iss + 1;
        let syn = Packet::tcp(
            local,
            remote,
            TcpSegmentBody {
                seq: iss,
                ack: 0,
                flags: TcpFlags::SYN,
                window: RECV_WINDOW,
                payload: Bytes::new(),
            },
        );
        fx.out.push(syn);
        Self::arm_rto(c, idx, fx);
        TcpHandle(idx)
    }

    /// Queues `data` on the connection's send buffer and transmits what the
    /// windows allow. Returns the number of bytes accepted (all of them —
    /// the simulated buffer is unbounded) or `None` for an invalid handle
    /// or a connection that can no longer send.
    pub fn send(&mut self, h: TcpHandle, data: &[u8], now: SimTime, fx: &mut Effects) -> Option<usize> {
        let c = self.conns.get_mut(h.0)?;
        match c.state {
            TcpState::Established | TcpState::CloseWait | TcpState::SynSent | TcpState::SynRcvd => {}
            _ => return None,
        }
        c.send_buf.extend(data.iter().copied());
        self.pump(h.0, now, fx);
        Some(data.len())
    }

    /// Drains up to `max` bytes of received data.
    pub fn recv(&mut self, h: TcpHandle, max: usize) -> Bytes {
        let Some(c) = self.conns.get_mut(h.0) else {
            return Bytes::new();
        };
        let n = c.recv_buf.len().min(max);
        let drained: Vec<u8> = c.recv_buf.drain(..n).collect();
        Bytes::from(drained)
    }

    /// Bytes currently waiting in the receive buffer.
    pub fn recv_available(&self, h: TcpHandle) -> usize {
        self.conns.get(h.0).map_or(0, |c| c.recv_buf.len())
    }

    /// Initiates a graceful close (half-close of our direction).
    pub fn close(&mut self, h: TcpHandle, now: SimTime, fx: &mut Effects) {
        let Some(c) = self.conns.get_mut(h.0) else { return };
        match c.state {
            TcpState::Established => {
                c.fin_pending = true;
                c.state = TcpState::FinWait1;
            }
            TcpState::CloseWait => {
                c.fin_pending = true;
                c.state = TcpState::LastAck;
            }
            TcpState::SynSent | TcpState::SynRcvd => {
                // Abort a half-open connection quietly.
                let local_port = c.local.port;
                let remote = c.remote;
                c.state = TcpState::Closed;
                c.timer_gen += 1;
                self.demux.remove(&(local_port, remote));
                return;
            }
            _ => return,
        }
        self.pump(h.0, now, fx);
    }

    /// Aborts the connection with a RST.
    pub fn abort(&mut self, h: TcpHandle, fx: &mut Effects) {
        let Some(c) = self.conns.get_mut(h.0) else { return };
        if matches!(c.state, TcpState::Closed) {
            return;
        }
        let rst = Packet::tcp(
            c.local,
            c.remote,
            TcpSegmentBody {
                seq: c.snd_nxt,
                ack: c.rcv_nxt,
                flags: TcpFlags::RST,
                window: 0,
                payload: Bytes::new(),
            },
        );
        fx.out.push(rst);
        let key = (c.local.port, c.remote);
        c.state = TcpState::Closed;
        c.timer_gen += 1;
        self.demux.remove(&key);
    }

    /// Connection statistics for tests/metrics.
    pub fn stats(&self, h: TcpHandle) -> Option<ConnStats> {
        self.conns.get(h.0).map(|c| ConnStats {
            state: c.state,
            retransmitted_bytes: c.retransmitted_bytes,
            cwnd: c.cwnd,
            srtt: c.srtt,
        })
    }

    /// The remote socket address of a connection.
    pub fn peer(&self, h: TcpHandle) -> Option<SocketAddr> {
        self.conns.get(h.0).map(|c| c.remote)
    }

    /// The local socket address of a connection.
    pub fn local(&self, h: TcpHandle) -> Option<SocketAddr> {
        self.conns.get(h.0).map(|c| c.local)
    }

    fn arm_rto(c: &mut Conn, idx: usize, fx: &mut Effects) {
        c.timer_gen += 1;
        c.rto_armed = true;
        fx.timers.push((
            c.rto,
            TcpTimer { conn: idx, gen: c.timer_gen, kind: TcpTimerKind::Rto },
        ));
    }

    fn cancel_rto(c: &mut Conn) {
        c.timer_gen += 1;
        c.rto_armed = false;
    }

    /// Transmits whatever the congestion and peer windows allow, including a
    /// pending FIN once the buffer is drained.
    fn pump(&mut self, idx: usize, now: SimTime, fx: &mut Effects) {
        let c = &mut self.conns[idx];
        if !matches!(
            c.state,
            TcpState::Established | TcpState::CloseWait | TcpState::FinWait1 | TcpState::LastAck | TcpState::Closing
        ) {
            return;
        }
        let wnd = c.cwnd.min(c.snd_wnd as usize);
        let mut sent_any = false;
        while c.unsent() > 0 && c.flight() < wnd {
            let offset = c.flight();
            let n = c.unsent().min(MSS).min(wnd - c.flight());
            if n == 0 {
                break;
            }
            let payload: Vec<u8> = c.send_buf.iter().skip(offset).take(n).copied().collect();
            let seq = c.snd_nxt;
            if c.rtt_sample.is_none() {
                c.rtt_sample = Some((seq + n as u64, now));
            }
            let pkt = Packet::tcp(
                c.local,
                c.remote,
                TcpSegmentBody {
                    seq,
                    ack: c.rcv_nxt,
                    flags: TcpFlags::ACK,
                    window: RECV_WINDOW,
                    payload: Bytes::from(payload),
                },
            );
            c.snd_nxt += n as u64;
            c.snd_max = c.snd_max.max(c.snd_nxt);
            fx.out.push(pkt);
            sent_any = true;
        }
        // FIN once all data is out.
        if c.fin_pending && c.unsent() == 0 && c.fin_seq.is_none() {
            let seq = c.snd_nxt;
            c.fin_seq = Some(seq);
            c.snd_nxt += 1;
            c.snd_max = c.snd_max.max(c.snd_nxt);
            let pkt = Packet::tcp(
                c.local,
                c.remote,
                TcpSegmentBody {
                    seq,
                    ack: c.rcv_nxt,
                    flags: TcpFlags::FIN_ACK,
                    window: RECV_WINDOW,
                    payload: Bytes::new(),
                },
            );
            fx.out.push(pkt);
            sent_any = true;
        }
        if sent_any && !c.rto_armed {
            Self::arm_rto(c, idx, fx);
        }
    }

    /// Processes an incoming segment addressed to this node.
    pub fn on_segment(
        &mut self,
        src: crate::addr::Addr,
        dst: crate::addr::Addr,
        seg: TcpSegment,
        now: SimTime,
        fx: &mut Effects,
    ) {
        let remote = SocketAddr::new(src, seg.src_port);
        let local = SocketAddr::new(dst, seg.dst_port);
        if let Some(&idx) = self.demux.get(&(seg.dst_port, remote)) {
            self.on_conn_segment(idx, seg, now, fx);
            return;
        }
        // No existing connection: maybe a listener.
        if seg.flags.syn && !seg.flags.ack {
            if let Some(&app) = self.listeners.get(&seg.dst_port) {
                let iss = self.next_iss;
                self.next_iss += 100_000;
                let idx = self.new_conn(app, local, remote, TcpState::SynRcvd, iss);
                let c = &mut self.conns[idx];
                c.rcv_nxt = seg.seq + 1;
                c.snd_nxt = iss + 1;
                c.snd_max = iss + 1;
                c.snd_wnd = seg.window;
                let synack = Packet::tcp(
                    local,
                    remote,
                    TcpSegmentBody {
                        seq: iss,
                        ack: c.rcv_nxt,
                        flags: TcpFlags::SYN_ACK,
                        window: RECV_WINDOW,
                        payload: Bytes::new(),
                    },
                );
                fx.out.push(synack);
                Self::arm_rto(c, idx, fx);
                return;
            }
        }
        // Closed port: RST anything but a RST.
        if !seg.flags.rst {
            let rst = Packet::tcp(
                local,
                remote,
                TcpSegmentBody {
                    seq: seg.ack,
                    ack: seg.seq + seg.payload.len() as u64 + (seg.flags.syn as u64) + (seg.flags.fin as u64),
                    flags: TcpFlags::RST,
                    window: 0,
                    payload: Bytes::new(),
                },
            );
            fx.out.push(rst);
        }
    }

    fn free(&mut self, idx: usize) {
        let c = &mut self.conns[idx];
        let key = (c.local.port, c.remote);
        c.state = TcpState::Closed;
        c.timer_gen += 1;
        c.send_buf.clear();
        self.demux.remove(&key);
    }

    fn on_conn_segment(&mut self, idx: usize, seg: TcpSegment, now: SimTime, fx: &mut Effects) {
        let app = self.conns[idx].app;
        // RST: tear down immediately.
        if seg.flags.rst {
            let was = self.conns[idx].state;
            self.free(idx);
            let ev = if was == TcpState::SynSent {
                TcpEvent::ConnectFailed
            } else {
                TcpEvent::Reset
            };
            fx.app_events.push((app, AppEvent::Tcp(TcpHandle(idx), ev)));
            return;
        }

        let state = self.conns[idx].state;
        match state {
            TcpState::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == self.conns[idx].snd_nxt {
                    let c = &mut self.conns[idx];
                    c.snd_una = seg.ack;
                    c.rcv_nxt = seg.seq + 1;
                    c.snd_wnd = seg.window;
                    c.state = TcpState::Established;
                    c.retries = 0;
                    Self::cancel_rto(c);
                    // Handshake RTT sample: SYN was sent at connect time,
                    // but we didn't stamp it; skip (data segments sample).
                    let ack = Packet::tcp(
                        c.local,
                        c.remote,
                        TcpSegmentBody {
                            seq: c.snd_nxt,
                            ack: c.rcv_nxt,
                            flags: TcpFlags::ACK,
                            window: RECV_WINDOW,
                            payload: Bytes::new(),
                        },
                    );
                    fx.out.push(ack);
                    fx.app_events.push((app, AppEvent::Tcp(TcpHandle(idx), TcpEvent::Connected)));
                    self.pump(idx, now, fx);
                }
            }
            TcpState::SynRcvd => {
                if seg.flags.syn && !seg.flags.ack {
                    // Retransmitted SYN: re-send SYN-ACK.
                    let c = &self.conns[idx];
                    let synack = Packet::tcp(
                        c.local,
                        c.remote,
                        TcpSegmentBody {
                            seq: c.snd_una,
                            ack: c.rcv_nxt,
                            flags: TcpFlags::SYN_ACK,
                            window: RECV_WINDOW,
                            payload: Bytes::new(),
                        },
                    );
                    fx.out.push(synack);
                    return;
                }
                if seg.flags.ack && seg.ack == self.conns[idx].snd_nxt {
                    {
                        let c = &mut self.conns[idx];
                        c.snd_una = seg.ack;
                        c.snd_wnd = seg.window;
                        c.state = TcpState::Established;
                        c.retries = 0;
                        Self::cancel_rto(c);
                    }
                    let peer = self.conns[idx].remote;
                    fx.app_events.push((
                        app,
                        AppEvent::Tcp(TcpHandle(idx), TcpEvent::Accepted { peer }),
                    ));
                    // The third ACK can carry data; fall through to data
                    // processing below by re-dispatching.
                    if !seg.payload.is_empty() || seg.flags.fin {
                        self.process_established(idx, seg, now, fx);
                    }
                }
            }
            TcpState::Established
            | TcpState::FinWait1
            | TcpState::FinWait2
            | TcpState::CloseWait
            | TcpState::LastAck
            | TcpState::Closing => {
                self.process_established(idx, seg, now, fx);
            }
            TcpState::TimeWait => {
                if seg.flags.fin {
                    // Retransmitted FIN: re-ACK it.
                    let c = &self.conns[idx];
                    let ack = Packet::tcp(
                        c.local,
                        c.remote,
                        TcpSegmentBody {
                            seq: c.snd_nxt,
                            ack: c.rcv_nxt,
                            flags: TcpFlags::ACK,
                            window: RECV_WINDOW,
                            payload: Bytes::new(),
                        },
                    );
                    fx.out.push(ack);
                }
            }
            TcpState::Closed => {}
        }
    }

    fn process_established(&mut self, idx: usize, seg: TcpSegment, now: SimTime, fx: &mut Effects) {
        let app = self.conns[idx].app;
        let mut need_ack = false;

        // --- ACK processing ---
        if seg.flags.ack {
            let c = &mut self.conns[idx];
            c.snd_wnd = seg.window;
            // Upper bound for an acceptable ACK. After a go-back-N rewind
            // `snd_nxt` no longer tracks the highest byte ever sent, but a
            // peer may still ACK bytes it received before the rewind.
            // Bounding by `snd_nxt` here deadlocks the connection: the ACK
            // is ignored, and the sender retransmits an already-received
            // segment until its retries exhaust. `snd_max` survives
            // rewinds, so it admits exactly the ACKs a peer can produce
            // and rejects ACKs for bytes never transmitted.
            let max_ack = c.snd_max;
            if seg.ack > c.snd_una && seg.ack <= max_ack {
                let acked = (seg.ack - c.snd_una) as usize;
                // Our FIN consumes a sequence number that is not in send_buf.
                let fin_acked = c.fin_seq.is_some_and(|f| seg.ack > f);
                let data_acked = if fin_acked { acked.saturating_sub(1) } else { acked };
                let drain = data_acked.min(c.send_buf.len());
                c.send_buf.drain(..drain);
                c.snd_una = seg.ack;
                // Keep `snd_nxt >= snd_una` (the ACK may outrun a rewound
                // `snd_nxt`; `flight()` must never underflow).
                c.snd_nxt = c.snd_nxt.max(seg.ack);
                c.dup_acks = 0;
                c.retries = 0;
                // RTT sampling (Karn: only segments never retransmitted —
                // approximated by sampling whenever an ACK advances and a
                // sample is armed).
                if let Some((end, sent_at)) = c.rtt_sample {
                    if seg.ack >= end {
                        let sample = now - sent_at;
                        match c.srtt {
                            None => {
                                c.srtt = Some(sample);
                                c.rttvar = SimDuration::from_micros(sample.as_micros() / 2);
                            }
                            Some(srtt) => {
                                let err = if sample > srtt { sample - srtt } else { srtt - sample };
                                c.rttvar = SimDuration::from_micros(
                                    (3 * c.rttvar.as_micros() + err.as_micros()) / 4,
                                );
                                c.srtt = Some(SimDuration::from_micros(
                                    (7 * srtt.as_micros() + sample.as_micros()) / 8,
                                ));
                            }
                        }
                        let srtt = c.srtt.unwrap();
                        c.rto = (srtt + c.rttvar.saturating_mul(4)).clamp(MIN_RTO, MAX_RTO);
                        c.rtt_sample = None;
                    }
                }
                // Congestion control.
                if c.cwnd < c.ssthresh {
                    c.cwnd += data_acked.min(MSS); // slow start
                } else {
                    c.cwnd += (MSS * MSS / c.cwnd.max(1)).max(1); // congestion avoidance
                }
                // Restart or cancel the RTO.
                if c.snd_una < c.snd_nxt {
                    Self::arm_rto(c, idx, fx);
                } else {
                    Self::cancel_rto(c);
                }
                // State transitions on FIN acknowledgement.
                if fin_acked {
                    match c.state {
                        TcpState::FinWait1 => c.state = TcpState::FinWait2,
                        TcpState::LastAck => {
                            self.free(idx);
                            return;
                        }
                        TcpState::Closing => {
                            c.state = TcpState::TimeWait;
                            c.timer_gen += 1;
                            fx.timers.push((
                                TIME_WAIT,
                                TcpTimer { conn: idx, gen: c.timer_gen, kind: TcpTimerKind::TimeWait },
                            ));
                        }
                        _ => {}
                    }
                }
            } else if seg.ack == c.snd_una
                && c.snd_una < c.snd_nxt
                && seg.payload.is_empty()
                && !seg.flags.fin
            {
                c.dup_acks += 1;
                if c.dup_acks == 3 {
                    c.dup_acks = 0;
                    // Tahoe-style recovery: the receiver discards
                    // out-of-order segments, so go back to snd_una.
                    self.enter_loss_recovery(idx, now, fx);
                }
            }
        }

        // --- payload processing (in-order only; out-of-order dropped) ---
        if !seg.payload.is_empty() {
            let c = &mut self.conns[idx];
            if seg.seq == c.rcv_nxt {
                c.recv_buf.extend(seg.payload.iter().copied());
                c.rcv_nxt += seg.payload.len() as u64;
                need_ack = true;
                fx.app_events.push((app, AppEvent::Tcp(TcpHandle(idx), TcpEvent::DataReceived)));
            } else if seg.seq < c.rcv_nxt {
                // Duplicate (retransmission already received): just re-ACK.
                need_ack = true;
            } else {
                // Out of order: dup-ACK to trigger sender fast retransmit.
                need_ack = true;
            }
        }

        // --- FIN processing ---
        if seg.flags.fin {
            let c = &mut self.conns[idx];
            let fin_seq = seg.seq + seg.payload.len() as u64;
            if fin_seq == c.rcv_nxt && !c.peer_fin_rcvd {
                c.rcv_nxt += 1;
                c.peer_fin_rcvd = true;
                need_ack = true;
                fx.app_events.push((app, AppEvent::Tcp(TcpHandle(idx), TcpEvent::PeerClosed)));
                match c.state {
                    TcpState::Established => c.state = TcpState::CloseWait,
                    TcpState::FinWait1 => {
                        // Their FIN before our FIN was ACKed: simultaneous close.
                        c.state = TcpState::Closing;
                    }
                    TcpState::FinWait2 => {
                        c.state = TcpState::TimeWait;
                        c.timer_gen += 1;
                        fx.timers.push((
                            TIME_WAIT,
                            TcpTimer { conn: idx, gen: c.timer_gen, kind: TcpTimerKind::TimeWait },
                        ));
                    }
                    _ => {}
                }
            } else if c.peer_fin_rcvd {
                need_ack = true; // retransmitted FIN
            }
        }

        if need_ack {
            let c = &self.conns[idx];
            if c.state != TcpState::Closed {
                let ack = Packet::tcp(
                    c.local,
                    c.remote,
                    TcpSegmentBody {
                        seq: c.snd_nxt,
                        ack: c.rcv_nxt,
                        flags: TcpFlags::ACK,
                        window: RECV_WINDOW,
                        payload: Bytes::new(),
                    },
                );
                fx.out.push(ack);
            }
        }

        // New window space may allow more transmission.
        self.pump(idx, now, fx);
    }

    /// Loss detected: multiplicative decrease and go-back-N from `snd_una`
    /// (the receive side discards out-of-order segments, so everything past
    /// the loss must be re-sent anyway — Tahoe-style recovery).
    fn enter_loss_recovery(&mut self, idx: usize, now: SimTime, fx: &mut Effects) {
        let c = &mut self.conns[idx];
        if matches!(c.state, TcpState::SynSent | TcpState::SynRcvd) {
            self.retransmit_first(idx, fx);
            return;
        }
        let flight = c.flight();
        c.ssthresh = (flight / 2).max(2 * MSS);
        c.cwnd = MSS;
        // Rewind: everything unacknowledged will be re-sent by pump.
        c.snd_nxt = c.snd_una;
        if let Some(f) = c.fin_seq {
            if c.snd_una <= f {
                c.fin_seq = None; // FIN unacked: pump re-sends it after data
            }
        }
        // Karn's algorithm: no RTT sample across retransmission.
        c.rtt_sample = None;
        let retx = c.send_buf.len().min(MSS) as u64;
        c.retransmitted_bytes += retx;
        sc_obs::counter_add("simnet.tcp_retransmits", 1);
        if sc_obs::is_enabled(sc_obs::Level::Debug, "simnet") {
            let (local, remote) = (c.local, c.remote);
            sc_obs::emit(
                sc_obs::Event::new(
                    now.as_micros(),
                    sc_obs::Level::Debug,
                    "simnet",
                    "tcp",
                    "loss_recovery",
                )
                .field("bytes", retx)
                .field("local", local.to_string())
                .field("remote", remote.to_string()),
            );
        }
        self.pump(idx, now, fx);
        let c = &mut self.conns[idx];
        if !c.rto_armed {
            Self::arm_rto(c, idx, fx);
        }
    }

    fn retransmit_first(&mut self, idx: usize, fx: &mut Effects) {
        let c = &mut self.conns[idx];
        match c.state {
            TcpState::SynSent => {
                let syn = Packet::tcp(
                    c.local,
                    c.remote,
                    TcpSegmentBody {
                        seq: c.snd_una,
                        ack: 0,
                        flags: TcpFlags::SYN,
                        window: RECV_WINDOW,
                        payload: Bytes::new(),
                    },
                );
                fx.out.push(syn);
                return;
            }
            TcpState::SynRcvd => {
                let synack = Packet::tcp(
                    c.local,
                    c.remote,
                    TcpSegmentBody {
                        seq: c.snd_una,
                        ack: c.rcv_nxt,
                        flags: TcpFlags::SYN_ACK,
                        window: RECV_WINDOW,
                        payload: Bytes::new(),
                    },
                );
                fx.out.push(synack);
                return;
            }
            _ => {}
        }
        // Data (or FIN) retransmission from snd_una.
        let data_len = c.send_buf.len();
        if data_len > 0 {
            let n = data_len.min(MSS);
            let payload: Vec<u8> = c.send_buf.iter().take(n).copied().collect();
            c.retransmitted_bytes += n as u64;
            sc_obs::counter_add("simnet.tcp_retransmits", 1);
            sc_obs::counter_add("simnet.tcp_retransmitted_bytes", n as u64);
            let pkt = Packet::tcp(
                c.local,
                c.remote,
                TcpSegmentBody {
                    seq: c.snd_una,
                    ack: c.rcv_nxt,
                    flags: TcpFlags::ACK,
                    window: RECV_WINDOW,
                    payload: Bytes::from(payload),
                },
            );
            fx.out.push(pkt);
        } else if let Some(fin_seq) = c.fin_seq {
            if c.snd_una <= fin_seq {
                let pkt = Packet::tcp(
                    c.local,
                    c.remote,
                    TcpSegmentBody {
                        seq: fin_seq,
                        ack: c.rcv_nxt,
                        flags: TcpFlags::FIN_ACK,
                        window: RECV_WINDOW,
                        payload: Bytes::new(),
                    },
                );
                fx.out.push(pkt);
            }
        }
        // Karn's algorithm: invalidate the RTT sample after retransmission.
        c.rtt_sample = None;
    }

    /// Handles a TCP timer firing.
    pub fn on_timer(&mut self, t: TcpTimer, now: SimTime, fx: &mut Effects) {
        let Some(c) = self.conns.get_mut(t.conn) else { return };
        if c.timer_gen != t.gen {
            return; // stale
        }
        match t.kind {
            TcpTimerKind::TimeWait => {
                self.free(t.conn);
            }
            TcpTimerKind::Rto => {
                let app = c.app;
                let is_syn_phase = matches!(c.state, TcpState::SynSent | TcpState::SynRcvd);
                c.retries += 1;
                let max = if is_syn_phase { MAX_SYN_RETRIES } else { MAX_RETRIES };
                if c.retries > max {
                    let was = c.state;
                    self.free(t.conn);
                    let ev = if was == TcpState::SynSent {
                        TcpEvent::ConnectFailed
                    } else {
                        TcpEvent::Reset
                    };
                    fx.app_events.push((app, AppEvent::Tcp(TcpHandle(t.conn), ev)));
                    return;
                }
                // Exponential backoff + window collapse.
                c.rto = c.rto.saturating_mul(2).clamp(MIN_RTO, MAX_RTO);
                if is_syn_phase {
                    self.retransmit_first(t.conn, fx);
                } else {
                    self.enter_loss_recovery(t.conn, now, fx);
                }
                let c = &mut self.conns[t.conn];
                Self::arm_rto(c, t.conn, fx);
            }
        }
    }

    /// Number of connection slots ever created (diagnostics).
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Approximate bytes of state held by this layer (used by the client
    /// memory-overhead model: per-connection buffers are real allocations).
    pub fn state_bytes(&self) -> usize {
        self.conns
            .iter()
            .map(|c| std::mem::size_of::<Conn>() + c.send_buf.len() + c.recv_buf.len())
            .sum()
    }
}
