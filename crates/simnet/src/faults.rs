//! Deterministic fault injection: timed plans of link, node, and
//! partition faults applied through the [`Sim`](crate::sim::Sim) event
//! loop.
//!
//! The fault plane exists so the paper's robustness story — remote
//! proxies getting IP-blacklisted, links dying mid-transfer, the GFW
//! throttling a path to uselessness — can be *scheduled* instead of
//! hand-rolled per experiment. Every fault fires as an ordinary queue
//! event at a declared sim time, and every randomized decision (flap
//! intervals) draws from the simulation's seeded RNG, so a faulted run
//! is exactly as deterministic as an unfaulted one: same seed + same
//! plan → byte-identical traces.
//!
//! # Fault taxonomy
//!
//! | fault | effect |
//! |---|---|
//! | [`Fault::LinkDown`] / [`Fault::LinkUp`] | blackhole / restore a link (no RNG draws while down) |
//! | [`Fault::LinkLoss`] | set background loss, `1.0` = fully dead path |
//! | [`Fault::LinkDelay`] | set one-way propagation delay (latency spike) |
//! | [`Fault::LinkFlap`] | randomized down/up cycling until a deadline |
//! | [`Fault::Partition`] / [`Fault::HealPartitions`] | drop traffic crossing two node sets |
//! | [`Fault::NodeCrash`] / [`Fault::NodeRestart`] | node stops receiving/forwarding; timers swallowed |
//! | [`Fault::Callback`] | arbitrary environment mutation (e.g. GFW blacklist updates) |
//!
//! Node crash intentionally does **not** preserve transport liveness:
//! timers that fire while the node is down are swallowed, so local TCP
//! state goes stale and peers observe the crash through retransmission
//! timeouts and resets — the same way a real kernel disappearing does.
//!
//! # Example
//!
//! ```
//! use sc_simnet::prelude::*;
//!
//! let mut sim = Sim::new(7);
//! let a = sim.add_node("a", Addr::new(10, 0, 0, 1));
//! let b = sim.add_node("b", Addr::new(99, 0, 0, 1));
//! let ab = sim.add_link(a, b, LinkConfig::default());
//! sim.compute_routes();
//! let plan = FaultPlan::new()
//!     .at(SimTime::from_secs(2), Fault::LinkDown(ab))
//!     .at(SimTime::from_secs(5), Fault::LinkUp(ab));
//! sim.install_fault_plan(plan);
//! sim.run_for(SimDuration::from_secs(10));
//! ```

use crate::link::{LinkId, NodeId};
use crate::time::{SimDuration, SimTime};

/// A single injectable fault. Applied at its scheduled time by the
/// simulator; see the [module docs](self) for the taxonomy.
pub enum Fault {
    /// Blackhole a link: every packet offered is dropped with
    /// [`DropReason::LinkDown`](crate::stats::DropReason) and no RNG
    /// draw is consumed.
    LinkDown(LinkId),
    /// Restore a downed link.
    LinkUp(LinkId),
    /// Set the link's background loss probability (`[0.0, 1.0]`;
    /// `1.0` is a fully dead path that still consumes loss draws).
    LinkLoss(LinkId, f64),
    /// Set the link's one-way propagation delay (latency spike).
    LinkDelay(LinkId, SimDuration),
    /// Flap a link: down/up cycling with intervals drawn uniformly from
    /// `[0.5, 1.5) ×` the respective mean, until `until` (then the link
    /// is restored).
    LinkFlap {
        /// The link to flap.
        link: LinkId,
        /// Mean length of each down interval.
        mean_down: SimDuration,
        /// Mean length of each up interval.
        mean_up: SimDuration,
        /// When the flapping stops and the link is left up.
        until: SimTime,
    },
    /// Partition the network: any packet whose current hop crosses from
    /// one side to the other is dropped. Sides need not cover the whole
    /// topology; nodes in neither set are unaffected.
    Partition {
        /// One side of the cut.
        left: Vec<NodeId>,
        /// The other side.
        right: Vec<NodeId>,
    },
    /// Remove every active partition.
    HealPartitions,
    /// Crash a node: it stops receiving and forwarding, its pending app
    /// events are discarded, and timers that fire while down are
    /// swallowed (transport state goes stale, as on a real crash).
    NodeCrash(NodeId),
    /// Restart a crashed node (apps keep their state; transport state
    /// from before the crash is stale and peers will reset).
    NodeRestart(NodeId),
    /// An arbitrary environment mutation run at the scheduled time —
    /// the hook other layers use to inject faults the simulator core
    /// cannot know about (e.g. a GFW blacklist update via its shared
    /// handle). The label names the fault in traces.
    Callback {
        /// Trace label for this fault.
        label: &'static str,
        /// The mutation to run; receives the current sim time.
        apply: Box<dyn FnMut(SimTime)>,
    },
    /// A flash crowd: `clients` extra clients start arriving, spread
    /// over the `ramp` window. The simulator records the surge shape in
    /// the trace and runs `trigger`, which typically opens a shared
    /// gate that waiting client apps poll; the per-client arrival
    /// offsets come from [`ramp::uniform_offsets`](crate::ramp).
    FlashCrowd {
        /// How many extra clients arrive.
        clients: u32,
        /// The window over which their arrivals are spread.
        ramp: SimDuration,
        /// The environment mutation that releases the crowd.
        trigger: Box<dyn FnMut(SimTime)>,
    },
}

impl Fault {
    /// Short machine-readable name, used as the `fault` field of the
    /// `simnet/fault` trace event.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::LinkDown(_) => "link_down",
            Fault::LinkUp(_) => "link_up",
            Fault::LinkLoss(..) => "link_loss",
            Fault::LinkDelay(..) => "link_delay",
            Fault::LinkFlap { .. } => "link_flap",
            Fault::Partition { .. } => "partition",
            Fault::HealPartitions => "heal_partitions",
            Fault::NodeCrash(_) => "node_crash",
            Fault::NodeRestart(_) => "node_restart",
            Fault::Callback { label, .. } => label,
            Fault::FlashCrowd { .. } => "flash_crowd",
        }
    }
}

impl core::fmt::Debug for Fault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fault::{}", self.name())
    }
}

/// A timed sequence of faults. Build with [`at`](Self::at) and install
/// with [`Sim::install_fault_plan`](crate::sim::Sim::install_fault_plan);
/// entries may be declared in any order (the event queue sorts by time).
#[derive(Debug, Default)]
pub struct FaultPlan {
    pub(crate) entries: Vec<(SimTime, Fault)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan { entries: Vec::new() }
    }

    /// Schedules `fault` at absolute sim time `at`. Times already in the
    /// past when the plan is installed fire immediately.
    pub fn at(mut self, at: SimTime, fault: Fault) -> Self {
        self.entries.push((at, fault));
        self
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Internal state of an in-progress [`Fault::LinkFlap`].
#[derive(Debug)]
pub(crate) struct FlapState {
    pub(crate) link: LinkId,
    pub(crate) mean_down: SimDuration,
    pub(crate) mean_up: SimDuration,
    pub(crate) until: SimTime,
    /// Whether the link is currently held down by this flap.
    pub(crate) down: bool,
}
