//! Packets: the layer-3 unit the simulator forwards and the GFW inspects.
//!
//! Packets carry a structured header plus a transport payload. A binary
//! wire codec ([`Packet::encode`] / [`Packet::decode`]) exists so that
//! packet-level tunnels (PPTP/L2TP/OpenVPN) can encapsulate whole packets
//! as opaque bytes — exactly the operation the GFW's DPI then has to see
//! through (or not).

use bytes::{BufMut, Bytes, BytesMut};

use crate::addr::{Addr, SocketAddr};

/// IP protocol numbers used by the simulation (matching IANA where they exist).
pub mod proto {
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
    /// GRE (used by PPTP data channels).
    pub const GRE: u8 = 47;
    /// ESP (used by L2TP/IPsec data channels).
    pub const ESP: u8 = 50;
}

/// TCP header flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct TcpFlags {
    /// Synchronize sequence numbers.
    pub syn: bool,
    /// Acknowledgement field valid.
    pub ack: bool,
    /// No more data from sender.
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
}

impl TcpFlags {
    /// SYN only.
    pub const SYN: TcpFlags = TcpFlags { syn: true, ack: false, fin: false, rst: false };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags { syn: true, ack: true, fin: false, rst: false };
    /// ACK only.
    pub const ACK: TcpFlags = TcpFlags { syn: false, ack: true, fin: false, rst: false };
    /// FIN+ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags { syn: false, ack: true, fin: true, rst: false };
    /// RST only.
    pub const RST: TcpFlags = TcpFlags { syn: false, ack: false, fin: false, rst: true };

    fn to_byte(self) -> u8 {
        (self.syn as u8) | (self.ack as u8) << 1 | (self.fin as u8) << 2 | (self.rst as u8) << 3
    }

    fn from_byte(b: u8) -> Self {
        TcpFlags {
            syn: b & 1 != 0,
            ack: b & 2 != 0,
            fin: b & 4 != 0,
            rst: b & 8 != 0,
        }
    }
}

/// A TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (simulation uses 64-bit
    /// sequence space to sidestep wrap-around bookkeeping).
    pub seq: u64,
    /// Cumulative acknowledgement number (valid when `flags.ack`).
    pub ack: u64,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window in bytes.
    pub window: u32,
    /// Payload bytes.
    pub payload: Bytes,
}

/// A UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Transport-layer content of a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum L4 {
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A UDP datagram.
    Udp(UdpDatagram),
    /// A raw layer-4 payload with an explicit protocol number (GRE, ESP, …).
    Raw {
        /// IP protocol number.
        protocol: u8,
        /// Raw payload bytes.
        payload: Bytes,
    },
}

impl L4 {
    /// The IP protocol number of this payload.
    pub fn protocol(&self) -> u8 {
        match self {
            L4::Tcp(_) => proto::TCP,
            L4::Udp(_) => proto::UDP,
            L4::Raw { protocol, .. } => *protocol,
        }
    }

    /// The transport payload bytes (what DPI inspects).
    pub fn payload(&self) -> &Bytes {
        match self {
            L4::Tcp(t) => &t.payload,
            L4::Udp(u) => &u.payload,
            L4::Raw { payload, .. } => payload,
        }
    }
}

/// A layer-3 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Time-to-live hop count.
    pub ttl: u8,
    /// Transport content.
    pub l4: L4,
}

/// Default TTL for newly created packets.
pub const DEFAULT_TTL: u8 = 64;

/// Fixed per-packet header overhead charged on the wire (bytes): models the
/// IP + transport headers that the simulator's structured representation
/// doesn't serialize per hop.
pub const HEADER_OVERHEAD: usize = 40;

impl Packet {
    /// Creates a TCP packet.
    pub fn tcp(src: SocketAddr, dst: SocketAddr, seg_body: TcpSegmentBody) -> Packet {
        Packet {
            src: src.addr,
            dst: dst.addr,
            ttl: DEFAULT_TTL,
            l4: L4::Tcp(TcpSegment {
                src_port: src.port,
                dst_port: dst.port,
                seq: seg_body.seq,
                ack: seg_body.ack,
                flags: seg_body.flags,
                window: seg_body.window,
                payload: seg_body.payload,
            }),
        }
    }

    /// Creates a UDP packet.
    pub fn udp(src: SocketAddr, dst: SocketAddr, payload: Bytes) -> Packet {
        Packet {
            src: src.addr,
            dst: dst.addr,
            ttl: DEFAULT_TTL,
            l4: L4::Udp(UdpDatagram {
                src_port: src.port,
                dst_port: dst.port,
                payload,
            }),
        }
    }

    /// Creates a raw-protocol packet (GRE, ESP, …).
    pub fn raw(src: Addr, dst: Addr, protocol: u8, payload: Bytes) -> Packet {
        Packet {
            src,
            dst,
            ttl: DEFAULT_TTL,
            l4: L4::Raw { protocol, payload },
        }
    }

    /// Bytes this packet occupies on the wire (payload + header overhead).
    pub fn wire_len(&self) -> usize {
        self.l4.payload().len() + HEADER_OVERHEAD
    }

    /// The source socket address, if the transport has ports.
    pub fn src_socket(&self) -> Option<SocketAddr> {
        match &self.l4 {
            L4::Tcp(t) => Some(SocketAddr::new(self.src, t.src_port)),
            L4::Udp(u) => Some(SocketAddr::new(self.src, u.src_port)),
            L4::Raw { .. } => None,
        }
    }

    /// The destination socket address, if the transport has ports.
    pub fn dst_socket(&self) -> Option<SocketAddr> {
        match &self.l4 {
            L4::Tcp(t) => Some(SocketAddr::new(self.dst, t.dst_port)),
            L4::Udp(u) => Some(SocketAddr::new(self.dst, u.dst_port)),
            L4::Raw { .. } => None,
        }
    }

    /// Serializes the packet to bytes (for tunnel encapsulation).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.l4.payload().len() + 40);
        buf.put_u32(self.src.as_u32());
        buf.put_u32(self.dst.as_u32());
        buf.put_u8(self.ttl);
        buf.put_u8(self.l4.protocol());
        match &self.l4 {
            L4::Tcp(t) => {
                buf.put_u16(t.src_port);
                buf.put_u16(t.dst_port);
                buf.put_u64(t.seq);
                buf.put_u64(t.ack);
                buf.put_u8(t.flags.to_byte());
                buf.put_u32(t.window);
                buf.put_u32(t.payload.len() as u32);
                buf.put_slice(&t.payload);
            }
            L4::Udp(u) => {
                buf.put_u16(u.src_port);
                buf.put_u16(u.dst_port);
                buf.put_u32(u.payload.len() as u32);
                buf.put_slice(&u.payload);
            }
            L4::Raw { payload, .. } => {
                buf.put_u32(payload.len() as u32);
                buf.put_slice(payload);
            }
        }
        buf.freeze()
    }

    /// Parses a packet from bytes produced by [`Packet::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`PacketDecodeError`] on truncation or malformed fields.
    pub fn decode(mut data: &[u8]) -> Result<Packet, PacketDecodeError> {
        fn take<'a>(data: &mut &'a [u8], n: usize) -> Result<&'a [u8], PacketDecodeError> {
            if data.len() < n {
                return Err(PacketDecodeError::Truncated);
            }
            let (head, tail) = data.split_at(n);
            *data = tail;
            Ok(head)
        }
        fn take_u16(d: &mut &[u8]) -> Result<u16, PacketDecodeError> {
            Ok(u16::from_be_bytes(take(d, 2)?.try_into().unwrap()))
        }
        fn take_u32(d: &mut &[u8]) -> Result<u32, PacketDecodeError> {
            Ok(u32::from_be_bytes(take(d, 4)?.try_into().unwrap()))
        }
        fn take_u64(d: &mut &[u8]) -> Result<u64, PacketDecodeError> {
            Ok(u64::from_be_bytes(take(d, 8)?.try_into().unwrap()))
        }

        let src = Addr::from_u32(take_u32(&mut data)?);
        let dst = Addr::from_u32(take_u32(&mut data)?);
        let ttl = take(&mut data, 1)?[0];
        let protocol = take(&mut data, 1)?[0];
        let l4 = match protocol {
            proto::TCP => {
                let src_port = take_u16(&mut data)?;
                let dst_port = take_u16(&mut data)?;
                let seq = take_u64(&mut data)?;
                let ack = take_u64(&mut data)?;
                let flags = TcpFlags::from_byte(take(&mut data, 1)?[0]);
                let window = take_u32(&mut data)?;
                let len = take_u32(&mut data)? as usize;
                let payload = Bytes::copy_from_slice(take(&mut data, len)?);
                L4::Tcp(TcpSegment { src_port, dst_port, seq, ack, flags, window, payload })
            }
            proto::UDP => {
                let src_port = take_u16(&mut data)?;
                let dst_port = take_u16(&mut data)?;
                let len = take_u32(&mut data)? as usize;
                let payload = Bytes::copy_from_slice(take(&mut data, len)?);
                L4::Udp(UdpDatagram { src_port, dst_port, payload })
            }
            other => {
                let len = take_u32(&mut data)? as usize;
                let payload = Bytes::copy_from_slice(take(&mut data, len)?);
                L4::Raw { protocol: other, payload }
            }
        };
        if !data.is_empty() {
            return Err(PacketDecodeError::TrailingBytes(data.len()));
        }
        Ok(Packet { src, dst, ttl, l4 })
    }
}

/// Helper struct for building TCP segments without a 7-argument function.
#[derive(Debug, Clone)]
pub struct TcpSegmentBody {
    /// Sequence number.
    pub seq: u64,
    /// Acknowledgement number.
    pub ack: u64,
    /// Flags.
    pub flags: TcpFlags,
    /// Advertised window.
    pub window: u32,
    /// Payload.
    pub payload: Bytes,
}

/// Error parsing a serialized packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketDecodeError {
    /// Input ended before the structure was complete.
    Truncated,
    /// Bytes remained after a complete packet.
    TrailingBytes(usize),
}

impl core::fmt::Display for PacketDecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PacketDecodeError::Truncated => write!(f, "truncated packet"),
            PacketDecodeError::TrailingBytes(n) => {
                write!(f, "unexpected {n} trailing bytes after packet")
            }
        }
    }
}

impl std::error::Error for PacketDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tcp() -> Packet {
        Packet::tcp(
            SocketAddr::new(Addr::new(10, 0, 0, 1), 5000),
            SocketAddr::new(Addr::new(99, 0, 0, 2), 443),
            TcpSegmentBody {
                seq: 1_000_000,
                ack: 42,
                flags: TcpFlags::SYN_ACK,
                window: 65_535,
                payload: Bytes::from_static(b"hello"),
            },
        )
    }

    #[test]
    fn tcp_encode_decode_roundtrip() {
        let pkt = sample_tcp();
        let decoded = Packet::decode(&pkt.encode()).unwrap();
        assert_eq!(decoded, pkt);
    }

    #[test]
    fn udp_encode_decode_roundtrip() {
        let pkt = Packet::udp(
            SocketAddr::new(Addr::new(10, 0, 0, 1), 3333),
            SocketAddr::new(Addr::new(8, 8, 8, 8), 53),
            Bytes::from_static(&[1, 2, 3, 4, 5]),
        );
        assert_eq!(Packet::decode(&pkt.encode()).unwrap(), pkt);
    }

    #[test]
    fn raw_encode_decode_roundtrip() {
        let pkt = Packet::raw(
            Addr::new(10, 0, 0, 1),
            Addr::new(99, 0, 0, 1),
            proto::GRE,
            Bytes::from_static(b"inner packet bytes"),
        );
        assert_eq!(Packet::decode(&pkt.encode()).unwrap(), pkt);
        assert_eq!(pkt.l4.protocol(), 47);
    }

    #[test]
    fn decode_rejects_truncation() {
        let enc = sample_tcp().encode();
        for cut in [0, 1, 5, 10, enc.len() - 1] {
            assert_eq!(
                Packet::decode(&enc[..cut]).unwrap_err(),
                PacketDecodeError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut enc = sample_tcp().encode().to_vec();
        enc.push(0xff);
        assert!(matches!(
            Packet::decode(&enc).unwrap_err(),
            PacketDecodeError::TrailingBytes(1)
        ));
    }

    #[test]
    fn flags_byte_roundtrip() {
        for b in 0u8..16 {
            assert_eq!(TcpFlags::from_byte(b).to_byte(), b);
        }
    }

    #[test]
    fn socket_accessors() {
        let pkt = sample_tcp();
        assert_eq!(pkt.src_socket().unwrap().port, 5000);
        assert_eq!(pkt.dst_socket().unwrap().port, 443);
        let raw = Packet::raw(Addr::UNSPECIFIED, Addr::UNSPECIFIED, 47, Bytes::new());
        assert!(raw.src_socket().is_none());
    }

    #[test]
    fn wire_len_includes_header() {
        let pkt = sample_tcp();
        assert_eq!(pkt.wire_len(), 5 + HEADER_OVERHEAD);
    }

    #[test]
    fn nested_encapsulation_roundtrip() {
        // A packet inside a UDP tunnel inside another packet — the pattern
        // every VPN in sc-tunnels relies on.
        let inner = sample_tcp();
        let outer = Packet::udp(
            SocketAddr::new(Addr::new(10, 0, 0, 1), 999),
            SocketAddr::new(Addr::new(99, 0, 0, 9), 1194),
            inner.encode(),
        );
        let outer2 = Packet::decode(&outer.encode()).unwrap();
        if let L4::Udp(u) = &outer2.l4 {
            assert_eq!(Packet::decode(&u.payload).unwrap(), inner);
        } else {
            panic!("expected UDP");
        }
    }
}
