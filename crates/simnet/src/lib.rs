//! # sc-simnet
//!
//! A deterministic, discrete-event network simulator: the substrate on
//! which the ScholarCloud reproduction measures page load time, RTT, and
//! packet loss under censorship.
//!
//! ## Architecture
//!
//! * [`sim::Sim`] — the engine: event queue, clock, seeded RNG, statistics.
//! * [`node::Node`] — hosts/routers with TCP ([`tcp`]), UDP, raw protocols.
//! * [`link`] — links with propagation delay, bandwidth, queues, base loss.
//! * [`middlebox`] — the in-path inspection hook the GFW attaches to.
//! * [`api`] — the event-driven [`api::App`] trait every protocol endpoint
//!   (browser, proxy, VPN server, origin server…) implements.
//!
//! Loss — whether from links or censor verdicts — is repaired by the real
//! TCP retransmission machinery, so censorship degrades application
//! metrics the same way the paper observed.
//!
//! ## Example
//!
//! ```
//! use sc_simnet::prelude::*;
//! use bytes::Bytes;
//!
//! struct Echo;
//! impl App for Echo {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.udp_bind(7);
//!     }
//!     fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
//!         if let AppEvent::Udp { socket, from, payload } = ev {
//!             ctx.udp_send(socket, from, payload);
//!         }
//!     }
//! }
//!
//! let mut sim = Sim::new(1);
//! let a = sim.add_node("client", Addr::new(10, 0, 0, 1));
//! let b = sim.add_node("server", Addr::new(99, 0, 0, 1));
//! sim.add_link(a, b, LinkConfig::with_delay(SimDuration::from_millis(25)));
//! sim.compute_routes();
//! sim.install_app(b, Box::new(Echo));
//! sim.run_for(SimDuration::from_secs(1));
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod api;
pub mod faults;
pub mod link;
pub mod middlebox;
pub mod node;
pub mod packet;
pub mod ramp;
pub mod sim;
pub mod stats;
pub mod tcp;
pub mod time;

/// Convenient glob-import of the common types.
pub mod prelude {
    pub use crate::addr::{Addr, SocketAddr};
    pub use crate::api::{App, AppEvent, AppId, PacketTunnel, TcpEvent, TcpHandle, UdpHandle};
    pub use crate::faults::{Fault, FaultPlan};
    pub use crate::link::{LinkConfig, LinkId, NodeId};
    pub use crate::middlebox::{MbCtx, Middlebox, Verdict};
    pub use crate::packet::{L4, Packet, TcpFlags, TcpSegmentBody, proto};
    pub use crate::sim::{Ctx, Sim};
    pub use crate::stats::DropReason;
    pub use crate::time::{SimDuration, SimTime};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use bytes::Bytes;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A TCP server that accepts connections and echoes whatever arrives.
    struct EchoServer {
        port: u16,
    }

    impl App for EchoServer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            assert!(ctx.tcp_listen(self.port));
        }
        fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
            if let AppEvent::Tcp(h, TcpEvent::DataReceived) = ev {
                let data = ctx.tcp_recv_all(h);
                ctx.tcp_send(h, &data);
            }
        }
    }

    #[derive(Default, Clone)]
    struct ClientLog {
        connected_at: Option<SimTime>,
        received: Vec<u8>,
        failed: bool,
        peer_closed: bool,
    }

    /// A client that connects, sends a blob, and records what comes back.
    struct BlobClient {
        server: SocketAddr,
        blob: Vec<u8>,
        handle: Option<TcpHandle>,
        log: Rc<RefCell<ClientLog>>,
    }

    impl App for BlobClient {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.handle = Some(ctx.tcp_connect(self.server));
        }
        fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
            let h = self.handle.unwrap();
            match ev {
                AppEvent::Tcp(eh, TcpEvent::Connected) if eh == h => {
                    self.log.borrow_mut().connected_at = Some(ctx.now());
                    ctx.tcp_send(h, &self.blob.clone());
                }
                AppEvent::Tcp(eh, TcpEvent::DataReceived) if eh == h => {
                    let data = ctx.tcp_recv_all(h);
                    self.log.borrow_mut().received.extend_from_slice(&data);
                }
                AppEvent::Tcp(eh, TcpEvent::ConnectFailed | TcpEvent::Reset) if eh == h => {
                    self.log.borrow_mut().failed = true;
                }
                AppEvent::Tcp(eh, TcpEvent::PeerClosed) if eh == h => {
                    self.log.borrow_mut().peer_closed = true;
                }
                _ => {}
            }
        }
    }

    fn two_node_sim(loss: f64, delay_ms: u64, seed: u64) -> (Sim, NodeId, NodeId) {
        let mut sim = Sim::new(seed);
        let a = sim.add_node("client", Addr::new(10, 0, 0, 1));
        let b = sim.add_node("server", Addr::new(99, 0, 0, 1));
        sim.add_link(
            a,
            b,
            LinkConfig::with_delay(SimDuration::from_millis(delay_ms)).loss(loss),
        );
        sim.compute_routes();
        (sim, a, b)
    }

    #[test]
    fn tcp_handshake_takes_one_rtt() {
        let (mut sim, a, b) = two_node_sim(0.0, 50, 7);
        sim.install_app(b, Box::new(EchoServer { port: 80 }));
        let log = Rc::new(RefCell::new(ClientLog::default()));
        sim.install_app(
            a,
            Box::new(BlobClient {
                server: SocketAddr::new(Addr::new(99, 0, 0, 1), 80),
                blob: vec![],
                handle: None,
                log: log.clone(),
            }),
        );
        sim.run_for(SimDuration::from_secs(2));
        let connected = log.borrow().connected_at.expect("should connect");
        // One RTT = 100 ms (plus negligible serialization).
        let ms = connected.as_micros() as f64 / 1000.0;
        assert!((100.0..110.0).contains(&ms), "handshake took {ms} ms");
    }

    #[test]
    fn tcp_echo_roundtrip_lossless() {
        let (mut sim, a, b) = two_node_sim(0.0, 10, 3);
        sim.install_app(b, Box::new(EchoServer { port: 80 }));
        let log = Rc::new(RefCell::new(ClientLog::default()));
        let blob: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        sim.install_app(
            a,
            Box::new(BlobClient {
                server: SocketAddr::new(Addr::new(99, 0, 0, 1), 80),
                blob: blob.clone(),
                handle: None,
                log: log.clone(),
            }),
        );
        sim.run_for(SimDuration::from_secs(30));
        assert_eq!(log.borrow().received, blob);
        assert!(!log.borrow().failed);
    }

    #[test]
    fn tcp_survives_five_percent_loss() {
        let (mut sim, a, b) = two_node_sim(0.05, 20, 11);
        sim.install_app(b, Box::new(EchoServer { port: 80 }));
        let log = Rc::new(RefCell::new(ClientLog::default()));
        let blob: Vec<u8> = (0..100_000u32).map(|i| (i * 7 % 256) as u8).collect();
        sim.install_app(
            a,
            Box::new(BlobClient {
                server: SocketAddr::new(Addr::new(99, 0, 0, 1), 80),
                blob: blob.clone(),
                handle: None,
                log: log.clone(),
            }),
        );
        sim.run_for(SimDuration::from_secs(120));
        assert_eq!(log.borrow().received.len(), blob.len(), "transfer incomplete");
        assert_eq!(log.borrow().received, blob, "data corrupted by retransmission");
        // Loss must actually have occurred for this test to mean anything.
        assert!(sim.stats.total_drops() > 0);
    }

    #[test]
    fn connect_to_closed_port_fails_fast() {
        let (mut sim, a, _b) = two_node_sim(0.0, 10, 5);
        let log = Rc::new(RefCell::new(ClientLog::default()));
        sim.install_app(
            a,
            Box::new(BlobClient {
                server: SocketAddr::new(Addr::new(99, 0, 0, 1), 81), // nothing listens
                blob: vec![1, 2, 3],
                handle: None,
                log: log.clone(),
            }),
        );
        sim.run_for(SimDuration::from_secs(5));
        assert!(log.borrow().failed, "RST should fail the connect");
        assert!(log.borrow().connected_at.is_none());
    }

    #[test]
    fn connect_through_black_hole_times_out() {
        // A middlebox that drops everything: connect must eventually fail
        // via SYN retry exhaustion, not hang forever.
        struct BlackHole;
        impl Middlebox for BlackHole {
            fn process(&mut self, _pkt: &Packet, _ctx: &mut MbCtx<'_>) -> Verdict {
                Verdict::Drop("black-hole")
            }
        }
        let mut sim = Sim::new(13);
        let a = sim.add_node("client", Addr::new(10, 0, 0, 1));
        let r = sim.add_node("router", Addr::new(10, 0, 0, 254));
        let b = sim.add_node("server", Addr::new(99, 0, 0, 1));
        sim.add_link(a, r, LinkConfig::with_delay(SimDuration::from_millis(5)));
        sim.add_link(r, b, LinkConfig::with_delay(SimDuration::from_millis(5)));
        sim.compute_routes();
        sim.set_middlebox(r, Box::new(BlackHole));
        sim.install_app(b, Box::new(EchoServer { port: 80 }));
        let log = Rc::new(RefCell::new(ClientLog::default()));
        sim.install_app(
            a,
            Box::new(BlobClient {
                server: SocketAddr::new(Addr::new(99, 0, 0, 1), 80),
                blob: vec![],
                handle: None,
                log: log.clone(),
            }),
        );
        sim.run_for(SimDuration::from_secs(120));
        assert!(log.borrow().failed, "SYN retries should exhaust");
        let censored = sim.stats.censor_drops();
        assert!(censored > 0, "drops should be attributed to the middlebox");
    }

    #[test]
    fn udp_echo_and_rtt() {
        struct UdpEcho;
        impl App for UdpEcho {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.udp_bind(9);
            }
            fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
                if let AppEvent::Udp { socket, from, payload } = ev {
                    ctx.udp_send(socket, from, payload);
                }
            }
        }
        struct UdpPing {
            server: SocketAddr,
            sock: Option<UdpHandle>,
            echo_at: Rc<RefCell<Option<SimTime>>>,
        }
        impl App for UdpPing {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let s = ctx.udp_bind(0).unwrap();
                self.sock = Some(s);
                ctx.udp_send(s, self.server, Bytes::from_static(b"ping"));
            }
            fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
                if let AppEvent::Udp { .. } = ev {
                    *self.echo_at.borrow_mut() = Some(ctx.now());
                }
            }
        }
        let (mut sim, a, b) = two_node_sim(0.0, 30, 17);
        sim.install_app(b, Box::new(UdpEcho));
        let echo_at = Rc::new(RefCell::new(None));
        sim.install_app(
            a,
            Box::new(UdpPing {
                server: SocketAddr::new(Addr::new(99, 0, 0, 1), 9),
                sock: None,
                echo_at: echo_at.clone(),
            }),
        );
        sim.run_for(SimDuration::from_secs(1));
        let t = echo_at.borrow().expect("echo should arrive");
        let ms = t.as_micros() as f64 / 1000.0;
        assert!((60.0..62.0).contains(&ms), "UDP RTT was {ms} ms");
    }

    #[test]
    fn multi_hop_routing_works() {
        // a - r1 - r2 - b : BFS routes should carry traffic end to end.
        let mut sim = Sim::new(23);
        let a = sim.add_node("a", Addr::new(10, 0, 0, 1));
        let r1 = sim.add_node("r1", Addr::new(10, 0, 0, 254));
        let r2 = sim.add_node("r2", Addr::new(99, 0, 0, 254));
        let b = sim.add_node("b", Addr::new(99, 0, 0, 1));
        let d = LinkConfig::with_delay(SimDuration::from_millis(10));
        sim.add_link(a, r1, d);
        sim.add_link(r1, r2, d);
        sim.add_link(r2, b, d);
        sim.compute_routes();
        sim.install_app(b, Box::new(EchoServer { port: 80 }));
        let log = Rc::new(RefCell::new(ClientLog::default()));
        sim.install_app(
            a,
            Box::new(BlobClient {
                server: SocketAddr::new(Addr::new(99, 0, 0, 1), 80),
                blob: b"over the rivers".to_vec(),
                handle: None,
                log: log.clone(),
            }),
        );
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(log.borrow().received, b"over the rivers");
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let (mut sim, a, b) = two_node_sim(0.03, 15, seed);
            sim.install_app(b, Box::new(EchoServer { port: 80 }));
            let log = Rc::new(RefCell::new(ClientLog::default()));
            sim.install_app(
                a,
                Box::new(BlobClient {
                    server: SocketAddr::new(Addr::new(99, 0, 0, 1), 80),
                    blob: vec![9; 30_000],
                    handle: None,
                    log: log.clone(),
                }),
            );
            sim.run_for(SimDuration::from_secs(60));
            (sim.stats.packets_sent, sim.stats.total_drops())
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100), "different seeds should differ (overwhelmingly likely)");
    }

    fn blob_client(
        sim: &mut Sim,
        a: NodeId,
        blob: Vec<u8>,
    ) -> Rc<RefCell<ClientLog>> {
        let log = Rc::new(RefCell::new(ClientLog::default()));
        sim.install_app(
            a,
            Box::new(BlobClient {
                server: SocketAddr::new(Addr::new(99, 0, 0, 1), 80),
                blob,
                handle: None,
                log: log.clone(),
            }),
        );
        log
    }

    #[test]
    fn blackholed_link_drops_everything_then_recovers() {
        let (mut sim, a, b) = two_node_sim(0.0, 10, 41);
        let link = sc_link_of(&sim, a);
        sim.install_app(b, Box::new(EchoServer { port: 80 }));
        // Down from the start; back up at t = 12 s. SYN retries (RTO
        // doubling: 1, 3, 7, 15 s…) span the outage, so the retry at
        // t = 15 s lands and the echo completes.
        sim.install_fault_plan(
            FaultPlan::new()
                .at(SimTime::ZERO, Fault::LinkDown(link))
                .at(SimTime::from_secs(12), Fault::LinkUp(link)),
        );
        let log = blob_client(&mut sim, a, b"late but whole".to_vec());
        sim.run_for(SimDuration::from_secs(10));
        assert!(log.borrow().connected_at.is_none(), "nothing crosses a dead link");
        assert!(sim.stats.drops.get(&DropReason::LinkDown).copied().unwrap_or(0) > 0);
        sim.run_for(SimDuration::from_secs(60));
        assert_eq!(log.borrow().received, b"late but whole");
    }

    #[test]
    fn loss_one_is_a_dead_path() {
        let (mut sim, a, b) = two_node_sim(1.0, 10, 43);
        sim.install_app(b, Box::new(EchoServer { port: 80 }));
        let log = blob_client(&mut sim, a, vec![1, 2, 3]);
        sim.run_for(SimDuration::from_secs(120));
        assert!(log.borrow().failed, "SYN retries must exhaust on loss = 1.0");
        assert_eq!(sim.stats.packets_delivered, 0);
        assert!(sim.stats.drops.get(&DropReason::LinkLoss).copied().unwrap_or(0) > 0);
    }

    #[test]
    fn partition_cuts_traffic_and_heals() {
        let (mut sim, a, b) = two_node_sim(0.0, 10, 47);
        sim.install_app(b, Box::new(EchoServer { port: 80 }));
        sim.install_fault_plan(
            FaultPlan::new()
                .at(SimTime::ZERO, Fault::Partition { left: vec![a], right: vec![b] })
                .at(SimTime::from_secs(20), Fault::HealPartitions),
        );
        let log = blob_client(&mut sim, a, b"across the cut".to_vec());
        sim.run_for(SimDuration::from_secs(15));
        assert!(log.borrow().connected_at.is_none());
        assert!(sim.stats.drops.get(&DropReason::Partitioned).copied().unwrap_or(0) > 0);
        assert!(sim.stats.fault_drops() > 0);
        sim.run_for(SimDuration::from_secs(60));
        assert_eq!(log.borrow().received, b"across the cut");
    }

    #[test]
    fn crashed_node_drops_and_restart_serves_again() {
        let (mut sim, a, b) = two_node_sim(0.0, 10, 53);
        sim.install_app(b, Box::new(EchoServer { port: 80 }));
        sim.install_fault_plan(
            FaultPlan::new().at(SimTime::ZERO, Fault::NodeCrash(b)),
        );
        let log = blob_client(&mut sim, a, vec![7; 10]);
        sim.run_for(SimDuration::from_secs(90));
        assert!(!sim.node_is_up(b));
        assert!(log.borrow().connected_at.is_none(), "crashed node must not accept");
        assert!(sim.stats.drops.get(&DropReason::NodeDown).copied().unwrap_or(0) > 0);
        // Restart and connect fresh: the listener survives in app state.
        sim.install_fault_plan(
            FaultPlan::new().at(sim.now(), Fault::NodeRestart(b)),
        );
        let log2 = blob_client(&mut sim, a, b"after restart".to_vec());
        sim.run_for(SimDuration::from_secs(30));
        assert!(sim.node_is_up(b));
        assert_eq!(log2.borrow().received, b"after restart");
    }

    #[test]
    fn flapping_link_is_deterministic_and_settles_up() {
        let run = |seed| {
            let mut sim = Sim::new(seed);
            let a = sim.add_node("client", Addr::new(10, 0, 0, 1));
            let b = sim.add_node("server", Addr::new(99, 0, 0, 1));
            // Slow enough that the transfer is still in flight when the
            // flapping starts at t = 1 s.
            let link = sim.add_link(
                a,
                b,
                LinkConfig::with_delay(SimDuration::from_millis(10)).bandwidth_bps(2_000_000),
            );
            sim.compute_routes();
            sim.install_app(b, Box::new(EchoServer { port: 80 }));
            sim.install_fault_plan(FaultPlan::new().at(
                SimTime::from_secs(1),
                Fault::LinkFlap {
                    link,
                    mean_down: SimDuration::from_millis(200),
                    mean_up: SimDuration::from_millis(800),
                    until: SimTime::from_secs(20),
                },
            ));
            let log = blob_client(&mut sim, a, vec![9; 400_000]);
            sim.run_for(SimDuration::from_secs(120));
            let received = log.borrow().received.len();
            let failed = log.borrow().failed;
            (sim.link_is_up(link), received, failed, sim.stats.packets_sent, sim.stats.total_drops())
        };
        let (up, len, failed, sent, drops) = run(61);
        assert!(up, "link must settle up after the flap window");
        assert!(!failed, "the connection must survive the flap");
        assert_eq!(len, 400_000, "TCP must repair the flap losses");
        assert!(drops > 0, "the flap must actually have dropped packets");
        assert_eq!((up, len, failed, sent, drops), run(61), "same seed, same flap schedule");
    }

    /// The (single) link attached to `n` in a two-node topology.
    fn sc_link_of(sim: &Sim, n: NodeId) -> LinkId {
        sim.node(n).links[0]
    }

    #[test]
    fn graceful_close_reaches_peer() {
        struct CloseServer;
        impl App for CloseServer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.tcp_listen(80);
            }
            fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
                match ev {
                    AppEvent::Tcp(h, TcpEvent::DataReceived) => {
                        let _ = ctx.tcp_recv_all(h);
                        ctx.tcp_send(h, b"bye");
                        ctx.tcp_close(h);
                    }
                    _ => {}
                }
            }
        }
        let (mut sim, a, b) = two_node_sim(0.0, 10, 31);
        sim.install_app(b, Box::new(CloseServer));
        let log = Rc::new(RefCell::new(ClientLog::default()));
        sim.install_app(
            a,
            Box::new(BlobClient {
                server: SocketAddr::new(Addr::new(99, 0, 0, 1), 80),
                blob: b"hello".to_vec(),
                handle: None,
                log: log.clone(),
            }),
        );
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(log.borrow().received, b"bye");
        assert!(log.borrow().peer_closed, "FIN should reach the client");
    }
}
