//! The discrete-event simulation engine and the application [`Ctx`] API.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::addr::{Addr, SocketAddr};
use crate::api::{App, AppEvent, AppId, PacketTunnel, TcpHandle, UdpHandle};
use crate::faults::{Fault, FaultPlan, FlapState};
use crate::link::{Link, LinkConfig, LinkId, LinkOutcome, NodeId};
use crate::middlebox::{MbCtx, Middlebox, Verdict};
use crate::node::Node;
use crate::packet::{L4, Packet};
use crate::stats::{DropReason, SimStats};
use sc_obs::prof::{self, Subsystem};
use crate::tcp::{ConnStats, Effects, TcpTimer};
use crate::time::{SimDuration, SimTime};

#[derive(Debug)]
enum Event {
    Arrival { node: NodeId, packet: Packet },
    TcpTimer { node: NodeId, timer: TcpTimer },
    AppTimer { node: NodeId, app: AppId, token: u64 },
    Start { node: NodeId, app: AppId },
    Fault(Fault),
    FlapToggle { flap: usize },
    /// Administrative power transition (elastic instance spawn/retire).
    /// Unlike `Fault::NodeCrash`, this is a *planned* control-plane
    /// action: it is delivered even to a node that is already down.
    Lifecycle { node: NodeId, up: bool },
}

struct Queued {
    at: SimTime,
    seq: u64,
    ev: Event,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulator: topology, clock, event queue, and statistics.
///
/// # Examples
///
/// Build a two-host network and run it:
///
/// ```
/// use sc_simnet::prelude::*;
///
/// let mut sim = Sim::new(42);
/// let a = sim.add_node("a", Addr::new(10, 0, 0, 1));
/// let b = sim.add_node("b", Addr::new(99, 0, 0, 1));
/// sim.add_link(a, b, LinkConfig::with_delay(SimDuration::from_millis(20)));
/// sim.compute_routes();
/// sim.run_for(SimDuration::from_secs(1));
/// assert_eq!(sim.now().as_secs_f64(), 1.0);
/// ```
pub struct Sim {
    now: SimTime,
    queue: BinaryHeap<Reverse<Queued>>,
    seq: u64,
    nodes: Vec<Node>,
    links: Vec<Link>,
    addr_map: HashMap<Addr, NodeId>,
    rng: SmallRng,
    /// Active partitions: traffic hopping from one side to the other is
    /// dropped (installed by [`Fault::Partition`]).
    partitions: Vec<(Vec<NodeId>, Vec<NodeId>)>,
    /// In-progress link flaps.
    flaps: Vec<FlapState>,
    /// Packet accounting.
    pub stats: SimStats,
}

impl core::fmt::Debug for Sim {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl Sim {
    /// Creates an empty simulation with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            nodes: Vec::new(),
            links: Vec::new(),
            addr_map: HashMap::new(),
            rng: SmallRng::seed_from_u64(seed),
            partitions: Vec::new(),
            flaps: Vec::new(),
            stats: SimStats::default(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Adds a node with a unique address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is already assigned.
    pub fn add_node(&mut self, name: impl Into<String>, addr: Addr) -> NodeId {
        assert!(
            !self.addr_map.contains_key(&addr),
            "address {addr} already assigned"
        );
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::new(name, addr));
        self.addr_map.insert(addr, id);
        id
    }

    /// Adds a bidirectional link between two nodes.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, config: LinkConfig) -> LinkId {
        let id = LinkId(self.links.len());
        self.links.push(Link::new(a, b, config));
        self.nodes[a.0].links.push(id);
        self.nodes[b.0].links.push(id);
        id
    }

    /// Computes shortest-path (hop count) routes for every node via BFS.
    /// Call after the topology is complete and before running.
    pub fn compute_routes(&mut self) {
        let n = self.nodes.len();
        for start in 0..n {
            let mut first_link: Vec<Option<LinkId>> = vec![None; n];
            let mut visited = vec![false; n];
            let mut q = VecDeque::new();
            visited[start] = true;
            q.push_back(start);
            while let Some(u) = q.pop_front() {
                let links = self.nodes[u].links.clone();
                for lid in links {
                    let link = &self.links[lid.0];
                    let Some(v) = link.other_end(NodeId(u)) else { continue };
                    if visited[v.0] {
                        continue;
                    }
                    visited[v.0] = true;
                    // The first hop out of `start` toward v.
                    first_link[v.0] = if u == start { Some(lid) } else { first_link[u] };
                    q.push_back(v.0);
                }
            }
            let routes: HashMap<Addr, LinkId> = (0..n)
                .filter(|&v| v != start)
                .filter_map(|v| first_link[v].map(|l| (self.nodes[v].addr, l)))
                .collect();
            self.nodes[start].routes = routes;
        }
    }

    /// Installs an application on a node; its `on_start` runs at the
    /// current simulation time (when the event loop next runs).
    pub fn install_app(&mut self, node: NodeId, app: Box<dyn App>) -> AppId {
        let id = AppId(self.nodes[node.0].apps.len());
        self.nodes[node.0].apps.push(Some(app));
        self.schedule(SimDuration::ZERO, Event::Start { node, app: id });
        id
    }

    /// Attaches a middlebox to a node's forwarding path.
    pub fn set_middlebox(&mut self, node: NodeId, mb: Box<dyn Middlebox>) {
        self.nodes[node.0].middlebox = Some(mb);
    }

    /// Installs (or replaces) a packet tunnel on a node.
    pub fn set_tunnel(&mut self, node: NodeId, tunnel: Box<dyn PacketTunnel>) {
        self.nodes[node.0].tunnel = Some(tunnel);
    }

    /// Removes a node's packet tunnel.
    pub fn clear_tunnel(&mut self, node: NodeId) {
        self.nodes[node.0].tunnel = None;
    }

    /// The node id owning `addr`.
    pub fn node_by_addr(&self, addr: Addr) -> Option<NodeId> {
        self.addr_map.get(&addr).copied()
    }

    /// The address of `node`.
    pub fn addr_of(&self, node: NodeId) -> Addr {
        self.nodes[node.0].addr
    }

    /// Immutable access to a node (diagnostics/tests).
    pub fn node(&self, node: NodeId) -> &Node {
        &self.nodes[node.0]
    }

    /// Installs a timed fault plan: each entry fires as an ordinary
    /// queue event at its declared sim time (entries already in the past
    /// fire immediately). May be called repeatedly; plans accumulate.
    ///
    /// Determinism contract: faults are applied at queue positions fixed
    /// by `(time, seq)`, and any randomized fault behaviour (flap
    /// intervals) draws from the simulation RNG — so two runs with the
    /// same seed and the same plan are byte-identical, traces included.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        for (at, fault) in plan.entries {
            let delay = at.saturating_since(self.now);
            self.schedule(delay, Event::Fault(fault));
        }
    }

    /// Whether a link is administratively up (fault-injection state).
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.links[link.0].up
    }

    /// Whether a node is live (fault-injection state).
    pub fn node_is_up(&self, node: NodeId) -> bool {
        self.nodes[node.0].up
    }

    /// Schedules an administrative power transition for `node` after
    /// `delay` — the deterministic spawn/retire primitive the elastic
    /// remote tier is built on. Powering down clears pending app events
    /// (like a crash); powering up restores delivery. The transition
    /// fires at a fixed `(time, seq)` queue position, so same-seed runs
    /// flip power identically. Unlike installing a `Fault::NodeCrash`
    /// plan, scheduling can happen mid-run from app code via
    /// [`Ctx::node_power`].
    pub fn schedule_lifecycle(&mut self, node: NodeId, up: bool, delay: SimDuration) {
        self.schedule(delay, Event::Lifecycle { node, up });
    }

    fn schedule(&mut self, delay: SimDuration, ev: Event) {
        let at = self.now + delay;
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Queued { at, seq, ev }));
        let depth = self.queue.len() as u64;
        if depth > self.stats.queue_depth_hwm {
            self.stats.queue_depth_hwm = depth;
        }
    }

    /// Runs until the queue is exhausted or `deadline` is reached.
    ///
    /// Each time the clock advances, [`sc_obs::tick`] is driven so the
    /// observability layer can close time-series windows and evaluate
    /// SLOs *during* the run (alert events carry the sim time at which
    /// the offending window closed, not the end of the run).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(q)) = self.queue.peek() {
            if q.at > deadline {
                break;
            }
            let Reverse(q) = self.queue.pop().unwrap();
            if q.at > self.now {
                sc_obs::tick(q.at.as_micros());
            }
            self.now = q.at;
            self.handle(q.ev);
        }
        if self.now < deadline {
            self.now = deadline;
            sc_obs::tick(deadline.as_micros());
        }
    }

    /// Runs for `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Runs until no events remain (beware apps that re-arm timers forever).
    pub fn run_until_idle(&mut self) {
        while let Some(Reverse(q)) = self.queue.pop() {
            if q.at > self.now {
                sc_obs::tick(q.at.as_micros());
            }
            self.now = q.at;
            self.handle(q.ev);
        }
    }

    fn handle(&mut self, ev: Event) {
        self.stats.events_processed += 1;
        // Wall-clock attribution only; nothing below reads the guard.
        let _prof = prof::scope(Subsystem::EventLoop);
        // A crashed node neither receives nor forwards; its timers are
        // swallowed while down (transport state goes stale on purpose).
        match &ev {
            Event::Arrival { node, packet } if !self.nodes[node.0].up => {
                self.stats
                    .record_drop(packet.src, packet.dst, DropReason::NodeDown);
                self.trace_drop(packet, "node_down");
                return;
            }
            Event::TcpTimer { node, .. }
            | Event::AppTimer { node, .. }
            | Event::Start { node, .. }
                if !self.nodes[node.0].up =>
            {
                return;
            }
            _ => {}
        }
        match ev {
            Event::Start { node, app } => {
                if let Some(mut a) = self.nodes[node.0].apps[app.0].take() {
                    let mut ctx = Ctx { sim: self, node, app };
                    a.on_start(&mut ctx);
                    self.nodes[node.0].apps[app.0] = Some(a);
                }
                self.drain_pending(node);
            }
            Event::AppTimer { node, app, token } => {
                self.stats.timers_fired += 1;
                self.nodes[node.0]
                    .pending
                    .push_back((app, AppEvent::TimerFired(token)));
                self.drain_pending(node);
            }
            Event::TcpTimer { node, timer } => {
                self.stats.timers_fired += 1;
                let mut fx = Effects::default();
                let now = self.now;
                {
                    let _prof = prof::scope(Subsystem::Tcp);
                    self.nodes[node.0].tcp.on_timer(timer, now, &mut fx);
                }
                self.flush(node, fx);
                self.drain_pending(node);
            }
            Event::Arrival { node, packet } => {
                self.on_arrival(node, packet);
                self.drain_pending(node);
            }
            Event::Fault(fault) => self.apply_fault(fault),
            Event::FlapToggle { flap } => self.flap_toggle(flap),
            Event::Lifecycle { node, up } => self.apply_lifecycle(node, up),
        }
    }

    /// Applies a planned power transition. Semantics match crash/restart
    /// (transport state survives, pending app events are dropped on the
    /// way down) but the trace records it as a lifecycle action, not a
    /// fault — analyzers must not count elastic scale-in as an outage.
    fn apply_lifecycle(&mut self, node: NodeId, up: bool) {
        self.nodes[node.0].up = up;
        if !up {
            self.nodes[node.0].pending.clear();
        }
        sc_obs::counter_add("simnet.lifecycle_transitions", 1);
        if sc_obs::is_enabled(sc_obs::Level::Info, "simnet") {
            sc_obs::emit(
                sc_obs::Event::new(
                    self.now.as_micros(),
                    sc_obs::Level::Info,
                    "simnet",
                    "lifecycle",
                    if up { "power_up" } else { "power_down" },
                )
                .field("node", self.nodes[node.0].name.clone()),
            );
        }
    }

    fn apply_fault(&mut self, mut fault: Fault) {
        let name = fault.name();
        let detail = match &mut fault {
            Fault::LinkDown(l) => {
                self.links[l.0].up = false;
                format!("link={}", l.0)
            }
            Fault::LinkUp(l) => {
                self.links[l.0].up = true;
                format!("link={}", l.0)
            }
            Fault::LinkLoss(l, loss) => {
                assert!((0.0..=1.0).contains(loss), "loss must be in [0,1]");
                self.links[l.0].config.loss = *loss;
                format!("link={} loss={loss}", l.0)
            }
            Fault::LinkDelay(l, delay) => {
                self.links[l.0].config.delay = *delay;
                format!("link={} delay_us={}", l.0, delay.as_micros())
            }
            Fault::LinkFlap { link, mean_down, mean_up, until } => {
                let idx = self.flaps.len();
                self.flaps.push(FlapState {
                    link: *link,
                    mean_down: *mean_down,
                    mean_up: *mean_up,
                    until: *until,
                    down: true,
                });
                self.links[link.0].up = false;
                let first = jittered(*mean_down, self.rng.gen::<f64>());
                self.schedule(first, Event::FlapToggle { flap: idx });
                format!("link={} until_us={}", link.0, until.as_micros())
            }
            Fault::Partition { left, right } => {
                let detail = format!("left={} right={}", left.len(), right.len());
                self.partitions
                    .push((std::mem::take(left), std::mem::take(right)));
                detail
            }
            Fault::HealPartitions => {
                let n = self.partitions.len();
                self.partitions.clear();
                format!("healed={n}")
            }
            Fault::NodeCrash(n) => {
                self.nodes[n.0].up = false;
                self.nodes[n.0].pending.clear();
                format!("node={}", self.nodes[n.0].name)
            }
            Fault::NodeRestart(n) => {
                self.nodes[n.0].up = true;
                format!("node={}", self.nodes[n.0].name)
            }
            Fault::Callback { apply, .. } => {
                apply(self.now);
                String::new()
            }
            Fault::FlashCrowd { clients, ramp, trigger } => {
                trigger(self.now);
                format!("clients={clients} ramp_us={}", ramp.as_micros())
            }
        };
        sc_obs::counter_add("simnet.faults_applied", 1);
        sc_obs::ts_bump(self.now.as_micros(), "simnet.faults", 1);
        if sc_obs::is_enabled(sc_obs::Level::Info, "simnet") {
            sc_obs::emit(
                sc_obs::Event::new(
                    self.now.as_micros(),
                    sc_obs::Level::Info,
                    "simnet",
                    "fault",
                    name,
                )
                .field("detail", detail),
            );
        }
    }

    fn flap_toggle(&mut self, flap: usize) {
        let (link, until, down) = {
            let st = &self.flaps[flap];
            (st.link, st.until, st.down)
        };
        if self.now >= until {
            // Flap window over: leave the link up.
            self.links[link.0].up = true;
            self.flaps[flap].down = false;
            return;
        }
        let now_down = !down;
        self.flaps[flap].down = now_down;
        self.links[link.0].up = !now_down;
        let mean = if now_down { self.flaps[flap].mean_down } else { self.flaps[flap].mean_up };
        let next = jittered(mean, self.rng.gen::<f64>());
        self.schedule(next, Event::FlapToggle { flap });
    }

    /// Whether `a` and `b` are on opposite sides of any active partition.
    fn partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitions.iter().any(|(l, r)| {
            (l.contains(&a) && r.contains(&b)) || (l.contains(&b) && r.contains(&a))
        })
    }

    fn on_arrival(&mut self, node: NodeId, mut packet: Packet) {
        let local_addr = self.nodes[node.0].addr;
        let transit = packet.dst != local_addr;

        // Middlebox inspection of transit traffic.
        if transit && self.nodes[node.0].middlebox.is_some() {
            let mut mb = self.nodes[node.0].middlebox.take().expect("checked");
            let mut mctx = MbCtx { now: self.now, rng: &mut self.rng, inject: Vec::new() };
            let verdict = {
                let _prof = prof::scope(Subsystem::GfwClassify);
                mb.process(&packet, &mut mctx)
            };
            let injected = std::mem::take(&mut mctx.inject);
            self.nodes[node.0].middlebox = Some(mb);
            for p in injected {
                self.send_from(node, p, false);
            }
            if let Verdict::Drop(label) = verdict {
                self.stats
                    .record_drop(packet.src, packet.dst, DropReason::Censor(label));
                sc_obs::counter_add("simnet.censor_drops", 1);
                sc_obs::ts_bump(self.now.as_micros(), "simnet.censor_drops", 1);
                if sc_obs::is_enabled(sc_obs::Level::Info, "simnet") {
                    sc_obs::emit(
                        sc_obs::Event::new(
                            self.now.as_micros(),
                            sc_obs::Level::Info,
                            "simnet",
                            "packet",
                            "censor_drop",
                        )
                        .field("rule", label)
                        .field("src", packet.src.to_string())
                        .field("dst", packet.dst.to_string()),
                    );
                }
                return;
            }
        }

        if !transit {
            // Loopback traffic (browser ↔ local proxy on one machine)
            // never touches a wire; keep it out of the traffic stats.
            if packet.src != packet.dst {
                self.stats.record_delivered(local_addr, packet.wire_len());
                sc_obs::counter_add("simnet.packets_delivered", 1);
            }
            self.deliver_local(node, packet);
            return;
        }

        // Forward.
        if packet.ttl <= 1 {
            self.stats
                .record_drop(packet.src, packet.dst, DropReason::TtlExpired);
            return;
        }
        packet.ttl -= 1;
        self.route_out(node, packet);
    }

    fn deliver_local(&mut self, node: NodeId, packet: Packet) {
        let src = packet.src;
        let dst = packet.dst;
        // Port taps (NAT): intercept before transport demux.
        if let Some(dst_port) = packet.dst_socket().map(|s| s.port) {
            let tap = self.nodes[node.0]
                .port_taps
                .iter()
                .find(|(lo, hi, _)| (*lo..=*hi).contains(&dst_port))
                .map(|(_, _, app)| *app);
            if let Some(app) = tap {
                self.nodes[node.0]
                    .pending
                    .push_back((app, AppEvent::RawPacket(packet)));
                return;
            }
        }
        match packet.l4 {
            L4::Tcp(seg) => {
                let mut fx = Effects::default();
                let now = self.now;
                {
                    let _prof = prof::scope(Subsystem::Tcp);
                    self.nodes[node.0].tcp.on_segment(src, dst, seg, now, &mut fx);
                }
                self.flush(node, fx);
            }
            L4::Udp(dgram) => {
                let app = self.nodes[node.0].udp.lookup(dgram.dst_port);
                if let Some(app) = app {
                    let ev = AppEvent::Udp {
                        socket: UdpHandle(dgram.dst_port),
                        from: SocketAddr::new(src, dgram.src_port),
                        payload: dgram.payload,
                    };
                    self.nodes[node.0].pending.push_back((app, ev));
                }
                // Unbound ports silently drop (no ICMP in this simulation).
            }
            L4::Raw { protocol, payload } => {
                let app = self.nodes[node.0].raw_handlers.get(&protocol).copied();
                if let Some(app) = app {
                    let pkt = Packet { src, dst, ttl: 0, l4: L4::Raw { protocol, payload } };
                    self.nodes[node.0]
                        .pending
                        .push_back((app, AppEvent::RawPacket(pkt)));
                }
            }
        }
    }

    /// Sends a packet originating at `node` (applying the node's tunnel
    /// unless `bypass_tunnel`).
    fn send_from(&mut self, node: NodeId, packet: Packet, bypass_tunnel: bool) {
        let packets = if !bypass_tunnel && self.nodes[node.0].tunnel.is_some() {
            let mut tun = self.nodes[node.0].tunnel.take().expect("checked");
            let out = tun.wrap(packet, self.now);
            self.nodes[node.0].tunnel = Some(tun);
            out
        } else {
            vec![packet]
        };
        for pkt in packets {
            if pkt.dst == self.nodes[node.0].addr {
                // Loopback: deliver after a negligible delay.
                self.schedule(SimDuration::from_micros(10), Event::Arrival { node, packet: pkt });
                continue;
            }
            self.route_out(node, pkt);
        }
    }

    fn route_out(&mut self, node: NodeId, packet: Packet) {
        let Some(&lid) = self.nodes[node.0].routes.get(&packet.dst) else {
            self.stats
                .record_drop(packet.src, packet.dst, DropReason::NoRoute);
            self.trace_drop(&packet, "no_route");
            return;
        };
        let wire_len = packet.wire_len();
        // Origination accounting: "sent" counts once per packet (at the
        // node owning the source address), so loss rates are end-to-end
        // rather than per-hop.
        if self.nodes[node.0].addr == packet.src {
            self.stats.record_sent(packet.src, wire_len);
            sc_obs::counter_add("simnet.packets_sent", 1);
            sc_obs::counter_add("simnet.bytes_sent", wire_len as u64);
        }
        let link = &mut self.links[lid.0];
        let dest_node = link.other_end(NodeId(node.0)).expect("link endpoint");
        // Injected faults, checked before the loss draw so a blackholed
        // link or a partition never consumes RNG state.
        if !link.up {
            self.stats
                .record_drop(packet.src, packet.dst, DropReason::LinkDown);
            self.trace_drop(&packet, "link_down");
            return;
        }
        if !self.partitions.is_empty() && self.partitioned(NodeId(node.0), dest_node) {
            self.stats
                .record_drop(packet.src, packet.dst, DropReason::Partitioned);
            self.trace_drop(&packet, "partitioned");
            return;
        }
        let link = &mut self.links[lid.0];
        // Background loss.
        if link.config.loss > 0.0 && self.rng.gen::<f64>() < link.config.loss {
            self.stats
                .record_drop(packet.src, packet.dst, DropReason::LinkLoss);
            self.trace_drop(&packet, "link_loss");
            return;
        }
        match link.transmit(NodeId(node.0), wire_len, self.now) {
            LinkOutcome::QueueDrop => {
                self.stats
                    .record_drop(packet.src, packet.dst, DropReason::QueueOverflow);
                self.trace_drop(&packet, "queue_overflow");
            }
            LinkOutcome::Deliver(at) => {
                let delay = at - self.now;
                // Serialization backlog ahead of this packet = queueing
                // delay beyond pure propagation; exported as a depth
                // histogram so congested links stand out in reports.
                let queued_us = delay
                    .as_micros()
                    .saturating_sub(link.config.delay.as_micros());
                sc_obs::observe("simnet.link_queue_us", queued_us);
                self.schedule(delay, Event::Arrival { node: dest_node, packet });
            }
        }
    }

    /// Emits a non-censor drop event (censor drops carry the rule label
    /// and are emitted at their verdict site instead).
    fn trace_drop(&self, packet: &Packet, reason: &'static str) {
        sc_obs::counter_add("simnet.packets_dropped", 1);
        if sc_obs::is_enabled(sc_obs::Level::Debug, "simnet") {
            sc_obs::emit(
                sc_obs::Event::new(
                    self.now.as_micros(),
                    sc_obs::Level::Debug,
                    "simnet",
                    "packet",
                    "drop",
                )
                .field("reason", reason)
                .field("src", packet.src.to_string())
                .field("dst", packet.dst.to_string()),
            );
        }
    }

    fn flush(&mut self, node: NodeId, fx: Effects) {
        for pkt in fx.out {
            self.send_from(node, pkt, false);
        }
        for (delay, timer) in fx.timers {
            self.schedule(delay, Event::TcpTimer { node, timer });
        }
        for (app, ev) in fx.app_events {
            self.nodes[node.0].pending.push_back((app, ev));
        }
    }

    fn drain_pending(&mut self, node: NodeId) {
        loop {
            let Some((app, ev)) = self.nodes[node.0].pending.pop_front() else {
                break;
            };
            let Some(mut a) = self.nodes[node.0].apps.get_mut(app.0).and_then(Option::take) else {
                // App slot missing (shouldn't happen at top level) — drop.
                continue;
            };
            let mut ctx = Ctx { sim: self, node, app };
            a.on_event(ev, &mut ctx);
            self.nodes[node.0].apps[app.0] = Some(a);
        }
    }
}

/// A duration uniformly jittered to `[0.5, 1.5) × mean`, from a single
/// RNG draw in `[0, 1)` (used for flap intervals).
fn jittered(mean: SimDuration, draw: f64) -> SimDuration {
    SimDuration::from_secs_f64(mean.as_secs_f64() * (0.5 + draw))
}

/// The API surface an [`App`] uses to interact with the network.
pub struct Ctx<'a> {
    sim: &'a mut Sim,
    /// The node this app runs on.
    pub node: NodeId,
    /// This app's id.
    pub app: AppId,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now
    }

    /// This node's address.
    pub fn addr(&self) -> Addr {
        self.sim.nodes[self.node.0].addr
    }

    /// Deterministic RNG shared by the simulation.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.sim.rng
    }

    /// Schedules [`AppEvent::TimerFired`] with `token` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let node = self.node;
        let app = self.app;
        self.sim.schedule(delay, Event::AppTimer { node, app, token });
    }

    /// Opens a TCP connection to `remote`.
    pub fn tcp_connect(&mut self, remote: SocketAddr) -> TcpHandle {
        let mut fx = Effects::default();
        let local = self.addr();
        let h = self.sim.nodes[self.node.0]
            .tcp
            .connect(self.app, local, remote, &mut fx);
        self.sim.flush(self.node, fx);
        h
    }

    /// Listens for TCP connections on `port`. Returns `false` if taken.
    pub fn tcp_listen(&mut self, port: u16) -> bool {
        self.sim.nodes[self.node.0].tcp.listen(port, self.app)
    }

    /// Sends bytes on a connection. Returns bytes accepted, or `None` if
    /// the connection cannot send.
    pub fn tcp_send(&mut self, h: TcpHandle, data: &[u8]) -> Option<usize> {
        let mut fx = Effects::default();
        let now = self.sim.now;
        let r = self.sim.nodes[self.node.0].tcp.send(h, data, now, &mut fx);
        self.sim.flush(self.node, fx);
        r
    }

    /// Drains up to `max` received bytes.
    pub fn tcp_recv(&mut self, h: TcpHandle, max: usize) -> Bytes {
        self.sim.nodes[self.node.0].tcp.recv(h, max)
    }

    /// Drains everything currently buffered.
    pub fn tcp_recv_all(&mut self, h: TcpHandle) -> Bytes {
        self.tcp_recv(h, usize::MAX)
    }

    /// Bytes available to read.
    pub fn tcp_available(&self, h: TcpHandle) -> usize {
        self.sim.nodes[self.node.0].tcp.recv_available(h)
    }

    /// Begins a graceful close.
    pub fn tcp_close(&mut self, h: TcpHandle) {
        let mut fx = Effects::default();
        let now = self.sim.now;
        self.sim.nodes[self.node.0].tcp.close(h, now, &mut fx);
        self.sim.flush(self.node, fx);
    }

    /// Aborts with RST.
    pub fn tcp_abort(&mut self, h: TcpHandle) {
        let mut fx = Effects::default();
        self.sim.nodes[self.node.0].tcp.abort(h, &mut fx);
        self.sim.flush(self.node, fx);
    }

    /// The peer address of a connection.
    pub fn tcp_peer(&self, h: TcpHandle) -> Option<SocketAddr> {
        self.sim.nodes[self.node.0].tcp.peer(h)
    }

    /// The local address of a connection.
    pub fn tcp_local(&self, h: TcpHandle) -> Option<SocketAddr> {
        self.sim.nodes[self.node.0].tcp.local(h)
    }

    /// Connection statistics.
    pub fn tcp_stats(&self, h: TcpHandle) -> Option<ConnStats> {
        self.sim.nodes[self.node.0].tcp.stats(h)
    }

    /// Binds a UDP port (0 = ephemeral). Returns `None` if taken.
    pub fn udp_bind(&mut self, port: u16) -> Option<UdpHandle> {
        self.sim.nodes[self.node.0]
            .udp
            .bind(port, self.app)
            .map(UdpHandle)
    }

    /// Sends a UDP datagram from a bound socket.
    pub fn udp_send(&mut self, socket: UdpHandle, to: SocketAddr, payload: Bytes) {
        let from = SocketAddr::new(self.addr(), socket.0);
        let pkt = Packet::udp(from, to, payload);
        self.sim.send_from(self.node, pkt, false);
    }

    /// Registers this app to receive all packets whose destination port is
    /// in `[lo, hi]`, bypassing the transport stack (NAT port ranges).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn register_port_tap(&mut self, lo: u16, hi: u16) {
        assert!(lo <= hi, "invalid port range");
        let app = self.app;
        self.sim.nodes[self.node.0].port_taps.push((lo, hi, app));
    }

    /// Registers this app as the handler for a raw IP protocol number.
    pub fn register_raw(&mut self, protocol: u8) {
        self.sim.nodes[self.node.0]
            .raw_handlers
            .insert(protocol, self.app);
    }

    /// Sends a raw-protocol packet.
    pub fn raw_send(&mut self, dst: Addr, protocol: u8, payload: Bytes) {
        let src = self.addr();
        let pkt = Packet::raw(src, dst, protocol, payload);
        self.sim.send_from(self.node, pkt, false);
    }

    /// Injects an arbitrary packet from this node (router/NAT behaviour:
    /// the source address need not be the node's own).
    pub fn send_packet(&mut self, pkt: Packet) {
        self.sim.send_from(self.node, pkt, false);
    }

    /// Injects a packet bypassing the node's tunnel (used by tunnel control
    /// planes that must not capture their own handshake).
    pub fn send_packet_untunneled(&mut self, pkt: Packet) {
        self.sim.send_from(self.node, pkt, true);
    }

    /// Installs a packet tunnel on this node.
    pub fn install_tunnel(&mut self, tunnel: Box<dyn PacketTunnel>) {
        self.sim.set_tunnel(self.node, tunnel);
    }

    /// Removes this node's packet tunnel.
    pub fn remove_tunnel(&mut self) {
        self.sim.clear_tunnel(self.node);
    }

    /// Approximate bytes of transport state on this node (memory model).
    pub fn transport_state_bytes(&self) -> usize {
        self.sim.nodes[self.node.0].tcp.state_bytes()
    }

    /// Requests a power transition for the node owning `addr` (elastic
    /// control plane: an autoscaler app spins sibling instances up and
    /// down). The transition is scheduled as an ordinary queue event at
    /// the current time — it takes effect after the in-flight event
    /// completes, at a deterministic `(time, seq)` position. Returns
    /// `false` if no node owns `addr`.
    pub fn node_power(&mut self, addr: Addr, up: bool) -> bool {
        let Some(node) = self.sim.node_by_addr(addr) else { return false };
        self.sim.schedule_lifecycle(node, up, SimDuration::ZERO);
        true
    }

    /// Whether the node owning `addr` is currently powered (lifecycle /
    /// fault state). Unknown addresses read as down.
    pub fn node_is_up(&self, addr: Addr) -> bool {
        self.sim
            .node_by_addr(addr)
            .map_or(false, |n| self.sim.nodes[n.0].up)
    }
}
