//! Network addressing: IPv4-style 32-bit addresses and socket addresses.

use core::fmt;

/// A 32-bit network address, printed in dotted-quad form.
///
/// The simulation assigns one address per node. Prefix helpers let the GFW
/// and routing policies reason about "regions" (e.g. `10.x.x.x` = domestic,
/// `99.x.x.x` = foreign) the way real deployments reason about ASes.
///
/// # Examples
///
/// ```
/// use sc_simnet::addr::Addr;
///
/// let a = Addr::new(10, 0, 0, 1);
/// assert_eq!(a.to_string(), "10.0.0.1");
/// assert_eq!(a.octets()[0], 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u32);

impl Addr {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Addr = Addr(0);

    /// Creates an address from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Addr(u32::from_be_bytes([a, b, c, d]))
    }

    /// Creates an address from a raw 32-bit value.
    pub const fn from_u32(v: u32) -> Self {
        Addr(v)
    }

    /// The raw 32-bit value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The four octets.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Whether this address falls inside `prefix`/`prefix_len`.
    pub fn in_prefix(self, prefix: Addr, prefix_len: u8) -> bool {
        if prefix_len == 0 {
            return true;
        }
        let shift = 32 - prefix_len as u32;
        (self.0 >> shift) == (prefix.0 >> shift)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// An address/port pair.
///
/// # Examples
///
/// ```
/// use sc_simnet::addr::{Addr, SocketAddr};
///
/// let s = SocketAddr::new(Addr::new(99, 0, 0, 2), 443);
/// assert_eq!(s.to_string(), "99.0.0.2:443");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SocketAddr {
    /// Network address.
    pub addr: Addr,
    /// Transport port.
    pub port: u16,
}

impl SocketAddr {
    /// Creates a socket address.
    pub const fn new(addr: Addr, port: u16) -> Self {
        SocketAddr { addr, port }
    }
}

impl fmt::Display for SocketAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octet_roundtrip() {
        let a = Addr::new(192, 168, 1, 77);
        assert_eq!(a.octets(), [192, 168, 1, 77]);
        assert_eq!(Addr::from_u32(a.as_u32()), a);
    }

    #[test]
    fn prefix_matching() {
        let domestic = Addr::new(10, 0, 0, 0);
        assert!(Addr::new(10, 5, 6, 7).in_prefix(domestic, 8));
        assert!(!Addr::new(99, 5, 6, 7).in_prefix(domestic, 8));
        // Zero-length prefix matches everything.
        assert!(Addr::new(1, 2, 3, 4).in_prefix(Addr::UNSPECIFIED, 0));
        // Full-length prefix is exact match.
        assert!(Addr::new(10, 0, 0, 1).in_prefix(Addr::new(10, 0, 0, 1), 32));
        assert!(!Addr::new(10, 0, 0, 2).in_prefix(Addr::new(10, 0, 0, 1), 32));
    }

    #[test]
    fn display() {
        assert_eq!(Addr::new(8, 8, 8, 8).to_string(), "8.8.8.8");
        assert_eq!(
            SocketAddr::new(Addr::new(10, 0, 0, 1), 8080).to_string(),
            "10.0.0.1:8080"
        );
    }
}
