//! Property-based tests on the protocol codecs.

use proptest::prelude::*;
use sc_netproto::http::{HttpMessage, HttpParser, HttpRequest, HttpResponse};
use sc_netproto::pac::PacFile;
use sc_netproto::socks::TargetAddr;
use sc_netproto::tls::{TlsClient, TlsServer};
use sc_simnet::addr::{Addr, SocketAddr};

fn domain_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,10}(\\.[a-z][a-z0-9]{1,8}){1,3}"
}

proptest! {
    /// HTTP responses round-trip through the parser under any fragmentation.
    #[test]
    fn http_response_roundtrip(status in 200u16..599, body in prop::collection::vec(any::<u8>(), 0..4000),
                               frag in 1usize..193) {
        let resp = HttpResponse::new(status, body.clone());
        let wire = resp.encode();
        let mut parser = HttpParser::new();
        let mut msgs = Vec::new();
        for chunk in wire.chunks(frag) {
            msgs.extend(parser.push(chunk).unwrap());
        }
        prop_assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            HttpMessage::Response(r) => {
                prop_assert_eq!(r.status, status);
                prop_assert_eq!(&r.body, &body);
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Pipelined requests parse in order.
    #[test]
    fn http_pipelining(paths in prop::collection::vec("[a-z0-9/]{1,20}", 1..6)) {
        let mut wire = Vec::new();
        for p in &paths {
            wire.extend(HttpRequest::get("h.example", &format!("/{p}")).encode());
        }
        let mut parser = HttpParser::new();
        let msgs = parser.push(&wire).unwrap();
        prop_assert_eq!(msgs.len(), paths.len());
    }

    /// SOCKS target addresses round-trip.
    #[test]
    fn socks_target_roundtrip(a: u32, port: u16, domain in domain_strategy(), is_ip: bool) {
        let target = if is_ip {
            TargetAddr::Ip(Addr::from_u32(a), port)
        } else {
            TargetAddr::Domain(domain, port)
        };
        let enc = target.encode();
        let (dec, used) = TargetAddr::decode(&enc).unwrap();
        prop_assert_eq!(used, enc.len());
        prop_assert_eq!(dec, target);
    }

    /// PAC generate → parse is the identity, and decisions agree.
    #[test]
    fn pac_roundtrip(domains in prop::collection::vec(domain_strategy(), 1..8),
                     addr: u32, port: u16, probe in domain_strategy()) {
        let proxy = SocketAddr::new(Addr::from_u32(addr), port);
        let pac = PacFile::new(domains, proxy);
        let parsed = PacFile::parse(&pac.to_javascript()).unwrap();
        prop_assert_eq!(&parsed, &pac);
        prop_assert_eq!(parsed.decide(&probe), pac.decide(&probe));
    }

    /// TLS carries arbitrary application data faithfully in both
    /// directions under arbitrary record sizes.
    #[test]
    fn tls_bidirectional_transport(c2s in prop::collection::vec(any::<u8>(), 1..2000),
                                   s2c in prop::collection::vec(any::<u8>(), 1..2000),
                                   entropy: u64) {
        let mut client = TlsClient::new("host.example", entropy);
        let mut server = TlsServer::new(entropy ^ 1);
        let ch = client.start_handshake();
        let s1 = server.on_bytes(&ch).unwrap();
        let c1 = client.on_bytes(&s1.wire).unwrap();
        let s2 = server.on_bytes(&c1.wire).unwrap();
        let _ = client.on_bytes(&s2.wire).unwrap();

        let wire = client.send(&c2s);
        let got = server.on_bytes(&wire).unwrap();
        prop_assert_eq!(got.plaintext, c2s);
        let wire = server.send(&s2c);
        let got = client.on_bytes(&wire).unwrap();
        prop_assert_eq!(got.plaintext, s2c);
    }
}
