//! SOCKS5 (RFC 1928) with username/password authentication (RFC 1929) —
//! the protocol spoken between a browser and the Shadowsocks local proxy,
//! and (in Shadowsocks' wire format) the address header sent to the remote.

use sc_simnet::addr::Addr;

/// SOCKS protocol version byte.
pub const SOCKS_VERSION: u8 = 5;

/// Authentication methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthMethod {
    /// No authentication.
    None,
    /// Username/password (RFC 1929).
    UserPass,
}

impl AuthMethod {
    fn to_byte(self) -> u8 {
        match self {
            AuthMethod::None => 0x00,
            AuthMethod::UserPass => 0x02,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0x00 => Some(AuthMethod::None),
            0x02 => Some(AuthMethod::UserPass),
            _ => None,
        }
    }
}

/// A connect target: domain name or literal address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetAddr {
    /// A domain to be resolved by the proxy.
    Domain(String, u16),
    /// A literal address.
    Ip(Addr, u16),
}

impl TargetAddr {
    /// The port.
    pub fn port(&self) -> u16 {
        match self {
            TargetAddr::Domain(_, p) | TargetAddr::Ip(_, p) => *p,
        }
    }

    /// Encodes in SOCKS5 address format (ATYP + addr + port) — also the
    /// header format Shadowsocks prepends to each proxied stream.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            TargetAddr::Ip(a, p) => {
                out.push(0x01);
                out.extend_from_slice(&a.octets());
                out.extend_from_slice(&p.to_be_bytes());
            }
            TargetAddr::Domain(d, p) => {
                out.push(0x03);
                out.push(d.len() as u8);
                out.extend_from_slice(d.as_bytes());
                out.extend_from_slice(&p.to_be_bytes());
            }
        }
        out
    }

    /// Decodes from SOCKS5 address format. Returns the target and the
    /// number of bytes consumed, or `None` if more data is needed or the
    /// ATYP is unsupported.
    pub fn decode(data: &[u8]) -> Option<(TargetAddr, usize)> {
        match *data.first()? {
            0x01 => {
                if data.len() < 7 {
                    return None;
                }
                let addr = Addr::new(data[1], data[2], data[3], data[4]);
                let port = u16::from_be_bytes([data[5], data[6]]);
                Some((TargetAddr::Ip(addr, port), 7))
            }
            0x03 => {
                let len = *data.get(1)? as usize;
                if data.len() < 2 + len + 2 {
                    return None;
                }
                let domain = String::from_utf8_lossy(&data[2..2 + len]).to_string();
                let port = u16::from_be_bytes([data[2 + len], data[3 + len]]);
                Some((TargetAddr::Domain(domain, port), 2 + len + 2))
            }
            _ => None,
        }
    }
}

/// Messages in the SOCKS5 client→server direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientMsg {
    /// Greeting offering auth methods.
    Greeting(Vec<AuthMethod>),
    /// Username/password credentials.
    Auth {
        /// Username.
        username: String,
        /// Password.
        password: String,
    },
    /// CONNECT request.
    Connect(TargetAddr),
}

impl ClientMsg {
    /// Serializes the message.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ClientMsg::Greeting(methods) => {
                let mut out = vec![SOCKS_VERSION, methods.len() as u8];
                out.extend(methods.iter().map(|m| m.to_byte()));
                out
            }
            ClientMsg::Auth { username, password } => {
                let mut out = vec![0x01, username.len() as u8];
                out.extend_from_slice(username.as_bytes());
                out.push(password.len() as u8);
                out.extend_from_slice(password.as_bytes());
                out
            }
            ClientMsg::Connect(target) => {
                let mut out = vec![SOCKS_VERSION, 0x01, 0x00];
                out.extend(target.encode());
                out
            }
        }
    }
}

/// Messages in the SOCKS5 server→client direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerMsg {
    /// Method selection.
    MethodSelected(AuthMethod),
    /// Auth result.
    AuthResult {
        /// True on success.
        ok: bool,
    },
    /// CONNECT reply.
    ConnectReply {
        /// 0 = success; otherwise a SOCKS error code.
        code: u8,
    },
}

impl ServerMsg {
    /// Serializes the message.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ServerMsg::MethodSelected(m) => vec![SOCKS_VERSION, m.to_byte()],
            ServerMsg::AuthResult { ok } => vec![0x01, if *ok { 0 } else { 1 }],
            ServerMsg::ConnectReply { code } => {
                // Bind address is zeroed, as most implementations do.
                vec![SOCKS_VERSION, *code, 0x00, 0x01, 0, 0, 0, 0, 0, 0]
            }
        }
    }
}

/// Server-side SOCKS5 state machine, driven by stream bytes.
#[derive(Debug)]
pub struct SocksServerSession {
    state: SocksState,
    buf: Vec<u8>,
    require_auth: Option<(String, String)>,
    /// Established target once negotiation completes.
    pub target: Option<TargetAddr>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SocksState {
    Greeting,
    Auth,
    Request,
    Ready,
    Failed,
}

/// Output of feeding bytes to the server session.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct SocksOutput {
    /// Bytes to send back to the client.
    pub reply: Vec<u8>,
    /// Set when the CONNECT target has been accepted.
    pub connect: Option<TargetAddr>,
    /// Leftover bytes that belong to the proxied stream (sent by an eager
    /// client after its CONNECT).
    pub leftover: Vec<u8>,
    /// The session failed (bad version, bad credentials…).
    pub failed: bool,
}

impl SocksServerSession {
    /// A session that accepts anonymous clients.
    pub fn new() -> Self {
        SocksServerSession {
            state: SocksState::Greeting,
            buf: Vec::new(),
            require_auth: None,
            target: None,
        }
    }

    /// A session that requires the given username/password.
    pub fn with_auth(username: &str, password: &str) -> Self {
        SocksServerSession {
            state: SocksState::Greeting,
            buf: Vec::new(),
            require_auth: Some((username.to_string(), password.to_string())),
            target: None,
        }
    }

    /// Whether negotiation finished and the stream is proxied.
    pub fn is_ready(&self) -> bool {
        self.state == SocksState::Ready
    }

    /// Feeds client bytes.
    pub fn on_bytes(&mut self, data: &[u8]) -> SocksOutput {
        self.buf.extend_from_slice(data);
        let mut out = SocksOutput::default();
        loop {
            match self.state {
                SocksState::Greeting => {
                    if self.buf.len() < 2 {
                        break;
                    }
                    let nmethods = self.buf[1] as usize;
                    if self.buf.len() < 2 + nmethods {
                        break;
                    }
                    if self.buf[0] != SOCKS_VERSION {
                        self.state = SocksState::Failed;
                        out.failed = true;
                        break;
                    }
                    let methods: Vec<AuthMethod> = self.buf[2..2 + nmethods]
                        .iter()
                        .filter_map(|b| AuthMethod::from_byte(*b))
                        .collect();
                    self.buf.drain(..2 + nmethods);
                    let want = if self.require_auth.is_some() {
                        AuthMethod::UserPass
                    } else {
                        AuthMethod::None
                    };
                    if !methods.contains(&want) {
                        out.reply.extend([SOCKS_VERSION, 0xff]);
                        self.state = SocksState::Failed;
                        out.failed = true;
                        break;
                    }
                    out.reply.extend(ServerMsg::MethodSelected(want).encode());
                    self.state = if self.require_auth.is_some() {
                        SocksState::Auth
                    } else {
                        SocksState::Request
                    };
                }
                SocksState::Auth => {
                    if self.buf.len() < 2 {
                        break;
                    }
                    let ulen = self.buf[1] as usize;
                    if self.buf.len() < 2 + ulen + 1 {
                        break;
                    }
                    let plen = self.buf[2 + ulen] as usize;
                    if self.buf.len() < 2 + ulen + 1 + plen {
                        break;
                    }
                    let username = String::from_utf8_lossy(&self.buf[2..2 + ulen]).to_string();
                    let password =
                        String::from_utf8_lossy(&self.buf[3 + ulen..3 + ulen + plen]).to_string();
                    self.buf.drain(..3 + ulen + plen);
                    let (eu, ep) = self.require_auth.as_ref().expect("auth state implies auth");
                    let ok = *eu == username && *ep == password;
                    out.reply.extend(ServerMsg::AuthResult { ok }.encode());
                    if ok {
                        self.state = SocksState::Request;
                    } else {
                        self.state = SocksState::Failed;
                        out.failed = true;
                        break;
                    }
                }
                SocksState::Request => {
                    if self.buf.len() < 3 {
                        break;
                    }
                    if self.buf[0] != SOCKS_VERSION || self.buf[1] != 0x01 {
                        out.reply.extend(ServerMsg::ConnectReply { code: 7 }.encode());
                        self.state = SocksState::Failed;
                        out.failed = true;
                        break;
                    }
                    let Some((target, consumed)) = TargetAddr::decode(&self.buf[3..]) else { break };
                    self.buf.drain(..3 + consumed);
                    out.reply.extend(ServerMsg::ConnectReply { code: 0 }.encode());
                    self.target = Some(target.clone());
                    out.connect = Some(target);
                    self.state = SocksState::Ready;
                }
                SocksState::Ready => {
                    out.leftover.extend(self.buf.drain(..));
                    break;
                }
                SocksState::Failed => {
                    self.buf.clear();
                    break;
                }
            }
        }
        out
    }
}

impl Default for SocksServerSession {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anonymous_connect_flow() {
        let mut s = SocksServerSession::new();
        let o1 = s.on_bytes(&ClientMsg::Greeting(vec![AuthMethod::None]).encode());
        assert_eq!(o1.reply, vec![5, 0]);
        let target = TargetAddr::Domain("scholar.google.com".into(), 443);
        let o2 = s.on_bytes(&ClientMsg::Connect(target.clone()).encode());
        assert_eq!(o2.connect, Some(target));
        assert!(s.is_ready());
    }

    #[test]
    fn authenticated_flow() {
        let mut s = SocksServerSession::with_auth("user", "hunter2");
        let o1 = s.on_bytes(&ClientMsg::Greeting(vec![AuthMethod::UserPass]).encode());
        assert_eq!(o1.reply, vec![5, 2]);
        let o2 = s.on_bytes(
            &ClientMsg::Auth { username: "user".into(), password: "hunter2".into() }.encode(),
        );
        assert_eq!(o2.reply, vec![1, 0]);
        let o3 = s.on_bytes(&ClientMsg::Connect(TargetAddr::Ip(Addr::new(9, 9, 9, 9), 80)).encode());
        assert!(o3.connect.is_some());
    }

    #[test]
    fn wrong_password_fails() {
        let mut s = SocksServerSession::with_auth("user", "hunter2");
        s.on_bytes(&ClientMsg::Greeting(vec![AuthMethod::UserPass]).encode());
        let o = s.on_bytes(
            &ClientMsg::Auth { username: "user".into(), password: "wrong".into() }.encode(),
        );
        assert!(o.failed);
        assert_eq!(o.reply, vec![1, 1]);
    }

    #[test]
    fn auth_required_but_not_offered() {
        let mut s = SocksServerSession::with_auth("u", "p");
        let o = s.on_bytes(&ClientMsg::Greeting(vec![AuthMethod::None]).encode());
        assert!(o.failed);
        assert_eq!(o.reply, vec![5, 0xff]);
    }

    #[test]
    fn eager_client_data_is_preserved() {
        let mut s = SocksServerSession::new();
        s.on_bytes(&ClientMsg::Greeting(vec![AuthMethod::None]).encode());
        let mut bytes = ClientMsg::Connect(TargetAddr::Domain("h".into(), 80)).encode();
        bytes.extend_from_slice(b"GET / HTTP/1.1\r\n\r\n");
        let o = s.on_bytes(&bytes);
        assert!(o.connect.is_some());
        assert_eq!(o.leftover, b"GET / HTTP/1.1\r\n\r\n");
    }

    #[test]
    fn fragmented_negotiation() {
        let mut s = SocksServerSession::new();
        let mut wire = ClientMsg::Greeting(vec![AuthMethod::None]).encode();
        wire.extend(ClientMsg::Connect(TargetAddr::Domain("example.com".into(), 443)).encode());
        let mut connected = None;
        for b in wire {
            let o = s.on_bytes(&[b]);
            if o.connect.is_some() {
                connected = o.connect;
            }
        }
        assert_eq!(connected, Some(TargetAddr::Domain("example.com".into(), 443)));
    }

    #[test]
    fn target_addr_roundtrip() {
        for t in [
            TargetAddr::Ip(Addr::new(1, 2, 3, 4), 8080),
            TargetAddr::Domain("a.very.long.domain.example".into(), 443),
        ] {
            let enc = t.encode();
            let (dec, used) = TargetAddr::decode(&enc).unwrap();
            assert_eq!(dec, t);
            assert_eq!(used, enc.len());
            assert_eq!(t.port(), dec.port());
        }
        assert!(TargetAddr::decode(&[0x04, 0, 0]).is_none()); // IPv6 unsupported
        assert!(TargetAddr::decode(&[0x01, 1, 2]).is_none()); // truncated
    }
}
