//! HTTP/1.1: message types, serialization, and an incremental stream
//! parser (Content-Length and chunked bodies, keep-alive semantics).

use std::collections::VecDeque;

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Method (GET, POST, CONNECT, …).
    pub method: String,
    /// Request target (path, or authority for CONNECT).
    pub target: String,
    /// Headers in order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Builds a GET request for `path` on `host`.
    pub fn get(host: &str, path: &str) -> Self {
        HttpRequest {
            method: "GET".into(),
            target: path.into(),
            headers: vec![("Host".into(), host.into())],
            body: Vec::new(),
        }
    }

    /// Builds a CONNECT request for `authority` (e.g. `host:443`).
    pub fn connect(authority: &str) -> Self {
        HttpRequest {
            method: "CONNECT".into(),
            target: authority.into(),
            headers: vec![("Host".into(), authority.into())],
            body: Vec::new(),
        }
    }

    /// Adds a header (builder style).
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The value of `name`, case-insensitively.
    pub fn header_value(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The Host header, if present.
    pub fn host(&self) -> Option<&str> {
        self.header_value("Host")
    }

    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(format!("{} {} HTTP/1.1\r\n", self.method, self.target).as_bytes());
        for (n, v) in &self.headers {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        if !self.body.is_empty() && self.header_value("Content-Length").is_none() {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Headers in order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Builds a response with a body.
    pub fn new(status: u16, body: Vec<u8>) -> Self {
        let reason = match status {
            200 => "OK",
            204 => "No Content",
            301 => "Moved Permanently",
            302 => "Found",
            304 => "Not Modified",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            407 => "Proxy Authentication Required",
            429 => "Too Many Requests",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        HttpResponse { status, reason: reason.into(), headers: Vec::new(), body }
    }

    /// Adds a header (builder style).
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The value of `name`, case-insensitively.
    pub fn header_value(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The `max-age` freshness lifetime (seconds) from the
    /// `Cache-Control` header, if one is advertised.
    pub fn max_age_secs(&self) -> Option<u64> {
        let cc = self.header_value("Cache-Control")?;
        for directive in cc.split(',') {
            if let Some(v) = directive.trim().strip_prefix("max-age=") {
                return v.trim().parse().ok();
            }
        }
        None
    }

    /// Serializes to wire bytes (adds Content-Length automatically).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        for (n, v) in &self.headers {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        let is_chunked = self
            .header_value("Transfer-Encoding")
            .is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
        if !is_chunked && self.header_value("Content-Length").is_none() {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        if is_chunked {
            // Emit as a single chunk plus terminator.
            out.extend_from_slice(format!("{:x}\r\n", self.body.len()).as_bytes());
            out.extend_from_slice(&self.body);
            out.extend_from_slice(b"\r\n0\r\n\r\n");
        } else {
            out.extend_from_slice(&self.body);
        }
        out
    }
}

/// A parsed message: request or response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpMessage {
    /// A request.
    Request(HttpRequest),
    /// A response.
    Response(HttpResponse),
}

/// Error from the incremental parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpParseError {
    /// The start line was not recognizable HTTP.
    BadStartLine(String),
    /// A header line was malformed.
    BadHeader(String),
    /// Chunked framing was malformed.
    BadChunk,
    /// Content-Length was not a number.
    BadContentLength,
}

impl core::fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HttpParseError::BadStartLine(l) => write!(f, "bad HTTP start line: {l:?}"),
            HttpParseError::BadHeader(l) => write!(f, "bad HTTP header: {l:?}"),
            HttpParseError::BadChunk => write!(f, "bad chunked encoding"),
            HttpParseError::BadContentLength => write!(f, "bad content-length"),
        }
    }
}

impl std::error::Error for HttpParseError {}

#[derive(Debug)]
enum ParseState {
    Head,
    Body { msg: HttpMessage, remaining: usize },
    Chunked { msg: HttpMessage },
}

/// Incremental HTTP/1.1 parser. Feed arbitrary stream fragments with
/// [`HttpParser::push`]; complete messages come out in order.
///
/// # Examples
///
/// ```
/// use sc_netproto::http::{HttpParser, HttpMessage, HttpRequest};
///
/// let mut p = HttpParser::new();
/// let wire = HttpRequest::get("scholar.google.com", "/").encode();
/// let msgs = p.push(&wire).unwrap();
/// assert!(matches!(&msgs[0], HttpMessage::Request(r) if r.method == "GET"));
/// ```
#[derive(Debug)]
pub struct HttpParser {
    buf: Vec<u8>,
    state: ParseState,
    ready: VecDeque<HttpMessage>,
}

impl Default for HttpParser {
    fn default() -> Self {
        Self::new()
    }
}

impl HttpParser {
    /// Creates an empty parser.
    pub fn new() -> Self {
        HttpParser { buf: Vec::new(), state: ParseState::Head, ready: VecDeque::new() }
    }

    /// Feeds bytes; returns all messages completed by this push.
    ///
    /// # Errors
    ///
    /// Returns a parse error on malformed framing; the parser should be
    /// discarded afterwards.
    pub fn push(&mut self, data: &[u8]) -> Result<Vec<HttpMessage>, HttpParseError> {
        self.buf.extend_from_slice(data);
        loop {
            match &mut self.state {
                ParseState::Head => {
                    let Some(head_end) = find_double_crlf(&self.buf) else { break };
                    let head = self.buf[..head_end].to_vec();
                    self.buf.drain(..head_end + 4);
                    let (msg, body_kind) = parse_head(&head)?;
                    match body_kind {
                        BodyKind::None => self.ready.push_back(msg),
                        BodyKind::Length(0) => self.ready.push_back(msg),
                        BodyKind::Length(n) => {
                            self.state = ParseState::Body { msg, remaining: n };
                        }
                        BodyKind::Chunked => {
                            self.state = ParseState::Chunked { msg };
                        }
                    }
                }
                ParseState::Body { msg, remaining } => {
                    if self.buf.len() < *remaining {
                        break;
                    }
                    let body: Vec<u8> = self.buf.drain(..*remaining).collect();
                    let mut msg = std::mem::replace(msg, HttpMessage::Request(HttpRequest::get("", "/")));
                    match &mut msg {
                        HttpMessage::Request(r) => r.body = body,
                        HttpMessage::Response(r) => r.body = body,
                    }
                    self.ready.push_back(msg);
                    self.state = ParseState::Head;
                }
                ParseState::Chunked { msg } => {
                    // Try to consume all chunks currently buffered.
                    match try_parse_chunked(&self.buf)? {
                        None => break,
                        Some((body, consumed)) => {
                            self.buf.drain(..consumed);
                            let mut msg =
                                std::mem::replace(msg, HttpMessage::Request(HttpRequest::get("", "/")));
                            match &mut msg {
                                HttpMessage::Request(r) => r.body = body,
                                HttpMessage::Response(r) => r.body = body,
                            }
                            self.ready.push_back(msg);
                            self.state = ParseState::Head;
                        }
                    }
                }
            }
        }
        Ok(self.ready.drain(..).collect())
    }
}

enum BodyKind {
    None,
    Length(usize),
    Chunked,
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_head(head: &[u8]) -> Result<(HttpMessage, BodyKind), HttpParseError> {
    let text = String::from_utf8_lossy(head);
    let mut lines = text.split("\r\n");
    let start = lines.next().unwrap_or("");
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((n, v)) = line.split_once(':') else {
            return Err(HttpParseError::BadHeader(line.to_string()));
        };
        headers.push((n.trim().to_string(), v.trim().to_string()));
    }
    let get_header = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.clone())
    };
    let chunked = get_header("Transfer-Encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
    let content_length = match get_header("Content-Length") {
        Some(v) => Some(v.parse::<usize>().map_err(|_| HttpParseError::BadContentLength)?),
        None => None,
    };
    let body_kind = if chunked {
        BodyKind::Chunked
    } else {
        match content_length {
            Some(n) => BodyKind::Length(n),
            None => BodyKind::None,
        }
    };

    if let Some(rest) = start.strip_prefix("HTTP/1.1 ").or_else(|| start.strip_prefix("HTTP/1.0 ")) {
        let mut parts = rest.splitn(2, ' ');
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| HttpParseError::BadStartLine(start.to_string()))?;
        let reason = parts.next().unwrap_or("").to_string();
        Ok((
            HttpMessage::Response(HttpResponse { status, reason, headers, body: Vec::new() }),
            body_kind,
        ))
    } else {
        let mut parts = start.split(' ');
        let method = parts.next().unwrap_or("").to_string();
        let target = parts.next().unwrap_or("").to_string();
        let version = parts.next().unwrap_or("");
        if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/") {
            return Err(HttpParseError::BadStartLine(start.to_string()));
        }
        Ok((
            HttpMessage::Request(HttpRequest { method, target, headers, body: Vec::new() }),
            body_kind,
        ))
    }
}

/// Attempts to parse a complete chunked body from the front of `buf`.
/// Returns `(body, bytes_consumed)` or `None` if more data is needed.
fn try_parse_chunked(buf: &[u8]) -> Result<Option<(Vec<u8>, usize)>, HttpParseError> {
    let mut body = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &buf[pos..];
        let Some(line_end) = rest.windows(2).position(|w| w == b"\r\n") else {
            return Ok(None);
        };
        let size_str = std::str::from_utf8(&rest[..line_end]).map_err(|_| HttpParseError::BadChunk)?;
        let size = usize::from_str_radix(size_str.trim(), 16).map_err(|_| HttpParseError::BadChunk)?;
        let chunk_start = pos + line_end + 2;
        if size == 0 {
            // Expect trailing CRLF.
            if buf.len() < chunk_start + 2 {
                return Ok(None);
            }
            if &buf[chunk_start..chunk_start + 2] != b"\r\n" {
                return Err(HttpParseError::BadChunk);
            }
            return Ok(Some((body, chunk_start + 2)));
        }
        if buf.len() < chunk_start + size + 2 {
            return Ok(None);
        }
        body.extend_from_slice(&buf[chunk_start..chunk_start + size]);
        if &buf[chunk_start + size..chunk_start + size + 2] != b"\r\n" {
            return Err(HttpParseError::BadChunk);
        }
        pos = chunk_start + size + 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = HttpRequest::get("scholar.google.com", "/scholar?q=gfw")
            .header("User-Agent", "Chrome/56.0");
        let mut p = HttpParser::new();
        let msgs = p.push(&req.encode()).unwrap();
        assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            HttpMessage::Request(r) => {
                assert_eq!(r.method, "GET");
                assert_eq!(r.target, "/scholar?q=gfw");
                assert_eq!(r.host(), Some("scholar.google.com"));
                assert_eq!(r.header_value("user-agent"), Some("Chrome/56.0"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn response_with_body_roundtrip() {
        let resp = HttpResponse::new(200, b"<html>scholar</html>".to_vec())
            .header("Content-Type", "text/html");
        let mut p = HttpParser::new();
        let msgs = p.push(&resp.encode()).unwrap();
        match &msgs[0] {
            HttpMessage::Response(r) => {
                assert_eq!(r.status, 200);
                assert_eq!(r.body, b"<html>scholar</html>");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parser_handles_fragmented_input() {
        let req = HttpRequest {
            method: "POST".into(),
            target: "/submit".into(),
            headers: vec![("Host".into(), "x".into())],
            body: vec![7u8; 1000],
        };
        let wire = req.encode();
        let mut p = HttpParser::new();
        let mut all = Vec::new();
        for chunk in wire.chunks(13) {
            all.extend(p.push(chunk).unwrap());
        }
        assert_eq!(all.len(), 1);
        match &all[0] {
            HttpMessage::Request(r) => assert_eq!(r.body.len(), 1000),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parser_handles_pipelined_messages() {
        let a = HttpRequest::get("h", "/1").encode();
        let b = HttpRequest::get("h", "/2").encode();
        let mut wire = a;
        wire.extend(b);
        let mut p = HttpParser::new();
        let msgs = p.push(&wire).unwrap();
        assert_eq!(msgs.len(), 2);
    }

    #[test]
    fn chunked_response_roundtrip() {
        let resp = HttpResponse::new(200, b"chunked payload".to_vec())
            .header("Transfer-Encoding", "chunked");
        let wire = resp.encode();
        let mut p = HttpParser::new();
        // Fragment through chunk boundaries.
        let mut msgs = Vec::new();
        for c in wire.chunks(7) {
            msgs.extend(p.push(c).unwrap());
        }
        match &msgs[0] {
            HttpMessage::Response(r) => assert_eq!(r.body, b"chunked payload"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_start_line_is_error() {
        let mut p = HttpParser::new();
        assert!(p.push(b"NONSENSE\r\n\r\n").is_err());
    }

    #[test]
    fn bad_content_length_is_error() {
        let mut p = HttpParser::new();
        assert!(p
            .push(b"GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n")
            .is_err());
    }

    #[test]
    fn connect_request_shape() {
        let req = HttpRequest::connect("scholar.google.com:443");
        assert_eq!(req.method, "CONNECT");
        assert_eq!(req.target, "scholar.google.com:443");
    }

    #[test]
    fn not_modified_roundtrip_and_max_age() {
        let resp = HttpResponse::new(304, Vec::new())
            .header("ETag", "\"abc123\"")
            .header("Cache-Control", "public, max-age=30");
        let wire = resp.encode();
        assert!(wire.starts_with(b"HTTP/1.1 304 Not Modified\r\n"));
        let mut p = HttpParser::new();
        let msgs = p.push(&wire).unwrap();
        match &msgs[0] {
            HttpMessage::Response(r) => {
                assert_eq!(r.status, 304);
                assert!(r.body.is_empty());
                assert_eq!(r.max_age_secs(), Some(30));
                assert_eq!(r.header_value("etag"), Some("\"abc123\""));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(HttpResponse::new(200, Vec::new()).max_age_secs(), None);
    }

    #[test]
    fn zero_length_body_completes_immediately() {
        let mut p = HttpParser::new();
        let msgs = p.push(b"GET / HTTP/1.1\r\nHost: h\r\nContent-Length: 0\r\n\r\n").unwrap();
        assert_eq!(msgs.len(), 1);
    }
}
