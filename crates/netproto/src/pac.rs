//! Proxy auto-config (PAC) files: generation and evaluation.
//!
//! ScholarCloud's entire client-side footprint is one browser setting
//! pointing at a PAC file (§3). The PAC diverts only a *whitelist* of
//! legal-but-blocked domains to the domestic proxy tier; everything else
//! goes DIRECT. With a fleet of domestic proxies the PAC returns an
//! *ordered fallback list* — `PROXY a; PROXY b; DIRECT` — exactly as a
//! real browser would consume it: the browser tries each entry in order
//! and marks dead ones. We generate real JavaScript PAC text and
//! evaluate the restricted dialect we generate.

use sc_simnet::addr::SocketAddr;

/// A routing decision for one URL/host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyDecision {
    /// Connect directly.
    Direct,
    /// Connect through the given HTTP proxy.
    Proxy(SocketAddr),
}

/// A PAC policy: whitelisted domain suffixes routed to an ordered list
/// of fallback proxies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacFile {
    /// Domain suffixes diverted to the proxies (lowercase, no leading dot).
    pub whitelist: Vec<String>,
    /// Ordered fallback list: the browser tries these in order, then
    /// DIRECT. Never empty.
    pub proxies: Vec<SocketAddr>,
}

impl PacFile {
    /// Creates a single-proxy policy.
    pub fn new(whitelist: impl IntoIterator<Item = impl Into<String>>, proxy: SocketAddr) -> Self {
        Self::with_fallbacks(whitelist, vec![proxy])
    }

    /// Creates a policy with an ordered proxy fallback list.
    ///
    /// # Panics
    ///
    /// Panics if `proxies` is empty — an all-DIRECT policy is expressed
    /// with an empty whitelist, not an empty proxy list.
    pub fn with_fallbacks(
        whitelist: impl IntoIterator<Item = impl Into<String>>,
        proxies: Vec<SocketAddr>,
    ) -> Self {
        assert!(!proxies.is_empty(), "PAC proxy list must not be empty");
        let whitelist = whitelist
            .into_iter()
            .map(|d| d.into().to_ascii_lowercase())
            .collect();
        PacFile { whitelist, proxies }
    }

    /// The primary proxy (head of the fallback list).
    pub fn primary(&self) -> SocketAddr {
        self.proxies[0]
    }

    /// Whether `host` is on the whitelist (routed via the proxy list).
    fn whitelisted(&self, host: &str) -> bool {
        let host = host.to_ascii_lowercase();
        self.whitelist
            .iter()
            .any(|domain| host == *domain || host.ends_with(&format!(".{domain}")))
    }

    /// Decides how `host` should be reached (primary proxy only).
    ///
    /// # Examples
    ///
    /// ```
    /// use sc_netproto::pac::{PacFile, ProxyDecision};
    /// use sc_simnet::addr::{Addr, SocketAddr};
    ///
    /// let proxy = SocketAddr::new(Addr::new(10, 1, 0, 1), 8080);
    /// let pac = PacFile::new(["scholar.google.com"], proxy);
    /// assert_eq!(pac.decide("scholar.google.com"), ProxyDecision::Proxy(proxy));
    /// assert_eq!(pac.decide("baidu.com"), ProxyDecision::Direct);
    /// ```
    pub fn decide(&self, host: &str) -> ProxyDecision {
        if self.whitelisted(host) {
            ProxyDecision::Proxy(self.proxies[0])
        } else {
            ProxyDecision::Direct
        }
    }

    /// The full ordered fallback list for `host`: every proxy in order,
    /// or empty for a DIRECT host. Mirrors how a browser walks a
    /// `PROXY a; PROXY b; DIRECT` return value.
    pub fn candidates(&self, host: &str) -> &[SocketAddr] {
        if self.whitelisted(host) {
            &self.proxies
        } else {
            &[]
        }
    }

    /// Renders the policy as JavaScript PAC text.
    pub fn to_javascript(&self) -> String {
        let list = self
            .proxies
            .iter()
            .map(|p| format!("PROXY {}:{}", p.addr, p.port))
            .collect::<Vec<_>>()
            .join("; ");
        let mut out = String::from("function FindProxyForURL(url, host) {\n");
        for domain in &self.whitelist {
            out.push_str(&format!(
                "    if (dnsDomainIs(host, \"{domain}\")) return \"{list}; DIRECT\";\n",
            ));
        }
        out.push_str("    return \"DIRECT\";\n}\n");
        out
    }

    /// Parses PAC text in the dialect produced by [`PacFile::to_javascript`].
    ///
    /// The return-value list is parsed the way a browser would: entries
    /// split on `;`, blank entries (trailing semicolons) skipped,
    /// duplicate proxies deduplicated keeping the first occurrence, and
    /// a terminal `DIRECT` allowed. A rule whose list contains no proxy
    /// at all (empty or `DIRECT`-only) yields [`PacParseError::NoRules`].
    ///
    /// # Errors
    ///
    /// Returns a descriptive error for files outside the supported dialect.
    pub fn parse(text: &str) -> Result<Self, PacParseError> {
        let mut whitelist = Vec::new();
        let mut proxies: Option<Vec<SocketAddr>> = None;
        for line in text.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix("if (dnsDomainIs(host, \"") else { continue };
            let Some((domain, rest)) = rest.split_once("\")) return \"") else {
                return Err(PacParseError::BadRule(line.to_string()));
            };
            let Some(list) = rest.strip_suffix("\";") else {
                return Err(PacParseError::BadRule(line.to_string()));
            };
            let mut rule_proxies: Vec<SocketAddr> = Vec::new();
            for entry in list.split(';') {
                let entry = entry.trim();
                if entry.is_empty() || entry == "DIRECT" {
                    // Trailing semicolons and the DIRECT terminal.
                    continue;
                }
                let Some(endpoint) = entry.strip_prefix("PROXY ") else {
                    return Err(PacParseError::BadRule(line.to_string()));
                };
                let p = parse_endpoint(endpoint)?;
                if !rule_proxies.contains(&p) {
                    rule_proxies.push(p);
                }
            }
            if rule_proxies.is_empty() {
                // An empty or DIRECT-only list names no proxy: the rule
                // is a no-op and the file carries no routing policy.
                return Err(PacParseError::NoRules);
            }
            match &proxies {
                None => proxies = Some(rule_proxies),
                Some(existing) if *existing == rule_proxies => {}
                Some(_) => return Err(PacParseError::MultipleProxies),
            }
            whitelist.push(domain.to_ascii_lowercase());
        }
        let proxies = proxies.ok_or(PacParseError::NoRules)?;
        Ok(PacFile { whitelist, proxies })
    }
}

fn parse_endpoint(endpoint: &str) -> Result<SocketAddr, PacParseError> {
    let Some((addr_str, port_str)) = endpoint.rsplit_once(':') else {
        return Err(PacParseError::BadEndpoint(endpoint.to_string()));
    };
    let octets: Vec<u8> = addr_str
        .split('.')
        .map(|o| o.parse::<u8>())
        .collect::<Result<_, _>>()
        .map_err(|_| PacParseError::BadEndpoint(endpoint.to_string()))?;
    if octets.len() != 4 {
        return Err(PacParseError::BadEndpoint(endpoint.to_string()));
    }
    let port: u16 = port_str
        .parse()
        .map_err(|_| PacParseError::BadEndpoint(endpoint.to_string()))?;
    Ok(SocketAddr::new(
        sc_simnet::addr::Addr::new(octets[0], octets[1], octets[2], octets[3]),
        port,
    ))
}

/// Errors parsing PAC text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacParseError {
    /// A rule line did not match the supported dialect.
    BadRule(String),
    /// A proxy endpoint was malformed.
    BadEndpoint(String),
    /// Rules pointed at more than one proxy list.
    MultipleProxies,
    /// No proxy rules were found.
    NoRules,
}

impl core::fmt::Display for PacParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PacParseError::BadRule(l) => write!(f, "unsupported PAC rule: {l:?}"),
            PacParseError::BadEndpoint(e) => write!(f, "bad proxy endpoint: {e:?}"),
            PacParseError::MultipleProxies => write!(f, "multiple proxy lists not supported"),
            PacParseError::NoRules => write!(f, "no proxy rules found"),
        }
    }
}

impl std::error::Error for PacParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_simnet::addr::Addr;

    fn proxy() -> SocketAddr {
        SocketAddr::new(Addr::new(10, 1, 0, 1), 8080)
    }

    fn proxy2() -> SocketAddr {
        SocketAddr::new(Addr::new(10, 1, 0, 2), 8080)
    }

    #[test]
    fn whitelist_matching_includes_subdomains() {
        let pac = PacFile::new(["google.com"], proxy());
        assert_eq!(pac.decide("google.com"), ProxyDecision::Proxy(proxy()));
        assert_eq!(pac.decide("scholar.GOOGLE.com"), ProxyDecision::Proxy(proxy()));
        // Suffix must be on a label boundary.
        assert_eq!(pac.decide("notgoogle.com"), ProxyDecision::Direct);
        assert_eq!(pac.decide("baidu.com"), ProxyDecision::Direct);
    }

    #[test]
    fn generate_then_parse_roundtrip() {
        let pac = PacFile::new(["scholar.google.com", "www.google.com"], proxy());
        let js = pac.to_javascript();
        assert!(js.contains("FindProxyForURL"));
        assert!(js.contains("PROXY 10.1.0.1:8080"));
        assert!(js.contains("return \"DIRECT\""));
        let parsed = PacFile::parse(&js).unwrap();
        assert_eq!(parsed, pac);
    }

    #[test]
    fn fallback_list_roundtrips_in_order() {
        let pac = PacFile::with_fallbacks(["scholar.google.com"], vec![proxy(), proxy2()]);
        let js = pac.to_javascript();
        assert!(js.contains("PROXY 10.1.0.1:8080; PROXY 10.1.0.2:8080; DIRECT"));
        let parsed = PacFile::parse(&js).unwrap();
        assert_eq!(parsed, pac);
        assert_eq!(parsed.candidates("scholar.google.com"), &[proxy(), proxy2()]);
        assert_eq!(parsed.candidates("baidu.com"), &[] as &[SocketAddr]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(PacFile::parse("function f() {}").unwrap_err(), PacParseError::NoRules);
        let bad = "if (dnsDomainIs(host, \"a.com\")) return \"PROXY nonsense\";";
        assert!(matches!(
            PacFile::parse(bad).unwrap_err(),
            PacParseError::BadEndpoint(_)
        ));
    }

    #[test]
    fn parse_rejects_multiple_proxies() {
        let text = concat!(
            "if (dnsDomainIs(host, \"a.com\")) return \"PROXY 10.0.0.1:80\";\n",
            "if (dnsDomainIs(host, \"b.com\")) return \"PROXY 10.0.0.2:80\";\n",
        );
        assert_eq!(PacFile::parse(text).unwrap_err(), PacParseError::MultipleProxies);
    }

    #[test]
    fn parse_rejects_reordered_fallback_lists() {
        // Same proxies, different order: a browser would fail over
        // differently per rule, which our single-policy model rejects.
        let text = concat!(
            "if (dnsDomainIs(host, \"a.com\")) ",
            "return \"PROXY 10.0.0.1:80; PROXY 10.0.0.2:80\";\n",
            "if (dnsDomainIs(host, \"b.com\")) ",
            "return \"PROXY 10.0.0.2:80; PROXY 10.0.0.1:80\";\n",
        );
        assert_eq!(PacFile::parse(text).unwrap_err(), PacParseError::MultipleProxies);
    }

    #[test]
    fn parse_rejects_empty_return_list() {
        let text = "if (dnsDomainIs(host, \"a.com\")) return \"\";";
        assert_eq!(PacFile::parse(text).unwrap_err(), PacParseError::NoRules);
    }

    #[test]
    fn parse_rejects_direct_only_rule() {
        let text = "if (dnsDomainIs(host, \"a.com\")) return \"DIRECT\";";
        assert_eq!(PacFile::parse(text).unwrap_err(), PacParseError::NoRules);
    }

    #[test]
    fn parse_dedups_duplicate_proxies_keeping_order() {
        let text = concat!(
            "if (dnsDomainIs(host, \"a.com\")) ",
            "return \"PROXY 10.0.0.1:80; PROXY 10.0.0.2:80; PROXY 10.0.0.1:80; DIRECT\";",
        );
        let pac = PacFile::parse(text).unwrap();
        assert_eq!(
            pac.proxies,
            vec![
                SocketAddr::new(Addr::new(10, 0, 0, 1), 80),
                SocketAddr::new(Addr::new(10, 0, 0, 2), 80),
            ]
        );
    }

    #[test]
    fn parse_tolerates_trailing_semicolons() {
        let text = "if (dnsDomainIs(host, \"a.com\")) return \"PROXY 10.0.0.1:80;;\";";
        let pac = PacFile::parse(text).unwrap();
        assert_eq!(pac.proxies, vec![SocketAddr::new(Addr::new(10, 0, 0, 1), 80)]);
    }

    #[test]
    fn empty_whitelist_is_all_direct() {
        let pac = PacFile::new(Vec::<String>::new(), proxy());
        assert_eq!(pac.decide("anything.example"), ProxyDecision::Direct);
        assert_eq!(pac.candidates("anything.example"), &[] as &[SocketAddr]);
    }
}
