//! Proxy auto-config (PAC) files: generation and evaluation.
//!
//! ScholarCloud's entire client-side footprint is one browser setting
//! pointing at a PAC file (§3). The PAC diverts only a *whitelist* of
//! legal-but-blocked domains to the domestic proxy; everything else goes
//! DIRECT. We generate real JavaScript PAC text (so the artifact matches
//! what a browser would consume) and evaluate the restricted dialect we
//! generate.

use sc_simnet::addr::SocketAddr;

/// A routing decision for one URL/host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyDecision {
    /// Connect directly.
    Direct,
    /// Connect through the given HTTP proxy.
    Proxy(SocketAddr),
}

/// A PAC policy: whitelisted domain suffixes routed to one proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacFile {
    /// Domain suffixes diverted to the proxy (lowercase, no leading dot).
    pub whitelist: Vec<String>,
    /// The proxy that whitelisted traffic uses.
    pub proxy: SocketAddr,
}

impl PacFile {
    /// Creates a policy.
    pub fn new(whitelist: impl IntoIterator<Item = impl Into<String>>, proxy: SocketAddr) -> Self {
        let whitelist = whitelist
            .into_iter()
            .map(|d| d.into().to_ascii_lowercase())
            .collect();
        PacFile { whitelist, proxy }
    }

    /// Decides how `host` should be reached.
    ///
    /// # Examples
    ///
    /// ```
    /// use sc_netproto::pac::{PacFile, ProxyDecision};
    /// use sc_simnet::addr::{Addr, SocketAddr};
    ///
    /// let proxy = SocketAddr::new(Addr::new(10, 1, 0, 1), 8080);
    /// let pac = PacFile::new(["scholar.google.com"], proxy);
    /// assert_eq!(pac.decide("scholar.google.com"), ProxyDecision::Proxy(proxy));
    /// assert_eq!(pac.decide("baidu.com"), ProxyDecision::Direct);
    /// ```
    pub fn decide(&self, host: &str) -> ProxyDecision {
        let host = host.to_ascii_lowercase();
        for domain in &self.whitelist {
            if host == *domain || host.ends_with(&format!(".{domain}")) {
                return ProxyDecision::Proxy(self.proxy);
            }
        }
        ProxyDecision::Direct
    }

    /// Renders the policy as JavaScript PAC text.
    pub fn to_javascript(&self) -> String {
        let mut out = String::from("function FindProxyForURL(url, host) {\n");
        for domain in &self.whitelist {
            out.push_str(&format!(
                "    if (dnsDomainIs(host, \"{domain}\")) return \"PROXY {}:{}\";\n",
                self.proxy.addr, self.proxy.port
            ));
        }
        out.push_str("    return \"DIRECT\";\n}\n");
        out
    }

    /// Parses PAC text in the dialect produced by [`PacFile::to_javascript`].
    ///
    /// # Errors
    ///
    /// Returns a descriptive error for files outside the supported dialect.
    pub fn parse(text: &str) -> Result<Self, PacParseError> {
        let mut whitelist = Vec::new();
        let mut proxy: Option<SocketAddr> = None;
        for line in text.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix("if (dnsDomainIs(host, \"") else { continue };
            let Some((domain, rest)) = rest.split_once("\")) return \"PROXY ") else {
                return Err(PacParseError::BadRule(line.to_string()));
            };
            let Some(endpoint) = rest.strip_suffix("\";") else {
                return Err(PacParseError::BadRule(line.to_string()));
            };
            let Some((addr_str, port_str)) = endpoint.rsplit_once(':') else {
                return Err(PacParseError::BadEndpoint(endpoint.to_string()));
            };
            let octets: Vec<u8> = addr_str
                .split('.')
                .map(|o| o.parse::<u8>())
                .collect::<Result<_, _>>()
                .map_err(|_| PacParseError::BadEndpoint(endpoint.to_string()))?;
            if octets.len() != 4 {
                return Err(PacParseError::BadEndpoint(endpoint.to_string()));
            }
            let port: u16 = port_str
                .parse()
                .map_err(|_| PacParseError::BadEndpoint(endpoint.to_string()))?;
            let this_proxy = SocketAddr::new(
                sc_simnet::addr::Addr::new(octets[0], octets[1], octets[2], octets[3]),
                port,
            );
            match proxy {
                None => proxy = Some(this_proxy),
                Some(p) if p == this_proxy => {}
                Some(_) => return Err(PacParseError::MultipleProxies),
            }
            whitelist.push(domain.to_ascii_lowercase());
        }
        let proxy = proxy.ok_or(PacParseError::NoRules)?;
        Ok(PacFile { whitelist, proxy })
    }
}

/// Errors parsing PAC text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacParseError {
    /// A rule line did not match the supported dialect.
    BadRule(String),
    /// A proxy endpoint was malformed.
    BadEndpoint(String),
    /// Rules pointed at more than one proxy.
    MultipleProxies,
    /// No proxy rules were found.
    NoRules,
}

impl core::fmt::Display for PacParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PacParseError::BadRule(l) => write!(f, "unsupported PAC rule: {l:?}"),
            PacParseError::BadEndpoint(e) => write!(f, "bad proxy endpoint: {e:?}"),
            PacParseError::MultipleProxies => write!(f, "multiple proxies not supported"),
            PacParseError::NoRules => write!(f, "no proxy rules found"),
        }
    }
}

impl std::error::Error for PacParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_simnet::addr::Addr;

    fn proxy() -> SocketAddr {
        SocketAddr::new(Addr::new(10, 1, 0, 1), 8080)
    }

    #[test]
    fn whitelist_matching_includes_subdomains() {
        let pac = PacFile::new(["google.com"], proxy());
        assert_eq!(pac.decide("google.com"), ProxyDecision::Proxy(proxy()));
        assert_eq!(pac.decide("scholar.GOOGLE.com"), ProxyDecision::Proxy(proxy()));
        // Suffix must be on a label boundary.
        assert_eq!(pac.decide("notgoogle.com"), ProxyDecision::Direct);
        assert_eq!(pac.decide("baidu.com"), ProxyDecision::Direct);
    }

    #[test]
    fn generate_then_parse_roundtrip() {
        let pac = PacFile::new(["scholar.google.com", "www.google.com"], proxy());
        let js = pac.to_javascript();
        assert!(js.contains("FindProxyForURL"));
        assert!(js.contains("PROXY 10.1.0.1:8080"));
        assert!(js.contains("return \"DIRECT\""));
        let parsed = PacFile::parse(&js).unwrap();
        assert_eq!(parsed, pac);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(PacFile::parse("function f() {}").unwrap_err(), PacParseError::NoRules);
        let bad = "if (dnsDomainIs(host, \"a.com\")) return \"PROXY nonsense\";";
        assert!(matches!(
            PacFile::parse(bad).unwrap_err(),
            PacParseError::BadEndpoint(_)
        ));
    }

    #[test]
    fn parse_rejects_multiple_proxies() {
        let text = concat!(
            "if (dnsDomainIs(host, \"a.com\")) return \"PROXY 10.0.0.1:80\";\n",
            "if (dnsDomainIs(host, \"b.com\")) return \"PROXY 10.0.0.2:80\";\n",
        );
        assert_eq!(PacFile::parse(text).unwrap_err(), PacParseError::MultipleProxies);
    }

    #[test]
    fn empty_whitelist_is_all_direct() {
        let pac = PacFile::new(Vec::<String>::new(), proxy());
        assert_eq!(pac.decide("anything.example"), ProxyDecision::Direct);
    }
}
